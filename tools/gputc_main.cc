// gputc — command-line front end for the library.
//
//   gputc datasets                       list bundled dataset stand-ins
//   gputc info --dataset gowalla         structural statistics
//   gputc generate --family rmat --scale 12 --out g.txt
//   gputc convert --in g.txt --out g.bin
//   gputc count --dataset gowalla [--algorithm Hu] [--direction A-direction]
//               [--ordering A-order] [--profile]
//   gputc calibrate                      print the Section 5.3 calibration

#include <iostream>
#include <string>

#include "core/pipeline.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/io.h"
#include "order/calibration.h"
#include "sim/profiler.h"
#include "util/flags.h"
#include "util/table.h"

namespace gputc {
namespace {

int Usage() {
  std::cerr
      << "usage: gputc <command> [flags]\n"
         "commands:\n"
         "  datasets   list bundled dataset stand-ins\n"
         "  info       --dataset NAME | --in FILE: structural statistics\n"
         "  generate   --family rmat|powerlaw|er|ws --out FILE [...]\n"
         "  convert    --in FILE --out FILE (.txt <-> .bin by extension)\n"
         "  count      --dataset NAME [--algorithm A] [--direction D]\n"
         "             [--ordering O] [--profile]\n"
         "  calibrate  print BW(d), p_c(d) and lambda for the device model\n";
  return 2;
}

std::optional<Graph> LoadAny(const FlagParser& flags) {
  if (flags.Has("dataset")) {
    const std::string name = flags.GetString("dataset", "");
    if (!HasDataset(name)) {
      std::cerr << "unknown dataset '" << name << "'\n";
      return std::nullopt;
    }
    return LoadDataset(name);
  }
  if (flags.Has("in")) {
    const std::string path = flags.GetString("in", "");
    std::optional<Graph> g = path.ends_with(".bin") ? LoadBinary(path)
                                                    : LoadSnapText(path);
    if (!g.has_value()) std::cerr << "cannot load '" << path << "'\n";
    return g;
  }
  std::cerr << "need --dataset or --in\n";
  return std::nullopt;
}

int CmdDatasets() {
  TablePrinter table({"name", "family", "provenance"});
  for (const auto& name : DatasetNames()) {
    const DatasetSpec spec = GetDatasetSpec(name);
    table.AddRow({spec.name, spec.family, spec.provenance});
  }
  table.Print(std::cout);
  return 0;
}

int CmdInfo(const FlagParser& flags) {
  const auto g = LoadAny(flags);
  if (!g.has_value()) return 1;
  std::cout << FormatGraphStats(ComputeGraphStats(*g));
  return 0;
}

int CmdGenerate(const FlagParser& flags) {
  const std::string family = flags.GetString("family", "rmat");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::cerr << "need --out FILE\n";
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  Graph g;
  if (family == "rmat") {
    g = GenerateRmat(static_cast<int>(flags.GetInt("scale", 12)),
                     static_cast<int>(flags.GetInt("edge-factor", 8)), seed);
  } else if (family == "powerlaw") {
    g = GeneratePowerLawConfiguration(
        static_cast<VertexId>(flags.GetInt("nodes", 10000)),
        flags.GetDouble("gamma", 2.1), flags.GetInt("min-degree", 2),
        flags.GetInt("max-degree", 1000), seed);
  } else if (family == "er") {
    g = GenerateErdosRenyi(static_cast<VertexId>(flags.GetInt("nodes", 10000)),
                           flags.GetInt("edges", 50000), seed);
  } else if (family == "ws") {
    g = GenerateWattsStrogatz(
        static_cast<VertexId>(flags.GetInt("nodes", 10000)),
        static_cast<int>(flags.GetInt("k", 4)), flags.GetDouble("beta", 0.05),
        seed);
  } else {
    std::cerr << "unknown family '" << family
              << "' (rmat|powerlaw|er|ws)\n";
    return 1;
  }
  const bool ok = out.ends_with(".bin") ? SaveBinary(g, out)
                                        : SaveSnapText(g, out);
  if (!ok) {
    std::cerr << "cannot write '" << out << "'\n";
    return 1;
  }
  std::cout << "wrote " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges to " << out << "\n";
  return 0;
}

int CmdConvert(const FlagParser& flags) {
  const auto g = LoadAny(flags);
  if (!g.has_value()) return 1;
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::cerr << "need --out FILE\n";
    return 1;
  }
  const bool ok = out.ends_with(".bin") ? SaveBinary(*g, out)
                                        : SaveSnapText(*g, out);
  if (!ok) {
    std::cerr << "cannot write '" << out << "'\n";
    return 1;
  }
  std::cout << "wrote " << out << "\n";
  return 0;
}

DirectionStrategy ParseDirection(const std::string& name) {
  for (DirectionStrategy s : AllDirectionStrategies()) {
    if (ToString(s) == name) return s;
  }
  std::cerr << "unknown direction '" << name << "', using A-direction\n";
  return DirectionStrategy::kADirection;
}

OrderingStrategy ParseOrdering(const std::string& name) {
  for (OrderingStrategy s :
       {OrderingStrategy::kOriginal, OrderingStrategy::kDegree,
        OrderingStrategy::kAOrder, OrderingStrategy::kDfs,
        OrderingStrategy::kBfsR, OrderingStrategy::kSlashBurn,
        OrderingStrategy::kGro, OrderingStrategy::kBfs,
        OrderingStrategy::kRcm, OrderingStrategy::kRandom}) {
    if (ToString(s) == name) return s;
  }
  std::cerr << "unknown ordering '" << name << "', using A-order\n";
  return OrderingStrategy::kAOrder;
}

TcAlgorithm ParseAlgorithm(const std::string& name) {
  for (TcAlgorithm a :
       {TcAlgorithm::kGunrockBinarySearch, TcAlgorithm::kGunrockSortMerge,
        TcAlgorithm::kTriCore, TcAlgorithm::kFox, TcAlgorithm::kBisson,
        TcAlgorithm::kHu, TcAlgorithm::kPolak}) {
    if (ToString(a) == name) return a;
  }
  std::cerr << "unknown algorithm '" << name << "', using Hu\n";
  return TcAlgorithm::kHu;
}

int CmdCount(const FlagParser& flags) {
  const auto g = LoadAny(flags);
  if (!g.has_value()) return 1;
  PreprocessOptions options;
  options.direction =
      ParseDirection(flags.GetString("direction", "A-direction"));
  options.ordering = ParseOrdering(flags.GetString("ordering", "A-order"));
  const TcAlgorithm algorithm =
      ParseAlgorithm(flags.GetString("algorithm", "Hu"));
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const RunResult r = RunTriangleCount(*g, algorithm, spec, options);
  std::cout << "algorithm:     " << ToString(algorithm) << "\n"
            << "direction:     " << ToString(options.direction)
            << " (Eq.1 cost " << Fmt(r.preprocess.direction_cost, 0) << ")\n"
            << "ordering:      " << ToString(options.ordering)
            << " (Eq.3 cost " << Fmt(r.preprocess.ordering_cost, 0) << ")\n"
            << "triangles:     " << FmtCount(r.triangles) << "\n"
            << "preprocess:    " << Fmt(r.preprocess.total_ms, 2)
            << " ms (host)\n"
            << "kernel:        " << Fmt(r.kernel_ms(), 4)
            << " ms (simulated)\n";
  if (flags.GetBool("profile", false)) {
    std::cout << "\n" << FormatKernelReport(r.kernel);
  }
  return 0;
}

int CmdCalibrate() {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const CalibrationResult r = CalibrateResourceModel(spec);
  TablePrinter table({"list length", "BW (B/cycle)", "p_c", "F_c", "F_m"});
  for (const CalibrationSample& s : r.samples) {
    table.AddRow({FmtCount(s.list_length), Fmt(s.bandwidth, 1), Fmt(s.p_c, 1),
                  Fmt(s.compute_intensity, 4), Fmt(s.memory_intensity, 3)});
  }
  table.Print(std::cout);
  std::cout << "lambda = " << Fmt(r.lambda, 3)
            << "   (figure-9 fit: slope " << Fmt(r.fit.slope, 3)
            << ", r^2 " << Fmt(r.fit.r_squared, 3) << ")\n";
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string command = flags.positional()[0];
  if (command == "datasets") return CmdDatasets();
  if (command == "info") return CmdInfo(flags);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "convert") return CmdConvert(flags);
  if (command == "count") return CmdCount(flags);
  if (command == "calibrate") return CmdCalibrate();
  return Usage();
}

}  // namespace
}  // namespace gputc

int main(int argc, char** argv) { return gputc::Main(argc, argv); }
