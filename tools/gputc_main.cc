// gputc — command-line front end for the library.
//
//   gputc datasets                       list bundled dataset stand-ins
//   gputc info --dataset gowalla         structural statistics
//   gputc generate --family rmat --scale 12 --out g.txt
//   gputc convert --in g.txt --out g.bin
//   gputc count --dataset gowalla [--algorithm Hu] [--direction A-direction]
//               [--ordering A-order] [--profile] [--timeout-ms N]
//               [--max-model-ms N] [--mem-budget-mb N] [--fallback Hu,cpu]
//               [--prep-cache DIR] [--prep-cache-mb N]
//               [--trace] [--trace-out t.json] [--metrics-out m.prom]
//   gputc doctor --in g.txt [--repair --out fixed.bin]
//   gputc batch --manifest jobs.txt [--jobs N] [--queue-depth Q]
//               [--mem-budget-mb M] [--shed-policy block|reject|drop-oldest]
//               [--timeout-ms N] [--drain-grace-ms N] [--fallback Hu,cpu]
//               [--isolate[=N]] [--journal FILE|-]
//               [--wal DIR [--resume] [--wal-policy strict|degrade]]
//               [--prep-cache DIR] [--prep-cache-mb N]
//               [--trace-out t.json] [--metrics-out m.prom]
//   gputc serve --listen HOST:PORT|unix:PATH [--health SPEC] [--jobs N]
//               [--queue-depth Q] [--max-connections C] [--isolate[=N]]
//               [--journal FILE|-]
//               [--wal DIR [--resume] [--wal-policy strict|degrade]]
//               [--prep-cache DIR] [--prep-cache-mb N] ...
//               newline-delimited network daemon over the batch service
//   gputc cache stats|purge --prep-cache DIR
//               inspect or empty the durable preprocessing-artifact tier
//   gputc worker --request-fd N --response-fd N   (internal: spawned by
//               `batch --isolate`; speaks the framed worker protocol)
//   gputc version                        semantic version, build type,
//               sanitizer config (also `gputc --version`)
//   gputc metrics-dump [--json]          exporter smoke test
//   gputc calibrate                      print the Section 5.3 calibration
//
// Exit codes (the documented contract; the same table appears in --help and
// README.md "Error handling & exit codes" — keep all three in sync):
//   0  success (batch: every request counted, possibly degraded — including
//      requests replayed verbatim from the WAL on --resume; serve: a clean
//      signal-driven drain — per-request outcomes live in the journal)
//   1  runtime failure (cannot write an output/journal/WAL file, cannot
//      bind a listener, journal accounting incomplete, internal error)
//   2  usage error (unknown command/flag value, missing required flag,
//      --resume without --wal, or --wal naming a previous run's non-empty
//      WAL without --resume)
//   3  invalid input (missing/corrupt/rejected input file, dataset, or
//      unreadable WAL record)
//   4  exhausted (deadline, memory budget or every fallback stage spent;
//      batch: no request — fresh or replayed — produced a count)
//   5  partial batch failure (some requests counted, others were rejected
//      or failed — see the journal; replayed outcomes count too)
//   6  storage fail-stop (--wal-policy strict, the default, and the WAL
//      could not persist a record — ENOSPC/EIO/quota; the journal holds
//      exactly the durable prefix, so freeing space and re-running with
//      --resume converges; batch also exits 6 when the preflight space
//      check refuses the manifest up front)

#include <algorithm>
#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>

#include <unistd.h>

#include "core/executor.h"
#include "core/pipeline.h"
#include "core/prep_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/batch_service.h"
#include "service/cache_store.h"
#include "service/server.h"
#include "service/storage_health.h"
#include "service/wal.h"
#include "service/worker_process.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/io.h"
#include "graph/validate.h"
#include "order/calibration.h"
#include "sim/profiler.h"
#include "util/durable_file.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/net_io.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/version.h"

namespace gputc {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBadInput = 3;
constexpr int kExitExhausted = 4;
constexpr int kExitPartial = 5;
/// Storage fail-stop: the strict-policy WAL lost the disk underneath it (or
/// the batch preflight refused the manifest for projected space). Distinct
/// from kExitRuntime so operators can alert on "free disk space and
/// --resume" without parsing stderr.
constexpr int kExitStorage = 6;

int Usage() {
  std::cerr
      << "usage: gputc <command> [flags]\n"
         "commands:\n"
         "  datasets   list bundled dataset stand-ins\n"
         "  info       --dataset NAME | --in FILE [--strict]: structural "
         "statistics\n"
         "  generate   --family rmat|powerlaw|er|ws --out FILE [...]\n"
         "  convert    --in FILE --out FILE [--strict] (.txt <-> .bin by "
         "extension)\n"
         "  count      --dataset NAME | --in FILE [--algorithm A]\n"
         "             [--direction D] [--ordering O] [--strict] [--profile]\n"
         "             [--timeout-ms N] [--max-model-ms N] [--mem-budget-mb N]\n"
         "             [--fallback A1,A2,...,cpu] [--trace]\n"
         "             [--prep-cache DIR] [--prep-cache-mb N]\n"
         "             [--trace-out FILE] [--metrics-out FILE]\n"
         "  doctor     --in FILE [--repair --out FILE]: scan for (and "
         "optionally\n"
         "             repair) self loops, duplicates, and structural damage\n"
         "  batch      --manifest FILE [--jobs N] [--queue-depth Q]\n"
         "             [--mem-budget-mb M] [--shed-policy "
         "block|reject|drop-oldest]\n"
         "             [--timeout-ms N] [--drain-grace-ms N]\n"
         "             [--fallback A1,...,cpu] [--isolate[=N]]\n"
         "             [--journal FILE|-]\n"
         "             [--wal DIR [--resume] [--wal-policy strict|degrade]]\n"
         "             [--prep-cache DIR] [--prep-cache-mb N]\n"
         "             [--trace-out FILE] [--metrics-out FILE]: run every\n"
         "             manifest request through a concurrent batch service.\n"
         "             --journal - streams JSONL to stdout (the default);\n"
         "             --wal DIR records intent/done per request in a "
         "durable\n"
         "             write-ahead log, and --resume replays it after a "
         "crash:\n"
         "             finished requests emit their journal lines verbatim,\n"
         "             unfinished ones re-run — exactly one line per "
         "request;\n"
         "             --wal-policy picks what a WAL disk fault does: "
         "strict\n"
         "             (default) fail-stops with exit 6 and a journal "
         "holding\n"
         "             exactly the durable prefix, degrade keeps serving "
         "and\n"
         "             stamps undurable lines with \"durable\":false;\n"
         "             --isolate[=N] executes requests in N supervised "
         "worker\n"
         "             subprocesses (default N = --jobs): a crash or hang "
         "fails\n"
         "             only that request, and --mem-budget-mb becomes each\n"
         "             worker's address-space rlimit;\n"
         "             --prep-cache DIR / --prep-cache-mb N reuse "
         "preprocessing\n"
         "             across requests with the same graph + options "
         "(content-\n"
         "             addressed: any input or option change misses "
         "cleanly)\n"
         "  serve      --listen HOST:PORT|unix:PATH [--health SPEC]\n"
         "             [--jobs N] [--queue-depth Q] [--mem-budget-mb M]\n"
         "             [--timeout-ms N] [--max-connections C]\n"
         "             [--max-line-bytes B] [--idle-timeout-ms N]\n"
         "             [--io-timeout-ms N] [--drain-grace-ms N]\n"
         "             [--target-p99-ms N] [--max-inflight N]\n"
         "             [--fallback A1,...,cpu] [--isolate[=N]]\n"
         "             [--prep-cache DIR] [--prep-cache-mb N]\n"
         "             [--journal FILE|-] [--wal DIR [--resume]\n"
         "             [--wal-policy strict|degrade]]: daemon\n"
         "             speaking one manifest line in / one JSONL journal "
         "line\n"
         "             out per request, over TCP or a unix socket. Overload\n"
         "             is shed with structured rejections carrying\n"
         "             retry_after_ms (adaptive p99 concurrency limit, "
         "queue\n"
         "             bound, memory gate); SIGTERM/SIGINT drain "
         "gracefully;\n"
         "             --health serves /healthz /readyz /metrics; --wal "
         "gives\n"
         "             accepted requests the same exactly-once crash "
         "contract\n"
         "             as batch (--resume re-admits interrupted ones)\n"
         "  cache      stats|purge --prep-cache DIR: inspect or empty the\n"
         "             durable preprocessing-artifact tier (purge is safe\n"
         "             mid-run: running services recompute and refill)\n"
         "  version    print semantic version, build type, and sanitizer "
         "config\n"
         "  metrics-dump  [--json] print a demo metrics snapshot (exporter "
         "smoke test)\n"
         "  calibrate  print BW(d), p_c(d) and lambda for the device model\n"
         "exit codes (full contract, same table as README.md):\n"
         "  0  success (batch: every request counted, incl. WAL-replayed "
         "ones;\n"
         "     serve: clean drain — per-request outcomes are in the "
         "journal)\n"
         "  1  runtime failure (cannot write output/journal/WAL; cannot "
         "bind\n"
         "     a listener; journal accounting incomplete)\n"
         "  2  usage error (bad command/flag; --resume without --wal; --wal\n"
         "     on a previous run's non-empty log without --resume)\n"
         "  3  invalid input (missing/corrupt/rejected input; unreadable "
         "WAL)\n"
         "  4  exhausted (deadline/budget spent after all fallbacks; batch:\n"
         "     nothing counted, fresh or replayed)\n"
         "  5  partial batch failure (some counted, some rejected/failed —\n"
         "     see the journal; replayed outcomes count too)\n"
         "  6  storage fail-stop (strict --wal-policy and the WAL lost the\n"
         "     disk — ENOSPC/EIO/quota — or the batch preflight space "
         "check\n"
         "     refused the manifest; journal = durable prefix, so free "
         "space\n"
         "     and re-run with --resume)\n";
  return kExitUsage;
}

/// Loads the graph named by --dataset or --in. `strict` routes file input
/// through GraphDoctor with the reject policy, so inputs that need repair
/// fail with exit 3 instead of being silently normalized.
StatusOr<Graph> LoadAny(const FlagParser& flags, bool strict) {
  if (flags.Has("dataset")) {
    return TryLoadDataset(flags.GetString("dataset", ""));
  }
  if (flags.Has("in")) {
    const std::string path = flags.GetString("in", "");
    if (!strict) return LoadGraph(path);
    StatusOr<EdgeList> list = LoadEdgeList(path);
    if (!list.ok()) return list.status();
    StatusOr<Graph> g =
        GraphDoctor().BuildGraph(*std::move(list), RepairPolicy::kReject);
    if (!g.ok()) return g.status().WithContext("--strict on '" + path + "'");
    return g;
  }
  return InvalidArgumentError("need --dataset NAME or --in FILE");
}

/// Reports a load/validation failure and picks the matching exit code.
int ReportInputError(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return kExitBadInput;
}

int CmdDatasets() {
  TablePrinter table({"name", "family", "provenance"});
  for (const auto& name : DatasetNames()) {
    const DatasetSpec spec = GetDatasetSpec(name);
    table.AddRow({spec.name, spec.family, spec.provenance});
  }
  table.Print(std::cout);
  return kExitOk;
}

int CmdInfo(const FlagParser& flags) {
  const StatusOr<Graph> g = LoadAny(flags, flags.GetBool("strict", false));
  if (!g.ok()) return ReportInputError(g.status());
  std::cout << FormatGraphStats(ComputeGraphStats(*g));
  return kExitOk;
}

int CmdGenerate(const FlagParser& flags) {
  const std::string family = flags.GetString("family", "rmat");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::cerr << "need --out FILE\n";
    return kExitUsage;
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  StatusOr<Graph> g = InvalidArgumentError("unset");
  if (family == "rmat") {
    g = TryGenerateRmat(static_cast<int>(flags.GetInt("scale", 12)),
                        static_cast<int>(flags.GetInt("edge-factor", 8)),
                        seed);
  } else if (family == "powerlaw") {
    g = TryGeneratePowerLawConfiguration(
        static_cast<VertexId>(flags.GetInt("nodes", 10000)),
        flags.GetDouble("gamma", 2.1), flags.GetInt("min-degree", 2),
        flags.GetInt("max-degree", 1000), seed);
  } else if (family == "er") {
    g = TryGenerateErdosRenyi(
        static_cast<VertexId>(flags.GetInt("nodes", 10000)),
        flags.GetInt("edges", 50000), seed);
  } else if (family == "ws") {
    g = TryGenerateWattsStrogatz(
        static_cast<VertexId>(flags.GetInt("nodes", 10000)),
        static_cast<int>(flags.GetInt("k", 4)), flags.GetDouble("beta", 0.05),
        seed);
  } else {
    std::cerr << "unknown family '" << family
              << "'; valid choices: rmat powerlaw er ws\n";
    return kExitUsage;
  }
  if (!g.ok()) {
    // Generator parameters are flag values, so rejection is a usage error.
    std::cerr << "error: " << g.status().ToString() << "\n";
    return kExitUsage;
  }
  const Status saved = SaveGraph(*g, out);
  if (!saved.ok()) {
    std::cerr << "error: " << saved.ToString() << "\n";
    return kExitRuntime;
  }
  std::cout << "wrote " << g->num_vertices() << " vertices, "
            << g->num_edges() << " edges to " << out << "\n";
  return kExitOk;
}

int CmdConvert(const FlagParser& flags) {
  const StatusOr<Graph> g = LoadAny(flags, flags.GetBool("strict", false));
  if (!g.ok()) return ReportInputError(g.status());
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::cerr << "need --out FILE\n";
    return kExitUsage;
  }
  const Status saved = SaveGraph(*g, out);
  if (!saved.ok()) {
    std::cerr << "error: " << saved.ToString() << "\n";
    return kExitRuntime;
  }
  std::cout << "wrote " << out << "\n";
  return kExitOk;
}

/// Flag values are matched case-insensitively against the canonical names,
/// so `--algorithm hu` and `--algorithm Hu` both work.
bool NameMatches(const std::string& flag, const std::string& canonical) {
  if (flag.size() != canonical.size()) return false;
  for (size_t i = 0; i < flag.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(flag[i])) !=
        std::tolower(static_cast<unsigned char>(canonical[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<DirectionStrategy> ParseDirection(const std::string& name) {
  for (DirectionStrategy s : AllDirectionStrategies()) {
    if (NameMatches(name, ToString(s))) return s;
  }
  std::cerr << "unknown direction '" << name << "'; valid choices:";
  for (DirectionStrategy s : AllDirectionStrategies()) {
    std::cerr << " " << ToString(s);
  }
  std::cerr << "\n";
  return std::nullopt;
}

std::optional<OrderingStrategy> ParseOrdering(const std::string& name) {
  constexpr OrderingStrategy kAll[] = {
      OrderingStrategy::kOriginal, OrderingStrategy::kDegree,
      OrderingStrategy::kAOrder,   OrderingStrategy::kDfs,
      OrderingStrategy::kBfsR,     OrderingStrategy::kSlashBurn,
      OrderingStrategy::kGro,      OrderingStrategy::kBfs,
      OrderingStrategy::kRcm,      OrderingStrategy::kRandom};
  for (OrderingStrategy s : kAll) {
    if (NameMatches(name, ToString(s))) return s;
  }
  std::cerr << "unknown ordering '" << name << "'; valid choices:";
  for (OrderingStrategy s : kAll) std::cerr << " " << ToString(s);
  std::cerr << "\n";
  return std::nullopt;
}

std::optional<TcAlgorithm> ParseAlgorithm(const std::string& name) {
  constexpr TcAlgorithm kAll[] = {
      TcAlgorithm::kGunrockBinarySearch, TcAlgorithm::kGunrockSortMerge,
      TcAlgorithm::kTriCore,             TcAlgorithm::kFox,
      TcAlgorithm::kBisson,              TcAlgorithm::kHu,
      TcAlgorithm::kPolak};
  for (TcAlgorithm a : kAll) {
    if (NameMatches(name, ToString(a))) return a;
  }
  std::cerr << "unknown algorithm '" << name << "'; valid choices:";
  for (TcAlgorithm a : kAll) std::cerr << " " << ToString(a);
  std::cerr << "\n";
  return std::nullopt;
}

/// Strict numeric flag parsing: FlagParser::GetDouble aborts the process on
/// malformed values, but a typo on the command line is a usage error (exit
/// 2), so policy flags are parsed by hand.
std::optional<double> ParseNumericFlag(const FlagParser& flags,
                                       const std::string& name,
                                       double fallback) {
  if (!flags.Has(name)) return fallback;
  const std::string raw = flags.GetString(name, "");
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end == raw.c_str() || *end != '\0') {
    std::cerr << "invalid value for --" << name << ": '" << raw
              << "' (expected a number)\n";
    return std::nullopt;
  }
  return value;
}

// -- preprocessing cache flags ----------------------------------------------

/// The shared `--prep-cache DIR` / `--prep-cache-mb N` knobs (count, batch,
/// serve, cache). Either knob enables the cache: the dir adds the durable
/// tier 2, the MB bound sizes tier 1 (0 with a dir = a default budget).
struct PrepCacheFlags {
  std::string dir;
  int64_t mb = 0;
  bool enabled() const { return mb > 0 || !dir.empty(); }
  int64_t budget_bytes() const {
    return mb > 0 ? mb << 20 : kDefaultPrepCacheBytes;
  }
};

/// Parses the knobs; nullopt = usage error (already reported on stderr).
std::optional<PrepCacheFlags> ParsePrepCacheFlags(const FlagParser& flags) {
  PrepCacheFlags out;
  if (flags.Has("prep-cache")) {
    out.dir = flags.GetString("prep-cache", "");
    // A bare `--prep-cache` parses as the value "true"; the flag needs a
    // directory (use --prep-cache-mb for a memory-only cache).
    if (out.dir.empty() || out.dir == "true") {
      std::cerr << "--prep-cache needs a DIR value\n";
      return std::nullopt;
    }
  }
  const auto mb = ParseNumericFlag(flags, "prep-cache-mb", 0.0);
  if (!mb.has_value()) return std::nullopt;
  if (*mb < 0.0 || *mb > 1024.0 * 1024.0) {
    std::cerr << "--prep-cache-mb must be in [0, 1048576]\n";
    return std::nullopt;
  }
  out.mb = static_cast<int64_t>(*mb);
  return out;
}

// -- observability exports --------------------------------------------------

/// Writes `content` to `path` ("-" streams to stdout). File targets go
/// through the atomic temp -> fsync -> rename writer, so a crash mid-export
/// never leaves a torn trace or metrics file. Exports are best-effort
/// observability, not results: a failure warns (and returns false) but must
/// never change the command's exit code — a full disk should cost the trace
/// file, not the run.
bool WriteTextFile(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::cout << content;
    return true;
  }
  const Status saved = WriteFileAtomic(path, content);
  if (!saved.ok()) {
    std::cerr << "warning: export skipped, cannot write '" << path
              << "': " << saved.ToString() << "\n";
    return false;
  }
  return true;
}

/// Dumps the collected spans as Chrome trace-event JSON (open in
/// chrome://tracing or Perfetto). No-op when --trace-out was not given.
bool ExportTrace(const Tracer& tracer, const std::string& path) {
  if (path.empty()) return true;
  return WriteTextFile(path, tracer.ChromeTraceJson());
}

/// Snapshots the global metrics registry. The extension picks the format:
/// .json gets the JSON exporter, everything else Prometheus text.
bool ExportMetrics(const std::string& path) {
  if (path.empty()) return true;
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  return WriteTextFile(path, json ? MetricsRegistry::Global().Json()
                                  : MetricsRegistry::Global().PrometheusText());
}

/// Exit code for a failed resilient execution: exhausted budgets/deadlines
/// are the documented exit 4; rejected input stays exit 3.
int ExecutorExitCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kResourceExhausted:
      return kExitExhausted;
    case StatusCode::kInvalidArgument:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kDataLoss:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
      return kExitBadInput;
    default:
      return kExitRuntime;
  }
}

int CmdCount(const FlagParser& flags) {
  // Validate flag values before touching the (possibly slow) input load, so
  // usage errors are reported instantly and unambiguously.
  const auto direction =
      ParseDirection(flags.GetString("direction", "A-direction"));
  if (!direction.has_value()) return kExitUsage;
  const auto ordering = ParseOrdering(flags.GetString("ordering", "A-order"));
  if (!ordering.has_value()) return kExitUsage;
  const auto algorithm = ParseAlgorithm(flags.GetString("algorithm", "Hu"));
  if (!algorithm.has_value()) return kExitUsage;

  const auto timeout_ms = ParseNumericFlag(flags, "timeout-ms", 0.0);
  if (!timeout_ms.has_value()) return kExitUsage;
  const auto max_model_ms = ParseNumericFlag(flags, "max-model-ms", 0.0);
  if (!max_model_ms.has_value()) return kExitUsage;
  const auto mem_budget_mb = ParseNumericFlag(flags, "mem-budget-mb", 0.0);
  if (!mem_budget_mb.has_value()) return kExitUsage;
  const auto prep_cache_flags = ParsePrepCacheFlags(flags);
  if (!prep_cache_flags.has_value()) return kExitUsage;

  // The fallback chain defaults to just --algorithm, so runs without
  // --fallback behave exactly as before the executor existed.
  std::vector<FallbackStage> chain = {{/*is_cpu=*/false, *algorithm}};
  if (flags.Has("fallback")) {
    StatusOr<std::vector<FallbackStage>> parsed =
        ParseFallbackChain(flags.GetString("fallback", ""));
    if (!parsed.ok()) {
      std::cerr << parsed.status().message() << "\n";
      return kExitUsage;
    }
    chain = *std::move(parsed);
  }

  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  Tracer tracer;
  const bool tracing = !trace_out.empty();
  uint64_t trace_id = 0;
  Span root;
  if (tracing) {
    trace_id = tracer.NewTraceId();
    root = tracer.StartSpan("gputc.count", trace_id);
  }

  Span load_span =
      tracing ? tracer.StartSpan("load", trace_id, root.id()) : Span();
  const StatusOr<Graph> g = LoadAny(flags, flags.GetBool("strict", false));
  if (!g.ok()) {
    load_span.SetStatus(g.status());
    return ReportInputError(g.status());
  }
  load_span.SetAttr("vertices", static_cast<int64_t>(g->num_vertices()));
  load_span.SetAttr("edges", g->num_edges());
  load_span.Finish();

  PreprocessOptions options;
  options.direction = *direction;
  options.ordering = *ordering;
  const DeviceSpec spec = DeviceSpec::TitanXpLike();

  // A single count only profits from the durable tier (the in-process tier
  // dies with the command), but both knobs work so a count can pre-warm the
  // artifact directory a later batch/serve will read.
  std::unique_ptr<DiskCacheStore> cache_store;
  std::unique_ptr<PrepCache> prep_cache;
  if (prep_cache_flags->enabled()) {
    if (!prep_cache_flags->dir.empty()) {
      cache_store = std::make_unique<DiskCacheStore>(prep_cache_flags->dir);
      const Status dir_ok = cache_store->EnsureDir();
      if (!dir_ok.ok()) return ReportInputError(dir_ok);
    }
    prep_cache = std::make_unique<PrepCache>(prep_cache_flags->budget_bytes(),
                                             cache_store.get());
    options.prep_cache = prep_cache.get();
  }

  ExecutionPolicy policy;
  policy.timeout_ms = *timeout_ms;
  policy.max_model_ms = *max_model_ms;
  policy.mem_budget_bytes =
      static_cast<int64_t>(*mem_budget_mb * 1024.0 * 1024.0);
  if (tracing) {
    policy.tracer = &tracer;
    policy.trace_id = trace_id;
    policy.parent_span = root.id();
  }

  ExecutionTrace trace;
  const StatusOr<ExecutionResult> executed =
      ExecuteResilient(*g, spec, policy, chain, options, &trace);
  // The exports run on failure too: a trace of what went wrong is exactly
  // when observability pays for itself. Best-effort: a failed export warns
  // and the count's own exit code stands.
  root.Finish();
  (void)ExportTrace(tracer, trace_out);
  (void)ExportMetrics(metrics_out);
  if (flags.GetBool("trace", false) && !trace.attempts.empty()) {
    std::cerr << trace.Summary();
  }
  if (!executed.ok()) {
    std::cerr << "error: " << executed.status().ToString() << "\n";
    return ExecutorExitCode(executed.status());
  }
  const RunResult& r = executed->run;
  // Degraded attempts drop A-order, then A-direction; report what actually
  // ran, not what was asked for.
  PreprocessOptions effective = options;
  if (executed->variant != "base") {
    effective.ordering = OrderingStrategy::kOriginal;
  }
  if (executed->variant == "no-adirection") {
    effective.direction = DirectionStrategy::kDegreeBased;
  }
  std::cout << "algorithm:     " << executed->stage;
  if (executed->variant != "base" || trace.attempts.size() > 1) {
    std::cout << " (variant " << executed->variant << ", attempt "
              << trace.attempts.size() << ")";
  }
  std::cout << "\n"
            << "direction:     " << ToString(effective.direction)
            << " (Eq.1 cost " << Fmt(r.preprocess.direction_cost, 0) << ")\n"
            << "ordering:      " << ToString(effective.ordering)
            << " (Eq.3 cost " << Fmt(r.preprocess.ordering_cost, 0) << ")\n"
            << "triangles:     " << FmtCount(r.triangles) << "\n"
            << "preprocess:    " << Fmt(r.preprocess.total_ms, 2)
            << " ms (host)\n"
            << "kernel:        " << Fmt(r.kernel_ms(), 4)
            << " ms (simulated)\n";
  if (flags.GetBool("profile", false)) {
    std::cout << "\n" << FormatKernelReport(r.kernel);
  }
  return kExitOk;
}

int CmdDoctor(const FlagParser& flags) {
  if (!flags.Has("in")) {
    std::cerr << "need --in FILE\n";
    return kExitUsage;
  }
  const std::string path = flags.GetString("in", "");
  StatusOr<EdgeList> list = LoadEdgeList(path);
  if (!list.ok()) return ReportInputError(list.status());

  const GraphDoctor doctor;
  const ValidationReport report = doctor.Examine(*list);
  std::cout << "examined '" << path << "': " << list->num_vertices()
            << " vertices, " << list->num_edges() << " raw edges\n";
  if (report.clean()) {
    std::cout << "no defects found\n";
  } else {
    TablePrinter table({"finding", "count", "repairable", "first instance"});
    for (const Finding& f : report.findings) {
      table.AddRow({FindingKindName(f.kind), FmtCount(f.count),
                    FindingIsRepairable(f.kind) ? "yes" : "no", f.detail});
    }
    table.Print(std::cout);
  }

  if (!flags.GetBool("repair", false)) {
    return report.clean() ? kExitOk : kExitBadInput;
  }

  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::cerr << "--repair needs --out FILE\n";
    return kExitUsage;
  }
  StatusOr<Graph> repaired =
      doctor.BuildGraph(*std::move(list), RepairPolicy::kRepair);
  if (!repaired.ok()) return ReportInputError(repaired.status());
  const Status saved = SaveGraph(*repaired, out);
  if (!saved.ok()) {
    std::cerr << "error: " << saved.ToString() << "\n";
    return kExitRuntime;
  }
  std::cout << "repaired graph written to '" << out << "': "
            << repaired->num_vertices() << " vertices, "
            << repaired->num_edges() << " edges\n";
  return kExitOk;
}

// -- cache ------------------------------------------------------------------

/// `gputc cache stats|purge --prep-cache DIR`: operator tooling for the
/// durable artifact tier. `stats` scans the directory (file count + bytes);
/// `purge` unlinks every artifact. Both are safe against concurrent
/// services: stores are atomic renames, loads verify checksums, and a
/// mid-run purge just turns the next lookups into recomputes.
int CmdCache(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    std::cerr << "need a subcommand: gputc cache stats|purge "
                 "--prep-cache DIR\n";
    return kExitUsage;
  }
  const std::string sub = flags.positional()[1];
  if (sub != "stats" && sub != "purge") {
    std::cerr << "unknown cache subcommand '" << sub
              << "' (expected stats or purge)\n";
    return kExitUsage;
  }
  const std::string dir = flags.GetString("prep-cache", "");
  if (dir.empty() || dir == "true") {
    std::cerr << "need --prep-cache DIR\n";
    return kExitUsage;
  }

  DiskCacheStore store(dir);
  // Probe the directory first so a vanished, non-directory, or unwritable
  // path is one clean diagnostic instead of a per-file error cascade:
  // a flag-shaped mistake (path exists but is not a directory) is a usage
  // error, everything else is an input/IO error.
  const Status dir_ok = store.CheckDir();
  if (!dir_ok.ok()) {
    std::cerr << "error: " << dir_ok.ToString() << "\n";
    return dir_ok.code() == StatusCode::kInvalidArgument ? kExitUsage
                                                         : kExitBadInput;
  }
  if (sub == "stats") {
    const StatusOr<DiskCacheStore::DiskStats> stats = store.ScanStats();
    if (!stats.ok()) return ReportInputError(stats.status());
    std::cout << "directory:  " << dir << "\n"
              << "artifacts:  " << stats->files << "\n"
              << "bytes:      " << stats->bytes << "\n";
    return kExitOk;
  }
  const StatusOr<int64_t> purged = store.PurgeAll();
  if (!purged.ok()) return ReportInputError(purged.status());
  std::cout << "purged " << *purged << " artifact(s) from '" << dir << "'\n";
  return kExitOk;
}

// -- worker (internal) ------------------------------------------------------

/// The `gputc worker` subprocess body: the isolated execution half of
/// `batch --isolate`. Not listed in --help — it is an implementation detail
/// of the supervisor, spawned with its request pipe on --request-fd and its
/// response pipe on --response-fd. The loop reads one framed request at a
/// time, executes it with the same resilient executor the in-process path
/// uses, and writes heartbeats (a periodic tick plus one per executor
/// stage) and finally the result frame back. A clean EOF on the request
/// pipe is the shutdown signal.
int CmdWorker(const FlagParser& flags) {
  const int request_fd = static_cast<int>(flags.GetInt("request-fd", 3));
  const int response_fd = static_cast<int>(flags.GetInt("response-fd", 4));
  const auto beat_interval_ms =
      ParseNumericFlag(flags, "heartbeat-interval-ms", 25.0);
  if (!beat_interval_ms.has_value()) return kExitUsage;

  // The supervisor may vanish (service killed) while this worker writes; an
  // EPIPE error, then the EOF on the next read, is the graceful exit path —
  // not a SIGPIPE death that would read as a crash.
  std::signal(SIGPIPE, SIG_IGN);

  // Heartbeats (beat thread + per-stage hooks) and the result frame share
  // the response pipe; the mutex keeps their frames from interleaving.
  std::mutex write_mu;
  const auto send_beat = [&](const std::string& label) {
    std::lock_guard<std::mutex> lock(write_mu);
    (void)WriteFrame(response_fd, kFrameHeartbeat, label);
  };

  const char* ambient_env = std::getenv("GPUTC_FAILPOINTS");
  const std::string ambient = ambient_env != nullptr ? ambient_env : "";

  // The preprocessing cache outlives individual requests: tier 1 amortizes
  // repeated graphs across this worker's lifetime, and tier 2 (the
  // supervisor's --prep-cache directory, carried on the wire) is shared with
  // every other worker in the pool. Built lazily from the first
  // cache-enabled request; the supervisor never changes the knobs mid-run.
  std::unique_ptr<DiskCacheStore> worker_cache_store;
  std::unique_ptr<PrepCache> worker_prep_cache;

  for (;;) {
    StatusOr<WireFrame> frame = ReadFrame(request_fd);
    if (!frame.ok()) {
      // Clean EOF at a frame boundary = supervisor closed the pipe: done.
      if (frame.status().code() == StatusCode::kFailedPrecondition) {
        return kExitOk;
      }
      std::cerr << "worker: request pipe error: "
                << frame.status().ToString() << "\n";
      return kExitRuntime;
    }
    if (frame->type != kFrameRequest) {
      std::cerr << "worker: unexpected frame type '" << frame->type << "'\n";
      return kExitRuntime;
    }
    StatusOr<WorkerRequest> request = DecodeWorkerRequest(frame->body);
    if (!request.ok()) {
      std::cerr << "worker: " << request.status().ToString() << "\n";
      return kExitRuntime;
    }

    WorkerResult result;
    // Everything in the request block runs with fail points evaluable: the
    // per-request schedule is the supervisor's chaos hook, and its blast
    // radius is exactly this process — the point of isolation.
    {
      FailPointScope scope;
      Status armed = OkStatus();
      if (!request->failpoints.empty()) {
        armed = FailPointRegistry::Instance().ArmFromString(
            request->failpoints);
      }
      // Armed "worker.hang" simulates a wedged worker: heartbeats stop and
      // nothing further happens until the supervisor's watchdog SIGKILLs.
      // (Checked before the beat thread starts, so the silence is total.)
      if (armed.ok() && !CheckFailPoint("worker.hang").ok()) {
        for (;;) {
          std::this_thread::sleep_for(std::chrono::seconds(3600));
        }
      }

      std::atomic<bool> busy{true};
      std::thread beater([&] {
        while (busy.load(std::memory_order_acquire)) {
          send_beat("tick");
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              *beat_interval_ms));
        }
      });

      if (!armed.ok()) {
        const Status bad = armed.WithContext("failpoints override");
        result.code = bad.code();
        result.message = bad.message();
      } else {
        result = [&]() -> WorkerResult {
          WorkerResult r;
          const auto fail = [&r](const Status& status) {
            r.code = status.code();
            r.message = status.message();
            return r;
          };
          StatusOr<std::vector<FallbackStage>> chain =
              ParseFallbackChain(request->chain);
          if (!chain.ok()) {
            return fail(chain.status().WithContext("fallback chain"));
          }
          BatchRequest materialized;
          materialized.id = request->id;
          materialized.source = request->source;
          materialized.kind = request->kind;
          materialized.target = request->target;
          materialized.params = request->params;
          Timer materialize_timer;
          StatusOr<Graph> graph = MaterializeRequest(materialized);
          r.materialize_ms = materialize_timer.ElapsedMillis();
          if (!graph.ok()) {
            return fail(graph.status().WithContext("materializing '" +
                                                   request->source + "'"));
          }
          ExecutionPolicy policy;
          // The worker self-enforces the deadline; the supervisor's SIGKILL
          // (deadline + grace) is only the backstop for a wedged executor.
          policy.timeout_ms = request->timeout_ms;
          policy.on_stage = [&send_beat](const std::string& stage) {
            send_beat(stage);
          };
          PreprocessOptions preprocess;
          if (!request->prep_cache_dir.empty() ||
              request->prep_cache_mb > 0) {
            if (worker_prep_cache == nullptr) {
              if (!request->prep_cache_dir.empty()) {
                worker_cache_store = std::make_unique<DiskCacheStore>(
                    request->prep_cache_dir);
              }
              worker_prep_cache = std::make_unique<PrepCache>(
                  request->prep_cache_mb > 0
                      ? request->prep_cache_mb << 20
                      : kDefaultPrepCacheBytes,
                  worker_cache_store.get());
            }
            preprocess.prep_cache = worker_prep_cache.get();
          }
          ExecutionTrace trace;
          Timer exec_timer;
          StatusOr<ExecutionResult> executed =
              ExecuteResilient(*graph, DeviceSpec::TitanXpLike(), policy,
                               *chain, preprocess, &trace);
          r.exec_ms = exec_timer.ElapsedMillis();
          r.attempts = static_cast<int>(trace.attempts.size());
          for (const AttemptRecord& attempt : trace.attempts) {
            r.trace.push_back(attempt.stage + "/" + attempt.variant + " -> " +
                              (attempt.status.ok()
                                   ? "OK"
                                   : attempt.status.ToString()));
          }
          if (!executed.ok()) return fail(executed.status());
          r.stage = executed->stage;
          r.variant = executed->variant;
          r.triangles = executed->run.triangles;
          return r;
        }();
      }

      busy.store(false, std::memory_order_release);
      beater.join();

      // The result frame passes the "worker.response.torn" site between its
      // two halves (see WriteFrame) — still inside this request's schedule.
      Status written;
      {
        std::lock_guard<std::mutex> lock(write_mu);
        written =
            WriteFrame(response_fd, kFrameResult, EncodeWorkerResult(result));
      }
      if (!written.ok()) {
        std::cerr << "worker: response write failed: " << written.ToString()
                  << "\n";
        return kExitRuntime;
      }
    }
    // Revert to the ambient schedule so one request's fail points (and
    // their hit counters) never leak into the next request on this worker.
    FailPointRegistry::Instance().Reset();
    if (!ambient.empty()) {
      (void)FailPointRegistry::Instance().ArmFromString(ambient);
    }
  }
}

// -- batch ------------------------------------------------------------------

/// Absolute path of the running binary, for re-exec'ing as `gputc worker`.
std::string SelfBinaryPath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return "gputc";  // PATH lookup fallback for exotic /proc-less setups.
}

/// Set by the SIGINT/SIGTERM/SIGHUP handler. Plain signal-safe flag; the
/// actual drain (which takes locks) runs on the watcher thread below.
std::atomic<int> g_batch_signal{0};

void BatchSignalHandler(int sig) {
  g_batch_signal.store(sig, std::memory_order_relaxed);
}

int CmdBatch(const FlagParser& flags) {
  if (!flags.Has("manifest")) {
    std::cerr << "need --manifest FILE\n";
    return kExitUsage;
  }

  const auto jobs = ParseNumericFlag(flags, "jobs", 4.0);
  const auto queue_depth = ParseNumericFlag(flags, "queue-depth", 16.0);
  const auto mem_budget_mb = ParseNumericFlag(flags, "mem-budget-mb", 0.0);
  const auto timeout_ms = ParseNumericFlag(flags, "timeout-ms", 0.0);
  const auto drain_grace_ms = ParseNumericFlag(flags, "drain-grace-ms", 1000.0);
  if (!jobs || !queue_depth || !mem_budget_mb || !timeout_ms ||
      !drain_grace_ms) {
    return kExitUsage;
  }
  if (*jobs < 1.0 || *jobs > 256.0 || *queue_depth < 1.0) {
    std::cerr << "--jobs must be in [1, 256] and --queue-depth >= 1\n";
    return kExitUsage;
  }
  const auto prep_cache_flags = ParsePrepCacheFlags(flags);
  if (!prep_cache_flags.has_value()) return kExitUsage;

  StatusOr<ShedPolicy> shed =
      ParseShedPolicy(flags.GetString("shed-policy", "block"));
  if (!shed.ok()) {
    std::cerr << shed.status().message() << "\n";
    return kExitUsage;
  }

  BatchServiceOptions options;
  options.jobs = static_cast<int>(*jobs);
  options.queue_depth = static_cast<size_t>(*queue_depth);
  options.shed_policy = *shed;
  options.mem_budget_bytes =
      static_cast<int64_t>(*mem_budget_mb * 1024.0 * 1024.0);
  options.request_timeout_ms = *timeout_ms;
  options.drain_grace_ms = *drain_grace_ms;
  if (prep_cache_flags->enabled()) {
    options.prep_cache_mb = prep_cache_flags->mb;
    options.prep_cache_dir = prep_cache_flags->dir;
    if (!prep_cache_flags->dir.empty()) {
      // Fail a bad cache directory up front, not on the first request.
      const Status dir_ok = DiskCacheStore(prep_cache_flags->dir).EnsureDir();
      if (!dir_ok.ok()) return ReportInputError(dir_ok);
    }
  }
  if (flags.Has("fallback")) {
    StatusOr<std::vector<FallbackStage>> parsed =
        ParseFallbackChain(flags.GetString("fallback", ""));
    if (!parsed.ok()) {
      std::cerr << parsed.status().message() << "\n";
      return kExitUsage;
    }
    options.chain = *std::move(parsed);
  }
  if (flags.Has("isolate")) {
    const std::string raw = flags.GetString("isolate", "");
    if (raw == "true") {  // Bare --isolate: pool size follows --jobs.
      options.isolate = static_cast<int>(*jobs);
    } else {
      const auto isolate = ParseNumericFlag(flags, "isolate", 0.0);
      if (!isolate) return kExitUsage;
      if (*isolate < 1.0 || *isolate > 256.0) {
        std::cerr << "--isolate must be in [1, 256]\n";
        return kExitUsage;
      }
      options.isolate = static_cast<int>(*isolate);
    }
    options.worker_binary = SelfBinaryPath();
  }

  StatusOr<std::vector<BatchRequest>> manifest =
      LoadManifest(flags.GetString("manifest", ""));
  if (!manifest.ok()) return ReportInputError(manifest.status());
  if (manifest->empty()) {
    std::cout << "manifest is empty; nothing to do\n";
    return kExitOk;
  }

  // -- durability: open the write-ahead log and fold its replay -------------
  const std::string wal_dir = flags.GetString("wal", "");
  const bool resume = flags.GetBool("resume", false);
  if (resume && wal_dir.empty()) {
    std::cerr << "--resume needs --wal DIR (the log to replay)\n";
    return kExitUsage;
  }
  StoragePolicy wal_policy = StoragePolicy::kStrict;
  if (flags.Has("wal-policy")) {
    if (wal_dir.empty()) {
      std::cerr << "--wal-policy needs --wal DIR (it governs the WAL's "
                   "storage-fault response)\n";
      return kExitUsage;
    }
    const StatusOr<StoragePolicy> parsed =
        ParseStoragePolicy(flags.GetString("wal-policy", "strict"));
    if (!parsed.ok()) {
      std::cerr << parsed.status().message() << "\n";
      return kExitUsage;
    }
    wal_policy = *parsed;
  }
  // Open recovers the segment (verifying every record's CRC and truncating a
  // torn tail); Replay folds the records Open already read, so the log is
  // scanned exactly once no matter how large it has grown.
  std::optional<WriteAheadLog> wal;
  WalReplay replay;
  if (!wal_dir.empty()) {
    StatusOr<WriteAheadLog> opened = WriteAheadLog::Open(wal_dir);
    if (!opened.ok()) {
      std::cerr << "error: " << opened.status().ToString() << "\n";
      return kExitRuntime;
    }
    wal.emplace(*std::move(opened));
    StatusOr<WalReplay> replayed = wal->Replay();
    if (!replayed.ok()) return ReportInputError(replayed.status());
    if (!resume && !replayed->empty()) {
      std::cerr << "error: WAL '" << wal_dir << "' holds "
                << replayed->done.size() << " done and "
                << replayed->pending.size()
                << " pending request(s) from a previous run; pass --resume "
                   "to continue it or remove the directory to start over\n";
      return kExitUsage;
    }
    if (resume) replay = *std::move(replayed);
    // Every run that opens the log stamps its build into it, so a resumed
    // WAL names each version that touched it (replay skips the records).
    const Status stamped = wal->LogVersion(VersionString());
    if (!stamped.ok()) {
      std::cerr << "error: " << stamped.ToString() << "\n";
      return kExitRuntime;
    }
    // Preflight: refuse the manifest up front when the WAL directory's free
    // space cannot plausibly hold its projected WAL + journal bytes —
    // failing at admission beats failing halfway through the batch.
    const Status space = PreflightSpaceCheck(
        wal_dir, EstimateBatchStorageBytes(manifest->size()));
    if (!space.ok()) {
      std::cerr << "error: " << space.ToString() << "\n";
      return kExitStorage;
    }
  }

  // The journal streams as JSONL: one line per finished request, to stdout
  // by default or to --journal FILE. A file journal is rewritten from the
  // WAL on resume, so the final file always holds exactly one line per
  // manifest request; with a WAL each line is also fsynced, keeping the
  // journal no further than one line behind the log.
  const std::string journal_path = flags.GetString("journal", "-");
  std::optional<LineLog> journal_file;
  if (journal_path != "-") {
    StatusOr<LineLog> opened =
        LineLog::OpenTrunc(journal_path, /*fsync_each=*/wal.has_value());
    if (!opened.ok()) {
      std::cerr << "error: " << opened.status().ToString() << "\n";
      return kExitRuntime;
    }
    journal_file.emplace(*std::move(opened));
  }
  // Per-sink storage-fault state. The WAL is the durability backbone and
  // follows --wal-policy; the journal file degrades to stderr mirroring (the
  // operator keeps every line, just not on the dead disk); the health
  // monitor turns each fault into gputc_storage_errors_total{sink,errno}.
  StorageHealthMonitor storage_health;
  std::atomic<bool> journal_degraded{false};
  std::atomic<bool> wal_degraded{false};
  std::atomic<bool> storage_stopped{false};
  const auto emit_line = [&](const std::string& line) {
    if (!journal_file.has_value()) {
      std::cout << line << "\n";
      std::cout.flush();
      return;
    }
    if (!journal_degraded.load(std::memory_order_relaxed)) {
      const Status written = journal_file->WriteLine(line);
      if (written.ok()) return;
      // Warn once, then mirror this and every later line to stderr. Sticky:
      // a failed fsync poisons the fd (fsyncgate), so retrying the file
      // could silently drop the very line it claims to have written.
      journal_degraded.store(true, std::memory_order_relaxed);
      storage_health.RecordError("journal", written);
      storage_health.NoteDegraded("journal", written.ToString());
      std::cerr << "warning: journal degraded to stderr mirroring: "
                << written.ToString() << "\n";
    }
    std::cerr << line << "\n";
  };

  // Replayed terminal outcomes are final (including rejections): emit their
  // stored journal lines verbatim and never resubmit those requests.
  std::set<std::string> replayed_ids;
  int replayed_success = 0;
  int replayed_nonsuccess = 0;
  if (!replay.empty()) {
    std::set<std::string> manifest_ids;
    for (const BatchRequest& request : *manifest) {
      manifest_ids.insert(request.id);
    }
    for (const WalDoneRecord& record : replay.done) {
      if (manifest_ids.count(record.id) == 0) {
        std::cerr << "warning: WAL outcome for '" << record.id
                  << "' is not in this manifest; ignoring it\n";
        continue;
      }
      replayed_ids.insert(record.id);
      // The outcome rides in the WAL record as its own field, so
      // classification never depends on re-parsing the journal JSON.
      if (record.outcome == RequestOutcomeName(RequestOutcome::kOk) ||
          record.outcome == RequestOutcomeName(RequestOutcome::kDegraded)) {
        ++replayed_success;
      } else {
        ++replayed_nonsuccess;
      }
      emit_line(record.line);
    }
    std::cerr << "batch: resumed from WAL '" << wal_dir << "': "
              << replayed_ids.size() << " request(s) replayed verbatim, "
              << replay.pending.size() << " interrupted mid-run, "
              << (manifest->size() - replayed_ids.size()) << " to run\n";
  }

  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  Tracer tracer;
  if (!trace_out.empty()) options.tracer = &tracer;

  BatchService service(options);
  std::mutex journal_stream_mu;
  service.set_on_report([&](const RequestReport& report) {
    std::lock_guard<std::mutex> lock(journal_stream_mu);
    // After a strict fail-stop nothing more is emitted: the journal must
    // hold exactly the WAL-durable prefix, so that --resume re-runs every
    // request past it instead of trusting lines with no WAL cover.
    if (storage_stopped.load(std::memory_order_relaxed)) return;
    RequestReport stamped = report;
    if (wal.has_value()) {
      if (wal_degraded.load(std::memory_order_relaxed)) {
        stamped.durable = false;
      } else {
        // The terminal outcome becomes durable BEFORE the journal line is
        // emitted: a crash in between replays this exact line on --resume
        // instead of re-running (and re-counting) the request.
        const std::string line = report.ToJson();
        const Status logged =
            wal->LogDone(report.id, RequestOutcomeName(report.outcome), line);
        if (!logged.ok()) {
          storage_health.RecordError("wal", logged);
          std::cerr << "error: " << logged.ToString() << "\n";
          if (wal_policy == StoragePolicy::kStrict) {
            // Fail-stop: this outcome never became durable, so it is not
            // journaled either. Stop admitting, let in-flight work drain.
            storage_stopped.store(true, std::memory_order_relaxed);
            storage_health.RecordStrictStop(logged.ToString());
            service.RequestDrain("storage: WAL done append failed");
            return;
          }
          // Degrade: keep serving; this line and every later one carries
          // "durable":false — a crash from here may re-run those requests.
          wal_degraded.store(true, std::memory_order_relaxed);
          storage_health.NoteDegraded("wal", logged.ToString());
          std::cerr << "warning: WAL degraded (--wal-policy degrade): "
                       "journal lines now carry \"durable\":false\n";
          stamped.durable = false;
        }
      }
    }
    {
      // Crash-injection site for the harness: between WAL commit and journal
      // emit (the window the verbatim replay exists for). Error codes armed
      // here are no-ops — emission has no error path to inject into.
      FailPointScope scope;
      (void)CheckFailPoint("service.journal");
    }
    emit_line(stamped.ToJson());
  });

  // SIGINT/SIGTERM/SIGHUP request a graceful drain (HUP because a batch
  // driven from a terminal should survive losing it no less gracefully than
  // a ^C). The handler only sets a flag; a watcher thread polls it and calls
  // RequestDrain, which needs locks the handler must not take. With
  // --isolate the drain also reaps every live worker subprocess.
  g_batch_signal.store(0, std::memory_order_relaxed);
  auto prev_int = std::signal(SIGINT, BatchSignalHandler);
  auto prev_term = std::signal(SIGTERM, BatchSignalHandler);
  auto prev_hup = std::signal(SIGHUP, BatchSignalHandler);
  std::atomic<bool> watcher_stop{false};
  std::thread watcher([&service, &watcher_stop] {
    while (!watcher_stop.load(std::memory_order_acquire)) {
      const int sig = g_batch_signal.load(std::memory_order_relaxed);
      if (sig != 0) {
        service.RequestDrain(sig == SIGINT   ? "SIGINT"
                             : sig == SIGHUP ? "SIGHUP"
                                             : "SIGTERM");
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  service.Start();
  for (BatchRequest& request : *manifest) {
    if (replayed_ids.count(request.id) > 0) continue;  // Already journaled.
    // A strict fail-stop (from this loop or a worker's done-append) closes
    // admission: everything not yet submitted waits for --resume.
    if (storage_stopped.load(std::memory_order_relaxed)) break;
    if (wal.has_value() && !wal_degraded.load(std::memory_order_relaxed)) {
      // Intent is durable before the request enters the queue, so a crash
      // mid-execution re-admits it on --resume instead of losing it.
      const Status intent = wal->LogIntent(request.id);
      if (!intent.ok()) {
        std::cerr << "error: " << intent.ToString() << "\n";
        storage_health.RecordError("wal", intent);
        if (wal_policy == StoragePolicy::kStrict) {
          storage_stopped.store(true, std::memory_order_relaxed);
          storage_health.RecordStrictStop(intent.ToString());
          service.RequestDrain("storage: WAL intent append failed");
          break;
        }
        // Degrade: admit without the durable intent — a crash loses the
        // request from the log, which is exactly the cover this policy
        // trades away. Journal lines say so via "durable":false.
        wal_degraded.store(true, std::memory_order_relaxed);
        storage_health.NoteDegraded("wal", intent.ToString());
        std::cerr << "warning: WAL degraded (--wal-policy degrade): "
                     "admitting without durable intents\n";
      }
    }
    service.Submit(std::move(request));
  }
  BatchSummary summary = service.Finish();

  watcher_stop.store(true, std::memory_order_release);
  watcher.join();
  std::signal(SIGINT, prev_int);
  std::signal(SIGTERM, prev_term);
  std::signal(SIGHUP, prev_hup);

  // Best-effort exports: a disk too sick to take the trace file must not
  // turn a batch whose journal is complete into a failure.
  (void)ExportTrace(tracer, trace_out);
  (void)ExportMetrics(metrics_out);

  // Human-readable recap on stderr so a journal piped from stdout stays pure.
  std::cerr << "batch: " << summary.reports.size() << " requests — "
            << summary.CountOutcome(RequestOutcome::kOk) << " ok, "
            << summary.CountOutcome(RequestOutcome::kDegraded)
            << " degraded, "
            << summary.CountOutcome(RequestOutcome::kRejected)
            << " rejected, " << summary.CountOutcome(RequestOutcome::kFailed)
            << " failed";
  if (!replayed_ids.empty()) {
    std::cerr << " (+" << replayed_ids.size() << " replayed from WAL)";
  }
  std::cerr << "\n";
  if (summary.drained) {
    std::cerr << "batch: drained early (" << summary.drain_reason << ")\n";
  }
  for (const std::string& backend : service.breakers().BackendNames()) {
    const CircuitBreaker& breaker = service.breakers().ForBackend(backend);
    if (breaker.state() != CircuitBreaker::State::kClosed) {
      std::cerr << "batch: breaker '" << backend << "' is "
                << BreakerStateName(breaker.state()) << "\n";
    }
  }

  if (storage_stopped.load(std::memory_order_relaxed)) {
    // Strict fail-stop: un-journaled requests are exactly the ones with no
    // durable outcome, so the accounting check below would (correctly)
    // refuse — report the dedicated code and the recovery path instead.
    std::cerr << "batch: storage fail-stop ("
              << storage_health.strict_stop_reason()
              << "); the journal holds exactly the durable prefix — free "
                 "space, then re-run with --wal " << wal_dir
              << " --resume to finish the manifest\n";
    return kExitStorage;
  }
  if (replayed_ids.size() + summary.reports.size() != manifest->size()) {
    // Accounting invariant: every manifest request journals exactly once —
    // either replayed verbatim from the WAL or freshly reported.
    std::cerr << "error: journal incomplete ("
              << replayed_ids.size() + summary.reports.size() << " of "
              << manifest->size() << " requests)\n";
    return kExitRuntime;
  }
  const int success = replayed_success +
                      summary.CountOutcome(RequestOutcome::kOk) +
                      summary.CountOutcome(RequestOutcome::kDegraded);
  const int nonsuccess = replayed_nonsuccess +
                         summary.CountOutcome(RequestOutcome::kRejected) +
                         summary.CountOutcome(RequestOutcome::kFailed);
  if (nonsuccess == 0) return kExitOk;
  if (success == 0) return kExitExhausted;
  return kExitPartial;
}

// -- serve ------------------------------------------------------------------

int CmdServe(const FlagParser& flags) {
  if (!flags.Has("listen")) {
    std::cerr << "need --listen HOST:PORT or unix:PATH\n";
    return kExitUsage;
  }
  StatusOr<ListenSpec> listen =
      ParseListenSpec(flags.GetString("listen", ""));
  if (!listen.ok()) {
    std::cerr << listen.status().message() << "\n";
    return kExitUsage;
  }

  const auto jobs = ParseNumericFlag(flags, "jobs", 4.0);
  const auto queue_depth = ParseNumericFlag(flags, "queue-depth", 16.0);
  const auto mem_budget_mb = ParseNumericFlag(flags, "mem-budget-mb", 0.0);
  const auto timeout_ms = ParseNumericFlag(flags, "timeout-ms", 0.0);
  const auto drain_grace_ms =
      ParseNumericFlag(flags, "drain-grace-ms", 2000.0);
  const auto max_connections =
      ParseNumericFlag(flags, "max-connections", 64.0);
  const auto max_line_bytes =
      ParseNumericFlag(flags, "max-line-bytes", 65536.0);
  const auto idle_timeout_ms =
      ParseNumericFlag(flags, "idle-timeout-ms", 30000.0);
  const auto io_timeout_ms = ParseNumericFlag(flags, "io-timeout-ms", 10000.0);
  const auto target_p99_ms = ParseNumericFlag(flags, "target-p99-ms", 1000.0);
  const auto max_inflight = ParseNumericFlag(flags, "max-inflight", 0.0);
  if (!jobs || !queue_depth || !mem_budget_mb || !timeout_ms ||
      !drain_grace_ms || !max_connections || !max_line_bytes ||
      !idle_timeout_ms || !io_timeout_ms || !target_p99_ms || !max_inflight) {
    return kExitUsage;
  }
  if (*jobs < 1.0 || *jobs > 256.0 || *queue_depth < 1.0 ||
      *max_connections < 1.0 || *max_line_bytes < 64.0) {
    std::cerr << "--jobs must be in [1, 256], --queue-depth >= 1, "
                 "--max-connections >= 1, --max-line-bytes >= 64\n";
    return kExitUsage;
  }
  const auto prep_cache_flags = ParsePrepCacheFlags(flags);
  if (!prep_cache_flags.has_value()) return kExitUsage;

  ServerOptions options;
  options.listen = *listen;
  if (flags.Has("health")) {
    StatusOr<ListenSpec> health =
        ParseListenSpec(flags.GetString("health", ""));
    if (!health.ok()) {
      std::cerr << health.status().message() << "\n";
      return kExitUsage;
    }
    options.has_health = true;
    options.health = *health;
  }
  options.max_connections = static_cast<size_t>(*max_connections);
  options.max_line_bytes = static_cast<size_t>(*max_line_bytes);
  options.idle_timeout_ms = *idle_timeout_ms;
  options.io_timeout_ms = *io_timeout_ms;
  options.drain_grace_ms = *drain_grace_ms;

  options.batch.jobs = static_cast<int>(*jobs);
  options.batch.queue_depth = static_cast<size_t>(*queue_depth);
  options.batch.mem_budget_bytes =
      static_cast<int64_t>(*mem_budget_mb * 1024.0 * 1024.0);
  options.batch.request_timeout_ms = *timeout_ms;
  options.batch.drain_grace_ms = *drain_grace_ms;
  // Service-side sheds (memory gate, queue races) carry the static target
  // as their backoff hint; the server's own gates use the live p99.
  options.batch.reject_retry_after_ms = *target_p99_ms;
  if (prep_cache_flags->enabled()) {
    options.batch.prep_cache_mb = prep_cache_flags->mb;
    options.batch.prep_cache_dir = prep_cache_flags->dir;
    if (!prep_cache_flags->dir.empty()) {
      const Status dir_ok = DiskCacheStore(prep_cache_flags->dir).EnsureDir();
      if (!dir_ok.ok()) return ReportInputError(dir_ok);
    }
  }
  if (flags.Has("fallback")) {
    StatusOr<std::vector<FallbackStage>> parsed =
        ParseFallbackChain(flags.GetString("fallback", ""));
    if (!parsed.ok()) {
      std::cerr << parsed.status().message() << "\n";
      return kExitUsage;
    }
    options.batch.chain = *std::move(parsed);
  }
  if (flags.Has("isolate")) {
    const std::string raw = flags.GetString("isolate", "");
    if (raw == "true") {
      options.batch.isolate = static_cast<int>(*jobs);
    } else {
      const auto isolate = ParseNumericFlag(flags, "isolate", 0.0);
      if (!isolate) return kExitUsage;
      if (*isolate < 1.0 || *isolate > 256.0) {
        std::cerr << "--isolate must be in [1, 256]\n";
        return kExitUsage;
      }
      options.batch.isolate = static_cast<int>(*isolate);
    }
    options.batch.worker_binary = SelfBinaryPath();
  }

  options.limiter.target_ms = *target_p99_ms;
  options.limiter.max_limit =
      *max_inflight >= 1.0 ? static_cast<int>(*max_inflight)
                           : static_cast<int>(*queue_depth);
  options.limiter.initial_limit =
      std::min(options.limiter.max_limit,
               std::max(1, static_cast<int>(*jobs)));

  // -- durability: same WAL contract as batch, specs stored with intents ----
  const std::string wal_dir = flags.GetString("wal", "");
  const bool resume = flags.GetBool("resume", false);
  if (resume && wal_dir.empty()) {
    std::cerr << "--resume needs --wal DIR (the log to replay)\n";
    return kExitUsage;
  }
  StoragePolicy wal_policy = StoragePolicy::kStrict;
  if (flags.Has("wal-policy")) {
    if (wal_dir.empty()) {
      std::cerr << "--wal-policy needs --wal DIR (it governs the WAL's "
                   "storage-fault response)\n";
      return kExitUsage;
    }
    const StatusOr<StoragePolicy> parsed =
        ParseStoragePolicy(flags.GetString("wal-policy", "strict"));
    if (!parsed.ok()) {
      std::cerr << parsed.status().message() << "\n";
      return kExitUsage;
    }
    wal_policy = *parsed;
  }
  std::optional<WriteAheadLog> wal;
  WalReplay replay;
  if (!wal_dir.empty()) {
    StatusOr<WriteAheadLog> opened = WriteAheadLog::Open(wal_dir);
    if (!opened.ok()) {
      std::cerr << "error: " << opened.status().ToString() << "\n";
      return kExitRuntime;
    }
    wal.emplace(*std::move(opened));
    StatusOr<WalReplay> replayed = wal->Replay();
    if (!replayed.ok()) return ReportInputError(replayed.status());
    if (!resume && !replayed->empty()) {
      std::cerr << "error: WAL '" << wal_dir << "' holds "
                << replayed->done.size() << " done and "
                << replayed->pending.size()
                << " pending request(s) from a previous run; pass --resume "
                   "to continue it or remove the directory to start over\n";
      return kExitUsage;
    }
    // Each Open appends a version record, so the count of prior records is
    // a monotone per-run epoch. Folding it into generated request ids keeps
    // them unique across crash/resume cycles — a resumed run's new ids can
    // never collide with WAL-recovered pending ids from an earlier run.
    options.run_epoch = replayed->versions.size();
    if (resume) replay = *std::move(replayed);
    const Status stamped = wal->LogVersion(VersionString());
    if (!stamped.ok()) {
      std::cerr << "error: " << stamped.ToString() << "\n";
      return kExitRuntime;
    }
  }

  const std::string journal_path = flags.GetString("journal", "-");
  std::optional<LineLog> journal_file;
  if (journal_path != "-") {
    StatusOr<LineLog> opened =
        LineLog::OpenTrunc(journal_path, /*fsync_each=*/wal.has_value());
    if (!opened.ok()) {
      std::cerr << "error: " << opened.status().ToString() << "\n";
      return kExitRuntime;
    }
    journal_file.emplace(*std::move(opened));
  }
  // Disk-health view for the daemon: the poll loop probes the WAL directory
  // (or the journal's directory when there is no WAL) every tick — statvfs
  // watermarks plus a small probe write — and every sink reports its faults
  // here. /readyz flips to 503 "storage-degraded" on a strict-WAL stop and
  // carries an "X-Gputc-Storage: degraded" header while any sink is benched.
  StorageHealthMonitor::Options health_options;
  if (!wal_dir.empty()) {
    health_options.probe_dir = wal_dir;
  } else if (journal_path != "-") {
    const size_t slash = journal_path.find_last_of('/');
    health_options.probe_dir =
        slash == std::string::npos ? "." : journal_path.substr(0, slash);
  }
  StorageHealthMonitor storage_health(health_options);
  options.storage = &storage_health;
  std::atomic<bool> journal_degraded{false};
  std::atomic<bool> wal_degraded{false};
  std::atomic<bool> storage_stopped{false};
  const auto emit_line = [&](const std::string& line) {
    if (!journal_file.has_value()) {
      std::cout << line << "\n";
      std::cout.flush();
      return;
    }
    if (!journal_degraded.load(std::memory_order_relaxed)) {
      const Status written = journal_file->WriteLine(line);
      if (written.ok()) return;
      // Warn once, then mirror to stderr — the journal is the operator's
      // record, not the durability backbone, so its disk dying must not
      // take the daemon down. Sticky: a failed fsync poisons the fd.
      journal_degraded.store(true, std::memory_order_relaxed);
      storage_health.RecordError("journal", written);
      storage_health.NoteDegraded("journal", written.ToString());
      std::cerr << "warning: journal degraded to stderr mirroring: "
                << written.ToString() << "\n";
    }
    std::cerr << line << "\n";
  };
  // The serve journal is a new surface, so it self-identifies: its first
  // line names the build (batch journals stay line-per-request for the
  // existing accounting contract).
  emit_line("{\"version\":\"" + VersionString() + "\"}");

  // Replayed terminal outcomes re-emit verbatim, exactly as batch --resume.
  for (const WalDoneRecord& record : replay.done) {
    emit_line(record.line);
  }

  // The hooks below outlive options (the server copies them); server_ptr is
  // bound right after construction, before any request can reach a hook.
  Server* server_ptr = nullptr;
  if (wal.has_value()) {
    options.on_intent = [&](const std::string& id,
                            const std::string& line) -> Status {
      if (wal_degraded.load(std::memory_order_relaxed)) {
        return OkStatus();  // Degraded WAL: admit without the intent.
      }
      const Status logged = wal->LogIntent(id, line);
      if (logged.ok()) return OkStatus();
      storage_health.RecordError("wal", logged);
      if (wal_policy == StoragePolicy::kStrict) {
        // Returning the error fails this request, and the server starts
        // its drain ladder — a daemon that cannot log intents must stop
        // taking work. The exit code becomes 6 below.
        storage_stopped.store(true, std::memory_order_relaxed);
        storage_health.RecordStrictStop(logged.ToString());
        return logged;
      }
      wal_degraded.store(true, std::memory_order_relaxed);
      storage_health.NoteDegraded("wal", logged.ToString());
      std::cerr << "warning: WAL degraded (--wal-policy degrade): admitting "
                   "without durable intents; journal lines now carry "
                   "\"durable\":false\n";
      return OkStatus();
    };
  }
  options.on_report = [&](const RequestReport& report) {
    // Strict fail-stop already fired: suppress emission so the journal
    // stays exactly the durable prefix (the WAL re-runs these on --resume).
    if (storage_stopped.load(std::memory_order_relaxed)) return;
    RequestReport stamped = report;
    if (wal.has_value()) {
      if (wal_degraded.load(std::memory_order_relaxed)) {
        stamped.durable = false;
      } else {
        const std::string line = report.ToJson();
        const Status logged =
            wal->LogDone(report.id, RequestOutcomeName(report.outcome), line);
        if (!logged.ok()) {
          storage_health.RecordError("wal", logged);
          std::cerr << "error: " << logged.ToString() << "\n";
          if (wal_policy == StoragePolicy::kStrict) {
            storage_stopped.store(true, std::memory_order_relaxed);
            storage_health.RecordStrictStop(logged.ToString());
            if (server_ptr != nullptr) {
              server_ptr->RequestShutdown("storage: WAL done append failed");
            }
            return;
          }
          wal_degraded.store(true, std::memory_order_relaxed);
          storage_health.NoteDegraded("wal", logged.ToString());
          std::cerr << "warning: WAL degraded (--wal-policy degrade): "
                       "journal lines now carry \"durable\":false\n";
          stamped.durable = false;
        }
      }
    }
    {
      // Same chaos window as batch: between WAL commit and journal emit.
      FailPointScope scope;
      (void)CheckFailPoint("service.journal");
    }
    emit_line(stamped.ToJson());
  };

  Server server(std::move(options));
  server_ptr = &server;
  const Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "error: " << started.ToString() << "\n";
    return kExitRuntime;
  }

  // Interrupted requests from the WAL re-enter through the service; their
  // original clients are gone, so their outcomes land in the journal only.
  // Two passes: every un-re-admittable intent resolves (WAL done + journal
  // line) BEFORE the first submission — once a recovered request is in
  // flight, its report may arrive on a service thread, and journal emission
  // from this thread would race the journal-lock-serialized on_report path.
  int recovered = 0;
  std::vector<std::pair<std::string, std::string>> readmittable;
  for (const std::string& id : replay.pending) {
    const auto spec = replay.pending_specs.find(id);
    Status admissible =
        spec == replay.pending_specs.end()
            ? FailedPreconditionError(
                  "WAL intent carries no request spec (written by a "
                  "pre-serve build?); cannot re-admit")
            : server.ValidateRecovered(id, spec->second);
    if (admissible.ok()) {
      readmittable.emplace_back(id, spec->second);
      continue;
    }
    // Un-re-admittable work still resolves exactly once: a terminal
    // rejection, WAL-committed then journaled like any other outcome.
    RequestReport report;
    report.id = id;
    report.outcome = RequestOutcome::kRejected;
    report.status = std::move(admissible);
    report.trace_id = GenerateTraceId();
    if (wal.has_value() && !wal_degraded.load(std::memory_order_relaxed)) {
      const Status logged = wal->LogDone(
          id, RequestOutcomeName(report.outcome), report.ToJson());
      if (!logged.ok()) {
        storage_health.RecordError("wal", logged);
        std::cerr << "error: " << logged.ToString() << "\n";
        if (wal_policy == StoragePolicy::kStrict) {
          // The disk died before the daemon took its first request: start
          // the drain ladder now, Run() below exits straight into code 6.
          storage_stopped.store(true, std::memory_order_relaxed);
          storage_health.RecordStrictStop(logged.ToString());
          server.RequestShutdown("storage: WAL done append failed");
          break;
        }
        wal_degraded.store(true, std::memory_order_relaxed);
        storage_health.NoteDegraded("wal", logged.ToString());
        std::cerr << "warning: WAL degraded (--wal-policy degrade): "
                     "journal lines now carry \"durable\":false\n";
      }
    }
    if (wal.has_value() && wal_degraded.load(std::memory_order_relaxed)) {
      report.durable = false;
    }
    emit_line(report.ToJson());
  }
  for (const auto& [id, line] : readmittable) {
    if (storage_stopped.load(std::memory_order_relaxed)) break;
    const Status admitted = server.SubmitRecovered(id, line);
    if (admitted.ok()) {
      ++recovered;
      continue;
    }
    // Validated above, so only a duplicate id could land here. No journal
    // line (that would race on_report now): the intent simply stays pending
    // and the next --resume retries it.
    std::cerr << "serve: could not re-admit WAL intent '" << id
              << "': " << admitted.ToString() << "\n";
  }
  if (!replay.empty()) {
    std::cerr << "serve: resumed from WAL '" << wal_dir << "': "
              << replay.done.size() << " outcome(s) replayed verbatim, "
              << recovered << " interrupted request(s) re-admitted\n";
  }

  g_batch_signal.store(0, std::memory_order_relaxed);
  // Client departures surface as EPIPE statuses (Connection uses
  // MSG_NOSIGNAL), but belt-and-braces: no write anywhere in the daemon may
  // become a SIGPIPE death.
  std::signal(SIGPIPE, SIG_IGN);
  auto prev_int = std::signal(SIGINT, BatchSignalHandler);
  auto prev_term = std::signal(SIGTERM, BatchSignalHandler);
  auto prev_hup = std::signal(SIGHUP, BatchSignalHandler);
  std::atomic<bool> watcher_stop{false};
  std::thread watcher([&server, &watcher_stop] {
    while (!watcher_stop.load(std::memory_order_acquire)) {
      const int sig = g_batch_signal.load(std::memory_order_relaxed);
      if (sig != 0) {
        server.RequestShutdown(sig == SIGINT   ? "SIGINT"
                               : sig == SIGHUP ? "SIGHUP"
                                               : "SIGTERM");
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // Startup banner on stderr (stdout may BE the journal). Tests parse the
  // resolved port out of this line, so --listen 127.0.0.1:0 is usable.
  const std::string display =
      listen->is_unix
          ? listen->ToString()
          : listen->host + ":" + std::to_string(server.listen_port());
  std::cerr << VersionString() << "\n";
  std::cerr << "serve: listening on " << display;
  if (flags.Has("health")) {
    std::cerr << " (health on " << flags.GetString("health", "") << ")";
  }
  std::cerr << "\n";

  ServerSummary summary = server.Run();

  watcher_stop.store(true, std::memory_order_release);
  watcher.join();
  std::signal(SIGINT, prev_int);
  std::signal(SIGTERM, prev_term);
  std::signal(SIGHUP, prev_hup);

  std::cerr << "serve: drained (" << summary.drain_reason << "): "
            << summary.connections_accepted << " connection(s), "
            << summary.requests_received << " request(s), "
            << summary.responses_sent << " response(s) delivered, "
            << summary.overload_rejections << " overload rejection(s), "
            << summary.protocol_errors << " protocol error(s); journal has "
            << summary.batch.reports.size() << " service outcome(s)\n";

  if (storage_stopped.load(std::memory_order_relaxed)) {
    std::cerr << "serve: storage fail-stop ("
              << storage_health.strict_stop_reason()
              << "); the journal holds exactly the durable prefix — free "
                 "space, then restart with --wal " << wal_dir
              << " --resume\n";
    return kExitStorage;
  }
  // A daemon's request outcomes are the journal's business; a clean drain
  // is a successful run.
  return kExitOk;
}

int CmdVersion() {
  std::cout << VersionString() << "\n";
  return kExitOk;
}

/// Smoke path for the exporters: fills a self-contained registry with one
/// metric of each kind and prints the snapshot, so `gputc metrics-dump |
/// promtool check metrics` (or a JSON parser) can validate the formats
/// without running a count.
int CmdMetricsDump(const FlagParser& flags) {
  MetricsRegistry registry;
  Counter& runs = registry.GetCounter("gputc_demo_runs_total",
                                      "Demo counter exercising the exporter",
                                      {{"kind", "smoke"}});
  runs.Increment();
  runs.Increment(41);
  registry
      .GetGauge("gputc_demo_inflight", "Demo gauge exercising the exporter")
      .Set(3.5);
  HistogramMetric& latency = registry.GetHistogram(
      "gputc_demo_latency_ms", "Demo histogram exercising the exporter", 0.0,
      100.0, 10);
  for (int i = 0; i < 10; ++i) latency.Observe(10.5 * i);
  std::cout << (flags.GetBool("json", false) ? registry.Json()
                                             : registry.PrometheusText());
  return kExitOk;
}

int CmdCalibrate() {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const CalibrationResult r = CalibrateResourceModel(spec);
  TablePrinter table({"list length", "BW (B/cycle)", "p_c", "F_c", "F_m"});
  for (const CalibrationSample& s : r.samples) {
    table.AddRow({FmtCount(s.list_length), Fmt(s.bandwidth, 1), Fmt(s.p_c, 1),
                  Fmt(s.compute_intensity, 4), Fmt(s.memory_intensity, 3)});
  }
  table.Print(std::cout);
  std::cout << "lambda = " << Fmt(r.lambda, 3)
            << "   (figure-9 fit: slope " << Fmt(r.fit.slope, 3)
            << ", r^2 " << Fmt(r.fit.r_squared, 3) << ")\n";
  return kExitOk;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("version", false)) return CmdVersion();
  if (flags.positional().empty()) return Usage();
  const std::string command = flags.positional()[0];
  if (command == "datasets") return CmdDatasets();
  if (command == "info") return CmdInfo(flags);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "convert") return CmdConvert(flags);
  if (command == "count") return CmdCount(flags);
  if (command == "doctor") return CmdDoctor(flags);
  if (command == "batch") return CmdBatch(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "cache") return CmdCache(flags);
  if (command == "worker") return CmdWorker(flags);
  if (command == "version") return CmdVersion();
  if (command == "metrics-dump") return CmdMetricsDump(flags);
  if (command == "calibrate") return CmdCalibrate();
  std::cerr << "unknown command '" << command << "'\n";
  return Usage();
}

}  // namespace
}  // namespace gputc

int main(int argc, char** argv) { return gputc::Main(argc, argv); }
