file(REMOVE_RECURSE
  "libtc_order.a"
)
