# Empty dependencies file for tc_order.
# This may be replaced when dependencies are built.
