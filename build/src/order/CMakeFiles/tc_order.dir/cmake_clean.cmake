file(REMOVE_RECURSE
  "CMakeFiles/tc_order.dir/aorder.cc.o"
  "CMakeFiles/tc_order.dir/aorder.cc.o.d"
  "CMakeFiles/tc_order.dir/calibration.cc.o"
  "CMakeFiles/tc_order.dir/calibration.cc.o.d"
  "CMakeFiles/tc_order.dir/classic_orders.cc.o"
  "CMakeFiles/tc_order.dir/classic_orders.cc.o.d"
  "CMakeFiles/tc_order.dir/ordering.cc.o"
  "CMakeFiles/tc_order.dir/ordering.cc.o.d"
  "CMakeFiles/tc_order.dir/resource_model.cc.o"
  "CMakeFiles/tc_order.dir/resource_model.cc.o.d"
  "libtc_order.a"
  "libtc_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
