
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/order/aorder.cc" "src/order/CMakeFiles/tc_order.dir/aorder.cc.o" "gcc" "src/order/CMakeFiles/tc_order.dir/aorder.cc.o.d"
  "/root/repo/src/order/calibration.cc" "src/order/CMakeFiles/tc_order.dir/calibration.cc.o" "gcc" "src/order/CMakeFiles/tc_order.dir/calibration.cc.o.d"
  "/root/repo/src/order/classic_orders.cc" "src/order/CMakeFiles/tc_order.dir/classic_orders.cc.o" "gcc" "src/order/CMakeFiles/tc_order.dir/classic_orders.cc.o.d"
  "/root/repo/src/order/ordering.cc" "src/order/CMakeFiles/tc_order.dir/ordering.cc.o" "gcc" "src/order/CMakeFiles/tc_order.dir/ordering.cc.o.d"
  "/root/repo/src/order/resource_model.cc" "src/order/CMakeFiles/tc_order.dir/resource_model.cc.o" "gcc" "src/order/CMakeFiles/tc_order.dir/resource_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
