
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/datasets.cc" "src/graph/CMakeFiles/tc_graph.dir/datasets.cc.o" "gcc" "src/graph/CMakeFiles/tc_graph.dir/datasets.cc.o.d"
  "/root/repo/src/graph/directed_graph.cc" "src/graph/CMakeFiles/tc_graph.dir/directed_graph.cc.o" "gcc" "src/graph/CMakeFiles/tc_graph.dir/directed_graph.cc.o.d"
  "/root/repo/src/graph/edge_list.cc" "src/graph/CMakeFiles/tc_graph.dir/edge_list.cc.o" "gcc" "src/graph/CMakeFiles/tc_graph.dir/edge_list.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/tc_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/tc_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/tc_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/tc_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/graph/CMakeFiles/tc_graph.dir/graph_stats.cc.o" "gcc" "src/graph/CMakeFiles/tc_graph.dir/graph_stats.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/tc_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/tc_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/permutation.cc" "src/graph/CMakeFiles/tc_graph.dir/permutation.cc.o" "gcc" "src/graph/CMakeFiles/tc_graph.dir/permutation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
