file(REMOVE_RECURSE
  "CMakeFiles/tc_graph.dir/datasets.cc.o"
  "CMakeFiles/tc_graph.dir/datasets.cc.o.d"
  "CMakeFiles/tc_graph.dir/directed_graph.cc.o"
  "CMakeFiles/tc_graph.dir/directed_graph.cc.o.d"
  "CMakeFiles/tc_graph.dir/edge_list.cc.o"
  "CMakeFiles/tc_graph.dir/edge_list.cc.o.d"
  "CMakeFiles/tc_graph.dir/generators.cc.o"
  "CMakeFiles/tc_graph.dir/generators.cc.o.d"
  "CMakeFiles/tc_graph.dir/graph.cc.o"
  "CMakeFiles/tc_graph.dir/graph.cc.o.d"
  "CMakeFiles/tc_graph.dir/graph_stats.cc.o"
  "CMakeFiles/tc_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/tc_graph.dir/io.cc.o"
  "CMakeFiles/tc_graph.dir/io.cc.o.d"
  "CMakeFiles/tc_graph.dir/permutation.cc.o"
  "CMakeFiles/tc_graph.dir/permutation.cc.o.d"
  "libtc_graph.a"
  "libtc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
