file(REMOVE_RECURSE
  "libtc_direction.a"
)
