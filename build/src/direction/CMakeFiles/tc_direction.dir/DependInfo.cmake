
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/direction/approx_ratio.cc" "src/direction/CMakeFiles/tc_direction.dir/approx_ratio.cc.o" "gcc" "src/direction/CMakeFiles/tc_direction.dir/approx_ratio.cc.o.d"
  "/root/repo/src/direction/brute_force.cc" "src/direction/CMakeFiles/tc_direction.dir/brute_force.cc.o" "gcc" "src/direction/CMakeFiles/tc_direction.dir/brute_force.cc.o.d"
  "/root/repo/src/direction/cost_model.cc" "src/direction/CMakeFiles/tc_direction.dir/cost_model.cc.o" "gcc" "src/direction/CMakeFiles/tc_direction.dir/cost_model.cc.o.d"
  "/root/repo/src/direction/direction.cc" "src/direction/CMakeFiles/tc_direction.dir/direction.cc.o" "gcc" "src/direction/CMakeFiles/tc_direction.dir/direction.cc.o.d"
  "/root/repo/src/direction/peeling.cc" "src/direction/CMakeFiles/tc_direction.dir/peeling.cc.o" "gcc" "src/direction/CMakeFiles/tc_direction.dir/peeling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
