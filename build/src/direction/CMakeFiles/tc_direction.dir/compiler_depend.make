# Empty compiler generated dependencies file for tc_direction.
# This may be replaced when dependencies are built.
