file(REMOVE_RECURSE
  "CMakeFiles/tc_direction.dir/approx_ratio.cc.o"
  "CMakeFiles/tc_direction.dir/approx_ratio.cc.o.d"
  "CMakeFiles/tc_direction.dir/brute_force.cc.o"
  "CMakeFiles/tc_direction.dir/brute_force.cc.o.d"
  "CMakeFiles/tc_direction.dir/cost_model.cc.o"
  "CMakeFiles/tc_direction.dir/cost_model.cc.o.d"
  "CMakeFiles/tc_direction.dir/direction.cc.o"
  "CMakeFiles/tc_direction.dir/direction.cc.o.d"
  "CMakeFiles/tc_direction.dir/peeling.cc.o"
  "CMakeFiles/tc_direction.dir/peeling.cc.o.d"
  "libtc_direction.a"
  "libtc_direction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_direction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
