file(REMOVE_RECURSE
  "CMakeFiles/tc_core.dir/pipeline.cc.o"
  "CMakeFiles/tc_core.dir/pipeline.cc.o.d"
  "CMakeFiles/tc_core.dir/preprocess.cc.o"
  "CMakeFiles/tc_core.dir/preprocess.cc.o.d"
  "libtc_core.a"
  "libtc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
