# Empty compiler generated dependencies file for tc_apps.
# This may be replaced when dependencies are built.
