file(REMOVE_RECURSE
  "libtc_apps.a"
)
