file(REMOVE_RECURSE
  "CMakeFiles/tc_apps.dir/clustering.cc.o"
  "CMakeFiles/tc_apps.dir/clustering.cc.o.d"
  "CMakeFiles/tc_apps.dir/ktruss.cc.o"
  "CMakeFiles/tc_apps.dir/ktruss.cc.o.d"
  "CMakeFiles/tc_apps.dir/recommendation.cc.o"
  "CMakeFiles/tc_apps.dir/recommendation.cc.o.d"
  "libtc_apps.a"
  "libtc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
