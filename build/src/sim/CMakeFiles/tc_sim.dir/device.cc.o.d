src/sim/CMakeFiles/tc_sim.dir/device.cc.o: /root/repo/src/sim/device.cc \
 /usr/include/stdc-predef.h /root/repo/src/sim/device.h
