
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/block_cost.cc" "src/sim/CMakeFiles/tc_sim.dir/block_cost.cc.o" "gcc" "src/sim/CMakeFiles/tc_sim.dir/block_cost.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/tc_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/tc_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/kernel.cc" "src/sim/CMakeFiles/tc_sim.dir/kernel.cc.o" "gcc" "src/sim/CMakeFiles/tc_sim.dir/kernel.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/tc_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/tc_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/profiler.cc" "src/sim/CMakeFiles/tc_sim.dir/profiler.cc.o" "gcc" "src/sim/CMakeFiles/tc_sim.dir/profiler.cc.o.d"
  "/root/repo/src/sim/warp_scheduler.cc" "src/sim/CMakeFiles/tc_sim.dir/warp_scheduler.cc.o" "gcc" "src/sim/CMakeFiles/tc_sim.dir/warp_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
