file(REMOVE_RECURSE
  "CMakeFiles/tc_sim.dir/block_cost.cc.o"
  "CMakeFiles/tc_sim.dir/block_cost.cc.o.d"
  "CMakeFiles/tc_sim.dir/device.cc.o"
  "CMakeFiles/tc_sim.dir/device.cc.o.d"
  "CMakeFiles/tc_sim.dir/kernel.cc.o"
  "CMakeFiles/tc_sim.dir/kernel.cc.o.d"
  "CMakeFiles/tc_sim.dir/memory.cc.o"
  "CMakeFiles/tc_sim.dir/memory.cc.o.d"
  "CMakeFiles/tc_sim.dir/profiler.cc.o"
  "CMakeFiles/tc_sim.dir/profiler.cc.o.d"
  "CMakeFiles/tc_sim.dir/warp_scheduler.cc.o"
  "CMakeFiles/tc_sim.dir/warp_scheduler.cc.o.d"
  "libtc_sim.a"
  "libtc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
