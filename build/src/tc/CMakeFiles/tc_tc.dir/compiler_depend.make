# Empty compiler generated dependencies file for tc_tc.
# This may be replaced when dependencies are built.
