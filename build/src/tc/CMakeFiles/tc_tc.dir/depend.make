# Empty dependencies file for tc_tc.
# This may be replaced when dependencies are built.
