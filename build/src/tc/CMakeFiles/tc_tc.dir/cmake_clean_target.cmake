file(REMOVE_RECURSE
  "libtc_tc.a"
)
