
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tc/bisson.cc" "src/tc/CMakeFiles/tc_tc.dir/bisson.cc.o" "gcc" "src/tc/CMakeFiles/tc_tc.dir/bisson.cc.o.d"
  "/root/repo/src/tc/cost_rules.cc" "src/tc/CMakeFiles/tc_tc.dir/cost_rules.cc.o" "gcc" "src/tc/CMakeFiles/tc_tc.dir/cost_rules.cc.o.d"
  "/root/repo/src/tc/cpu_counters.cc" "src/tc/CMakeFiles/tc_tc.dir/cpu_counters.cc.o" "gcc" "src/tc/CMakeFiles/tc_tc.dir/cpu_counters.cc.o.d"
  "/root/repo/src/tc/fox.cc" "src/tc/CMakeFiles/tc_tc.dir/fox.cc.o" "gcc" "src/tc/CMakeFiles/tc_tc.dir/fox.cc.o.d"
  "/root/repo/src/tc/gunrock.cc" "src/tc/CMakeFiles/tc_tc.dir/gunrock.cc.o" "gcc" "src/tc/CMakeFiles/tc_tc.dir/gunrock.cc.o.d"
  "/root/repo/src/tc/hu.cc" "src/tc/CMakeFiles/tc_tc.dir/hu.cc.o" "gcc" "src/tc/CMakeFiles/tc_tc.dir/hu.cc.o.d"
  "/root/repo/src/tc/polak.cc" "src/tc/CMakeFiles/tc_tc.dir/polak.cc.o" "gcc" "src/tc/CMakeFiles/tc_tc.dir/polak.cc.o.d"
  "/root/repo/src/tc/registry.cc" "src/tc/CMakeFiles/tc_tc.dir/registry.cc.o" "gcc" "src/tc/CMakeFiles/tc_tc.dir/registry.cc.o.d"
  "/root/repo/src/tc/tricore.cc" "src/tc/CMakeFiles/tc_tc.dir/tricore.cc.o" "gcc" "src/tc/CMakeFiles/tc_tc.dir/tricore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/direction/CMakeFiles/tc_direction.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/tc_order.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
