file(REMOVE_RECURSE
  "CMakeFiles/tc_tc.dir/bisson.cc.o"
  "CMakeFiles/tc_tc.dir/bisson.cc.o.d"
  "CMakeFiles/tc_tc.dir/cost_rules.cc.o"
  "CMakeFiles/tc_tc.dir/cost_rules.cc.o.d"
  "CMakeFiles/tc_tc.dir/cpu_counters.cc.o"
  "CMakeFiles/tc_tc.dir/cpu_counters.cc.o.d"
  "CMakeFiles/tc_tc.dir/fox.cc.o"
  "CMakeFiles/tc_tc.dir/fox.cc.o.d"
  "CMakeFiles/tc_tc.dir/gunrock.cc.o"
  "CMakeFiles/tc_tc.dir/gunrock.cc.o.d"
  "CMakeFiles/tc_tc.dir/hu.cc.o"
  "CMakeFiles/tc_tc.dir/hu.cc.o.d"
  "CMakeFiles/tc_tc.dir/polak.cc.o"
  "CMakeFiles/tc_tc.dir/polak.cc.o.d"
  "CMakeFiles/tc_tc.dir/registry.cc.o"
  "CMakeFiles/tc_tc.dir/registry.cc.o.d"
  "CMakeFiles/tc_tc.dir/tricore.cc.o"
  "CMakeFiles/tc_tc.dir/tricore.cc.o.d"
  "libtc_tc.a"
  "libtc_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
