file(REMOVE_RECURSE
  "CMakeFiles/tc_util.dir/flags.cc.o"
  "CMakeFiles/tc_util.dir/flags.cc.o.d"
  "CMakeFiles/tc_util.dir/stats.cc.o"
  "CMakeFiles/tc_util.dir/stats.cc.o.d"
  "CMakeFiles/tc_util.dir/table.cc.o"
  "CMakeFiles/tc_util.dir/table.cc.o.d"
  "libtc_util.a"
  "libtc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
