# Empty compiler generated dependencies file for work_partition_test.
# This may be replaced when dependencies are built.
