file(REMOVE_RECURSE
  "CMakeFiles/work_partition_test.dir/work_partition_test.cc.o"
  "CMakeFiles/work_partition_test.dir/work_partition_test.cc.o.d"
  "work_partition_test"
  "work_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
