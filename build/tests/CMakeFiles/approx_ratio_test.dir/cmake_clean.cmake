file(REMOVE_RECURSE
  "CMakeFiles/approx_ratio_test.dir/approx_ratio_test.cc.o"
  "CMakeFiles/approx_ratio_test.dir/approx_ratio_test.cc.o.d"
  "approx_ratio_test"
  "approx_ratio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_ratio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
