# Empty dependencies file for approx_ratio_test.
# This may be replaced when dependencies are built.
