file(REMOVE_RECURSE
  "CMakeFiles/classic_orders_test.dir/classic_orders_test.cc.o"
  "CMakeFiles/classic_orders_test.dir/classic_orders_test.cc.o.d"
  "classic_orders_test"
  "classic_orders_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classic_orders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
