
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/classic_orders_test.cc" "tests/CMakeFiles/classic_orders_test.dir/classic_orders_test.cc.o" "gcc" "tests/CMakeFiles/classic_orders_test.dir/classic_orders_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/tc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tc/CMakeFiles/tc_tc.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/tc_order.dir/DependInfo.cmake"
  "/root/repo/build/src/direction/CMakeFiles/tc_direction.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
