# Empty dependencies file for classic_orders_test.
# This may be replaced when dependencies are built.
