# Empty dependencies file for cost_rules_test.
# This may be replaced when dependencies are built.
