file(REMOVE_RECURSE
  "CMakeFiles/cost_rules_test.dir/cost_rules_test.cc.o"
  "CMakeFiles/cost_rules_test.dir/cost_rules_test.cc.o.d"
  "cost_rules_test"
  "cost_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
