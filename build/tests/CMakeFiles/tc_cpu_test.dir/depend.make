# Empty dependencies file for tc_cpu_test.
# This may be replaced when dependencies are built.
