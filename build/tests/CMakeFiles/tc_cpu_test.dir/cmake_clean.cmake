file(REMOVE_RECURSE
  "CMakeFiles/tc_cpu_test.dir/tc_cpu_test.cc.o"
  "CMakeFiles/tc_cpu_test.dir/tc_cpu_test.cc.o.d"
  "tc_cpu_test"
  "tc_cpu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
