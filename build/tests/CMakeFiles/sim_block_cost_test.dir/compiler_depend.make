# Empty compiler generated dependencies file for sim_block_cost_test.
# This may be replaced when dependencies are built.
