file(REMOVE_RECURSE
  "CMakeFiles/sim_block_cost_test.dir/sim_block_cost_test.cc.o"
  "CMakeFiles/sim_block_cost_test.dir/sim_block_cost_test.cc.o.d"
  "sim_block_cost_test"
  "sim_block_cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_block_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
