file(REMOVE_RECURSE
  "CMakeFiles/tc_effects_test.dir/tc_effects_test.cc.o"
  "CMakeFiles/tc_effects_test.dir/tc_effects_test.cc.o.d"
  "tc_effects_test"
  "tc_effects_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_effects_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
