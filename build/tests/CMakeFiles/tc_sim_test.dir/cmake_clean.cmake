file(REMOVE_RECURSE
  "CMakeFiles/tc_sim_test.dir/tc_sim_test.cc.o"
  "CMakeFiles/tc_sim_test.dir/tc_sim_test.cc.o.d"
  "tc_sim_test"
  "tc_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
