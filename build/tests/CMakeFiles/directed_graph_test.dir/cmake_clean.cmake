file(REMOVE_RECURSE
  "CMakeFiles/directed_graph_test.dir/directed_graph_test.cc.o"
  "CMakeFiles/directed_graph_test.dir/directed_graph_test.cc.o.d"
  "directed_graph_test"
  "directed_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directed_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
