# Empty dependencies file for directed_graph_test.
# This may be replaced when dependencies are built.
