file(REMOVE_RECURSE
  "CMakeFiles/sim_agreement_test.dir/sim_agreement_test.cc.o"
  "CMakeFiles/sim_agreement_test.dir/sim_agreement_test.cc.o.d"
  "sim_agreement_test"
  "sim_agreement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
