file(REMOVE_RECURSE
  "CMakeFiles/cross_device_test.dir/cross_device_test.cc.o"
  "CMakeFiles/cross_device_test.dir/cross_device_test.cc.o.d"
  "cross_device_test"
  "cross_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
