# Empty compiler generated dependencies file for cross_device_test.
# This may be replaced when dependencies are built.
