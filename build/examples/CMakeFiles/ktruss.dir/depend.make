# Empty dependencies file for ktruss.
# This may be replaced when dependencies are built.
