file(REMOVE_RECURSE
  "CMakeFiles/ktruss.dir/ktruss.cpp.o"
  "CMakeFiles/ktruss.dir/ktruss.cpp.o.d"
  "ktruss"
  "ktruss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktruss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
