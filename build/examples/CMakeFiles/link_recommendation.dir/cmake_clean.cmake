file(REMOVE_RECURSE
  "CMakeFiles/link_recommendation.dir/link_recommendation.cpp.o"
  "CMakeFiles/link_recommendation.dir/link_recommendation.cpp.o.d"
  "link_recommendation"
  "link_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
