# Empty dependencies file for link_recommendation.
# This may be replaced when dependencies are built.
