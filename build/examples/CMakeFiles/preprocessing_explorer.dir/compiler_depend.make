# Empty compiler generated dependencies file for preprocessing_explorer.
# This may be replaced when dependencies are built.
