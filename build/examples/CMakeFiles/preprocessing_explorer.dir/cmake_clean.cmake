file(REMOVE_RECURSE
  "CMakeFiles/preprocessing_explorer.dir/preprocessing_explorer.cpp.o"
  "CMakeFiles/preprocessing_explorer.dir/preprocessing_explorer.cpp.o.d"
  "preprocessing_explorer"
  "preprocessing_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preprocessing_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
