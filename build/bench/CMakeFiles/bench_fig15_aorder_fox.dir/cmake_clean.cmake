file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_aorder_fox.dir/bench_fig15_aorder_fox.cc.o"
  "CMakeFiles/bench_fig15_aorder_fox.dir/bench_fig15_aorder_fox.cc.o.d"
  "bench_fig15_aorder_fox"
  "bench_fig15_aorder_fox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_aorder_fox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
