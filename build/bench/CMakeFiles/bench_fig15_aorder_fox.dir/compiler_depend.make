# Empty compiler generated dependencies file for bench_fig15_aorder_fox.
# This may be replaced when dependencies are built.
