file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_motivation.dir/bench_table2_motivation.cc.o"
  "CMakeFiles/bench_table2_motivation.dir/bench_table2_motivation.cc.o.d"
  "bench_table2_motivation"
  "bench_table2_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
