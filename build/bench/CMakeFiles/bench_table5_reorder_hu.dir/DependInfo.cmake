
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_reorder_hu.cc" "bench/CMakeFiles/bench_table5_reorder_hu.dir/bench_table5_reorder_hu.cc.o" "gcc" "bench/CMakeFiles/bench_table5_reorder_hu.dir/bench_table5_reorder_hu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tc/CMakeFiles/tc_tc.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/tc_order.dir/DependInfo.cmake"
  "/root/repo/build/src/direction/CMakeFiles/tc_direction.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
