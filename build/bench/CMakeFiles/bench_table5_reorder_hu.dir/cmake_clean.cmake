file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_reorder_hu.dir/bench_table5_reorder_hu.cc.o"
  "CMakeFiles/bench_table5_reorder_hu.dir/bench_table5_reorder_hu.cc.o.d"
  "bench_table5_reorder_hu"
  "bench_table5_reorder_hu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_reorder_hu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
