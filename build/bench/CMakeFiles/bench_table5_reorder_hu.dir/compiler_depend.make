# Empty compiler generated dependencies file for bench_table5_reorder_hu.
# This may be replaced when dependencies are built.
