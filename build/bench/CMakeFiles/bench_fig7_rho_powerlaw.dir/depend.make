# Empty dependencies file for bench_fig7_rho_powerlaw.
# This may be replaced when dependencies are built.
