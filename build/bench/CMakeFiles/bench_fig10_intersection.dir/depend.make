# Empty dependencies file for bench_fig10_intersection.
# This may be replaced when dependencies are built.
