file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_intersection.dir/bench_fig10_intersection.cc.o"
  "CMakeFiles/bench_fig10_intersection.dir/bench_fig10_intersection.cc.o.d"
  "bench_fig10_intersection"
  "bench_fig10_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
