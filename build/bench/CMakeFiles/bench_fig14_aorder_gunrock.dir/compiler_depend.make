# Empty compiler generated dependencies file for bench_fig14_aorder_gunrock.
# This may be replaced when dependencies are built.
