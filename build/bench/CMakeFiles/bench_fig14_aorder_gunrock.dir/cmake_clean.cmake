file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_aorder_gunrock.dir/bench_fig14_aorder_gunrock.cc.o"
  "CMakeFiles/bench_fig14_aorder_gunrock.dir/bench_fig14_aorder_gunrock.cc.o.d"
  "bench_fig14_aorder_gunrock"
  "bench_fig14_aorder_gunrock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_aorder_gunrock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
