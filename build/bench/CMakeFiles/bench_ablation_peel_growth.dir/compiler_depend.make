# Empty compiler generated dependencies file for bench_ablation_peel_growth.
# This may be replaced when dependencies are built.
