file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_peel_growth.dir/bench_ablation_peel_growth.cc.o"
  "CMakeFiles/bench_ablation_peel_growth.dir/bench_ablation_peel_growth.cc.o.d"
  "bench_ablation_peel_growth"
  "bench_ablation_peel_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_peel_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
