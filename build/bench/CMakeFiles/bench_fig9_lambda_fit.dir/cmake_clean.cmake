file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_lambda_fit.dir/bench_fig9_lambda_fit.cc.o"
  "CMakeFiles/bench_fig9_lambda_fit.dir/bench_fig9_lambda_fit.cc.o.d"
  "bench_fig9_lambda_fit"
  "bench_fig9_lambda_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_lambda_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
