# Empty compiler generated dependencies file for bench_fig9_lambda_fit.
# This may be replaced when dependencies are built.
