file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cost_decline.dir/bench_fig11_cost_decline.cc.o"
  "CMakeFiles/bench_fig11_cost_decline.dir/bench_fig11_cost_decline.cc.o.d"
  "bench_fig11_cost_decline"
  "bench_fig11_cost_decline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cost_decline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
