# Empty dependencies file for bench_fig11_cost_decline.
# This may be replaced when dependencies are built.
