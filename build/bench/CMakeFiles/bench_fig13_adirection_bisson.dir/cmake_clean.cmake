file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_adirection_bisson.dir/bench_fig13_adirection_bisson.cc.o"
  "CMakeFiles/bench_fig13_adirection_bisson.dir/bench_fig13_adirection_bisson.cc.o.d"
  "bench_fig13_adirection_bisson"
  "bench_fig13_adirection_bisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_adirection_bisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
