# Empty compiler generated dependencies file for bench_fig13_adirection_bisson.
# This may be replaced when dependencies are built.
