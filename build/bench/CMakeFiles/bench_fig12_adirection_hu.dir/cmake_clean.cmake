file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_adirection_hu.dir/bench_fig12_adirection_hu.cc.o"
  "CMakeFiles/bench_fig12_adirection_hu.dir/bench_fig12_adirection_hu.cc.o.d"
  "bench_fig12_adirection_hu"
  "bench_fig12_adirection_hu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_adirection_hu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
