# Empty dependencies file for bench_fig12_adirection_hu.
# This may be replaced when dependencies are built.
