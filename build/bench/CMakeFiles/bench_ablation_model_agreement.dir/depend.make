# Empty dependencies file for bench_ablation_model_agreement.
# This may be replaced when dependencies are built.
