file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_model_agreement.dir/bench_ablation_model_agreement.cc.o"
  "CMakeFiles/bench_ablation_model_agreement.dir/bench_ablation_model_agreement.cc.o.d"
  "bench_ablation_model_agreement"
  "bench_ablation_model_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_model_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
