file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_reorder_tricore.dir/bench_table6_reorder_tricore.cc.o"
  "CMakeFiles/bench_table6_reorder_tricore.dir/bench_table6_reorder_tricore.cc.o.d"
  "bench_table6_reorder_tricore"
  "bench_table6_reorder_tricore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_reorder_tricore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
