# Empty compiler generated dependencies file for bench_table6_reorder_tricore.
# This may be replaced when dependencies are built.
