# Empty dependencies file for bench_fig16_combined.
# This may be replaced when dependencies are built.
