# Empty dependencies file for bench_fig8_calibration.
# This may be replaced when dependencies are built.
