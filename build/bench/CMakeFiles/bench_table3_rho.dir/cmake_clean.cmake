file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_rho.dir/bench_table3_rho.cc.o"
  "CMakeFiles/bench_table3_rho.dir/bench_table3_rho.cc.o.d"
  "bench_table3_rho"
  "bench_table3_rho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
