# Empty dependencies file for gputc.
# This may be replaced when dependencies are built.
