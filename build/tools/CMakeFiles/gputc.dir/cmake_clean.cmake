file(REMOVE_RECURSE
  "CMakeFiles/gputc.dir/gputc_main.cc.o"
  "CMakeFiles/gputc.dir/gputc_main.cc.o.d"
  "gputc"
  "gputc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gputc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
