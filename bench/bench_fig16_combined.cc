// Reproduces Figure 16: combining A-direction and A-order on Hu's algorithm
// (which uses both intra-block synchronization and binary-search
// intersection). Paper shape: the combination speeds up the overall running
// time by ~7.6% on average over A-direction alone and ~13.6% over A-order
// alone.

#include <iostream>

#include "bench_util.h"
#include "util/stats.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figure 16",
              "Combined A-direction + A-order vs each alone, Hu's algorithm "
              "(kernel ms)");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  TablePrinter table({"dataset", "A-dir only", "A-order only", "combined",
                      "vs A-dir", "vs A-order"});
  std::vector<double> vs_dir, vs_ord;
  for (const std::string& name : FigureDatasets()) {
    const Graph g = LoadDataset(name);
    const RunResult dir_only =
        Run(g, TcAlgorithm::kHu, DirectionStrategy::kADirection,
            OrderingStrategy::kOriginal, spec);
    const RunResult ord_only =
        Run(g, TcAlgorithm::kHu, DirectionStrategy::kDegreeBased,
            OrderingStrategy::kAOrder, spec);
    const RunResult combined =
        Run(g, TcAlgorithm::kHu, DirectionStrategy::kADirection,
            OrderingStrategy::kAOrder, spec);
    vs_dir.push_back((dir_only.kernel_ms() - combined.kernel_ms()) /
                     dir_only.kernel_ms());
    vs_ord.push_back((ord_only.kernel_ms() - combined.kernel_ms()) /
                     ord_only.kernel_ms());
    table.AddRow({name, Fmt(dir_only.kernel_ms(), 3),
                  Fmt(ord_only.kernel_ms(), 3), Fmt(combined.kernel_ms(), 3),
                  Percent(vs_dir.back()), Percent(vs_ord.back())});
  }
  table.Print(std::cout);
  std::cout << "\naverage improvement vs A-direction only: "
            << Percent(Summarize(vs_dir).mean)
            << "   vs A-order only: " << Percent(Summarize(vs_ord).mean)
            << "\nExpected shape (paper Figure 16): combined beats both "
               "singles on average (paper: +7.6% and +13.6%).\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
