// Batch-service throughput: the same manifest of generated graphs pushed
// through the concurrent BatchService at jobs = 1, 4, 8. Reports requests/sec
// and per-request latency percentiles, and writes the machine-readable
// BENCH_service.json for trend tracking. There is no paper figure for this —
// the service layer is infrastructure around the paper's counting pipeline —
// so the interesting shape is simply that throughput scales with jobs while
// the p99 latency stays bounded.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "service/batch_service.h"
#include "service/wal.h"
#include "util/stats.h"

namespace gputc {
namespace bench {
namespace {

struct JobsResult {
  int jobs = 0;
  int requests = 0;
  double wall_ms = 0.0;
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  // Stage attribution from the per-request timing block: where a request's
  // latency went — waiting in the queue vs executing. At jobs=8 the
  // interesting failure mode is queue wait growing while exec stays flat.
  double queue_p99_ms = 0.0;
  double materialize_p99_ms = 0.0;
};

/// The bench workload: a spread of generated graphs, each a few thousand
/// vertices so one request costs a handful of milliseconds.
std::vector<BatchRequest> MakeWorkload(int count) {
  std::vector<BatchRequest> requests;
  requests.reserve(static_cast<size_t>(count));
  const char* families[] = {"rmat", "er", "ws"};
  for (int i = 0; i < count; ++i) {
    BatchRequest request;
    const std::string family = families[i % 3];
    request.id = std::to_string(i) + ":gen:" + family;
    request.source = "gen:" + family + ":seed=" + std::to_string(i);
    request.kind = BatchRequest::Kind::kGenerate;
    request.target = family;
    const std::string seed = std::to_string(i + 1);
    if (family == "rmat") {
      request.params = {{"scale", "11"}, {"edge-factor", "12"}, {"seed", seed}};
    } else if (family == "er") {
      request.params = {{"nodes", "3000"}, {"edges", "24000"}, {"seed", seed}};
    } else {
      request.params = {{"nodes", "3000"}, {"k", "8"}, {"seed", seed}};
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

JobsResult RunAtConcurrency(int jobs, int request_count,
                            WriteAheadLog* wal = nullptr) {
  BatchServiceOptions options;
  options.jobs = jobs;
  options.queue_depth = static_cast<size_t>(request_count);
  BatchService service(options);

  LatencyRecorder latencies;
  LatencyRecorder queue_waits;
  LatencyRecorder materializes;
  service.set_on_report([&](const RequestReport& report) {
    if (wal != nullptr) {
      (void)wal->LogDone(report.id, RequestOutcomeName(report.outcome),
                         report.ToJson());
    }
    latencies.Record(report.exec_ms);
    queue_waits.Record(report.queue_ms);
    materializes.Record(report.materialize_ms);
  });

  const auto started = std::chrono::steady_clock::now();
  service.Start();
  for (BatchRequest& request : MakeWorkload(request_count)) {
    if (wal != nullptr) (void)wal->LogIntent(request.id);
    service.Submit(std::move(request));
  }
  const BatchSummary summary = service.Finish();
  const auto finished = std::chrono::steady_clock::now();

  JobsResult result;
  result.jobs = jobs;
  result.requests = static_cast<int>(summary.reports.size());
  result.wall_ms =
      std::chrono::duration<double, std::milli>(finished - started).count();
  result.requests_per_sec =
      result.wall_ms > 0.0 ? 1000.0 * result.requests / result.wall_ms : 0.0;
  result.p50_ms = latencies.PercentileValue(50.0);
  result.p99_ms = latencies.PercentileValue(99.0);
  result.queue_p99_ms = queue_waits.PercentileValue(99.0);
  result.materialize_p99_ms = materializes.PercentileValue(99.0);
  if (!summary.AllSucceeded()) {
    std::cerr << "warning: " << summary.CountOutcome(RequestOutcome::kFailed)
              << " failed / " << summary.CountOutcome(RequestOutcome::kRejected)
              << " rejected requests perturb this measurement\n";
  }
  return result;
}

void Main() {
  PrintHeader("Service throughput",
              "BatchService requests/sec and latency percentiles vs worker "
              "count (generated workload; no paper counterpart)");
  constexpr int kRequests = 24;
  std::vector<JobsResult> results;
  for (int jobs : {1, 4, 8}) {
    results.push_back(RunAtConcurrency(jobs, kRequests));
  }

  TablePrinter table({"jobs", "requests", "wall ms", "req/s", "p50 ms",
                      "p99 ms", "queue p99", "matz p99"});
  for (const JobsResult& r : results) {
    table.AddRow({std::to_string(r.jobs), std::to_string(r.requests),
                  Fmt(r.wall_ms, 1), Fmt(r.requests_per_sec, 1),
                  Fmt(r.p50_ms, 2), Fmt(r.p99_ms, 2), Fmt(r.queue_p99_ms, 2),
                  Fmt(r.materialize_p99_ms, 2)});
  }
  table.Print(std::cout);

  std::ofstream json("BENCH_service.json");
  json << "{\n  \"bench\": \"service_throughput\",\n  \"requests\": "
       << kRequests << ",\n  \"configs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const JobsResult& r = results[i];
    json << "    {\"jobs\": " << r.jobs << ", \"requests_per_sec\": "
         << r.requests_per_sec << ", \"wall_ms\": " << r.wall_ms
         << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
         << ", \"queue_p99_ms\": " << r.queue_p99_ms
         << ", \"materialize_p99_ms\": " << r.materialize_p99_ms << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote BENCH_service.json\n";

  // -- WAL overhead: the same workload with every intent/done fsynced -------
  // Durability is bought with two fsynced appends per request (intent before
  // submit, done before journal emit). This run quantifies the price at the
  // service's default concurrency so the "crash-safe batches cost X%" claim
  // in the README stays an actual measurement.
  PrintHeader("WAL overhead",
              "identical workload at jobs = 4, write-ahead log off vs on "
              "(two fsynced appends per request)");
  constexpr int kWalJobs = 4;
  const JobsResult off = RunAtConcurrency(kWalJobs, kRequests);
  const std::string wal_dir = "BENCH_wal_scratch";
  JobsResult on;
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(wal_dir);
    if (!wal.ok()) {
      std::cerr << "warning: cannot open bench WAL: "
                << wal.status().ToString() << "; skipping WAL-on run\n";
      return;
    }
    on = RunAtConcurrency(kWalJobs, kRequests, &*wal);
  }
  std::remove(WalLogPath(wal_dir).c_str());
  std::remove(wal_dir.c_str());

  const double overhead_pct =
      off.requests_per_sec > 0.0
          ? 100.0 * (off.requests_per_sec - on.requests_per_sec) /
                off.requests_per_sec
          : 0.0;
  TablePrinter wal_table({"wal", "req/s", "wall ms", "p50 ms", "p99 ms"});
  wal_table.AddRow({"off", Fmt(off.requests_per_sec, 1), Fmt(off.wall_ms, 1),
                    Fmt(off.p50_ms, 2), Fmt(off.p99_ms, 2)});
  wal_table.AddRow({"on", Fmt(on.requests_per_sec, 1), Fmt(on.wall_ms, 1),
                    Fmt(on.p50_ms, 2), Fmt(on.p99_ms, 2)});
  wal_table.Print(std::cout);
  std::cout << "throughput overhead: " << Fmt(overhead_pct, 1) << "%\n";

  std::ofstream wal_json("BENCH_wal.json");
  wal_json << "{\n  \"bench\": \"wal_overhead\",\n  \"jobs\": " << kWalJobs
           << ",\n  \"requests\": " << kRequests
           << ",\n  \"wal_off\": {\"requests_per_sec\": "
           << off.requests_per_sec << ", \"wall_ms\": " << off.wall_ms
           << ", \"p50_ms\": " << off.p50_ms << ", \"p99_ms\": " << off.p99_ms
           << "},\n  \"wal_on\": {\"requests_per_sec\": "
           << on.requests_per_sec << ", \"wall_ms\": " << on.wall_ms
           << ", \"p50_ms\": " << on.p50_ms << ", \"p99_ms\": " << on.p99_ms
           << "},\n  \"throughput_overhead_pct\": " << overhead_pct << "\n}\n";
  std::cout << "wrote BENCH_wal.json\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
