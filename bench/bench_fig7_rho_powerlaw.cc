// Reproduces Figure 7: the approximation ratio bound rho as a function of
// average degree on power-law (ACL configuration model) graphs. Paper shape:
// rho < 1.8 across densities, falling toward 1 as the graph densifies.

#include <iostream>

#include "bench_util.h"
#include "direction/approx_ratio.h"
#include "graph/generators.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figure 7",
              "rho (Theorem 4.2) vs average out-degree on ACL power-law "
              "graphs (density swept via the exponent gamma, tail intact)");
  TablePrinter table({"gamma", "d_avg", "rho bound", "LB case"});
  for (double gamma : {2.6, 2.4, 2.2, 2.0, 1.9, 1.8, 1.7, 1.6, 1.5}) {
    const Graph g = GeneratePowerLawConfiguration(8000, gamma, 1, 800,
                                                  /*seed=*/42);
    const ApproxRatioBound b = ComputeApproxRatioBound(g);
    table.AddRow({Fmt(gamma, 1), Fmt(b.d_avg, 2), Fmt(b.rho, 3),
                  std::string(1, b.lb_case)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Figure 7): rho < 1.8 once d_avg "
               "clears ~2 and decreasing toward 1 as density grows; the "
               "bound degenerates on near-forest graphs (d_avg < ~1.5), "
               "where the Theorem 4.2 lower bound collapses.\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
