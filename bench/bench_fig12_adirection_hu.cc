// Reproduces Figure 12: running time of three edge-direction methods on
// Hu's algorithm: bars = preprocessing + kernel time; lines = speedup of
// A-direction over D-direction on kernel and total time. Paper shape: both
// analytic strategies beat ID-based; A-direction improves kernel time by
// 9.4%..42.4% and total time by 6.3%..34.5% over D-direction.

#include <iostream>

#include "bench_util.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figure 12",
              "Edge direction methods on Hu's algorithm (Original order): "
              "preprocessing + kernel ms, A-direction vs D-direction "
              "speedups");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  TablePrinter table({"dataset", "ID kern", "ID pre", "D-dir kern",
                      "D-dir pre", "A-dir kern", "A-dir pre",
                      "A vs D kernel", "A vs D total"});
  for (const std::string& name : FigureDatasets()) {
    const Graph g = LoadDataset(name);
    const RunResult id = Run(g, TcAlgorithm::kHu, DirectionStrategy::kIdBased,
                             OrderingStrategy::kOriginal, spec);
    const RunResult dd =
        Run(g, TcAlgorithm::kHu, DirectionStrategy::kDegreeBased,
            OrderingStrategy::kOriginal, spec);
    const RunResult ad =
        Run(g, TcAlgorithm::kHu, DirectionStrategy::kADirection,
            OrderingStrategy::kOriginal, spec);
    table.AddRow({name, Fmt(id.kernel_ms(), 3),
                  Fmt(id.preprocess.total_ms, 3), Fmt(dd.kernel_ms(), 3),
                  Fmt(dd.preprocess.total_ms, 3), Fmt(ad.kernel_ms(), 3),
                  Fmt(ad.preprocess.total_ms, 3),
                  SpeedupPercent(dd.kernel_ms(), ad.kernel_ms()),
                  SpeedupPercent(dd.total_ms(), ad.total_ms())});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Figure 12): ID-based clearly slowest; "
               "A-direction matches or beats D-direction on kernel time on "
               "skewed graphs.\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
