// Reproduces Figure 9: the fit of memory intensity m = F_m(d) against
// p_c(d) * F_c(d), which determines lambda (the paper measures 9.682 on a
// Titan Xp; ours reflects the simulated device).

#include <iostream>

#include "bench_util.h"
#include "order/calibration.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figure 9",
              "Linear fit m ~ p_c * c over the calibration sweep; lambda "
              "determination (Section 5.3)");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const CalibrationResult r = CalibrateResourceModel(spec);
  TablePrinter table({"list length", "x = p_c * F_c", "y = F_m",
                      "fit residual"});
  for (const CalibrationSample& s : r.samples) {
    if (s.list_length > spec.warp_size) break;  // Pre-saturation regime.
    const double x = s.p_c * s.compute_intensity;
    const double predicted = r.fit.slope * x + r.fit.intercept;
    table.AddRow({FmtCount(s.list_length), Fmt(x, 3),
                  Fmt(s.memory_intensity, 3),
                  Fmt(s.memory_intensity - predicted, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nfit: m = " << Fmt(r.fit.slope, 3) << " * x + "
            << Fmt(r.fit.intercept, 3) << "  (r^2 = " << Fmt(r.fit.r_squared, 3)
            << ")\n"
            << "lambda (parity-point calibration used by A-order): "
            << Fmt(r.lambda, 3) << "\n"
            << "paper: lambda = 9.682 on the physical Titan Xp; the value is "
               "device-specific, only its role (memory/compute conversion) "
               "carries over.\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
