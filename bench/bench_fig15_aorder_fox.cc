// Reproduces Figure 15: A-order with *edges* as the reorder unit on Fox's
// adaptive algorithm (edges of a vertex are split by work complexity, so
// blocks own edge sets; reordering edges changes block composition). Paper
// shape: 2%..26.2% total-time improvement over the original edge order.

#include <iostream>

#include "bench_util.h"
#include "core/preprocess.h"
#include "direction/direction.h"
#include "order/calibration.h"
#include "tc/fox.h"
#include "util/timer.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figure 15",
              "Edge-unit A-order on Fox's algorithm (kernel/total ms, "
              "D-direction)");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const ResourceModel model = CalibratedResourceModel(spec);
  const FoxCounter fox;
  TablePrinter table({"dataset", "original edges", "A-order edges k(r)",
                      "kernel speedup"});
  for (const std::string& name : FigureDatasets()) {
    const Graph g = LoadDataset(name);
    const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
    const double original = fox.Count(d, spec).kernel.millis;

    Timer reorder_timer;
    const std::vector<int64_t> order = fox.AOrderedEdgeOrder(d, model, spec);
    const double reorder_ms = reorder_timer.ElapsedMillis();
    const double aorder = fox.CountWithEdgeOrder(d, spec, order).kernel.millis;

    table.AddRow({name, Fmt(original, 3),
                  Fmt(aorder, 3) + " (" + Fmt(reorder_ms, 0) + ")",
                  SpeedupPercent(original, aorder)});
  }
  table.Print(std::cout);
  std::cout << "\nColumns: 'k (r)' = simulated kernel ms (host edge-reorder "
               "wall ms). Expected shape (paper Figure 15): a modest but "
               "consistent improvement (paper: 2%..26.2% on total time).\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
