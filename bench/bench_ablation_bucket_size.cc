// Ablation (beyond the paper): sensitivity of A-order to the bucket size k
// (vertices per block). DESIGN.md calls out k = threads_per_block as the
// default; this sweep shows the Eq. 3 objective and the simulated kernel
// time across k.

#include <iostream>

#include "bench_util.h"
#include "core/preprocess.h"
#include "direction/direction.h"
#include "graph/permutation.h"
#include "order/calibration.h"
#include "tc/hu.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Ablation: bucket size",
              "A-order bucket size sweep on Hu's algorithm (gowalla, "
              "D-direction)");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const ResourceModel model = CalibratedResourceModel(spec);
  const Graph g = LoadDataset("gowalla");
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  const std::vector<EdgeCount> degs = d.OutDegrees();

  TablePrinter table({"bucket size", "Eq.3 cost", "Hu kernel ms"});
  for (int bucket : {32, 64, 128, 256, 512, 1024, 4096}) {
    const AOrderResult order = AOrder(degs, model, AOrderOptions{bucket});
    const DirectedGraph relabeled = ApplyPermutation(d, order.perm);
    // Blocks still own threads_per_block-vertex ranges; the sweep varies
    // only the granularity A-order packs at.
    const double ms = HuCounter().Count(relabeled, spec).kernel.millis;
    table.AddRow({FmtCount(bucket), Fmt(order.imbalance_cost, 0), Fmt(ms, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nReading: packing at the device's block granularity "
               "(bucket = threads_per_block = "
            << spec.threads_per_block()
            << ") should be at or near the minimum kernel time; much larger "
               "buckets stop matching block work sets.\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
