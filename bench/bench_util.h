#ifndef GPUTC_BENCH_BENCH_UTIL_H_
#define GPUTC_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "graph/datasets.h"
#include "sim/device.h"
#include "util/table.h"

namespace gputc {
namespace bench {

/// The ten datasets of the paper's Tables 5 and 6 (stand-ins; see
/// graph/datasets.h).
std::vector<std::string> Table5Datasets();

/// The four motivation datasets of Table 2 / Figure 11.
std::vector<std::string> Table2Datasets();

/// Medium subset used by the bar-chart figures (12, 13, 14, 15, 16).
std::vector<std::string> FigureDatasets();

/// Prints the standard bench banner: what experiment this is, which device,
/// and the substitution disclaimer.
void PrintHeader(const std::string& experiment, const std::string& what);

/// Runs one preprocessing+count configuration.
RunResult Run(const Graph& g, TcAlgorithm algorithm, DirectionStrategy dir,
              OrderingStrategy ord, const DeviceSpec& spec);

/// Formats a speedup of `base` over `improved` as the paper does
/// ("+17.4%" means improved is 17.4% faster than base).
std::string SpeedupPercent(double base, double improved);

}  // namespace bench
}  // namespace gputc

#endif  // GPUTC_BENCH_BENCH_UTIL_H_
