#include "bench_util.h"

#include <iostream>

namespace gputc {
namespace bench {

std::vector<std::string> Table5Datasets() {
  return {"soc-LJ",      "cit-patents", "com-lj",      "com-orkut",
          "email-Enron", "email-Euall", "gowalla",     "wiki-topcats",
          "kron-logn18", "kron-logn21"};
}

std::vector<std::string> Table2Datasets() {
  return {"gowalla", "cit-patents", "road_central", "kron-logn21"};
}

std::vector<std::string> FigureDatasets() {
  return {"email-Euall", "gowalla",     "cit-patents", "com-lj",
          "soc-pokec",   "wiki-topcats", "kron-logn18", "kron-logn21"};
}

void PrintHeader(const std::string& experiment, const std::string& what) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  std::cout << "==== " << experiment << " ====\n"
            << what << "\n"
            << "Device model: " << spec.num_sms << " SMs, "
            << spec.threads_per_block() << " threads/block, warp "
            << spec.warp_size << "; kernel times are simulated-model ms "
            << "(see DESIGN.md).\n"
            << "Datasets are seeded synthetic stand-ins for the paper's "
            << "graphs (same degree families, laptop scale); compare shapes "
            << "and ratios, not absolute numbers.\n\n";
}

RunResult Run(const Graph& g, TcAlgorithm algorithm, DirectionStrategy dir,
              OrderingStrategy ord, const DeviceSpec& spec) {
  PreprocessOptions options;
  options.direction = dir;
  options.ordering = ord;
  return RunTriangleCount(g, algorithm, spec, options);
}

std::string SpeedupPercent(double base, double improved) {
  if (base <= 0.0) return "n/a";
  return Percent((base - improved) / base);
}

}  // namespace bench
}  // namespace gputc
