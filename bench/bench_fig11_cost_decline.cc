// Reproduces Figure 11: Equation 1 cost decline of A-direction relative to
// D-direction and ID-based direction, restricted to vertices whose degree
// exceeds k * d~_avg (degree threshold k on the x axis). Paper shape: the
// decline vs D-direction grows with k (hubs benefit most), reaching ~10%.

#include <iostream>

#include "bench_util.h"
#include "direction/cost_model.h"
#include "direction/direction.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figure 11",
              "Eq. 1 cost decline of A-direction vs D-direction and "
              "ID-based, as a function of the degree threshold k");
  for (const std::string& name : Table2Datasets()) {
    const Graph g = LoadDataset(name);
    const DirectedGraph a = Orient(g, DirectionStrategy::kADirection);
    const DirectedGraph deg = Orient(g, DirectionStrategy::kDegreeBased);
    const DirectedGraph id = Orient(g, DirectionStrategy::kIdBased);
    std::cout << "dataset: " << name << "\n";
    TablePrinter table(
        {"k", "decline vs D-direction", "decline vs ID-based"});
    for (int k = 0; k <= 10; k += 2) {
      const double ca = DirectionCostAboveThreshold(g, a, k);
      const double cd = DirectionCostAboveThreshold(g, deg, k);
      const double cid = DirectionCostAboveThreshold(g, id, k);
      table.AddRow({FmtCount(k),
                    cd > 0.0 ? Percent((cd - ca) / cd) : "n/a",
                    cid > 0.0 ? Percent((cid - ca) / cid) : "n/a"});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape (paper Figure 11): decline vs D-direction "
               "grows with k (around 10% for k >= 4); decline vs ID-based "
               "is much larger at every k.\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
