// Reproduces Table 6: vertex reordering strategies on the TriCore
// warp-per-edge implementation. Same structure and expected shape as
// Table 5 (see bench_table5_reorder_hu.cc).

#include <iostream>

#include "bench_util.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Table 6",
              "Reorder strategies on the TriCore implementation "
              "(D-direction)");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  TablePrinter table({"dataset", "Origin", "D-order", "DFS k(r)",
                      "BFS-R k(r)", "SlashBurn k(r)", "GRO k(r)",
                      "A-order k(r)", "A kern speedup"});
  for (const std::string& name : Table5Datasets()) {
    const Graph g = LoadDataset(name);
    auto run = [&](OrderingStrategy ord) {
      return Run(g, TcAlgorithm::kTriCore, DirectionStrategy::kDegreeBased,
                 ord, spec);
    };
    const RunResult origin = run(OrderingStrategy::kOriginal);
    const RunResult dorder = run(OrderingStrategy::kDegree);
    const RunResult dfs = run(OrderingStrategy::kDfs);
    const RunResult bfsr = run(OrderingStrategy::kBfsR);
    const RunResult slash = run(OrderingStrategy::kSlashBurn);
    const RunResult gro = run(OrderingStrategy::kGro);
    const RunResult aorder = run(OrderingStrategy::kAOrder);
    auto kt = [](const RunResult& r) {
      return Fmt(r.kernel_ms(), 3) + " (" +
             Fmt(r.preprocess.ordering_ms, 0) + ")";
    };
    table.AddRow({name, Fmt(origin.kernel_ms(), 3),
                  Fmt(dorder.kernel_ms(), 3), kt(dfs), kt(bfsr), kt(slash),
                  kt(gro), kt(aorder),
                  SpeedupPercent(origin.kernel_ms(), aorder.kernel_ms())});
  }
  table.Print(std::cout);
  std::cout << "\nColumns: 'k (r)' = simulated kernel ms (host reorder "
               "wall ms). Expected shape (paper Table 6): as Table 5 — "
               "A-order fastest kernel (paper: 9.8%..50% over Origin) at "
               "lightweight reorder cost; kernel and reorder magnitudes "
               "reported separately (see EXPERIMENTS.md).\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
