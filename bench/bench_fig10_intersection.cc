// Reproduces Figure 10: binary search vs sort-merge list intersection inside
// Gunrock and TriCore. Paper shape: binary search ("bs") beats sort-merge
// ("sm") on both implementations across the (skewed) datasets.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "direction/direction.h"
#include "tc/gunrock.h"
#include "tc/tricore.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figure 10",
              "Binary search vs sort-merge intersection on Gunrock and "
              "TriCore (kernel ms, D-direction, original order)");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  TablePrinter table({"dataset", "Gunrock-bs", "Gunrock-sm", "TriCore-bs",
                      "TriCore-sm", "bs speedup (Gunrock)",
                      "bs speedup (TriCore)"});
  for (const char* name :
       {"email-Euall", "gowalla", "soc-pokec", "com-lj", "kron-logn18",
        "kron-logn21"}) {
    const Graph g = LoadDataset(name);
    const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
    const double gbs = GunrockCounter(IntersectStrategy::kBinarySearch)
                           .Count(d, spec)
                           .kernel.millis;
    const double gsm = GunrockCounter(IntersectStrategy::kSortMerge)
                           .Count(d, spec)
                           .kernel.millis;
    const double tbs = TriCoreCounter(IntersectStrategy::kBinarySearch)
                           .Count(d, spec)
                           .kernel.millis;
    const double tsm = TriCoreCounter(IntersectStrategy::kSortMerge)
                           .Count(d, spec)
                           .kernel.millis;
    table.AddRow({name, Fmt(gbs, 3), Fmt(gsm, 3), Fmt(tbs, 3), Fmt(tsm, 3),
                  SpeedupPercent(gsm, gbs), SpeedupPercent(tsm, tbs)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Figure 10): bs faster than sm on "
               "both implementations for skewed graphs.\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
