// Microbenchmarks (google-benchmark) of the preprocessing primitives: the
// wall-clock costs that make up the paper's "preprocessing time" bars.

#include <benchmark/benchmark.h>

#include "core/preprocess.h"
#include "direction/direction.h"
#include "direction/peeling.h"
#include "graph/datasets.h"
#include "graph/permutation.h"
#include "order/aorder.h"
#include "order/calibration.h"
#include "order/classic_orders.h"
#include "tc/cpu_counters.h"

namespace gputc {
namespace {

const Graph& Gowalla() {
  static const Graph* const kGraph = new Graph(LoadDataset("gowalla"));
  return *kGraph;
}

const DirectedGraph& GowallaDirected() {
  static const DirectedGraph* const kGraph = new DirectedGraph(
      Orient(Gowalla(), DirectionStrategy::kDegreeBased));
  return *kGraph;
}

void BM_ADirectionPeel(benchmark::State& state) {
  const Graph& g = Gowalla();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ADirectionPeel(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ADirectionPeel);

void BM_DegreeDirectionRank(benchmark::State& state) {
  const Graph& g = Gowalla();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DirectionRank(g, DirectionStrategy::kDegreeBased));
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_DegreeDirectionRank);

void BM_AOrder(benchmark::State& state) {
  const DirectedGraph& d = GowallaDirected();
  const ResourceModel model =
      CalibratedResourceModel(DeviceSpec::TitanXpLike());
  const std::vector<EdgeCount> degs = d.OutDegrees();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AOrder(degs, model, AOrderOptions{static_cast<int>(state.range(0))}));
  }
  state.SetItemsProcessed(state.iterations() * d.num_vertices());
}
BENCHMARK(BM_AOrder)->Arg(64)->Arg(256)->Arg(1024);

void BM_ClassicOrder_Dfs(benchmark::State& state) {
  const Graph& g = Gowalla();
  for (auto _ : state) benchmark::DoNotOptimize(DfsOrder(g));
}
BENCHMARK(BM_ClassicOrder_Dfs);

void BM_ClassicOrder_SlashBurn(benchmark::State& state) {
  const Graph& g = Gowalla();
  for (auto _ : state) benchmark::DoNotOptimize(SlashBurnOrder(g));
}
BENCHMARK(BM_ClassicOrder_SlashBurn);

void BM_ClassicOrder_Gro(benchmark::State& state) {
  const Graph& g = Gowalla();
  for (auto _ : state) benchmark::DoNotOptimize(GroOrder(g));
}
BENCHMARK(BM_ClassicOrder_Gro);

void BM_ApplyPermutation(benchmark::State& state) {
  const DirectedGraph& d = GowallaDirected();
  const Permutation perm = RandomOrder(d.num_vertices(), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyPermutation(d, perm));
  }
}
BENCHMARK(BM_ApplyPermutation);

void BM_CpuForwardCount(benchmark::State& state) {
  const Graph& g = Gowalla();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTrianglesForward(g));
  }
}
BENCHMARK(BM_CpuForwardCount);

void BM_FullPreprocess(benchmark::State& state) {
  const Graph& g = Gowalla();
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Preprocess(g, spec));
  }
}
BENCHMARK(BM_FullPreprocess);

}  // namespace
}  // namespace gputc

BENCHMARK_MAIN();
