// Reproduces Table 5: vertex reordering strategies on Hu's fine-grained
// implementation — kernel and total (kernel + reordering) times, plus
// A-order's speedup over the original order. Paper shape: D-order is the
// worst (often slower than Original); DFS/BFS-R/SlashBurn/GRO improve the
// kernel somewhat but their preprocessing dwarfs it; A-order gives the best
// kernel time at near-zero preprocessing cost.

#include <iostream>

#include "bench_util.h"

namespace gputc {
namespace bench {
namespace {

void RunTable(TcAlgorithm algorithm, const std::string& title) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  TablePrinter table({"dataset", "Origin", "D-order", "DFS k(r)",
                      "BFS-R k(r)", "SlashBurn k(r)", "GRO k(r)",
                      "A-order k(r)", "A kern speedup"});
  for (const std::string& name : Table5Datasets()) {
    const Graph g = LoadDataset(name);
    auto run = [&](OrderingStrategy ord) {
      return Run(g, algorithm, DirectionStrategy::kDegreeBased, ord, spec);
    };
    const RunResult origin = run(OrderingStrategy::kOriginal);
    const RunResult dorder = run(OrderingStrategy::kDegree);
    const RunResult dfs = run(OrderingStrategy::kDfs);
    const RunResult bfsr = run(OrderingStrategy::kBfsR);
    const RunResult slash = run(OrderingStrategy::kSlashBurn);
    const RunResult gro = run(OrderingStrategy::kGro);
    const RunResult aorder = run(OrderingStrategy::kAOrder);
    auto kt = [](const RunResult& r) {
      return Fmt(r.kernel_ms(), 3) + " (" +
             Fmt(r.preprocess.ordering_ms, 0) + ")";
    };
    table.AddRow({name, Fmt(origin.kernel_ms(), 3),
                  Fmt(dorder.kernel_ms(), 3), kt(dfs), kt(bfsr), kt(slash),
                  kt(gro), kt(aorder),
                  SpeedupPercent(origin.kernel_ms(), aorder.kernel_ms())});
  }
  std::cout << title << "\n";
  table.Print(std::cout);
  std::cout << "\nColumns: 'k (r)' = simulated kernel ms (host reorder "
               "wall ms). Expected shape (paper Tables 5/6): D-order worst "
               "kernel; classic reorderings sometimes help the kernel but "
               "pay far heavier reorder time than A-order/DFS; A-order best "
               "kernel time. Note the paper sums kernel + reorder into a "
               "total; at our scaled-down size simulated kernel ms and host "
               "reorder ms are not comparable magnitudes, so they are "
               "reported separately (see EXPERIMENTS.md).\n";
}

void Main() {
  PrintHeader("Table 5",
              "Reorder strategies on Hu's fine-grained implementation "
              "(D-direction)");
  RunTable(TcAlgorithm::kHu, "Hu's algorithm:");
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
