// Reproduces Table 3: the Theorem 4.2 approximation-ratio bound rho on
// real-graph stand-ins. Paper shape: rho stays well under 1.8 for graphs of
// moderate density; also reported here is the *realized* ratio
// C(P_alg) / LB, which is tighter still.

#include <iostream>

#include "bench_util.h"
#include "direction/approx_ratio.h"
#include "direction/cost_model.h"
#include "direction/direction.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Table 3",
              "Approximation-ratio bound rho (Theorem 4.2) on real-graph "
              "stand-ins");
  TablePrinter table({"dataset", "d_avg", "rho bound", "C_alg/LB",
                      "LB case", "|V_c|", "|V_n|"});
  for (const char* name :
       {"email-Euall", "gowalla", "cit-patents", "com-lj", "kron-logn21"}) {
    const Graph g = LoadDataset(name);
    const ApproxRatioBound b = ComputeApproxRatioBound(g);
    const double alg_cost =
        DirectionCost(Orient(g, DirectionStrategy::kADirection));
    table.AddRow({name, Fmt(b.d_avg, 2), Fmt(b.rho, 3),
                  b.lower_bound_opt > 0.0
                      ? Fmt(alg_cost / b.lower_bound_opt, 3)
                      : "inf",
                  std::string(1, b.lb_case), FmtCount(b.num_core),
                  FmtCount(b.num_non_core)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Table 3): rho in ~[1.1, 1.7] for "
               "d_avg >= 2; the bound degenerates on near-forest graphs "
               "(cit-patents stand-in, d_avg ~ 1.1) where the Theorem 4.2 "
               "lower bound collapses — see EXPERIMENTS.md.\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
