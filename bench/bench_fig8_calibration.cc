// Reproduces Figure 8: shared/global memory bandwidth BW(d) (left axis) and
// the balance-point compute multiplier p_c(d) (right axis) as functions of
// adjacency-list length, measured against the simulator (the paper uses
// nvprof on real hardware). Paper shape: both grow with list length.

#include <iostream>

#include "bench_util.h"
#include "order/calibration.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figure 8",
              "BW(d) and p_c(d) vs adjacency list length (simulator "
              "measurement replacing nvprof)");
  const CalibrationResult r =
      CalibrateResourceModel(DeviceSpec::TitanXpLike(), /*max_list_length=*/
                             1 << 16);
  TablePrinter table({"list length", "BW (bytes/cycle)", "p_c",
                      "F_c=sqrt(1/d)", "F_m=sqrt(BW)"});
  for (const CalibrationSample& s : r.samples) {
    table.AddRow({FmtCount(s.list_length), Fmt(s.bandwidth, 1), Fmt(s.p_c, 1),
                  Fmt(s.compute_intensity, 4), Fmt(s.memory_intensity, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Figure 8): BW and p_c both grow with "
               "list length. Deviation: our idealized coalescer saturates "
               "exactly once every lane owns a segment (length >= "
               "warp_size * elements_per_transaction interplay); real "
               "hardware keeps degrading gently past that point.\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
