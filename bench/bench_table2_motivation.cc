// Reproduces Table 2: kernel running time of Hu's algorithm on four datasets
// under different vertex Reorder strategies and edge Direction strategies.
// Paper shape: D-order is by far the worst; A-order beats Original;
// A-direction beats ID-based and edges out D-direction.

#include <iostream>

#include "bench_util.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Table 2",
              "Hu's kernel under {D-order, A-order, Original} x "
              "{D-direction, ID-based, A-direction} (kernel ms)");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();

  TablePrinter table({"dataset", "D-order/D-dir", "A-order/D-dir",
                      "Origin/D-dir", "Origin/ID", "Origin/A-dir"});
  for (const std::string& name : Table2Datasets()) {
    const Graph g = LoadDataset(name);
    struct Config {
      OrderingStrategy ord;
      DirectionStrategy dir;
    };
    const Config configs[] = {
        {OrderingStrategy::kDegree, DirectionStrategy::kDegreeBased},
        {OrderingStrategy::kAOrder, DirectionStrategy::kDegreeBased},
        {OrderingStrategy::kOriginal, DirectionStrategy::kDegreeBased},
        {OrderingStrategy::kOriginal, DirectionStrategy::kIdBased},
        {OrderingStrategy::kOriginal, DirectionStrategy::kADirection},
    };
    std::vector<std::string> row = {name};
    for (const Config& c : configs) {
      const RunResult r = Run(g, TcAlgorithm::kHu, c.dir, c.ord, spec);
      row.push_back(Fmt(r.kernel_ms(), 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Table 2): column 1 (D-order) is the "
               "worst; column 2 (A-order) beats column 3 (Original); column "
               "5 (A-direction) beats columns 3 and 4.\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
