// Reproduces Figure 14: vertex ordering on Gunrock (binary-search
// intersection). Paper shape: D-order worst (more resource conflicts);
// A-order improves total time by 6.0%..82.4% over the original order.

#include <iostream>

#include "bench_util.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figure 14",
              "Vertex ordering on Gunrock (kernel/total ms, D-direction)");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  TablePrinter table({"dataset", "Origin", "D-order", "A-order k(r)",
                      "A vs Origin kernel"});
  for (const std::string& name : FigureDatasets()) {
    const Graph g = LoadDataset(name);
    const RunResult origin =
        Run(g, TcAlgorithm::kGunrockBinarySearch,
            DirectionStrategy::kDegreeBased, OrderingStrategy::kOriginal,
            spec);
    const RunResult dorder =
        Run(g, TcAlgorithm::kGunrockBinarySearch,
            DirectionStrategy::kDegreeBased, OrderingStrategy::kDegree, spec);
    const RunResult aorder =
        Run(g, TcAlgorithm::kGunrockBinarySearch,
            DirectionStrategy::kDegreeBased, OrderingStrategy::kAOrder, spec);
    table.AddRow({name, Fmt(origin.kernel_ms(), 3), Fmt(dorder.kernel_ms(), 3),
                  Fmt(aorder.kernel_ms(), 3) + " (" +
                      Fmt(aorder.preprocess.ordering_ms, 0) + ")",
                  SpeedupPercent(origin.kernel_ms(), aorder.kernel_ms())});
  }
  table.Print(std::cout);
  std::cout << "\nColumns: 'k (r)' = simulated kernel ms (host reorder wall "
               "ms). Expected shape (paper Figure 14): D-order worst; "
               "A-order beats the original ordering on most datasets (paper: "
               "6.0%..82.4% on total time; kernel and reorder magnitudes are "
               "reported separately here, see EXPERIMENTS.md).\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
