// Ablation (beyond the paper): agreement between the closed-form block cost
// model (used by every kernel simulation) and the event-driven warp
// scheduler reference. High rank correlation justifies using the cheap
// closed form for all table/figure reproductions.

#include <iostream>

#include "bench_util.h"
#include "sim/block_cost.h"
#include "sim/warp_scheduler.h"
#include "util/random.h"
#include "util/stats.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Ablation: cost model vs event-driven scheduler",
              "Closed-form BlockCostModel vs WarpSchedulerSim over random "
              "block workloads");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const WarpSchedulerSim reference(spec);
  Rng rng(2024);

  std::vector<double> analytic;
  std::vector<double> event_driven;
  TablePrinter table({"mem bias", "scale", "analytic cycles",
                      "event-driven cycles", "ratio"});
  for (int trial = 0; trial < 25; ++trial) {
    const double mem_bias = (trial % 5) / 4.0;
    const double scale = 1.0 + (trial % 7) * 2.0;
    std::vector<WarpTrace> traces;
    std::vector<ThreadWork> threads(
        static_cast<size_t>(spec.threads_per_block()));
    for (int w = 0; w < spec.warps_per_block; ++w) {
      WarpTrace trace;
      double total_c = 0.0, total_m = 0.0;
      for (int s = 0; s < 4; ++s) {
        WarpSegment seg;
        seg.compute_cycles =
            scale * (1.0 + rng.NextDouble() * 16.0 * (1.0 - mem_bias));
        seg.mem_transactions = scale * rng.NextDouble() * 10.0 * mem_bias;
        total_c += seg.compute_cycles;
        total_m += seg.mem_transactions;
        trace.push_back(seg);
      }
      traces.push_back(trace);
      for (int lane = 0; lane < spec.warp_size; ++lane) {
        ThreadWork& t =
            threads[static_cast<size_t>(w * spec.warp_size + lane)];
        t.compute_ops = total_c;
        t.mem_transactions = total_m / spec.warp_size;
      }
    }
    const double a = PriceBlock(spec, threads).cycles;
    const double e = reference.RunBlock(traces).cycles;
    analytic.push_back(a);
    event_driven.push_back(e);
    if (trial % 5 == 0) {
      table.AddRow({Fmt(mem_bias, 2), Fmt(scale, 1), Fmt(a, 1), Fmt(e, 1),
                    Fmt(e > 0 ? a / e : 0.0, 3)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nPearson correlation over 25 random blocks: "
            << Fmt(PearsonCorrelation(analytic, event_driven), 3)
            << " (expected > 0.8: the closed form tracks the scheduler).\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
