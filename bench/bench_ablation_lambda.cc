// Ablation (beyond the paper): sensitivity of A-order to lambda. The paper
// fixes lambda by calibration (9.682 on its hardware); this sweep scales the
// calibrated lambda up and down and reports the resulting kernel time, to
// show how much the preprocessing depends on getting lambda right.

#include <iostream>

#include "bench_util.h"
#include "core/preprocess.h"
#include "direction/direction.h"
#include "graph/permutation.h"
#include "order/calibration.h"
#include "tc/tricore.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Ablation: lambda sensitivity",
              "A-order with scaled lambda on TriCore (kron-logn18, "
              "D-direction)");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const CalibrationResult calibration = CalibrateResourceModel(spec);
  const Graph g = LoadDataset("kron-logn18");
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  const std::vector<EdgeCount> degs = d.OutDegrees();

  TablePrinter table({"lambda scale", "lambda", "mem-dominated",
                      "comp-dominated", "TriCore kernel ms"});
  for (double scale : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 10.0}) {
    const ResourceModel model =
        ResourceModel::ForDevice(spec, calibration.lambda * scale);
    const AOrderResult order =
        AOrder(degs, model, AOrderOptions{spec.threads_per_block()});
    const DirectedGraph relabeled = ApplyPermutation(d, order.perm);
    const double ms = TriCoreCounter().Count(relabeled, spec).kernel.millis;
    table.AddRow({Fmt(scale, 2), Fmt(calibration.lambda * scale, 2),
                  FmtCount(order.num_memory_dominated),
                  FmtCount(order.num_compute_dominated), Fmt(ms, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nReading: kernel time is flattest around the calibrated "
               "lambda (scale 1.0); extreme scales collapse one dominance "
               "class and lose part of the balancing signal, though the "
               "greedy packing still spreads load by |mem_sup| magnitude.\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
