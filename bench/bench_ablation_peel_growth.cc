// Ablation (beyond the paper): A-direction's threshold growth factor.
// Algorithm 1 doubles the peeling threshold each round (Line 19); this sweep
// shows how the growth factor trades preprocessing rounds against the Eq. 1
// cost of the produced orientation.

#include <iostream>

#include "bench_util.h"
#include "direction/cost_model.h"
#include "direction/peeling.h"
#include "graph/permutation.h"
#include "util/timer.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Ablation: peeling threshold growth",
              "A-direction growth factor sweep (Eq. 1 cost, rounds, time)");
  for (const char* name : {"gowalla", "kron-logn18"}) {
    const Graph g = LoadDataset(name);
    std::cout << "dataset: " << name << "\n";
    TablePrinter table(
        {"growth", "Eq.1 cost", "rounds", "peel degree", "time ms"});
    for (double growth : {1.25, 1.5, 2.0, 3.0, 4.0, 8.0}) {
      PeelingOptions options;
      options.threshold_growth = growth;
      Timer timer;
      const PeelingResult peel = ADirectionPeel(g, options);
      const double ms = timer.ElapsedMillis();
      const DirectedGraph d = DirectedGraph::FromRank(
          g, PermutationFromSequence(peel.peel_order));
      table.AddRow({Fmt(growth, 2), Fmt(DirectionCost(d), 0),
                    FmtCount(peel.rounds), FmtCount(peel.peel_degree),
                    Fmt(ms, 2)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading: the paper's doubling (growth = 2) sits on the knee: "
               "slower growth buys little extra cost reduction for more "
               "rounds; faster growth degrades toward degree-based "
               "behaviour.\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
