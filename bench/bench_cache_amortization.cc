// Preprocessing-cache amortization: the same manifest of graph files — a few
// distinct graphs, each requested several times — pushed through the
// BatchService cold (no cache) and warm (pre-filled in-memory cache), at
// jobs = 1, 4, 8. There is no paper counterpart; the cache is service
// infrastructure around the paper's pipeline. The claim under measurement is
// the one the README makes: when the workload repeats graphs, a warm cache
// amortizes ordering + direction + calibration down to a fingerprint lookup,
// and warm throughput is a multiple of cold. Writes BENCH_cache.json.
//
// The graphs are large sparse ER (cheap binary load, few triangles) so the
// per-request cost is dominated by preprocessing — the regime the cache is
// for. Dense repeat-heavy workloads land closer to 1x because counting,
// which the cache cannot skip, dominates.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/prep_cache.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "service/batch_service.h"
#include "util/stats.h"

namespace gputc {
namespace bench {
namespace {

constexpr int kDistinctGraphs = 4;
constexpr int kRepeats = 6;  // 24 requests over 4 graphs.
constexpr VertexId kNodes = 400000;
constexpr EdgeCount kEdges = 200000;
constexpr int kTrials = 3;  // Best-of, to shed scheduler noise.

struct ConfigResult {
  int jobs = 0;
  double cold_rps = 0.0;
  double warm_rps = 0.0;
  double speedup = 0.0;
  double cold_p50_ms = 0.0;
  double warm_p50_ms = 0.0;
};

/// Writes the distinct graphs as binary files once, up front; returns their
/// paths. Binary load is a checksummed read — milliseconds — so per-request
/// cost is preprocessing, not materialization.
std::vector<std::string> WriteGraphFiles() {
  std::vector<std::string> paths;
  for (int g = 0; g < kDistinctGraphs; ++g) {
    const Graph graph =
        GenerateErdosRenyi(kNodes, kEdges, static_cast<uint64_t>(g + 1));
    const std::string path =
        "BENCH_cache_graph_" + std::to_string(g) + ".bin";
    if (!SaveBinary(graph, path)) {
      std::cerr << "fatal: cannot write " << path << "\n";
      std::exit(1);
    }
    paths.push_back(path);
  }
  return paths;
}

/// Repeated-graph workload: each file requested kRepeats times under a
/// distinct request id. Identical bytes mean repeats share one cache
/// fingerprint.
std::vector<BatchRequest> MakeWorkload(const std::vector<std::string>& paths) {
  std::vector<BatchRequest> requests;
  requests.reserve(kDistinctGraphs * kRepeats);
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    for (int g = 0; g < kDistinctGraphs; ++g) {
      BatchRequest request;
      request.id = std::to_string(repeat * kDistinctGraphs + g) +
                   ":file:" + paths[static_cast<size_t>(g)];
      request.source = "file:" + paths[static_cast<size_t>(g)];
      request.kind = BatchRequest::Kind::kFile;
      request.target = paths[static_cast<size_t>(g)];
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

struct RunStats {
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
};

RunStats RunOnce(int jobs, PrepCache* cache,
                 const std::vector<std::string>& paths) {
  BatchServiceOptions options;
  options.jobs = jobs;
  options.queue_depth = kDistinctGraphs * kRepeats;
  options.prep_cache = cache;
  BatchService service(options);

  LatencyRecorder latencies;
  service.set_on_report(
      [&](const RequestReport& report) { latencies.Record(report.exec_ms); });

  const auto started = std::chrono::steady_clock::now();
  service.Start();
  for (BatchRequest& request : MakeWorkload(paths)) {
    service.Submit(std::move(request));
  }
  const BatchSummary summary = service.Finish();
  const auto finished = std::chrono::steady_clock::now();

  if (!summary.AllSucceeded()) {
    std::cerr << "warning: " << summary.CountOutcome(RequestOutcome::kFailed)
              << " failed requests perturb this measurement\n";
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(finished - started).count();
  RunStats stats;
  stats.requests_per_sec =
      wall_ms > 0.0 ? 1000.0 * summary.reports.size() / wall_ms : 0.0;
  stats.p50_ms = latencies.PercentileValue(50.0);
  return stats;
}

void Main() {
  PrintHeader("Cache amortization",
              "BatchService req/s on a repeated-graph workload, cold (no "
              "cache) vs warm (pre-filled cache), by worker count");

  const std::vector<std::string> paths = WriteGraphFiles();

  // One shared in-memory cache, warmed by a throwaway run so every measured
  // warm request is a pure hit.
  PrepCache cache(kDefaultPrepCacheBytes, /*store=*/nullptr);
  (void)RunOnce(/*jobs=*/4, &cache, paths);

  std::vector<ConfigResult> results;
  for (int jobs : {1, 4, 8}) {
    ConfigResult r;
    r.jobs = jobs;
    RunStats cold, warm;
    for (int trial = 0; trial < kTrials; ++trial) {
      const RunStats c = RunOnce(jobs, /*cache=*/nullptr, paths);
      const RunStats w = RunOnce(jobs, &cache, paths);
      if (c.requests_per_sec > cold.requests_per_sec) cold = c;
      if (w.requests_per_sec > warm.requests_per_sec) warm = w;
    }
    r.cold_rps = cold.requests_per_sec;
    r.warm_rps = warm.requests_per_sec;
    r.speedup = cold.requests_per_sec > 0.0
                    ? warm.requests_per_sec / cold.requests_per_sec
                    : 0.0;
    r.cold_p50_ms = cold.p50_ms;
    r.warm_p50_ms = warm.p50_ms;
    results.push_back(r);
  }

  TablePrinter table({"jobs", "cold req/s", "warm req/s", "speedup",
                      "cold p50 ms", "warm p50 ms"});
  for (const ConfigResult& r : results) {
    table.AddRow({std::to_string(r.jobs), Fmt(r.cold_rps, 1),
                  Fmt(r.warm_rps, 1), Fmt(r.speedup, 2) + "x",
                  Fmt(r.cold_p50_ms, 2), Fmt(r.warm_p50_ms, 2)});
  }
  table.Print(std::cout);

  const PrepCacheStats stats = cache.stats();
  std::cout << "cache: " << stats.memory_hits << " hits, " << stats.misses
            << " fills, " << stats.resident_bytes << " resident bytes\n";

  std::ofstream json("BENCH_cache.json");
  json << "{\n  \"bench\": \"cache_amortization\",\n  \"requests\": "
       << kDistinctGraphs * kRepeats << ",\n  \"distinct_graphs\": "
       << kDistinctGraphs << ",\n  \"configs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    json << "    {\"jobs\": " << r.jobs << ", \"cold_requests_per_sec\": "
         << r.cold_rps << ", \"warm_requests_per_sec\": " << r.warm_rps
         << ", \"speedup\": " << r.speedup << ", \"cold_p50_ms\": "
         << r.cold_p50_ms << ", \"warm_p50_ms\": " << r.warm_p50_ms << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_cache.json\n";
  for (const std::string& path : paths) std::remove(path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
