// Reproduces Figure 13: edge direction methods on Bisson's block-per-vertex
// bitmap algorithm. Paper shape: ID-based works significantly worse; the
// A-direction speedup over D-direction is 2.6%..54.9%, and kernel time far
// exceeds preprocessing time so kernel and total speedups almost coincide.

#include <iostream>

#include "bench_util.h"

namespace gputc {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figure 13",
              "Edge direction methods on Bisson's algorithm: kernel ms and "
              "A-direction vs D-direction speedups");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  TablePrinter table({"dataset", "ID-based", "D-direction", "A-direction",
                      "A vs D kernel", "A vs D total"});
  for (const std::string& name : FigureDatasets()) {
    const Graph g = LoadDataset(name);
    const RunResult id =
        Run(g, TcAlgorithm::kBisson, DirectionStrategy::kIdBased,
            OrderingStrategy::kOriginal, spec);
    const RunResult dd =
        Run(g, TcAlgorithm::kBisson, DirectionStrategy::kDegreeBased,
            OrderingStrategy::kOriginal, spec);
    const RunResult ad =
        Run(g, TcAlgorithm::kBisson, DirectionStrategy::kADirection,
            OrderingStrategy::kOriginal, spec);
    table.AddRow({name, Fmt(id.kernel_ms(), 3), Fmt(dd.kernel_ms(), 3),
                  Fmt(ad.kernel_ms(), 3),
                  SpeedupPercent(dd.kernel_ms(), ad.kernel_ms()),
                  SpeedupPercent(dd.total_ms(), ad.total_ms())});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Figure 13): ID-based slowest by a "
               "wide margin; A-direction at least matches D-direction.\n";
}

}  // namespace
}  // namespace bench
}  // namespace gputc

int main() { gputc::bench::Main(); }
