#ifndef GPUTC_OBS_METRICS_H_
#define GPUTC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gputc {

// A lock-cheap metrics registry in the Prometheus data model: counter,
// gauge, and histogram families keyed by name, each family holding one
// series per label set. Lookup (GetCounter/GetGauge/GetHistogram) takes the
// registry mutex once and returns a stable reference — hot paths cache the
// reference and then update it with plain atomic operations, so recording a
// sample is a fetch_add, never a lock. Snapshots and the exporters read the
// atomics live; a snapshot taken concurrently with writers is coherent in
// the sense that every per-series value is a real momentary value and a
// histogram's count equals the sum of its buckets by construction.

/// Sorted (key, value) label pairs identifying one series of a family.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value gauge.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-width histogram over [lo, hi) with `buckets` finite buckets plus an
/// overflow bucket for values >= hi (the Prometheus "+Inf" bucket is always
/// the total). Values below lo clamp into the first bucket. Observe is a
/// relaxed fetch_add per bucket plus one for the value sum.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, int buckets);

  void Observe(double value);

  struct Snapshot {
    double lo = 0.0;
    double hi = 0.0;
    /// Finite buckets then the overflow bucket (size = buckets + 1).
    std::vector<int64_t> counts;
    int64_t count = 0;  // Sum of `counts` — coherent by construction.
    double sum = 0.0;   // Sum of observed values.
  };
  Snapshot TakeSnapshot() const;

  /// Upper edge of finite bucket `i` (the Prometheus "le" bound).
  double UpperEdge(int i) const;
  int num_finite_buckets() const { return static_cast<int>(counts_.size()) - 1; }

 private:
  double lo_;
  double hi_;
  std::vector<std::atomic<int64_t>> counts_;  // buckets + 1 (overflow).
  std::atomic<double> sum_{0.0};
};

/// One exported series with its resolved identity, for programmatic readers.
struct MetricSample {
  std::string name;
  LabelSet labels;
  char type = 'c';  // 'c' counter, 'g' gauge, 'h' histogram.
  int64_t counter_value = 0;
  double gauge_value = 0.0;
  HistogramMetric::Snapshot histogram;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the series for (`name`, `labels`), creating it on first use.
  /// `help` is recorded on first use of the family. The reference stays
  /// valid for the registry's lifetime; metric names must match
  /// [a-zA-Z_:][a-zA-Z0-9_:]* (checked fatally — names are code, not data).
  /// A name registered as one type fatally rejects use as another.
  Counter& GetCounter(std::string_view name, std::string_view help,
                      LabelSet labels = {});
  Gauge& GetGauge(std::string_view name, std::string_view help,
                  LabelSet labels = {});
  HistogramMetric& GetHistogram(std::string_view name, std::string_view help,
                                double lo, double hi, int buckets,
                                LabelSet labels = {});

  /// Every series of every family, families in name order, series in label
  /// order — the stable order both exporters use.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus text exposition format (histograms as cumulative _bucket /
  /// _sum / _count series).
  std::string PrometheusText() const;

  /// JSON object {"metrics":[{name, type, labels, value|histogram}, ...]}.
  std::string Json() const;

  /// The process-wide registry the built-in instrumentation records into
  /// (pipeline stage timings, executor attempts, batch service outcomes).
  /// `gputc count/batch --metrics-out` snapshots this.
  static MetricsRegistry& Global();

 private:
  struct Family {
    char type = 'c';
    std::string help;
    double lo = 0.0, hi = 0.0;  // Histogram shape, fixed at first use.
    int buckets = 0;
    std::map<LabelSet, std::unique_ptr<Counter>> counters;
    std::map<LabelSet, std::unique_ptr<Gauge>> gauges;
    std::map<LabelSet, std::unique_ptr<HistogramMetric>> histograms;
  };

  Family& FamilyFor(std::string_view name, std::string_view help, char type);

  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
};

}  // namespace gputc

#endif  // GPUTC_OBS_METRICS_H_
