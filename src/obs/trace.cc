#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <random>

namespace gputc {
namespace {

/// Stable small per-thread id, assigned in first-use order. The Chrome trace
/// "tid" field wants small integers, not opaque std::thread::id hashes.
int CurrentThreadId() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// JSON string escaping (quotes, backslashes, control characters).
void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

uint64_t GenerateTraceId() {
  // The salt decorrelates concurrent processes; the counter guarantees
  // uniqueness within one. The low bit is forced so an id is never 0.
  static const uint64_t salt = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd();
  }();
  static std::atomic<uint64_t> next{1};
  const uint64_t n = next.fetch_add(1, std::memory_order_relaxed);
  // SplitMix64-style finalizer spreads the counter over the word.
  uint64_t z = salt + n * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return (z ^ (z >> 31)) | 1ull;
}

std::string TraceIdHex(uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, trace_id);
  return buf;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    Finish();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::Finish() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  record_.dur_us = tracer->NowMicros() - record_.start_us;
  record_.thread_id = CurrentThreadId();
  tracer->Record(std::move(record_));
}

void Span::SetAttr(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  record_.attrs.emplace_back(std::string(key), std::string(value));
}

void Span::SetAttr(std::string_view key, int64_t value) {
  if (tracer_ == nullptr) return;
  record_.attrs.emplace_back(std::string(key), std::to_string(value));
}

void Span::SetAttr(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  record_.attrs.emplace_back(std::string(key), buf);
}

void Span::SetStatus(const Status& status) {
  if (tracer_ == nullptr || status.ok()) return;
  SetAttr("status", StatusCodeName(status.code()));
}

Tracer::Tracer() {
  const auto epoch = std::chrono::steady_clock::now();
  clock_ = [epoch] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  };
}

Tracer::Tracer(std::function<int64_t()> clock_us) : clock_(std::move(clock_us)) {}

Span Tracer::StartSpan(std::string_view name, uint64_t trace_id,
                       uint64_t parent_id) {
  Span span;
  span.tracer_ = this;
  span.record_.trace_id = trace_id;
  span.record_.span_id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  span.record_.parent_id = parent_id;
  span.record_.name = std::string(name);
  span.record_.start_us = NowMicros();
  return span;
}

void Tracer::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<SpanRecord> spans = Snapshot();
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"";
    AppendJsonEscaped(out, s.name);
    out += "\",\"cat\":\"gputc\",\"ph\":\"X\",\"ts\":" +
           std::to_string(s.start_us) + ",\"dur\":" + std::to_string(s.dur_us) +
           ",\"pid\":1,\"tid\":" + std::to_string(s.thread_id) + ",\"args\":{";
    out += "\"trace_id\":\"" + TraceIdHex(s.trace_id) + "\"";
    out += ",\"span_id\":" + std::to_string(s.span_id);
    out += ",\"parent_id\":" + std::to_string(s.parent_id);
    for (const auto& [key, value] : s.attrs) {
      out += ",\"";
      AppendJsonEscaped(out, key);
      out += "\":\"";
      AppendJsonEscaped(out, value);
      out += "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Span StartSpan(const ExecContext& ctx, std::string_view name) {
  if (ctx.tracer == nullptr) return Span();
  return ctx.tracer->StartSpan(name, ctx.trace_id, ctx.parent_span);
}

ExecContext WithSpan(const ExecContext& ctx, const Span& span) {
  ExecContext child = ctx;
  if (span.active()) {
    child.trace_id = span.trace_id();
    child.parent_span = span.id();
  }
  return child;
}

}  // namespace gputc
