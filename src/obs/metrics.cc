#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace gputc {
namespace {

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Shortest round-trippable-enough rendering; integers print without a
/// decimal point, which keeps the golden exporter outputs readable.
std::string FormatDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  return buf;
}

/// Prometheus label-value escaping: backslash, quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Renders {k="v",...} (or nothing for an empty set); `extra` appends one
/// more pair, used for the histogram "le" label.
std::string RenderLabels(const LabelSet& labels,
                         const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ",";
    out += extra->first + "=\"" + EscapeLabelValue(extra->second) + "\"";
  }
  out += "}";
  return out;
}

const char* TypeName(char type) {
  switch (type) {
    case 'c':
      return "counter";
    case 'g':
      return "gauge";
    default:
      return "histogram";
  }
}

}  // namespace

HistogramMetric::HistogramMetric(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), counts_(static_cast<size_t>(buckets) + 1) {
  GPUTC_CHECK_GT(buckets, 0);
  GPUTC_CHECK_LT(lo, hi);
}

void HistogramMetric::Observe(double value) {
  const int n = num_finite_buckets();
  int idx;
  if (value >= hi_) {
    idx = n;  // Overflow bucket.
  } else {
    idx = static_cast<int>((value - lo_) / (hi_ - lo_) * n);
    idx = std::clamp(idx, 0, n - 1);
  }
  counts_[static_cast<size_t>(idx)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramMetric::Snapshot HistogramMetric::TakeSnapshot() const {
  Snapshot snap;
  snap.lo = lo_;
  snap.hi = hi_;
  snap.counts.reserve(counts_.size());
  for (const std::atomic<int64_t>& c : counts_) {
    const int64_t v = c.load(std::memory_order_relaxed);
    snap.counts.push_back(v);
    snap.count += v;
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramMetric::UpperEdge(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(num_finite_buckets());
}

MetricsRegistry::Family& MetricsRegistry::FamilyFor(std::string_view name,
                                                    std::string_view help,
                                                    char type) {
  GPUTC_CHECK(IsValidMetricName(name)) << "invalid metric name '" << name
                                       << "'";
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{}).first;
    it->second.type = type;
    it->second.help = std::string(help);
  }
  GPUTC_CHECK_EQ(it->second.type, type)
      << "metric '" << name << "' registered as " << TypeName(it->second.type)
      << ", used as " << TypeName(type);
  return it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help, LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, 'c');
  std::unique_ptr<Counter>& slot = family.counters[std::move(labels)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, 'g');
  std::unique_ptr<Gauge>& slot = family.gauges[std::move(labels)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::GetHistogram(std::string_view name,
                                               std::string_view help,
                                               double lo, double hi,
                                               int buckets, LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, 'h');
  if (family.histograms.empty()) {
    family.lo = lo;
    family.hi = hi;
    family.buckets = buckets;
  }
  // One bucket layout per family, or the cumulative export would lie.
  GPUTC_CHECK(family.lo == lo && family.hi == hi && family.buckets == buckets)
      << "histogram '" << name << "' re-registered with different buckets";
  std::unique_ptr<HistogramMetric>& slot =
      family.histograms[std::move(labels)];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>(lo, hi, buckets);
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, counter] : family.counters) {
      MetricSample sample;
      sample.name = name;
      sample.labels = labels;
      sample.type = 'c';
      sample.counter_value = counter->value();
      out.push_back(std::move(sample));
    }
    for (const auto& [labels, gauge] : family.gauges) {
      MetricSample sample;
      sample.name = name;
      sample.labels = labels;
      sample.type = 'g';
      sample.gauge_value = gauge->value();
      out.push_back(std::move(sample));
    }
    for (const auto& [labels, histogram] : family.histograms) {
      MetricSample sample;
      sample.name = name;
      sample.labels = labels;
      sample.type = 'h';
      sample.histogram = histogram->TakeSnapshot();
      out.push_back(std::move(sample));
    }
  }
  return out;
}

std::string MetricsRegistry::PrometheusText() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " " + std::string(TypeName(family.type)) + "\n";
    for (const auto& [labels, counter] : family.counters) {
      out += name + RenderLabels(labels, nullptr) + " " +
             std::to_string(counter->value()) + "\n";
    }
    for (const auto& [labels, gauge] : family.gauges) {
      out += name + RenderLabels(labels, nullptr) + " " +
             FormatDouble(gauge->value()) + "\n";
    }
    for (const auto& [labels, histogram] : family.histograms) {
      const HistogramMetric::Snapshot snap = histogram->TakeSnapshot();
      int64_t cumulative = 0;
      for (int i = 0; i < static_cast<int>(snap.counts.size()) - 1; ++i) {
        cumulative += snap.counts[static_cast<size_t>(i)];
        const std::pair<std::string, std::string> le = {
            "le", FormatDouble(histogram->UpperEdge(i))};
        out += name + "_bucket" + RenderLabels(labels, &le) + " " +
               std::to_string(cumulative) + "\n";
      }
      const std::pair<std::string, std::string> inf = {"le", "+Inf"};
      out += name + "_bucket" + RenderLabels(labels, &inf) + " " +
             std::to_string(snap.count) + "\n";
      out += name + "_sum" + RenderLabels(labels, nullptr) + " " +
             FormatDouble(snap.sum) + "\n";
      out += name + "_count" + RenderLabels(labels, nullptr) + " " +
             std::to_string(snap.count) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  const std::vector<MetricSample> samples = Snapshot();
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(s.name) + "\",\"type\":\"" +
           TypeName(s.type) + "\",\"labels\":{";
    for (size_t j = 0; j < s.labels.size(); ++j) {
      if (j > 0) out += ",";
      out += "\"" + JsonEscape(s.labels[j].first) + "\":\"" +
             JsonEscape(s.labels[j].second) + "\"";
    }
    out += "}";
    if (s.type == 'c') {
      out += ",\"value\":" + std::to_string(s.counter_value);
    } else if (s.type == 'g') {
      out += ",\"value\":" + FormatDouble(s.gauge_value);
    } else {
      out += ",\"histogram\":{\"lo\":" + FormatDouble(s.histogram.lo) +
             ",\"hi\":" + FormatDouble(s.histogram.hi) + ",\"counts\":[";
      for (size_t j = 0; j < s.histogram.counts.size(); ++j) {
        if (j > 0) out += ",";
        out += std::to_string(s.histogram.counts[j]);
      }
      out += "],\"count\":" + std::to_string(s.histogram.count) +
             ",\"sum\":" + FormatDouble(s.histogram.sum) + "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace gputc
