#ifndef GPUTC_OBS_TRACE_H_
#define GPUTC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/deadline.h"
#include "util/status.h"

namespace gputc {

// Tracing spans for the counting pipeline. A Span is an RAII handle: it
// measures wall-clock time between construction and Finish() (or
// destruction) and records itself into its Tracer together with a trace id,
// a parent span id, and key:value attributes. The design rule for hot paths
// is *poll, don't allocate*: spans are opened at stage granularity (load,
// validate, direct, order, count, one per fallback attempt, one per A-order
// bucket pass) — never per block, per vertex, or per arc, where the existing
// ExecContext poll already visits. An inert Span (no tracer) is two pointer
// stores, so instrumented code runs untraced at effectively zero cost.

/// One finished span. Times are microseconds relative to the tracer's epoch
/// (steady clock), so a trace file is self-consistent even across threads.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root of its trace.
  std::string name;
  int64_t start_us = 0;
  int64_t dur_us = 0;
  /// Small stable id of the recording thread (first-use order), used as the
  /// Chrome trace "tid" so Perfetto lanes match worker threads.
  int thread_id = 0;
  /// Attributes in insertion order. Values are preformatted strings; numeric
  /// setters format once at set time so export never re-parses.
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Process-unique, never-zero trace id: a per-process random salt mixed with
/// a monotonic counter, so ids from concurrent services do not collide and a
/// journal line's id is unique within (and practically across) runs.
uint64_t GenerateTraceId();

/// 16-digit lower-case hex rendering used by the journal and exporters.
std::string TraceIdHex(uint64_t trace_id);

class Tracer;

/// RAII span handle. Default-constructed spans are inert: every method is a
/// cheap no-op, which is how untraced runs pay nothing. Move-only.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  ~Span() { Finish(); }

  /// Records the span into its tracer. Idempotent; the destructor calls it.
  void Finish();

  void SetAttr(std::string_view key, std::string_view value);
  void SetAttr(std::string_view key, const char* value) {
    SetAttr(key, std::string_view(value));
  }
  void SetAttr(std::string_view key, int64_t value);
  void SetAttr(std::string_view key, double value);
  /// Records "status" = code string for a non-OK status; no-op on OK.
  void SetStatus(const Status& status);

  bool active() const { return tracer_ != nullptr; }
  uint64_t id() const { return record_.span_id; }
  uint64_t trace_id() const { return record_.trace_id; }

 private:
  friend class Tracer;
  Tracer* tracer_ = nullptr;
  SpanRecord record_;
};

/// Thread-safe collector of finished spans plus the exporters. Writers only
/// touch the tracer on Finish() (one lock + one vector push per span);
/// in-progress spans live on the opener's stack.
class Tracer {
 public:
  Tracer();
  /// Injectable microsecond clock for deterministic tests (golden Chrome
  /// traces need stable ts/dur values).
  explicit Tracer(std::function<int64_t()> clock_us);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  uint64_t NewTraceId() const { return GenerateTraceId(); }

  /// Opens a span under (`trace_id`, `parent_id`). parent_id 0 makes a root.
  Span StartSpan(std::string_view name, uint64_t trace_id,
                 uint64_t parent_id = 0);

  /// Microseconds since the tracer's epoch (or the injected clock's value).
  int64_t NowMicros() const { return clock_(); }

  /// Copy of every finished span, in completion order.
  std::vector<SpanRecord> Snapshot() const;
  size_t size() const;

  /// Chrome trace-event JSON ("X" complete events), loadable in
  /// chrome://tracing and Perfetto. Span/trace/parent ids land in "args".
  std::string ChromeTraceJson() const;

 private:
  friend class Span;
  void Record(SpanRecord record);

  std::function<int64_t()> clock_;
  std::atomic<uint64_t> next_span_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// Opens a span as a child of `ctx`'s current span on `ctx`'s tracer; inert
/// when the context carries no tracer. This is the one-liner the pipeline
/// stages and counters use, so instrumentation never branches by hand.
Span StartSpan(const ExecContext& ctx, std::string_view name);

/// Copy of `ctx` re-parented under `span`, for handing to a callee whose
/// spans should nest inside it. When `span` is inert the copy is unchanged.
ExecContext WithSpan(const ExecContext& ctx, const Span& span);

}  // namespace gputc

#endif  // GPUTC_OBS_TRACE_H_
