#ifndef GPUTC_GRAPH_GRAPH_STATS_H_
#define GPUTC_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace gputc {

/// Structural summary of a graph — the quantities that determine how much
/// the paper's preprocessing can help (degree skew drives Eq. 1; the
/// short/long list mix drives Eq. 3).
struct GraphStats {
  VertexId num_vertices = 0;
  EdgeCount num_edges = 0;
  double average_degree = 0.0;  // 2|E| / |V|.
  EdgeCount max_degree = 0;
  EdgeCount median_degree = 0;
  EdgeCount p99_degree = 0;
  /// Gini coefficient of the degree distribution in [0, 1); 0 = uniform.
  double degree_gini = 0.0;
  /// Continuous MLE estimate of the power-law exponent gamma for degrees
  /// >= gamma_dmin (Clauset et al.); 0 when too few tail samples.
  double gamma_estimate = 0.0;
  EdgeCount gamma_dmin = 2;
  int64_t num_components = 0;
  int64_t largest_component = 0;
  int64_t isolated_vertices = 0;
};

/// Computes the full summary. O(|V| + |E| + |V| log |V|).
GraphStats ComputeGraphStats(const Graph& g);

/// Connected components by BFS; returns each vertex's component id (dense,
/// by discovery order) and fills `sizes` (optional) with component sizes.
std::vector<int64_t> ConnectedComponents(const Graph& g,
                                         std::vector<int64_t>* sizes = nullptr);

/// Multi-line human-readable rendering of the summary.
std::string FormatGraphStats(const GraphStats& stats);

}  // namespace gputc

#endif  // GPUTC_GRAPH_GRAPH_STATS_H_
