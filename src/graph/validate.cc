#include "graph/validate.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>

namespace gputc {
namespace {

/// Largest vertex count VertexId can index (ids live in [0, n)).
constexpr uint64_t kVertexIdCapacity =
    static_cast<uint64_t>(std::numeric_limits<VertexId>::max()) + 1;

std::string EdgeStr(const Edge& e) {
  std::ostringstream out;
  out << "(" << e.u << ", " << e.v << ")";
  return out.str();
}

void AddFinding(std::vector<Finding>& findings, FindingKind kind,
                int64_t count, std::string detail) {
  if (count <= 0) return;
  findings.push_back(Finding{kind, count, std::move(detail)});
}

}  // namespace

const char* FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kSelfLoop:
      return "self-loop";
    case FindingKind::kDuplicateEdge:
      return "duplicate-edge";
    case FindingKind::kUnsortedEdges:
      return "unsorted-edges";
    case FindingKind::kEndpointOutOfRange:
      return "endpoint-out-of-range";
    case FindingKind::kOffsetsNotMonotonic:
      return "offsets-not-monotonic";
    case FindingKind::kOffsetsBadBounds:
      return "offsets-bad-bounds";
    case FindingKind::kAdjacencyOutOfRange:
      return "adjacency-out-of-range";
    case FindingKind::kAdjacencyUnsorted:
      return "adjacency-unsorted";
    case FindingKind::kAsymmetricAdjacency:
      return "asymmetric-adjacency";
    case FindingKind::kVertexCountOverflow:
      return "vertex-count-overflow";
    case FindingKind::kEdgeCountOverflow:
      return "edge-count-overflow";
    case FindingKind::kTriangleOverflowRisk:
      return "triangle-overflow-risk";
  }
  return "unknown";
}

bool FindingIsRepairable(FindingKind kind) {
  switch (kind) {
    case FindingKind::kSelfLoop:
    case FindingKind::kDuplicateEdge:
    case FindingKind::kUnsortedEdges:
      return true;
    default:
      return false;
  }
}

bool ValidationReport::HasStructuralDamage() const {
  for (const Finding& f : findings) {
    if (!FindingIsRepairable(f.kind)) return true;
  }
  return false;
}

std::string ValidationReport::Summary() const {
  if (clean()) return "no defects found";
  std::ostringstream out;
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out << "; ";
    const Finding& f = findings[i];
    out << FindingKindName(f.kind) << " x" << f.count << ": " << f.detail;
  }
  return out.str();
}

Status ValidationReport::ToStatus() const {
  if (clean()) return OkStatus();
  if (HasStructuralDamage()) return DataLossError(Summary());
  return InvalidArgumentError(Summary());
}

Status GraphDoctor::CheckCounts(uint64_t num_vertices,
                                uint64_t num_edges) const {
  if (num_vertices > kVertexIdCapacity) {
    std::ostringstream out;
    out << "vertex count " << num_vertices << " exceeds VertexId capacity "
        << kVertexIdCapacity;
    return ResourceExhaustedError(out.str());
  }
  if (num_vertices > options_.max_vertices) {
    std::ostringstream out;
    out << "vertex count " << num_vertices << " exceeds the configured cap "
        << options_.max_vertices;
    return ResourceExhaustedError(out.str());
  }
  const uint64_t max_edges = static_cast<uint64_t>(options_.max_edges);
  if (num_edges > max_edges) {
    std::ostringstream out;
    out << "edge count " << num_edges << " exceeds the configured cap "
        << max_edges;
    return ResourceExhaustedError(out.str());
  }
  return OkStatus();
}

Status GraphDoctor::CheckCsr(uint64_t num_vertices, uint64_t num_edges,
                             std::span<const EdgeCount> offsets,
                             std::span<const VertexId> adj) {
  if (offsets.size() != num_vertices + 1) {
    std::ostringstream out;
    out << "offsets array has " << offsets.size() << " entries, want "
        << num_vertices + 1;
    return DataLossError(out.str());
  }
  if (!offsets.empty() && offsets[0] != 0) {
    std::ostringstream out;
    out << "offsets[0] = " << offsets[0] << ", want 0";
    return DataLossError(out.str());
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i + 1] < offsets[i]) {
      std::ostringstream out;
      out << "offsets not monotonic: offsets[" << i + 1
          << "] = " << offsets[i + 1] << " < offsets[" << i
          << "] = " << offsets[i];
      return DataLossError(out.str());
    }
  }
  const uint64_t expected_entries = 2 * num_edges;
  if (static_cast<uint64_t>(offsets[num_vertices]) != expected_entries) {
    std::ostringstream out;
    out << "offsets[" << num_vertices << "] = " << offsets[num_vertices]
        << " disagrees with the header edge count (want 2*m = "
        << expected_entries << ")";
    return DataLossError(out.str());
  }
  if (adj.size() != expected_entries) {
    std::ostringstream out;
    out << "adjacency array has " << adj.size() << " entries, want "
        << expected_entries;
    return DataLossError(out.str());
  }
  for (size_t i = 0; i < adj.size(); ++i) {
    if (static_cast<uint64_t>(adj[i]) >= num_vertices) {
      std::ostringstream out;
      out << "adjacency[" << i << "] = " << adj[i]
          << " is out of range for " << num_vertices << " vertices";
      return DataLossError(out.str());
    }
  }
  return OkStatus();
}

ValidationReport GraphDoctor::Examine(const EdgeList& list) const {
  ValidationReport report;

  const Status counts =
      CheckCounts(list.num_vertices(), static_cast<uint64_t>(list.num_edges()));
  if (!counts.ok()) {
    const FindingKind kind = list.num_vertices() > options_.max_vertices
                                 ? FindingKind::kVertexCountOverflow
                                 : FindingKind::kEdgeCountOverflow;
    AddFinding(report.findings, kind, 1, counts.message());
  }

  int64_t self_loops = 0, out_of_range = 0, reversed = 0;
  std::string first_loop, first_oob, first_reversed;
  const std::vector<Edge>& edges = list.edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (e.u == e.v) {
      if (self_loops++ == 0) {
        first_loop = "edge " + std::to_string(i) + " is a self loop " +
                     EdgeStr(e);
      }
      continue;
    }
    if (e.u >= list.num_vertices() || e.v >= list.num_vertices()) {
      if (out_of_range++ == 0) {
        first_oob = "edge " + std::to_string(i) + " = " + EdgeStr(e) +
                    " exceeds the declared " +
                    std::to_string(list.num_vertices()) + "-vertex universe";
      }
    }
    if (e.u > e.v && reversed++ == 0) {
      first_reversed =
          "edge " + std::to_string(i) + " = " + EdgeStr(e) + " has u > v";
    }
  }
  AddFinding(report.findings, FindingKind::kSelfLoop, self_loops, first_loop);
  AddFinding(report.findings, FindingKind::kEndpointOutOfRange, out_of_range,
             first_oob);

  // Duplicates: compare canonicalized keys, reporting the first repeat.
  std::vector<std::pair<uint64_t, size_t>> keys;
  keys.reserve(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (e.u == e.v) continue;
    const uint64_t lo = std::min(e.u, e.v), hi = std::max(e.u, e.v);
    keys.emplace_back((lo << 32) | hi, i);
  }
  std::sort(keys.begin(), keys.end());
  int64_t duplicates = 0;
  std::string first_dup;
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    if (keys[i].first == keys[i + 1].first) {
      if (duplicates++ == 0) {
        first_dup = "edge " + std::to_string(keys[i + 1].second) +
                    " duplicates edge " + std::to_string(keys[i].second) +
                    " " + EdgeStr(edges[keys[i].second]);
      }
    }
  }
  AddFinding(report.findings, FindingKind::kDuplicateEdge, duplicates,
             first_dup);

  // Canonical-order finding only when it is not implied by the ones above.
  if (reversed > 0) {
    AddFinding(report.findings, FindingKind::kUnsortedEdges, reversed,
               first_reversed);
  } else if (self_loops == 0 && duplicates == 0 && !list.IsNormalized()) {
    AddFinding(report.findings, FindingKind::kUnsortedEdges, 1,
               "edges are not sorted in canonical (u, v) order");
  }
  return report;
}

ValidationReport GraphDoctor::Examine(const Graph& g) const {
  ValidationReport report;
  const uint64_t n = g.num_vertices();
  const uint64_t m = static_cast<uint64_t>(g.num_edges());

  const Status counts = CheckCounts(n, m);
  if (!counts.ok()) {
    const FindingKind kind = n > options_.max_vertices
                                 ? FindingKind::kVertexCountOverflow
                                 : FindingKind::kEdgeCountOverflow;
    AddFinding(report.findings, kind, 1, counts.message());
  }

  const Status csr = CheckCsr(n, m, g.offsets(), g.adjacency());
  if (!csr.ok()) {
    // CheckCsr stops at the first structural defect; classify it by message
    // prefix so doctor output stays precise.
    FindingKind kind = FindingKind::kOffsetsBadBounds;
    if (csr.message().find("not monotonic") != std::string::npos) {
      kind = FindingKind::kOffsetsNotMonotonic;
    } else if (csr.message().find("adjacency[") != std::string::npos) {
      kind = FindingKind::kAdjacencyOutOfRange;
    }
    AddFinding(report.findings, kind, 1, csr.message());
    return report;  // Row scans below would index out of bounds.
  }

  int64_t self_loops = 0, unsorted_rows = 0, duplicate_entries = 0,
          asymmetric = 0;
  std::string first_loop, first_unsorted, first_dup, first_asym;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == u && self_loops++ == 0) {
        first_loop = "vertex " + std::to_string(u) + " lists itself";
      }
      if (i > 0 && nbrs[i] < nbrs[i - 1] && unsorted_rows++ == 0) {
        first_unsorted = "row of vertex " + std::to_string(u) +
                         " is not sorted at position " + std::to_string(i);
      }
      if (i > 0 && nbrs[i] == nbrs[i - 1] && duplicate_entries++ == 0) {
        first_dup = "vertex " + std::to_string(u) + " lists neighbor " +
                    std::to_string(nbrs[i]) + " twice";
      }
      if (nbrs[i] != u && !g.HasEdge(nbrs[i], u) && asymmetric++ == 0) {
        first_asym = "edge (" + std::to_string(u) + ", " +
                     std::to_string(nbrs[i]) + ") has no mirror entry";
      }
    }
  }
  AddFinding(report.findings, FindingKind::kSelfLoop, self_loops, first_loop);
  AddFinding(report.findings, FindingKind::kAdjacencyUnsorted, unsorted_rows,
             first_unsorted);
  AddFinding(report.findings, FindingKind::kDuplicateEdge, duplicate_entries,
             first_dup);
  AddFinding(report.findings, FindingKind::kAsymmetricAdjacency, asymmetric,
             first_asym);

  // Wedge count bounds the triangle accumulator; warn before an int64 sum
  // could wrap. Accumulate in 128 bits so the check itself cannot overflow.
  unsigned __int128 wedges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const unsigned __int128 d = static_cast<uint64_t>(g.degree(v));
    wedges += d * (d > 0 ? d - 1 : 0) / 2;
  }
  if (wedges > static_cast<unsigned __int128>(
                   std::numeric_limits<int64_t>::max())) {
    AddFinding(report.findings, FindingKind::kTriangleOverflowRisk, 1,
               "wedge count exceeds int64; triangle accumulators could wrap");
  }
  return report;
}

StatusOr<Graph> GraphDoctor::BuildGraph(EdgeList list, RepairPolicy policy,
                                        ValidationReport* report) const {
  ValidationReport scan = Examine(list);
  if (report != nullptr) *report = scan;
  if (scan.HasStructuralDamage()) {
    return DataLossError(scan.Summary()).WithContext("graph rejected");
  }
  if (!scan.clean() && policy == RepairPolicy::kReject) {
    return InvalidArgumentError(scan.Summary())
        .WithContext("graph rejected (policy kReject; rerun with repair)");
  }
  return Graph::FromEdgeList(std::move(list));
}

}  // namespace gputc
