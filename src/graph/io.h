#ifndef GPUTC_GRAPH_IO_H_
#define GPUTC_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.h"

namespace gputc {

// SNAP-style text format: '#' comment lines, then one "u<ws>v" pair per
// line. Vertex ids are remapped to a dense [0, n) range in first-seen order,
// matching how the paper's datasets are consumed.

/// Parses a SNAP edge-list stream. Returns std::nullopt on malformed input.
std::optional<Graph> ReadSnapText(std::istream& in);

/// Loads a SNAP edge-list file. Returns std::nullopt if the file cannot be
/// opened or parsed.
std::optional<Graph> LoadSnapText(const std::string& path);

/// Writes a graph in SNAP text format (one undirected edge per line, u < v).
void WriteSnapText(const Graph& g, std::ostream& out);
bool SaveSnapText(const Graph& g, const std::string& path);

// Binary format: little-endian header {magic, n, m} followed by the CSR
// offsets and adjacency. Round-trips exactly and loads in O(bytes).

/// Saves in the native binary format. Returns false on I/O error.
bool SaveBinary(const Graph& g, const std::string& path);

/// Loads the native binary format. Returns std::nullopt on error or if the
/// file is not a gputc binary graph.
std::optional<Graph> LoadBinary(const std::string& path);

}  // namespace gputc

#endif  // GPUTC_GRAPH_IO_H_
