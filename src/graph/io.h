#ifndef GPUTC_GRAPH_IO_H_
#define GPUTC_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/edge_list.h"
#include "graph/graph.h"
#include "util/status.h"

namespace gputc {

// All loaders return StatusOr so every failure carries a code and a
// context-bearing message (file, line or byte offset, expected vs actual).
// StatusOr mirrors std::optional's accessors, so legacy optional-style call
// sites (`has_value()`, `*`, `->`) keep working; new code should branch on
// ok() and report status().message().

// SNAP-style text format: '#'/'%' comment lines, then one "u<ws>v" pair per
// line. Vertex ids are remapped to a dense [0, n) range in first-seen order,
// matching how the paper's datasets are consumed.

/// Parses a SNAP edge-list stream into a normalized Graph. Self loops and
/// duplicate pairs are silently canonicalized away (use ReadSnapEdgeList +
/// GraphDoctor to detect them). Errors name the offending line.
StatusOr<Graph> ReadSnapText(std::istream& in);

/// Loads a SNAP edge-list file. kNotFound if the file cannot be opened;
/// parse errors are annotated with the path.
StatusOr<Graph> LoadSnapText(const std::string& path);

/// Parses a SNAP stream into the raw staging EdgeList, *preserving* self
/// loops and duplicate edges so GraphDoctor can report or repair them.
StatusOr<EdgeList> ReadSnapEdgeList(std::istream& in);

/// Writes a graph in SNAP text format (one undirected edge per line, u < v).
void WriteSnapText(const Graph& g, std::ostream& out);

/// Saves SNAP text atomically (write temp, fsync, rename): a crash mid-save
/// never leaves a torn file under `path`.
Status SaveSnapTextDurable(const Graph& g, const std::string& path);

/// Legacy bool wrapper around SaveSnapTextDurable.
bool SaveSnapText(const Graph& g, const std::string& path);

// Binary format v2 (what SaveBinary writes): a little-endian header
// {magic, version, flags, n, m, offsets CRC32C, adjacency CRC32C, header
// CRC32C} followed by the CSR offsets and adjacency. The finalized flag and
// the three checksums let LoadBinary reject torn or bit-rotted files with a
// precise Status instead of silently loading garbage, and the writer goes
// through the atomic temp -> fsync -> rename protocol, so a crash mid-save
// never leaves a half-written graph under the target path. Legacy v1 files
// ({magic, n, m}, no checksums) still load, with a deprecation warning.

/// Saves in the native binary format (v2, checksummed, written atomically).
Status SaveBinaryDurable(const Graph& g, const std::string& path);

/// Legacy bool wrapper around SaveBinaryDurable.
bool SaveBinary(const Graph& g, const std::string& path);

/// Loads the native binary format with full structural validation: the
/// header is checked against the physical file size and allocation caps
/// *before* any payload-sized buffer is allocated, offsets must be monotonic
/// with offsets[n] == 2m, and every adjacency id must be in range. The CSR
/// must be canonical (symmetric, no self loops or duplicates); use
/// LoadBinaryEdgeList + GraphDoctor for repairable inputs.
StatusOr<Graph> LoadBinary(const std::string& path);

/// Binary loader that stops after structural validation and returns the raw
/// edge list (self loops and in-row duplicates preserved) for GraphDoctor.
StatusOr<EdgeList> LoadBinaryEdgeList(const std::string& path);

// Extension-dispatching conveniences used by the CLI: ".bin" selects the
// binary format, anything else SNAP text.

/// Loads a graph from `path` by extension.
StatusOr<Graph> LoadGraph(const std::string& path);

/// Loads the raw edge list from `path` by extension.
StatusOr<EdgeList> LoadEdgeList(const std::string& path);

/// Saves `g` to `path` by extension, reporting failures as Status.
Status SaveGraph(const Graph& g, const std::string& path);

}  // namespace gputc

#endif  // GPUTC_GRAPH_IO_H_
