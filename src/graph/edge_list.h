#ifndef GPUTC_GRAPH_EDGE_LIST_H_
#define GPUTC_GRAPH_EDGE_LIST_H_

#include <vector>

#include "graph/types.h"

namespace gputc {

/// Mutable list of undirected edges; the staging format every generator and
/// loader produces before a CSR Graph is built.
///
/// An EdgeList may temporarily contain self loops, duplicates, and edges in
/// either endpoint order; Normalize() canonicalizes it. num_vertices is the
/// declared vertex-universe size and may exceed the largest endpoint (dense
/// ids are required, isolated vertices are allowed).
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}
  EdgeList(VertexId num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  /// Appends edge (u, v). Grows the vertex universe if needed.
  void Add(VertexId u, VertexId v);

  /// Removes self loops, orders endpoints as u < v, sorts, and deduplicates.
  /// Idempotent.
  void Normalize();

  /// True if Normalize() would be a no-op (canonical form).
  bool IsNormalized() const;

  VertexId num_vertices() const { return num_vertices_; }
  void set_num_vertices(VertexId n);
  EdgeCount num_edges() const { return static_cast<EdgeCount>(edges_.size()); }

  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& mutable_edges() { return edges_; }

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace gputc

#endif  // GPUTC_GRAPH_EDGE_LIST_H_
