#include "graph/datasets.h"

#include <functional>

#include "graph/generators.h"
#include "util/logging.h"

namespace gputc {
namespace {

struct Registration {
  DatasetSpec spec;
  std::function<Graph()> make;
};

/// Registry of paper-dataset stand-ins. Sizes are scaled so that every bench
/// binary completes in seconds on one core while keeping the degree
/// distribution family (and therefore the preprocessing effects) intact.
const std::vector<Registration>& Registry() {
  static const std::vector<Registration>* const kRegistry = new std::vector<
      Registration>{
      {{"email-Eucore", "power-law",
        "SNAP email-Eu-core (1k nodes) -> power-law configuration, same "
        "scale"},
       [] {
         return GeneratePowerLawConfiguration(1000, 1.7, 2, 300, /*seed=*/11);
       }},
      {{"email-Euall", "power-law",
        "SNAP email-EuAll (265k nodes) -> power-law configuration, scaled to "
        "20k nodes"},
       [] {
         return GeneratePowerLawConfiguration(20000, 2.1, 1, 2000,
                                              /*seed=*/12);
       }},
      {{"email-Enron", "power-law",
        "SNAP email-Enron (37k nodes) -> power-law configuration, 8k nodes"},
       [] {
         return GeneratePowerLawConfiguration(8000, 2.0, 1, 1200, /*seed=*/13);
       }},
      {{"gowalla", "power-law",
        "SNAP loc-gowalla (197k nodes, 2M edges) -> power-law configuration, "
        "30k nodes"},
       [] {
         return GeneratePowerLawConfiguration(30000, 2.2, 2, 3000,
                                              /*seed=*/14);
       }},
      {{"road_central", "road",
        "SNAP roadNet-central (14M nodes, near-uniform degree ~2.4) -> "
        "Watts-Strogatz ring lattice, 40k nodes, k=4, beta=0.03"},
       [] { return GenerateWattsStrogatz(40000, 4, 0.03, /*seed=*/15); }},
      {{"soc-pokec", "power-law",
        "SNAP soc-Pokec (1.6M nodes) -> power-law configuration, 40k nodes"},
       [] {
         return GeneratePowerLawConfiguration(40000, 2.1, 3, 4000,
                                              /*seed=*/16);
       }},
      {{"soc-LJ", "power-law",
        "SNAP soc-LiveJournal1 (5M nodes) -> power-law configuration, 50k "
        "nodes, heavier tail"},
       [] {
         return GeneratePowerLawConfiguration(50000, 2.0, 3, 6000,
                                              /*seed=*/17);
       }},
      {{"com-orkut", "power-law",
        "SNAP com-Orkut (3M nodes, 117M edges, dense) -> power-law "
        "configuration, 40k nodes, min degree 8"},
       [] {
         return GeneratePowerLawConfiguration(40000, 1.9, 8, 5000,
                                              /*seed=*/18);
       }},
      {{"com-lj", "power-law",
        "SNAP com-LiveJournal (4M nodes) -> power-law configuration, 45k "
        "nodes"},
       [] {
         return GeneratePowerLawConfiguration(45000, 2.05, 2, 5000,
                                              /*seed=*/19);
       }},
      {{"cit-patents", "power-law",
        "SNAP cit-Patents (6M nodes, thin tail, low triangle density) -> "
        "power-law configuration, 50k nodes, gamma 2.6"},
       [] {
         return GeneratePowerLawConfiguration(50000, 2.6, 1, 800, /*seed=*/20);
       }},
      {{"wiki-topcats", "power-law",
        "SNAP wiki-topcats (2M nodes) -> power-law configuration, 35k nodes"},
       [] {
         return GeneratePowerLawConfiguration(35000, 2.15, 2, 3500,
                                              /*seed=*/21);
       }},
      {{"kron-logn18", "kron",
        "Kronecker scale-18 (graph500) -> R-MAT scale 13, edge factor 8"},
       [] { return GenerateRmat(13, 8, /*seed=*/22); }},
      {{"kron-logn21", "kron",
        "Kronecker scale-21 (graph500) -> R-MAT scale 15, edge factor 8"},
       [] { return GenerateRmat(15, 8, /*seed=*/23); }},
      {{"twitter_rv", "power-law",
        "twitter_rv (62M nodes, 1.5B edges) -> power-law configuration, 60k "
        "nodes, extreme tail"},
       [] {
         return GeneratePowerLawConfiguration(60000, 1.85, 2, 12000,
                                              /*seed=*/24);
       }},
      {{"s24-kron", "kron",
        "GraphChallenge s24.kron (17M nodes) -> R-MAT scale 14, edge factor "
        "16"},
       [] { return GenerateRmat(14, 16, /*seed=*/25); }},
      {{"s26-kron", "kron",
        "GraphChallenge s26.kron (67M nodes) -> R-MAT scale 15, edge factor "
        "16"},
       [] { return GenerateRmat(15, 16, /*seed=*/26); }},
  };
  return *kRegistry;
}

const Registration* Find(const std::string& name) {
  for (const Registration& r : Registry()) {
    if (r.spec.name == name) return &r;
  }
  return nullptr;
}

Status UnknownDatasetError(const std::string& name) {
  std::string msg = "unknown dataset '" + name + "'; registered datasets:";
  for (const Registration& r : Registry()) msg += " " + r.spec.name;
  return NotFoundError(std::move(msg));
}

}  // namespace

std::vector<std::string> DatasetNames() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const Registration& r : Registry()) names.push_back(r.spec.name);
  return names;
}

DatasetSpec GetDatasetSpec(const std::string& name) {
  const Registration* r = Find(name);
  GPUTC_CHECK(r != nullptr) << "unknown dataset '" << name << "'";
  return r->spec;
}

Graph LoadDataset(const std::string& name) {
  const Registration* r = Find(name);
  GPUTC_CHECK(r != nullptr) << "unknown dataset '" << name << "'";
  return r->make();
}

StatusOr<DatasetSpec> TryGetDatasetSpec(const std::string& name) {
  const Registration* r = Find(name);
  if (r == nullptr) return UnknownDatasetError(name);
  return r->spec;
}

StatusOr<Graph> TryLoadDataset(const std::string& name) {
  const Registration* r = Find(name);
  if (r == nullptr) return UnknownDatasetError(name);
  return r->make();
}

bool HasDataset(const std::string& name) { return Find(name) != nullptr; }

}  // namespace gputc
