#include "graph/io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/validate.h"
#include "util/failpoint.h"

namespace gputc {
namespace {

constexpr uint64_t kBinaryMagic = 0x43545550'47525048ull;  // "GPUTCGRPH"-ish.
constexpr uint64_t kHeaderBytes = 3 * sizeof(uint64_t);    // magic, n, m.

std::string Truncate(const std::string& s, size_t limit = 60) {
  if (s.size() <= limit) return s;
  return s.substr(0, limit) + "...";
}

std::string HexU64(uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

/// Reads `count` elements into `out`, reporting how many bytes were missing
/// on short reads. The caller has already verified the physical file size,
/// so a failure here means the file changed underfoot or the stream broke.
template <typename T>
Status ReadArray(std::istream& in, std::vector<T>& out, size_t count,
                 const char* what) {
  out.resize(count);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) {
    std::ostringstream msg;
    msg << "short read in " << what << ": wanted " << count * sizeof(T)
        << " bytes, got " << in.gcount();
    return DataLossError(msg.str());
  }
  return OkStatus();
}

}  // namespace

StatusOr<EdgeList> ReadSnapEdgeList(std::istream& in) {
  EdgeList list;
  std::unordered_map<uint64_t, VertexId> remap;
  auto dense_id = [&remap](uint64_t raw) {
    const auto [it, inserted] =
        remap.emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  const GraphDoctor doctor;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) {
      std::ostringstream msg;
      msg << "line " << line_number << ": expected 'u v' pair, got \""
          << Truncate(line) << "\"";
      return DataLossError(msg.str());
    }
    // Sequence the two lookups explicitly: argument evaluation order is
    // unspecified, and first-seen-order remapping must be deterministic.
    const VertexId u = dense_id(a);
    const VertexId v = dense_id(b);
    list.Add(u, v);
    if (remap.size() > doctor.options().max_vertices ||
        list.num_edges() > doctor.options().max_edges) {
      std::ostringstream msg;
      msg << "line " << line_number << ": graph exceeds the ingestion caps ("
          << remap.size() << " vertices, " << list.num_edges() << " edges)";
      return ResourceExhaustedError(msg.str());
    }
  }
  if (in.bad()) return DataLossError("stream failed while reading edge list");
  list.set_num_vertices(static_cast<VertexId>(remap.size()));
  return list;
}

StatusOr<Graph> ReadSnapText(std::istream& in) {
  GPUTC_ASSIGN_OR_RETURN(EdgeList list, ReadSnapEdgeList(in));
  return Graph::FromEdgeList(std::move(list));
}

StatusOr<Graph> LoadSnapText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  StatusOr<Graph> g = ReadSnapText(in);
  if (!g.ok()) return g.status().WithContext("LoadSnapText('" + path + "')");
  return g;
}

void WriteSnapText(const Graph& g, std::ostream& out) {
  out << "# gputc graph: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " undirected edges\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) out << u << '\t' << v << '\n';
    }
  }
}

bool SaveSnapText(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteSnapText(g, out);
  return static_cast<bool>(out);
}

bool SaveBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const uint64_t magic = kBinaryMagic;
  const uint64_t n = g.num_vertices();
  const uint64_t m = static_cast<uint64_t>(g.num_edges());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() *
                                         sizeof(EdgeCount)));
  out.write(reinterpret_cast<const char*>(g.adjacency().data()),
            static_cast<std::streamsize>(g.adjacency().size() *
                                         sizeof(VertexId)));
  return static_cast<bool>(out);
}

StatusOr<EdgeList> LoadBinaryEdgeList(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  const std::string ctx = "LoadBinary('" + path + "')";

  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  in.seekg(0, std::ios::beg);
  if (end_pos < 0) {
    return DataLossError("cannot determine file size").WithContext(ctx);
  }
  const uint64_t file_size = static_cast<uint64_t>(end_pos);
  if (file_size < kHeaderBytes) {
    std::ostringstream msg;
    msg << "truncated header: file is " << file_size << " bytes, need "
        << kHeaderBytes;
    return DataLossError(msg.str()).WithContext(ctx);
  }

  uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in) return DataLossError("cannot read header").WithContext(ctx);
  if (magic != kBinaryMagic) {
    std::ostringstream msg;
    msg << "bad magic " << HexU64(magic) << ", want " << HexU64(kBinaryMagic);
    return DataLossError(msg.str()).WithContext(ctx);
  }

  // Validate the header counts and the implied payload size against the
  // physical file *before* allocating anything the header controls. The caps
  // bound n and m, so the byte arithmetic below cannot overflow uint64.
  const GraphDoctor doctor;
  const Status counts = doctor.CheckCounts(n, m);
  if (!counts.ok()) return counts.WithContext(ctx + ": header");
  const uint64_t expected_size =
      kHeaderBytes + (n + 1) * sizeof(EdgeCount) + 2 * m * sizeof(VertexId);
  if (file_size != expected_size) {
    std::ostringstream msg;
    msg << "header claims n = " << n << ", m = " << m << " implying "
        << expected_size << " bytes, but the file is " << file_size
        << " bytes";
    return DataLossError(msg.str()).WithContext(ctx);
  }

  std::vector<EdgeCount> offsets;
  std::vector<VertexId> adj;
  GPUTC_RETURN_IF_ERROR(
      ReadArray(in, offsets, static_cast<size_t>(n) + 1, "CSR offsets")
          .WithContext(ctx));
  GPUTC_RETURN_IF_ERROR(
      ReadArray(in, adj, static_cast<size_t>(2 * m), "CSR adjacency")
          .WithContext(ctx));
  GPUTC_RETURN_IF_ERROR(GraphDoctor::CheckCsr(n, m, offsets, adj)
                            .WithContext(ctx));

  // Structurally sound: lift into the staging edge list, preserving self
  // loops and duplicate entries for GraphDoctor to judge. Upper-triangle
  // entries carry the edges; lower-triangle entries are the mirrors.
  EdgeList list(static_cast<VertexId>(n));
  for (VertexId u = 0; u < n; ++u) {
    for (EdgeCount i = offsets[u]; i < offsets[u + 1]; ++i) {
      const VertexId v = adj[static_cast<size_t>(i)];
      if (u <= v) list.Add(u, v);
    }
  }
  list.set_num_vertices(static_cast<VertexId>(n));
  return list;
}

StatusOr<Graph> LoadBinary(const std::string& path) {
  GPUTC_ASSIGN_OR_RETURN(EdgeList list, LoadBinaryEdgeList(path));
  const uint64_t m = static_cast<uint64_t>(list.num_edges());
  Graph g = Graph::FromEdgeList(std::move(list));
  // A canonical CSR reassembles to exactly the header's edge count. Any
  // difference means self loops, duplicates, or asymmetric rows survived the
  // structural checks — repairable defects the strict loader refuses.
  if (static_cast<uint64_t>(g.num_edges()) != m) {
    std::ostringstream msg;
    msg << "adjacency is not canonical: reassembly kept " << g.num_edges()
        << " of " << m
        << " edges (self loops, duplicates, or asymmetric rows); run "
        << "'gputc doctor --repair' to fix";
    return DataLossError(msg.str())
        .WithContext("LoadBinary('" + path + "')");
  }
  return g;
}

StatusOr<Graph> LoadGraph(const std::string& path) {
  GPUTC_INJECT_FAULT("io.load");
  return path.ends_with(".bin") ? LoadBinary(path) : LoadSnapText(path);
}

StatusOr<EdgeList> LoadEdgeList(const std::string& path) {
  GPUTC_INJECT_FAULT("io.load");
  if (path.ends_with(".bin")) return LoadBinaryEdgeList(path);
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  StatusOr<EdgeList> list = ReadSnapEdgeList(in);
  if (!list.ok()) {
    return list.status().WithContext("LoadEdgeList('" + path + "')");
  }
  return list;
}

Status SaveGraph(const Graph& g, const std::string& path) {
  const bool ok =
      path.ends_with(".bin") ? SaveBinary(g, path) : SaveSnapText(g, path);
  if (!ok) return Status(StatusCode::kInternal, "cannot write '" + path + "'");
  return OkStatus();
}

}  // namespace gputc
