#include "graph/io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

namespace gputc {
namespace {

constexpr uint64_t kBinaryMagic = 0x43545550'47525048ull;  // "GPUTCGRPH"-ish.

}  // namespace

std::optional<Graph> ReadSnapText(std::istream& in) {
  EdgeList list;
  std::unordered_map<uint64_t, VertexId> remap;
  auto dense_id = [&remap](uint64_t raw) {
    const auto [it, inserted] =
        remap.emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) return std::nullopt;
    list.Add(dense_id(a), dense_id(b));
  }
  list.set_num_vertices(static_cast<VertexId>(remap.size()));
  return Graph::FromEdgeList(std::move(list));
}

std::optional<Graph> LoadSnapText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadSnapText(in);
}

void WriteSnapText(const Graph& g, std::ostream& out) {
  out << "# gputc graph: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " undirected edges\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) out << u << '\t' << v << '\n';
    }
  }
}

bool SaveSnapText(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteSnapText(g, out);
  return static_cast<bool>(out);
}

bool SaveBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const uint64_t magic = kBinaryMagic;
  const uint64_t n = g.num_vertices();
  const uint64_t m = static_cast<uint64_t>(g.num_edges());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() *
                                         sizeof(EdgeCount)));
  out.write(reinterpret_cast<const char*>(g.adjacency().data()),
            static_cast<std::streamsize>(g.adjacency().size() *
                                         sizeof(VertexId)));
  return static_cast<bool>(out);
}

std::optional<Graph> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in || magic != kBinaryMagic) return std::nullopt;
  std::vector<EdgeCount> offsets(n + 1);
  std::vector<VertexId> adj(2 * m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeCount)));
  in.read(reinterpret_cast<char*>(adj.data()),
          static_cast<std::streamsize>(adj.size() * sizeof(VertexId)));
  if (!in) return std::nullopt;
  // Reassemble through the edge list so all Graph invariants are re-checked
  // even for hand-crafted files.
  EdgeList list(static_cast<VertexId>(n));
  for (VertexId u = 0; u < n; ++u) {
    for (EdgeCount i = offsets[u]; i < offsets[u + 1]; ++i) {
      const VertexId v = adj[static_cast<size_t>(i)];
      if (v >= n) return std::nullopt;
      if (u < v) list.Add(u, v);
    }
  }
  list.set_num_vertices(static_cast<VertexId>(n));
  Graph g = Graph::FromEdgeList(std::move(list));
  if (static_cast<uint64_t>(g.num_edges()) != m) return std::nullopt;
  return g;
}

}  // namespace gputc
