#include "graph/io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/validate.h"
#include "util/durable_file.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace gputc {
namespace {

constexpr uint64_t kBinaryMagic = 0x43545550'47525048ull;  // v1, "GPUTCGRPH".
constexpr uint64_t kHeaderBytes = 3 * sizeof(uint64_t);    // v1: magic, n, m.

// v2 header layout (all little-endian):
//   u64 magic      kBinaryMagicV2
//   u32 version    2
//   u32 flags      bit 0 = finalized (writer completed the payload)
//   u64 n, u64 m
//   u32 offsets_crc   CRC32C of the offsets section
//   u32 adj_crc       CRC32C of the adjacency section
//   u32 reserved      0
//   u32 header_crc    CRC32C of the 44 preceding header bytes
constexpr uint64_t kBinaryMagicV2 = 0x32564752'47525048ull;  // "GPUTCGRV2".
constexpr uint32_t kBinaryVersion = 2;
constexpr uint32_t kFlagFinalized = 1u << 0;
constexpr uint64_t kHeaderBytesV2 = 48;
constexpr uint64_t kHeaderCrcCoverage = kHeaderBytesV2 - sizeof(uint32_t);

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendScalar(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(value));
}

template <typename T>
T ReadScalar(const char* p) {
  T value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

std::string Truncate(const std::string& s, size_t limit = 60) {
  if (s.size() <= limit) return s;
  return s.substr(0, limit) + "...";
}

std::string HexU64(uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

/// Reads `count` elements into `out`, reporting how many bytes were missing
/// on short reads. The caller has already verified the physical file size,
/// so a failure here means the file changed underfoot or the stream broke.
template <typename T>
Status ReadArray(std::istream& in, std::vector<T>& out, size_t count,
                 const char* what) {
  out.resize(count);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) {
    std::ostringstream msg;
    msg << "short read in " << what << ": wanted " << count * sizeof(T)
        << " bytes, got " << in.gcount();
    return DataLossError(msg.str());
  }
  return OkStatus();
}

}  // namespace

StatusOr<EdgeList> ReadSnapEdgeList(std::istream& in) {
  EdgeList list;
  std::unordered_map<uint64_t, VertexId> remap;
  auto dense_id = [&remap](uint64_t raw) {
    const auto [it, inserted] =
        remap.emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  const GraphDoctor doctor;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) {
      std::ostringstream msg;
      msg << "line " << line_number << ": expected 'u v' pair, got \""
          << Truncate(line) << "\"";
      return DataLossError(msg.str());
    }
    // Sequence the two lookups explicitly: argument evaluation order is
    // unspecified, and first-seen-order remapping must be deterministic.
    const VertexId u = dense_id(a);
    const VertexId v = dense_id(b);
    list.Add(u, v);
    if (remap.size() > doctor.options().max_vertices ||
        list.num_edges() > doctor.options().max_edges) {
      std::ostringstream msg;
      msg << "line " << line_number << ": graph exceeds the ingestion caps ("
          << remap.size() << " vertices, " << list.num_edges() << " edges)";
      return ResourceExhaustedError(msg.str());
    }
  }
  if (in.bad()) return DataLossError("stream failed while reading edge list");
  list.set_num_vertices(static_cast<VertexId>(remap.size()));
  return list;
}

StatusOr<Graph> ReadSnapText(std::istream& in) {
  GPUTC_ASSIGN_OR_RETURN(EdgeList list, ReadSnapEdgeList(in));
  return Graph::FromEdgeList(std::move(list));
}

StatusOr<Graph> LoadSnapText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  StatusOr<Graph> g = ReadSnapText(in);
  if (!g.ok()) return g.status().WithContext("LoadSnapText('" + path + "')");
  return g;
}

void WriteSnapText(const Graph& g, std::ostream& out) {
  out << "# gputc graph: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " undirected edges\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) out << u << '\t' << v << '\n';
    }
  }
}

Status SaveSnapTextDurable(const Graph& g, const std::string& path) {
  std::ostringstream out;
  WriteSnapText(g, out);
  const Status saved = WriteFileAtomic(path, out.str());
  if (!saved.ok()) return saved.WithContext("SaveSnapText('" + path + "')");
  return saved;
}

bool SaveSnapText(const Graph& g, const std::string& path) {
  return SaveSnapTextDurable(g, path).ok();
}

Status SaveBinaryDurable(const Graph& g, const std::string& path) {
  const uint64_t n = g.num_vertices();
  const uint64_t m = static_cast<uint64_t>(g.num_edges());
  const char* offsets_bytes =
      reinterpret_cast<const char*>(g.offsets().data());
  const size_t offsets_size = g.offsets().size() * sizeof(EdgeCount);
  const char* adj_bytes = reinterpret_cast<const char*>(g.adjacency().data());
  const size_t adj_size = g.adjacency().size() * sizeof(VertexId);

  std::string header;
  header.reserve(kHeaderBytesV2);
  AppendScalar<uint64_t>(&header, kBinaryMagicV2);
  AppendScalar<uint32_t>(&header, kBinaryVersion);
  AppendScalar<uint32_t>(&header, kFlagFinalized);
  AppendScalar<uint64_t>(&header, n);
  AppendScalar<uint64_t>(&header, m);
  AppendScalar<uint32_t>(&header, Crc32c(offsets_bytes, offsets_size));
  AppendScalar<uint32_t>(&header, Crc32c(adj_bytes, adj_size));
  AppendScalar<uint32_t>(&header, 0);  // Reserved.
  AppendScalar<uint32_t>(&header, Crc32c(header.data(), header.size()));

  const auto save = [&]() -> Status {
    GPUTC_ASSIGN_OR_RETURN(AtomicFileWriter out,
                           AtomicFileWriter::Create(path));
    GPUTC_RETURN_IF_ERROR(out.Append(header));
    GPUTC_RETURN_IF_ERROR(out.Append(offsets_bytes, offsets_size));
    GPUTC_RETURN_IF_ERROR(out.Append(adj_bytes, adj_size));
    return out.Commit();
  };
  const Status saved = save();
  if (!saved.ok()) return saved.WithContext("SaveBinary('" + path + "')");
  return saved;
}

bool SaveBinary(const Graph& g, const std::string& path) {
  return SaveBinaryDurable(g, path).ok();
}

namespace {

/// v1 {magic, n, m} path: no checksums to verify, so only the structural
/// checks stand between a bit flip and a wrong count. Kept loadable for
/// existing corpora; the warning nudges toward a re-save.
Status ReadBinaryV1(std::istream& in, uint64_t file_size,
                    const std::string& path, uint64_t* n, uint64_t* m,
                    std::vector<EdgeCount>* offsets,
                    std::vector<VertexId>* adj) {
  uint64_t dummy_magic = 0;
  in.read(reinterpret_cast<char*>(&dummy_magic), sizeof(dummy_magic));
  in.read(reinterpret_cast<char*>(n), sizeof(*n));
  in.read(reinterpret_cast<char*>(m), sizeof(*m));
  if (!in) return DataLossError("cannot read header");
  GPUTC_LOG(Warning) << "'" << path
                     << "' is a v1 binary graph (no checksums); re-save with "
                        "'gputc convert' to upgrade to the checksummed v2 "
                        "format";

  // Validate the header counts and the implied payload size against the
  // physical file *before* allocating anything the header controls. The caps
  // bound n and m, so the byte arithmetic below cannot overflow uint64.
  const GraphDoctor doctor;
  GPUTC_RETURN_IF_ERROR(doctor.CheckCounts(*n, *m).WithContext("header"));
  const uint64_t expected_size = kHeaderBytes + (*n + 1) * sizeof(EdgeCount) +
                                 2 * *m * sizeof(VertexId);
  if (file_size != expected_size) {
    std::ostringstream msg;
    msg << "header claims n = " << *n << ", m = " << *m << " implying "
        << expected_size << " bytes, but the file is " << file_size
        << " bytes";
    return DataLossError(msg.str());
  }
  GPUTC_RETURN_IF_ERROR(
      ReadArray(in, *offsets, static_cast<size_t>(*n) + 1, "CSR offsets"));
  GPUTC_RETURN_IF_ERROR(
      ReadArray(in, *adj, static_cast<size_t>(2 * *m), "CSR adjacency"));
  return OkStatus();
}

/// v2 path: header CRC, finalized flag, and per-section CRCs are all
/// verified before the structural checks, each failure with its own
/// precise message — a torn save, a bit flip in the payload, and a damaged
/// header are distinguishable in the Status alone.
Status ReadBinaryV2(std::istream& in, uint64_t file_size,
                    uint64_t* n, uint64_t* m,
                    std::vector<EdgeCount>* offsets,
                    std::vector<VertexId>* adj) {
  if (file_size < kHeaderBytesV2) {
    std::ostringstream msg;
    msg << "truncated v2 header: file is " << file_size << " bytes, need "
        << kHeaderBytesV2;
    return DataLossError(msg.str());
  }
  char header[kHeaderBytesV2];
  in.read(header, static_cast<std::streamsize>(kHeaderBytesV2));
  if (!in) return DataLossError("cannot read v2 header");

  const uint32_t stored_header_crc =
      ReadScalar<uint32_t>(header + kHeaderCrcCoverage);
  const uint32_t computed_header_crc = Crc32c(header, kHeaderCrcCoverage);
  if (stored_header_crc != computed_header_crc) {
    std::ostringstream msg;
    msg << "header CRC mismatch: stored " << HexU64(stored_header_crc)
        << ", computed " << HexU64(computed_header_crc)
        << " (damaged or truncated header)";
    return DataLossError(msg.str());
  }
  const uint32_t version = ReadScalar<uint32_t>(header + 8);
  if (version != kBinaryVersion) {
    return DataLossError("unsupported binary format version " +
                         std::to_string(version) + " (this build reads 1-" +
                         std::to_string(kBinaryVersion) + ")");
  }
  const uint32_t flags = ReadScalar<uint32_t>(header + 12);
  if ((flags & kFlagFinalized) == 0) {
    return DataLossError(
        "file was never finalized: the writer did not complete its payload "
        "(torn or interrupted save)");
  }
  *n = ReadScalar<uint64_t>(header + 16);
  *m = ReadScalar<uint64_t>(header + 24);
  const uint32_t stored_offsets_crc = ReadScalar<uint32_t>(header + 32);
  const uint32_t stored_adj_crc = ReadScalar<uint32_t>(header + 36);

  const GraphDoctor doctor;
  GPUTC_RETURN_IF_ERROR(doctor.CheckCounts(*n, *m).WithContext("header"));
  const uint64_t expected_size = kHeaderBytesV2 +
                                 (*n + 1) * sizeof(EdgeCount) +
                                 2 * *m * sizeof(VertexId);
  if (file_size != expected_size) {
    std::ostringstream msg;
    msg << "header claims n = " << *n << ", m = " << *m << " implying "
        << expected_size << " bytes, but the file is " << file_size
        << " bytes";
    return DataLossError(msg.str());
  }
  GPUTC_RETURN_IF_ERROR(
      ReadArray(in, *offsets, static_cast<size_t>(*n) + 1, "CSR offsets"));
  GPUTC_RETURN_IF_ERROR(
      ReadArray(in, *adj, static_cast<size_t>(2 * *m), "CSR adjacency"));

  const uint32_t offsets_crc =
      Crc32c(offsets->data(), offsets->size() * sizeof(EdgeCount));
  if (offsets_crc != stored_offsets_crc) {
    std::ostringstream msg;
    msg << "CSR offsets CRC mismatch: stored " << HexU64(stored_offsets_crc)
        << ", computed " << HexU64(offsets_crc) << " (bit rot?)";
    return DataLossError(msg.str());
  }
  const uint32_t adj_crc =
      Crc32c(adj->data(), adj->size() * sizeof(VertexId));
  if (adj_crc != stored_adj_crc) {
    std::ostringstream msg;
    msg << "CSR adjacency CRC mismatch: stored " << HexU64(stored_adj_crc)
        << ", computed " << HexU64(adj_crc) << " (bit rot?)";
    return DataLossError(msg.str());
  }
  return OkStatus();
}

}  // namespace

StatusOr<EdgeList> LoadBinaryEdgeList(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  const std::string ctx = "LoadBinary('" + path + "')";

  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  in.seekg(0, std::ios::beg);
  if (end_pos < 0) {
    return DataLossError("cannot determine file size").WithContext(ctx);
  }
  const uint64_t file_size = static_cast<uint64_t>(end_pos);
  if (file_size < kHeaderBytes) {
    std::ostringstream msg;
    msg << "truncated header: file is " << file_size << " bytes, need "
        << kHeaderBytes;
    return DataLossError(msg.str()).WithContext(ctx);
  }

  uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) return DataLossError("cannot read header").WithContext(ctx);
  in.seekg(0, std::ios::beg);

  uint64_t n = 0, m = 0;
  std::vector<EdgeCount> offsets;
  std::vector<VertexId> adj;
  if (magic == kBinaryMagicV2) {
    GPUTC_RETURN_IF_ERROR(
        ReadBinaryV2(in, file_size, &n, &m, &offsets, &adj).WithContext(ctx));
  } else if (magic == kBinaryMagic) {
    GPUTC_RETURN_IF_ERROR(
        ReadBinaryV1(in, file_size, path, &n, &m, &offsets, &adj)
            .WithContext(ctx));
  } else {
    std::ostringstream msg;
    msg << "bad magic " << HexU64(magic) << ", want " << HexU64(kBinaryMagicV2)
        << " (v2) or " << HexU64(kBinaryMagic) << " (v1)";
    return DataLossError(msg.str()).WithContext(ctx);
  }
  GPUTC_RETURN_IF_ERROR(GraphDoctor::CheckCsr(n, m, offsets, adj)
                            .WithContext(ctx));

  // Structurally sound: lift into the staging edge list, preserving self
  // loops and duplicate entries for GraphDoctor to judge. Upper-triangle
  // entries carry the edges; lower-triangle entries are the mirrors.
  EdgeList list(static_cast<VertexId>(n));
  for (VertexId u = 0; u < n; ++u) {
    for (EdgeCount i = offsets[u]; i < offsets[u + 1]; ++i) {
      const VertexId v = adj[static_cast<size_t>(i)];
      if (u <= v) list.Add(u, v);
    }
  }
  list.set_num_vertices(static_cast<VertexId>(n));
  return list;
}

StatusOr<Graph> LoadBinary(const std::string& path) {
  GPUTC_ASSIGN_OR_RETURN(EdgeList list, LoadBinaryEdgeList(path));
  const uint64_t m = static_cast<uint64_t>(list.num_edges());
  Graph g = Graph::FromEdgeList(std::move(list));
  // A canonical CSR reassembles to exactly the header's edge count. Any
  // difference means self loops, duplicates, or asymmetric rows survived the
  // structural checks — repairable defects the strict loader refuses.
  if (static_cast<uint64_t>(g.num_edges()) != m) {
    std::ostringstream msg;
    msg << "adjacency is not canonical: reassembly kept " << g.num_edges()
        << " of " << m
        << " edges (self loops, duplicates, or asymmetric rows); run "
        << "'gputc doctor --repair' to fix";
    return DataLossError(msg.str())
        .WithContext("LoadBinary('" + path + "')");
  }
  return g;
}

StatusOr<Graph> LoadGraph(const std::string& path) {
  GPUTC_INJECT_FAULT("io.load");
  return path.ends_with(".bin") ? LoadBinary(path) : LoadSnapText(path);
}

StatusOr<EdgeList> LoadEdgeList(const std::string& path) {
  GPUTC_INJECT_FAULT("io.load");
  if (path.ends_with(".bin")) return LoadBinaryEdgeList(path);
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  StatusOr<EdgeList> list = ReadSnapEdgeList(in);
  if (!list.ok()) {
    return list.status().WithContext("LoadEdgeList('" + path + "')");
  }
  return list;
}

Status SaveGraph(const Graph& g, const std::string& path) {
  return path.ends_with(".bin") ? SaveBinaryDurable(g, path)
                                : SaveSnapTextDurable(g, path);
}

}  // namespace gputc
