#ifndef GPUTC_GRAPH_PERMUTATION_H_
#define GPUTC_GRAPH_PERMUTATION_H_

#include <vector>

#include "graph/directed_graph.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace gputc {

/// A permutation maps old vertex id -> new vertex id. perm[old] == new.
/// Orderings in src/order produce permutations; applying one relabels the
/// graph so that a GPU block's work set (consecutive new ids) is the bucket
/// the ordering intended.
using Permutation = std::vector<VertexId>;

/// True if `perm` is a bijection on [0, perm.size()).
bool IsPermutation(const Permutation& perm);

/// Identity permutation of size n.
Permutation IdentityPermutation(VertexId n);

/// Inverse permutation: Inverse(p)[p[v]] == v.
Permutation InversePermutation(const Permutation& perm);

/// Composition: result[v] = outer[inner[v]] (apply `inner`, then `outer`).
Permutation Compose(const Permutation& outer, const Permutation& inner);

/// Relabels an undirected graph: vertex v becomes perm[v].
Graph ApplyPermutation(const Graph& g, const Permutation& perm);

/// Relabels a directed graph, preserving every arc's orientation.
DirectedGraph ApplyPermutation(const DirectedGraph& g, const Permutation& perm);

/// Builds the permutation that assigns consecutive new ids following
/// `order_of_vertices` (a sequence of old ids; position i gets new id i).
Permutation PermutationFromSequence(const std::vector<VertexId>& order);

}  // namespace gputc

#endif  // GPUTC_GRAPH_PERMUTATION_H_
