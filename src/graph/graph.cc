#include "graph/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace gputc {

Graph Graph::FromEdgeList(EdgeList edges) {
  edges.Normalize();
  Graph g;
  const VertexId n = edges.num_vertices();
  g.num_edges_ = edges.num_edges();
  g.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (const Edge& e : edges.edges()) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adj_.resize(static_cast<size_t>(2) * static_cast<size_t>(g.num_edges_));
  std::vector<EdgeCount> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges.edges()) {
    g.adj_[static_cast<size_t>(cursor[e.u]++)] = e.v;
    g.adj_[static_cast<size_t>(cursor[e.v]++)] = e.u;
  }
  // Normalized input is sorted by (u, v), so each u's neighbors > u arrive in
  // order, but neighbors < u (inserted while scanning their own rows) also
  // arrive in order; the two runs interleave, so sort each list once.
  for (VertexId v = 0; v < n; ++v) {
    std::sort(g.adj_.begin() + g.offsets_[v], g.adj_.begin() + g.offsets_[v + 1]);
  }
  return g;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double Graph::AverageDegree() const {
  if (num_vertices() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(num_vertices());
}

EdgeCount Graph::MaxDegree() const {
  EdgeCount max_d = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    max_d = std::max(max_d, degree(v));
  }
  return max_d;
}

EdgeList Graph::ToEdgeList() const {
  EdgeList list(num_vertices());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : neighbors(u)) {
      if (u < v) list.Add(u, v);
    }
  }
  return list;
}

}  // namespace gputc
