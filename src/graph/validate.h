#ifndef GPUTC_GRAPH_VALIDATE_H_
#define GPUTC_GRAPH_VALIDATE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace gputc {

/// One class of defect GraphDoctor can detect. Kinds marked repairable in
/// FindingIsRepairable() can be normalized away; the rest mean the input is
/// structurally unusable and must be rejected.
enum class FindingKind {
  // Edge-list level (repairable by normalization).
  kSelfLoop,            // Edge (v, v).
  kDuplicateEdge,       // Same undirected edge listed more than once.
  kUnsortedEdges,       // Edges not in canonical (u < v, sorted) order.
  // Structural (never repairable).
  kEndpointOutOfRange,  // Endpoint id >= declared vertex count.
  kOffsetsNotMonotonic, // CSR offsets decrease somewhere.
  kOffsetsBadBounds,    // offsets[0] != 0 or offsets[n] != adjacency size.
  kAdjacencyOutOfRange, // CSR neighbor id >= vertex count.
  kAdjacencyUnsorted,   // A CSR row is not sorted by neighbor id.
  kAsymmetricAdjacency, // v in adj[u] but u not in adj[v].
  // Capacity (never repairable; caught before they become allocations).
  kVertexCountOverflow, // Vertex count exceeds what VertexId can index.
  kEdgeCountOverflow,   // Edge count exceeds the configured/physical cap.
  kTriangleOverflowRisk,// Wedge count could overflow the int64 triangle sum.
};

/// Stable identifier, e.g. "self-loop", "offsets-not-monotonic".
const char* FindingKindName(FindingKind kind);

/// True if normalization (drop self loops, dedup, sort) removes the defect.
bool FindingIsRepairable(FindingKind kind);

/// One detected defect class with an occurrence count and a pinpointed first
/// instance, e.g. {kSelfLoop, 3, "edge 17 is a self loop (5, 5)"}.
struct Finding {
  FindingKind kind;
  int64_t count = 0;
  std::string detail;  // First observed instance, with index/offset.
};

/// Everything GraphDoctor found in one scan.
struct ValidationReport {
  std::vector<Finding> findings;

  bool clean() const { return findings.empty(); }
  /// True if any finding cannot be repaired by normalization.
  bool HasStructuralDamage() const;
  /// One line per finding: "self-loop x3: edge 17 is a self loop (5, 5)".
  std::string Summary() const;
  /// NotFound-free convenience: OkStatus() when clean, otherwise an
  /// InvalidArgument (repairable only) or DataLoss (structural) status whose
  /// message is Summary().
  Status ToStatus() const;
};

/// What to do when a scan finds repairable defects. Structural damage is
/// always rejected regardless of policy.
enum class RepairPolicy {
  kReject,  // Any finding fails the operation.
  kRepair,  // Normalize away repairable findings; fail only on structural.
};

/// Scans edge lists / CSR graphs for the defects crafted or corrupt inputs
/// exhibit, and optionally repairs the benign ones. Pure analysis: never
/// aborts, never logs; everything is reported through ValidationReport /
/// Status values.
class GraphDoctor {
 public:
  struct Options {
    /// Caps that turn adversarial headers into errors instead of multi-GB
    /// allocations. Defaults are far above every bundled dataset but well
    /// below physical memory.
    VertexId max_vertices = 100'000'000;
    EdgeCount max_edges = 2'000'000'000;
  };

  GraphDoctor() : GraphDoctor(Options{}) {}
  explicit GraphDoctor(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  /// Scans a staging edge list: self loops, duplicates, canonical order,
  /// endpoints beyond the declared universe, capacity overflows.
  ValidationReport Examine(const EdgeList& list) const;

  /// Scans a built CSR graph: offset monotonicity/bounds, neighbor range,
  /// row sortedness, adjacency symmetry, triangle-count overflow risk.
  ValidationReport Examine(const Graph& g) const;

  /// Raw-CSR check used by LoadBinary before a Graph exists. `offsets` must
  /// have n+1 entries; `adj` is the full adjacency array. Returns the first
  /// structural defect as DataLoss, or OkStatus().
  static Status CheckCsr(uint64_t num_vertices, uint64_t num_edges,
                         std::span<const EdgeCount> offsets,
                         std::span<const VertexId> adj);

  /// Validates header counts against the caps without touching payload —
  /// call before allocating anything sized by an untrusted header.
  Status CheckCounts(uint64_t num_vertices, uint64_t num_edges) const;

  /// Examines `list` and builds a Graph from it under `policy`.
  /// kReject: any finding is an error (message = report summary).
  /// kRepair: repairable findings are normalized away; structural damage is
  /// still an error. The report of the *pre-repair* scan is written to
  /// `report` when non-null, so callers can show what was fixed.
  StatusOr<Graph> BuildGraph(EdgeList list, RepairPolicy policy,
                             ValidationReport* report = nullptr) const;

 private:
  Options options_;
};

}  // namespace gputc

#endif  // GPUTC_GRAPH_VALIDATE_H_
