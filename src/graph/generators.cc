#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

#include "graph/validate.h"
#include "util/logging.h"
#include "util/random.h"

namespace gputc {
namespace {

uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

Graph GenerateErdosRenyi(VertexId num_vertices, EdgeCount num_edges,
                         uint64_t seed) {
  GPUTC_CHECK_GE(num_vertices, 2u);
  const EdgeCount max_edges = static_cast<EdgeCount>(num_vertices) *
                              (static_cast<EdgeCount>(num_vertices) - 1) / 2;
  GPUTC_CHECK_LE(num_edges, max_edges);
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(num_edges) * 2);
  EdgeList list(num_vertices);
  while (static_cast<EdgeCount>(seen.size()) < num_edges) {
    const VertexId u = rng.NextU32(num_vertices);
    const VertexId v = rng.NextU32(num_vertices);
    if (u == v) continue;
    if (seen.insert(EdgeKey(u, v)).second) list.Add(u, v);
  }
  list.set_num_vertices(num_vertices);
  return Graph::FromEdgeList(std::move(list));
}

Graph GenerateBarabasiAlbert(VertexId num_vertices, int edges_per_vertex,
                             uint64_t seed) {
  GPUTC_CHECK_GE(edges_per_vertex, 1);
  GPUTC_CHECK_GT(num_vertices, static_cast<VertexId>(edges_per_vertex));
  Rng rng(seed);
  EdgeList list(num_vertices);
  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // realizes preferential attachment.
  std::vector<VertexId> targets;
  const VertexId m = static_cast<VertexId>(edges_per_vertex);
  // Seed clique over the first m+1 vertices.
  for (VertexId u = 0; u <= m; ++u) {
    for (VertexId v = u + 1; v <= m; ++v) {
      list.Add(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  std::vector<VertexId> chosen;
  for (VertexId v = m + 1; v < num_vertices; ++v) {
    chosen.clear();
    while (chosen.size() < m) {
      const VertexId t =
          targets[rng.NextBounded(static_cast<uint64_t>(targets.size()))];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (VertexId t : chosen) {
      list.Add(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  list.set_num_vertices(num_vertices);
  return Graph::FromEdgeList(std::move(list));
}

Graph GenerateWattsStrogatz(VertexId num_vertices, int k, double beta,
                            uint64_t seed) {
  GPUTC_CHECK_GE(k, 2);
  GPUTC_CHECK_EQ(k % 2, 0);
  GPUTC_CHECK_GT(num_vertices, static_cast<VertexId>(k));
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  EdgeList list(num_vertices);
  auto add_unique = [&](VertexId u, VertexId v) {
    if (u == v) return false;
    if (!seen.insert(EdgeKey(u, v)).second) return false;
    list.Add(u, v);
    return true;
  };
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (int j = 1; j <= k / 2; ++j) {
      const VertexId v =
          static_cast<VertexId>((u + static_cast<VertexId>(j)) % num_vertices);
      if (rng.NextBernoulli(beta)) {
        // Rewire: keep u, pick a fresh random endpoint; retry a few times
        // before falling back to the lattice edge so degree stays ~k.
        bool placed = false;
        for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
          placed = add_unique(u, rng.NextU32(num_vertices));
        }
        if (!placed) add_unique(u, v);
      } else {
        add_unique(u, v);
      }
    }
  }
  list.set_num_vertices(num_vertices);
  return Graph::FromEdgeList(std::move(list));
}

std::vector<EdgeCount> PowerLawDegreeSequence(VertexId num_vertices,
                                              double gamma,
                                              EdgeCount min_degree,
                                              EdgeCount max_degree,
                                              uint64_t seed) {
  GPUTC_CHECK_GE(min_degree, 1);
  GPUTC_CHECK_GE(max_degree, min_degree);
  GPUTC_CHECK_GT(gamma, 1.0);
  Rng rng(seed);
  // Inverse-CDF sampling of P(d) ~ d^-gamma on [min_degree, max_degree] via
  // the continuous Pareto approximation, then rounding down.
  const double a = 1.0 - gamma;
  const double lo = std::pow(static_cast<double>(min_degree), a);
  const double hi = std::pow(static_cast<double>(max_degree) + 1.0, a);
  std::vector<EdgeCount> degrees(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    const double u = rng.NextDouble();
    const double d = std::pow(lo + u * (hi - lo), 1.0 / a);
    degrees[v] = std::clamp(static_cast<EdgeCount>(d), min_degree, max_degree);
  }
  return degrees;
}

Graph GeneratePowerLawConfiguration(VertexId num_vertices, double gamma,
                                    EdgeCount min_degree, EdgeCount max_degree,
                                    uint64_t seed) {
  std::vector<EdgeCount> degrees = PowerLawDegreeSequence(
      num_vertices, gamma, min_degree, max_degree, seed);
  // Build the stub list and match uniformly at random (configuration model).
  std::vector<VertexId> stubs;
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (EdgeCount i = 0; i < degrees[v]; ++i) stubs.push_back(v);
  }
  if (stubs.size() % 2 == 1) stubs.pop_back();
  Rng rng(seed ^ 0xD1CEull);
  for (size_t i = stubs.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.NextBounded(i));
    std::swap(stubs[i - 1], stubs[j]);
  }
  EdgeList list(num_vertices);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    list.Add(stubs[i], stubs[i + 1]);  // Normalize() drops loops/duplicates.
  }
  list.set_num_vertices(num_vertices);
  return Graph::FromEdgeList(std::move(list));
}

Graph GenerateRmat(int scale, int edge_factor, uint64_t seed, double a,
                   double b, double c) {
  GPUTC_CHECK_GT(scale, 0);
  GPUTC_CHECK_LT(scale, 31);
  GPUTC_CHECK_GT(edge_factor, 0);
  const double d = 1.0 - a - b - c;
  GPUTC_CHECK_GT(d, 0.0);
  const VertexId n = static_cast<VertexId>(1) << scale;
  const EdgeCount m = static_cast<EdgeCount>(edge_factor) * n;
  Rng rng(seed);
  EdgeList list(n);
  for (EdgeCount e = 0; e < m; ++e) {
    VertexId u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // Top-left quadrant: both bits 0.
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    list.Add(u, v);
  }
  list.set_num_vertices(n);
  return Graph::FromEdgeList(std::move(list));
}

Graph CompleteGraph(VertexId n) {
  EdgeList list(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) list.Add(u, v);
  }
  list.set_num_vertices(n);
  return Graph::FromEdgeList(std::move(list));
}

Graph CycleGraph(VertexId n) {
  GPUTC_CHECK_GE(n, 3u);
  EdgeList list(n);
  for (VertexId u = 0; u < n; ++u) list.Add(u, (u + 1) % n);
  return Graph::FromEdgeList(std::move(list));
}

Graph StarGraph(VertexId n) {
  GPUTC_CHECK_GE(n, 2u);
  EdgeList list(n);
  for (VertexId v = 1; v < n; ++v) list.Add(0, v);
  return Graph::FromEdgeList(std::move(list));
}

Graph PathGraph(VertexId n) {
  GPUTC_CHECK_GE(n, 2u);
  EdgeList list(n);
  for (VertexId v = 0; v + 1 < n; ++v) list.Add(v, v + 1);
  return Graph::FromEdgeList(std::move(list));
}

Graph GridGraph(VertexId rows, VertexId cols) {
  GPUTC_CHECK_GE(rows, 1u);
  GPUTC_CHECK_GE(cols, 1u);
  EdgeList list(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) list.Add(id(r, c), id(r, c + 1));
      if (r + 1 < rows) list.Add(id(r, c), id(r + 1, c));
    }
  }
  list.set_num_vertices(rows * cols);
  return Graph::FromEdgeList(std::move(list));
}

Graph WheelGraph(VertexId n) {
  GPUTC_CHECK_GE(n, 4u);
  EdgeList list(n);
  for (VertexId v = 1; v < n; ++v) {
    list.Add(0, v);
    list.Add(v, v + 1 == n ? 1 : v + 1);
  }
  return Graph::FromEdgeList(std::move(list));
}

Graph CompleteBipartiteGraph(VertexId a, VertexId b) {
  GPUTC_CHECK_GE(a, 1u);
  GPUTC_CHECK_GE(b, 1u);
  EdgeList list(a + b);
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) list.Add(u, a + v);
  }
  return Graph::FromEdgeList(std::move(list));
}

namespace {

/// Shared size gate for the Try* generators: a mistyped CLI size should
/// come back as a Status, not as an out-of-memory kill.
Status CheckGeneratorSize(uint64_t num_vertices, uint64_t num_edges) {
  return GraphDoctor().CheckCounts(num_vertices, num_edges);
}

}  // namespace

StatusOr<Graph> TryGenerateErdosRenyi(VertexId num_vertices,
                                      EdgeCount num_edges, uint64_t seed) {
  if (num_vertices < 2) {
    return InvalidArgumentError("Erdos-Renyi needs at least 2 vertices, got " +
                                std::to_string(num_vertices));
  }
  if (num_edges < 0) {
    return InvalidArgumentError("edge count must be non-negative, got " +
                                std::to_string(num_edges));
  }
  const EdgeCount max_edges = static_cast<EdgeCount>(num_vertices) *
                              (static_cast<EdgeCount>(num_vertices) - 1) / 2;
  if (num_edges > max_edges) {
    return InvalidArgumentError(
        std::to_string(num_edges) + " edges exceed the " +
        std::to_string(max_edges) + " possible on " +
        std::to_string(num_vertices) + " vertices");
  }
  GPUTC_RETURN_IF_ERROR(CheckGeneratorSize(
      num_vertices, static_cast<uint64_t>(num_edges)));
  return GenerateErdosRenyi(num_vertices, num_edges, seed);
}

StatusOr<Graph> TryGenerateWattsStrogatz(VertexId num_vertices, int k,
                                         double beta, uint64_t seed) {
  if (k < 2 || k % 2 != 0) {
    return InvalidArgumentError(
        "Watts-Strogatz degree k must be even and >= 2, got " +
        std::to_string(k));
  }
  if (num_vertices <= static_cast<VertexId>(k)) {
    return InvalidArgumentError("need more than k = " + std::to_string(k) +
                                " vertices, got " +
                                std::to_string(num_vertices));
  }
  if (beta < 0.0 || beta > 1.0) {
    return InvalidArgumentError("rewiring probability beta must be in [0, 1]");
  }
  GPUTC_RETURN_IF_ERROR(CheckGeneratorSize(
      num_vertices,
      static_cast<uint64_t>(num_vertices) * static_cast<uint64_t>(k) / 2));
  return GenerateWattsStrogatz(num_vertices, k, beta, seed);
}

StatusOr<Graph> TryGeneratePowerLawConfiguration(VertexId num_vertices,
                                                 double gamma,
                                                 EdgeCount min_degree,
                                                 EdgeCount max_degree,
                                                 uint64_t seed) {
  if (num_vertices < 2) {
    return InvalidArgumentError("need at least 2 vertices, got " +
                                std::to_string(num_vertices));
  }
  if (gamma <= 1.0) {
    return InvalidArgumentError("power-law exponent gamma must be > 1");
  }
  if (min_degree < 1 || max_degree < min_degree) {
    return InvalidArgumentError(
        "need 1 <= min-degree <= max-degree, got min " +
        std::to_string(min_degree) + ", max " + std::to_string(max_degree));
  }
  if (max_degree >= static_cast<EdgeCount>(num_vertices)) {
    return InvalidArgumentError("max-degree " + std::to_string(max_degree) +
                                " does not fit a simple graph on " +
                                std::to_string(num_vertices) + " vertices");
  }
  GPUTC_RETURN_IF_ERROR(CheckGeneratorSize(
      num_vertices,
      static_cast<uint64_t>(num_vertices) *
          static_cast<uint64_t>(max_degree) / 2));
  return GeneratePowerLawConfiguration(num_vertices, gamma, min_degree,
                                       max_degree, seed);
}

StatusOr<Graph> TryGenerateRmat(int scale, int edge_factor, uint64_t seed,
                                double a, double b, double c) {
  if (scale < 1 || scale > 30) {
    return InvalidArgumentError("R-MAT scale must be in [1, 30], got " +
                                std::to_string(scale));
  }
  if (edge_factor < 1) {
    return InvalidArgumentError("edge factor must be >= 1, got " +
                                std::to_string(edge_factor));
  }
  if (a <= 0.0 || b < 0.0 || c < 0.0 || a + b + c >= 1.0) {
    return InvalidArgumentError(
        "R-MAT probabilities need a > 0, b, c >= 0, a + b + c < 1");
  }
  const uint64_t n = 1ull << scale;
  GPUTC_RETURN_IF_ERROR(
      CheckGeneratorSize(n, static_cast<uint64_t>(edge_factor) * n));
  return GenerateRmat(scale, edge_factor, seed, a, b, c);
}

}  // namespace gputc
