#ifndef GPUTC_GRAPH_GENERATORS_H_
#define GPUTC_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace gputc {

// Random graph families. All generators are deterministic given the seed and
// return simple graphs (self loops / duplicate edges removed, which can make
// the realized edge count slightly below the request for dense parameters).

/// G(n, m): `num_edges` distinct uniform edges over `num_vertices` vertices.
Graph GenerateErdosRenyi(VertexId num_vertices, EdgeCount num_edges,
                         uint64_t seed);

/// Preferential attachment: each new vertex attaches to `edges_per_vertex`
/// existing vertices chosen proportionally to degree. Produces a power-law
/// tail with exponent about 3.
Graph GenerateBarabasiAlbert(VertexId num_vertices, int edges_per_vertex,
                             uint64_t seed);

/// Watts–Strogatz small world: ring lattice of even degree `k`, each edge
/// rewired with probability `beta`. High clustering, near-uniform degrees —
/// the stand-in for road-network-like graphs.
Graph GenerateWattsStrogatz(VertexId num_vertices, int k, double beta,
                            uint64_t seed);

/// Configuration-model power law (the paper's ACL model, Eq. 18): degree d
/// has probability proportional to d^-gamma on [min_degree, max_degree];
/// stubs are matched uniformly at random and collisions dropped.
Graph GeneratePowerLawConfiguration(VertexId num_vertices, double gamma,
                                    EdgeCount min_degree, EdgeCount max_degree,
                                    uint64_t seed);

/// R-MAT / Kronecker (graph500 defaults a=0.57, b=c=0.19): 2^scale vertices,
/// edge_factor * 2^scale sampled edges. The stand-in for the kron-log*
/// datasets.
Graph GenerateRmat(int scale, int edge_factor, uint64_t seed,
                   double a = 0.57, double b = 0.19, double c = 0.19);

// Validated variants for parameters that come from users (CLI flags, config
// files) rather than code: they return kInvalidArgument describing the
// violated constraint instead of aborting the process, and enforce the
// GraphDoctor ingestion caps so a typo'd size cannot trigger a runaway
// allocation.

StatusOr<Graph> TryGenerateErdosRenyi(VertexId num_vertices,
                                      EdgeCount num_edges, uint64_t seed);
StatusOr<Graph> TryGenerateWattsStrogatz(VertexId num_vertices, int k,
                                         double beta, uint64_t seed);
StatusOr<Graph> TryGeneratePowerLawConfiguration(VertexId num_vertices,
                                                 double gamma,
                                                 EdgeCount min_degree,
                                                 EdgeCount max_degree,
                                                 uint64_t seed);
StatusOr<Graph> TryGenerateRmat(int scale, int edge_factor, uint64_t seed,
                                double a = 0.57, double b = 0.19,
                                double c = 0.19);

/// Samples a power-law degree sequence (exposed for tests and the Figure 7
/// approximation-ratio sweep).
std::vector<EdgeCount> PowerLawDegreeSequence(VertexId num_vertices,
                                              double gamma,
                                              EdgeCount min_degree,
                                              EdgeCount max_degree,
                                              uint64_t seed);

// Deterministic fixtures with known triangle counts, used heavily in tests.

/// K_n: C(n,3) triangles.
Graph CompleteGraph(VertexId n);

/// Simple cycle: no triangles for n >= 4; 1 for n == 3.
Graph CycleGraph(VertexId n);

/// Star K_{1,n-1}: hub 0, no triangles.
Graph StarGraph(VertexId n);

/// Path: no triangles.
Graph PathGraph(VertexId n);

/// rows x cols grid: no triangles.
Graph GridGraph(VertexId rows, VertexId cols);

/// Wheel: hub 0 plus an (n-1)-cycle; n-1 triangles for n >= 4.
Graph WheelGraph(VertexId n);

/// Complete bipartite K_{a,b}: no triangles.
Graph CompleteBipartiteGraph(VertexId a, VertexId b);

}  // namespace gputc

#endif  // GPUTC_GRAPH_GENERATORS_H_
