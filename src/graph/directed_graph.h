#ifndef GPUTC_GRAPH_DIRECTED_GRAPH_H_
#define GPUTC_GRAPH_DIRECTED_GRAPH_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace gputc {

/// Oriented version of an undirected Graph: every undirected edge appears as
/// exactly one out-edge, so each triangle is counted exactly once when
/// algorithms enumerate directed wedges.
///
/// Orientations in this library are induced by a *vertex rank* (a total order
/// on vertices): edge (u, v) becomes u -> v iff rank[u] < rank[v]. Every
/// scheme in src/direction (ID-based, degree-based, A-direction peeling,
/// random) produces such a rank, which makes the result acyclic by
/// construction — satisfying the paper's no-directed-3-cycle correctness
/// constraint (Section 4.1). Out-adjacency lists are sorted by neighbor id so
/// binary-search intersection applies.
class DirectedGraph {
 public:
  DirectedGraph() = default;

  /// Orients `g` by `rank` (one entry per vertex; any strict total order —
  /// ties broken by vertex id). `rank` must have g.num_vertices() entries.
  static DirectedGraph FromRank(const Graph& g,
                                const std::vector<VertexId>& rank);

  /// Assembles a DirectedGraph from raw CSR parts. `offsets` has n+1 entries
  /// ending at adj.size(); each out list must be sorted by id. Used by
  /// relabeling, which must preserve an arbitrary orientation exactly.
  static DirectedGraph FromParts(std::vector<EdgeCount> offsets,
                                 std::vector<VertexId> adj);

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  /// Number of directed edges == number of undirected edges in the source.
  EdgeCount num_edges() const { return num_edges_; }

  EdgeCount out_degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const VertexId> out_neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// True if the directed edge u -> v exists (binary search).
  bool HasArc(VertexId u, VertexId v) const;

  /// The paper's d~_avg = |E| / |V| (average out-degree).
  double AverageOutDegree() const;

  EdgeCount MaxOutDegree() const;

  /// Out-degree vector d~(v) for all v, used by cost models and A-order.
  std::vector<EdgeCount> OutDegrees() const;

  const std::vector<EdgeCount>& offsets() const { return offsets_; }
  const std::vector<VertexId>& adjacency() const { return adj_; }

 private:
  EdgeCount num_edges_ = 0;
  std::vector<EdgeCount> offsets_ = {0};
  std::vector<VertexId> adj_;
};

}  // namespace gputc

#endif  // GPUTC_GRAPH_DIRECTED_GRAPH_H_
