#include "graph/directed_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace gputc {

DirectedGraph DirectedGraph::FromRank(const Graph& g,
                                      const std::vector<VertexId>& rank) {
  GPUTC_CHECK_EQ(rank.size(), static_cast<size_t>(g.num_vertices()));
  DirectedGraph d;
  const VertexId n = g.num_vertices();
  d.num_edges_ = g.num_edges();
  d.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  // Ties in rank are broken by vertex id so the order is strict and the
  // orientation acyclic even if a caller passes duplicate ranks.
  auto points_out = [&rank](VertexId u, VertexId v) {
    return rank[u] < rank[v] || (rank[u] == rank[v] && u < v);
  };
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (points_out(u, v)) ++d.offsets_[u + 1];
    }
  }
  for (size_t i = 1; i < d.offsets_.size(); ++i) {
    d.offsets_[i] += d.offsets_[i - 1];
  }
  d.adj_.resize(static_cast<size_t>(d.offsets_.back()));
  std::vector<EdgeCount> cursor(d.offsets_.begin(), d.offsets_.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (points_out(u, v)) d.adj_[static_cast<size_t>(cursor[u]++)] = v;
    }
  }
  // Source adjacency is id-sorted, so each out list is already id-sorted.
  return d;
}

DirectedGraph DirectedGraph::FromParts(std::vector<EdgeCount> offsets,
                                       std::vector<VertexId> adj) {
  GPUTC_CHECK(!offsets.empty());
  GPUTC_CHECK_EQ(offsets.front(), 0);
  GPUTC_CHECK_EQ(offsets.back(), static_cast<EdgeCount>(adj.size()));
  DirectedGraph d;
  d.num_edges_ = static_cast<EdgeCount>(adj.size());
  d.offsets_ = std::move(offsets);
  d.adj_ = std::move(adj);
  return d;
}

bool DirectedGraph::HasArc(VertexId u, VertexId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double DirectedGraph::AverageOutDegree() const {
  if (num_vertices() == 0) return 0.0;
  return static_cast<double>(num_edges_) / static_cast<double>(num_vertices());
}

EdgeCount DirectedGraph::MaxOutDegree() const {
  EdgeCount max_d = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    max_d = std::max(max_d, out_degree(v));
  }
  return max_d;
}

std::vector<EdgeCount> DirectedGraph::OutDegrees() const {
  std::vector<EdgeCount> degs(num_vertices());
  for (VertexId v = 0; v < num_vertices(); ++v) degs[v] = out_degree(v);
  return degs;
}

}  // namespace gputc
