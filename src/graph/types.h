#ifndef GPUTC_GRAPH_TYPES_H_
#define GPUTC_GRAPH_TYPES_H_

#include <cstdint>

namespace gputc {

/// Vertex identifier. All graphs use dense ids in [0, num_vertices).
using VertexId = uint32_t;

/// Edge counter / CSR offset type. Signed 64-bit so that arithmetic on edge
/// counts never wraps.
using EdgeCount = int64_t;

/// An undirected edge. Normalized edges satisfy u < v.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

}  // namespace gputc

#endif  // GPUTC_GRAPH_TYPES_H_
