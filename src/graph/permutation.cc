#include "graph/permutation.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace gputc {

bool IsPermutation(const Permutation& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (VertexId v : perm) {
    if (v >= perm.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

Permutation IdentityPermutation(VertexId n) {
  Permutation perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  return perm;
}

Permutation InversePermutation(const Permutation& perm) {
  Permutation inv(perm.size());
  for (VertexId v = 0; v < perm.size(); ++v) inv[perm[v]] = v;
  return inv;
}

Permutation Compose(const Permutation& outer, const Permutation& inner) {
  GPUTC_CHECK_EQ(outer.size(), inner.size());
  Permutation result(inner.size());
  for (VertexId v = 0; v < inner.size(); ++v) result[v] = outer[inner[v]];
  return result;
}

Graph ApplyPermutation(const Graph& g, const Permutation& perm) {
  GPUTC_CHECK_EQ(perm.size(), static_cast<size_t>(g.num_vertices()));
  EdgeList list(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) list.Add(perm[u], perm[v]);
    }
  }
  list.set_num_vertices(g.num_vertices());
  return Graph::FromEdgeList(std::move(list));
}

DirectedGraph ApplyPermutation(const DirectedGraph& g,
                               const Permutation& perm) {
  GPUTC_CHECK_EQ(perm.size(), static_cast<size_t>(g.num_vertices()));
  const VertexId n = g.num_vertices();
  // Rebuild the CSR directly so the orientation (which a rank-based
  // reconstruction could not recover) is preserved verbatim.
  std::vector<EdgeCount> offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    offsets[perm[u] + 1] = g.out_degree(u);
  }
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> adj(static_cast<size_t>(offsets.back()));
  for (VertexId u = 0; u < n; ++u) {
    EdgeCount cursor = offsets[perm[u]];
    for (VertexId v : g.out_neighbors(u)) {
      adj[static_cast<size_t>(cursor++)] = perm[v];
    }
    std::sort(adj.begin() + offsets[perm[u]], adj.begin() + cursor);
  }

  return DirectedGraph::FromParts(std::move(offsets), std::move(adj));
}

Permutation PermutationFromSequence(const std::vector<VertexId>& order) {
  Permutation perm(order.size());
  for (VertexId i = 0; i < order.size(); ++i) perm[order[i]] = i;
  return perm;
}

}  // namespace gputc
