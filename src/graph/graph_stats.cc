#include "graph/graph_stats.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>

#include "util/table.h"

namespace gputc {

std::vector<int64_t> ConnectedComponents(const Graph& g,
                                         std::vector<int64_t>* sizes) {
  const VertexId n = g.num_vertices();
  std::vector<int64_t> component(n, -1);
  if (sizes != nullptr) sizes->clear();
  int64_t next_id = 0;
  std::deque<VertexId> queue;
  for (VertexId root = 0; root < n; ++root) {
    if (component[root] >= 0) continue;
    int64_t size = 0;
    component[root] = next_id;
    queue.push_back(root);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      ++size;
      for (VertexId v : g.neighbors(u)) {
        if (component[v] < 0) {
          component[v] = next_id;
          queue.push_back(v);
        }
      }
    }
    if (sizes != nullptr) sizes->push_back(size);
    ++next_id;
  }
  return component;
}

GraphStats ComputeGraphStats(const Graph& g) {
  GraphStats stats;
  stats.num_vertices = g.num_vertices();
  stats.num_edges = g.num_edges();
  stats.average_degree = g.AverageDegree();
  if (g.num_vertices() == 0) return stats;

  std::vector<EdgeCount> degrees(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    degrees[v] = g.degree(v);
    if (degrees[v] == 0) ++stats.isolated_vertices;
  }
  std::sort(degrees.begin(), degrees.end());
  stats.max_degree = degrees.back();
  stats.median_degree = degrees[degrees.size() / 2];
  stats.p99_degree =
      degrees[std::min(degrees.size() - 1,
                       static_cast<size_t>(0.99 * degrees.size()))];

  // Gini of the sorted degree sequence: G = (2 * sum i*d_i) / (n * sum d)
  // - (n + 1) / n, with 1-based ranks over ascending degrees.
  double weighted = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < degrees.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(degrees[i]);
    total += static_cast<double>(degrees[i]);
  }
  const double n = static_cast<double>(degrees.size());
  if (total > 0.0) {
    stats.degree_gini = 2.0 * weighted / (n * total) - (n + 1.0) / n;
  }

  // Continuous MLE for the power-law tail: gamma = 1 + k / sum ln(d / dmin)
  // over degrees >= dmin (Clauset, Shalizi & Newman).
  const double dmin = static_cast<double>(stats.gamma_dmin);
  double log_sum = 0.0;
  int64_t tail = 0;
  for (EdgeCount d : degrees) {
    if (d >= stats.gamma_dmin) {
      log_sum += std::log(static_cast<double>(d) / (dmin - 0.5));
      ++tail;
    }
  }
  if (tail >= 10 && log_sum > 0.0) {
    stats.gamma_estimate = 1.0 + static_cast<double>(tail) / log_sum;
  }

  std::vector<int64_t> sizes;
  ConnectedComponents(g, &sizes);
  stats.num_components = static_cast<int64_t>(sizes.size());
  for (int64_t s : sizes) {
    stats.largest_component = std::max(stats.largest_component, s);
  }
  return stats;
}

std::string FormatGraphStats(const GraphStats& stats) {
  std::ostringstream out;
  out << "vertices:        " << FmtCount(stats.num_vertices) << "\n"
      << "edges:           " << FmtCount(stats.num_edges) << "\n"
      << "avg degree:      " << Fmt(stats.average_degree, 2) << "\n"
      << "degree max/p99/median: " << FmtCount(stats.max_degree) << " / "
      << FmtCount(stats.p99_degree) << " / " << FmtCount(stats.median_degree)
      << "\n"
      << "degree gini:     " << Fmt(stats.degree_gini, 3) << "\n"
      << "gamma (MLE, d>=" << stats.gamma_dmin
      << "): " << Fmt(stats.gamma_estimate, 2) << "\n"
      << "components:      " << FmtCount(stats.num_components)
      << " (largest " << FmtCount(stats.largest_component) << ", isolated "
      << FmtCount(stats.isolated_vertices) << ")\n";
  return out.str();
}

}  // namespace gputc
