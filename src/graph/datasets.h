#ifndef GPUTC_GRAPH_DATASETS_H_
#define GPUTC_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gputc {

/// A named stand-in for one of the paper's evaluation datasets (Table 4).
///
/// The paper uses SNAP / GraphChallenge downloads and billion-edge Kronecker
/// graphs; this environment has neither network access nor the memory/time
/// budget for them, so each dataset is replaced by a seeded synthetic graph
/// from the same degree-distribution family at laptop scale (see DESIGN.md,
/// substitution table). The registry keys are the paper's dataset names so
/// the bench harness prints rows matching the paper's tables.
struct DatasetSpec {
  std::string name;          // Paper's dataset name, e.g. "gowalla".
  std::string family;        // "power-law", "road", "kron", ...
  std::string provenance;    // What the paper used and what we substitute.
};

/// Names of all registered datasets, in the paper's Table 4 order.
std::vector<std::string> DatasetNames();

/// Spec for a registered dataset. Aborts on unknown names (programming
/// error; use DatasetNames() to enumerate).
DatasetSpec GetDatasetSpec(const std::string& name);

/// Materializes the stand-in graph. Deterministic: repeated calls return
/// identical graphs. Aborts on unknown names.
Graph LoadDataset(const std::string& name);

/// Fallible variants for user-supplied names (CLI, config files): kNotFound
/// with the list of registered names instead of aborting.
StatusOr<DatasetSpec> TryGetDatasetSpec(const std::string& name);
StatusOr<Graph> TryLoadDataset(const std::string& name);

/// True if `name` is registered.
bool HasDataset(const std::string& name);

}  // namespace gputc

#endif  // GPUTC_GRAPH_DATASETS_H_
