#include "graph/edge_list.h"

#include <algorithm>

#include "util/logging.h"

namespace gputc {

void EdgeList::Add(VertexId u, VertexId v) {
  edges_.push_back(Edge{u, v});
  const VertexId hi = std::max(u, v);
  if (hi >= num_vertices_) num_vertices_ = hi + 1;
}

void EdgeList::Normalize() {
  size_t out = 0;
  for (size_t i = 0; i < edges_.size(); ++i) {
    Edge e = edges_[i];
    if (e.u == e.v) continue;  // Drop self loops.
    if (e.u > e.v) std::swap(e.u, e.v);
    edges_[out++] = e;
  }
  edges_.resize(out);
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

bool EdgeList::IsNormalized() const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    if (e.u >= e.v) return false;
    if (i > 0 && !(edges_[i - 1] < e)) return false;
  }
  return true;
}

void EdgeList::set_num_vertices(VertexId n) {
  for (const Edge& e : edges_) {
    GPUTC_CHECK_LT(std::max(e.u, e.v), n)
        << "edge endpoint exceeds requested vertex count";
  }
  num_vertices_ = n;
}

}  // namespace gputc
