#ifndef GPUTC_GRAPH_GRAPH_H_
#define GPUTC_GRAPH_GRAPH_H_

#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"

namespace gputc {

/// Immutable undirected graph in CSR form.
///
/// Adjacency lists are sorted by neighbor id and contain each neighbor once
/// (simple graph: no self loops, no multi-edges). num_edges() counts each
/// undirected edge once; the CSR stores both endpoints, so the adjacency
/// array has 2 * num_edges() entries.
class Graph {
 public:
  Graph() = default;

  /// Builds the CSR from an edge list. The list is normalized internally;
  /// callers may pass raw generator output.
  static Graph FromEdgeList(EdgeList edges);

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  EdgeCount num_edges() const { return num_edges_; }

  EdgeCount degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// True if (u, v) is an edge; binary search over the smaller endpoint list.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Average degree 2|E|/|V|; this equals twice the paper's d~_avg = |E|/|V|.
  double AverageDegree() const;

  /// Maximum vertex degree (0 for an empty graph).
  EdgeCount MaxDegree() const;

  /// Recovers a normalized edge list (u < v per edge), e.g. for relabeling.
  EdgeList ToEdgeList() const;

  const std::vector<EdgeCount>& offsets() const { return offsets_; }
  const std::vector<VertexId>& adjacency() const { return adj_; }

 private:
  EdgeCount num_edges_ = 0;
  std::vector<EdgeCount> offsets_ = {0};
  std::vector<VertexId> adj_;
};

}  // namespace gputc

#endif  // GPUTC_GRAPH_GRAPH_H_
