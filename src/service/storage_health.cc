#include "service/storage_health.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/fs_io.h"
#include "util/logging.h"

namespace gputc {
namespace {

constexpr char kErrorsMetric[] = "gputc_storage_errors_total";
constexpr char kErrorsHelp[] =
    "Storage faults observed per durable sink, labeled by errno.";
constexpr char kFreeMetric[] = "gputc_disk_free_bytes";
constexpr char kFreeHelp[] =
    "Free bytes on the filesystem holding the watched storage directory.";
constexpr char kProbeFile[] = ".gputc-health-probe";

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StatusOr<StoragePolicy> ParseStoragePolicy(std::string_view text) {
  if (text == "strict") return StoragePolicy::kStrict;
  if (text == "degrade") return StoragePolicy::kDegrade;
  return InvalidArgumentError("unknown storage policy '" + std::string(text) +
                              "' (expected strict or degrade)");
}

const char* StoragePolicyName(StoragePolicy policy) {
  switch (policy) {
    case StoragePolicy::kStrict:
      return "strict";
    case StoragePolicy::kDegrade:
      return "degrade";
  }
  return "unknown";
}

const char* StorageHealthMonitor::DiskStateName(DiskState state) {
  switch (state) {
    case DiskState::kUnknown:
      return "unknown";
    case DiskState::kOk:
      return "ok";
    case DiskState::kLow:
      return "low";
    case DiskState::kCritical:
      return "critical";
  }
  return "unknown";
}

StorageHealthMonitor::StorageHealthMonitor(Options options)
    : options_(std::move(options)) {}

void StorageHealthMonitor::RecordError(std::string_view sink,
                                       const Status& status) {
  if (status.ok()) return;
  MetricsRegistry::Global()
      .GetCounter(kErrorsMetric, kErrorsHelp,
                  {{"sink", std::string(sink)},
                   {"errno", StorageErrnoLabelFromStatus(status)}})
      .Increment();
  std::lock_guard<std::mutex> lock(mu_);
  ++errors_total_;
}

void StorageHealthMonitor::NoteDegraded(std::string_view sink,
                                        std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  degraded_sinks_.emplace(std::string(sink), std::move(reason));
}

void StorageHealthMonitor::RecordStrictStop(std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (strict_stopped_) return;
  strict_stopped_ = true;
  strict_stop_reason_ = std::move(reason);
}

bool StorageHealthMonitor::strict_stopped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strict_stopped_;
}

std::string StorageHealthMonitor::strict_stop_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strict_stop_reason_;
}

bool StorageHealthMonitor::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !degraded_sinks_.empty() || disk_state_ == DiskState::kLow ||
         disk_state_ == DiskState::kCritical;
}

std::string StorageHealthMonitor::degraded_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string reason;
  for (const auto& [sink, why] : degraded_sinks_) {
    if (!reason.empty()) reason += "; ";
    reason += sink + ": " + why;
  }
  if (disk_state_ == DiskState::kLow || disk_state_ == DiskState::kCritical) {
    if (!reason.empty()) reason += "; ";
    reason += std::string("disk ") + DiskStateName(disk_state_) + " (" +
              std::to_string(free_bytes_) + " bytes free)";
  }
  return reason;
}

int64_t StorageHealthMonitor::errors_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return errors_total_;
}

StorageHealthMonitor::DiskState StorageHealthMonitor::disk_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_state_;
}

uint64_t StorageHealthMonitor::free_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_bytes_;
}

void StorageHealthMonitor::MaybeProbe() {
  if (options_.probe_dir.empty()) return;
  const int64_t now =
      options_.now_ms ? options_.now_ms() : SteadyNowMs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (last_probe_ms_ >= 0 &&
        now - last_probe_ms_ < static_cast<int64_t>(options_.probe_interval_ms))
      return;
    last_probe_ms_ = now;
  }
  const Status probed = ProbeNow();
  (void)probed;  // Failures already recorded + logged inside ProbeNow.
}

Status StorageHealthMonitor::ProbeNow() {
  if (options_.probe_dir.empty()) return OkStatus();

  // Free-space watermarks first: statvfs failure is not itself a degraded
  // state (some filesystems cannot report it), so it only warns.
  DiskState space_state = DiskState::kUnknown;
  uint64_t free = 0;
  StatusOr<FsSpace> space = FsStatvfs(options_.probe_dir);
  if (space.ok()) {
    free = space->free_bytes;
    MetricsRegistry::Global()
        .GetGauge(kFreeMetric, kFreeHelp, {{"dir", options_.probe_dir}})
        .Set(static_cast<double>(free));
    space_state = free <= options_.critical_free_bytes ? DiskState::kCritical
                  : free <= options_.low_free_bytes    ? DiskState::kLow
                                                       : DiskState::kOk;
  } else {
    GPUTC_LOG(Warning) << "storage probe: " << space.status().ToString();
  }

  // Probe write: can this directory still take a durable byte? A failure
  // here is the earliest warning a full or read-only disk gives.
  Status probe = OkStatus();
  const std::string path = options_.probe_dir + "/" + kProbeFile;
  StatusOr<int> fd = FsOpen(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd.ok()) {
    char payload[64] = "gputc-storage-probe";
    probe = FsWriteFully(*fd, payload, sizeof(payload), path);
    if (probe.ok()) probe = FsFsync(*fd, path);
    ::close(*fd);
    ::unlink(path.c_str());
  } else {
    probe = fd.status();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    disk_state_ = probe.ok() ? space_state : DiskState::kCritical;
    free_bytes_ = free;
  }
  if (!probe.ok()) RecordError("probe", probe);
  return probe;
}

Status PreflightSpaceCheck(const std::string& dir, uint64_t projected_bytes) {
  FailPointScope scope;
  GPUTC_RETURN_IF_ERROR(CheckFailPoint("storage.preflight")
                            .WithContext("preflight '" + dir + "'"));
  StatusOr<FsSpace> space = FsStatvfs(dir);
  if (!space.ok()) {
    GPUTC_LOG(Warning) << "storage preflight: cannot measure free space: "
                       << space.status().ToString() << "; admitting anyway";
    return OkStatus();
  }
  if (space->free_bytes < projected_bytes) {
    return ResourceExhaustedError(
        "storage preflight: '" + dir + "' has " +
        std::to_string(space->free_bytes) + " bytes free but the manifest " +
        "projects " + std::to_string(projected_bytes) +
        " bytes of WAL + journal; free space or shrink the batch");
  }
  return OkStatus();
}

uint64_t EstimateBatchStorageBytes(size_t requests) {
  // Intent record (request spec) + done record (journal line copy) + the
  // journal line itself, with frame overhead and headroom for long traces.
  constexpr uint64_t kPerRequestBytes = 4096;
  constexpr uint64_t kFixedBytes = 64 * 1024;  // Version records, header.
  return kFixedBytes + kPerRequestBytes * static_cast<uint64_t>(requests);
}

}  // namespace gputc
