#include "service/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "util/net_io.h"

namespace gputc {
namespace {

/// One socket read's worth of buffer. Small enough to keep per-connection
/// memory boring, large enough that a normal request arrives in one read.
constexpr size_t kReadChunk = 4096;

}  // namespace

Connection::Connection(int fd, uint64_t id)
    : fd_(fd),
      id_(id),
      last_activity_(Clock::now()),
      partial_since_(last_activity_),
      write_pending_since_(last_activity_) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

Connection::Connection(Connection&& other) noexcept
    : inflight(other.inflight),
      close_after_flush(other.close_after_flush),
      is_health(other.is_health),
      fd_(other.fd_),
      id_(other.id_),
      read_open_(other.read_open_),
      read_buf_(std::move(other.read_buf_)),
      write_buf_(std::move(other.write_buf_)),
      write_off_(other.write_off_),
      last_activity_(other.last_activity_),
      partial_since_(other.partial_since_),
      write_pending_since_(other.write_pending_since_) {
  other.fd_ = -1;
}

ReadEvent Connection::ReadLines(size_t max_line_bytes,
                                std::vector<std::string>* lines) {
  if (!read_open_) return ReadEvent::kProgress;
  bool saw_eof = false;
  for (;;) {
    char chunk[kReadChunk];
    bool would_block = false;
    const StatusOr<size_t> n = ReadRetry(fd_, chunk, sizeof(chunk),
                                         &would_block);
    if (!n.ok()) return ReadEvent::kError;
    if (would_block) break;
    if (*n == 0) {
      saw_eof = true;
      break;
    }
    if (read_buf_.empty()) partial_since_ = Clock::now();
    read_buf_.append(chunk, *n);
    last_activity_ = Clock::now();
    // Keep draining: the kernel buffer may hold more than one chunk, and a
    // level-triggered poll loop must not rely on re-polling to find it.
  }

  size_t begin = 0;
  for (;;) {
    const size_t nl = read_buf_.find('\n', begin);
    if (nl == std::string::npos) break;
    size_t end = nl;
    if (end > begin && read_buf_[end - 1] == '\r') --end;
    lines->push_back(read_buf_.substr(begin, end - begin));
    begin = nl + 1;
  }
  if (begin > 0) {
    read_buf_.erase(0, begin);
    partial_since_ = Clock::now();
  }

  // The cap applies to what remains unterminated: a client streaming an
  // endless "line" may not grow this buffer without bound.
  if (read_buf_.size() > max_line_bytes) return ReadEvent::kLineTooLong;
  if (saw_eof) {
    read_open_ = false;
    return read_buf_.empty() ? ReadEvent::kEof : ReadEvent::kTornEof;
  }
  return ReadEvent::kProgress;
}

void Connection::QueueLine(const std::string& line) {
  if (!wants_write()) write_pending_since_ = Clock::now();
  write_buf_ += line;
  write_buf_ += '\n';
}

void Connection::QueueRaw(const std::string& bytes) {
  if (!wants_write()) write_pending_since_ = Clock::now();
  write_buf_ += bytes;
}

Status Connection::FlushWrites() {
  while (wants_write()) {
    bool would_block = false;
    // SendRetry, not WriteRetry: MSG_NOSIGNAL turns a departed peer into a
    // status this loop can handle instead of a SIGPIPE that kills the daemon.
    const StatusOr<size_t> n =
        SendRetry(fd_, write_buf_.data() + write_off_,
                  write_buf_.size() - write_off_, &would_block);
    if (!n.ok()) return n.status();
    if (would_block) break;
    write_off_ += *n;
    last_activity_ = Clock::now();
    // The stall clock measures lack of PROGRESS, not total residence time:
    // a slow-but-steadily-draining peer (or one pipelining fast enough that
    // the buffer never empties) must not be killed by the write deadline.
    if (*n > 0) write_pending_since_ = last_activity_;
  }
  if (!wants_write()) {
    write_buf_.clear();
    write_off_ = 0;
  } else if (write_off_ > kReadChunk) {
    // Compact occasionally so a slow reader cannot pin arbitrarily large
    // already-sent prefixes in memory.
    write_buf_.erase(0, write_off_);
    write_off_ = 0;
  }
  return OkStatus();
}

void Connection::HalfCloseRead() {
  if (!read_open_) return;
  read_open_ = false;
  read_buf_.clear();  // A half-received request will never complete.
  ::shutdown(fd_, SHUT_RD);
}

}  // namespace gputc
