#include "service/supervisor.h"

#include <errno.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "obs/metrics.h"

namespace gputc {
namespace {

constexpr char kBreakerOpenMessage[] =
    "worker circuit breaker open; backend benched";

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RecordRestart(WorkerFailure reason) {
  MetricsRegistry::Global()
      .GetCounter("gputc_worker_restarts_total",
                  "Worker subprocess deaths requiring a restart, by cause",
                  {{"reason", WorkerFailureName(reason)}})
      .Increment();
}

Gauge& ActiveGauge() {
  return MetricsRegistry::Global().GetGauge(
      "gputc_worker_active", "Live (spawned, un-reaped) worker subprocesses");
}

/// Deterministic per-slot jitter source (no global RNG state: restarts must
/// not perturb anything else's random sequence).
uint64_t XorShift(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

}  // namespace

const char* WorkerFailureName(WorkerFailure failure) {
  switch (failure) {
    case WorkerFailure::kCrash:
      return "crash";
    case WorkerFailure::kHang:
      return "hang";
    case WorkerFailure::kRlimit:
      return "rlimit";
    case WorkerFailure::kDeadline:
      return "deadline";
    case WorkerFailure::kDrain:
      return "drain";
  }
  return "unknown";
}

bool IsWorkerBreakerOpen(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         status.message().find(kBreakerOpenMessage) != std::string::npos;
}

struct Supervisor::Slot {
  enum class State { kDead, kSpawning, kIdle, kBusy };

  int index = 0;
  State state = State::kDead;
  std::unique_ptr<WorkerProcess> proc;

  // Busy bookkeeping (guarded by Impl::mu).
  Deadline hard_deadline;   // Request deadline + grace; watchdog backstop.
  double last_beat_ms = 0;  // Last frame (any type) from this worker.
  bool killed_by_watchdog = false;
  WorkerFailure kill_reason = WorkerFailure::kCrash;

  // Restart bookkeeping.
  int consecutive_crashes = 0;
  double next_spawn_ms = 0;  // Earliest respawn (steady ms); backoff gate.
  uint64_t jitter_state = 0;
};

struct Supervisor::Impl {
  explicit Impl(SupervisorOptions opts) : options(std::move(opts)) {}

  SupervisorOptions options;

  mutable std::mutex mu;
  std::condition_variable cv;
  std::vector<Slot> slots;
  bool draining = false;
  Deadline drain_deadline;
  bool started = false;
  bool stopping = false;

  std::thread watchdog;

  double BackoffMs(Slot* slot) {
    double backoff = options.backoff_base_ms;
    for (int i = 1; i < slot->consecutive_crashes; ++i) {
      backoff *= 2.0;
      if (backoff >= options.backoff_cap_ms) break;
    }
    backoff = std::min(backoff, options.backoff_cap_ms);
    // ±25% jitter so a fleet of crashed slots does not respawn in lockstep.
    const double unit =
        static_cast<double>(XorShift(&slot->jitter_state) % 1000) / 1000.0;
    return backoff * (0.75 + 0.5 * unit);
  }

  /// Marks a busy/idle worker dead and reaps it. Caller holds `mu` and has
  /// already ensured the process is dead or dying (SIGKILL sent or EOF
  /// seen). Returns the waitpid status (0 when unavailable). Restart
  /// accounting (metric, breaker) stays with the caller, which knows the
  /// final classification.
  int ReapLocked(Slot* slot) {
    int wait_status = 0;
    if (slot->proc != nullptr) {
      const int pid = slot->proc->pid();
      // Blocking waitpid is safe: the pid is known dead or freshly
      // SIGKILLed, so the kernel resolves this promptly.
      while (::waitpid(pid, &wait_status, 0) < 0 && errno == EINTR) {
      }
      slot->proc.reset();
      ActiveGauge().Add(-1.0);
    }
    slot->state = Slot::State::kDead;
    slot->consecutive_crashes += 1;
    slot->next_spawn_ms = NowMs() + BackoffMs(slot);
    cv.notify_all();
    return wait_status;
  }

  void WatchdogLoop() {
    std::unique_lock<std::mutex> lock(mu);
    while (!stopping) {
      cv.wait_for(lock, std::chrono::duration<double, std::milli>(
                            options.watchdog_period_ms));
      if (stopping) break;
      const double now = NowMs();
      const double stale_ms =
          options.heartbeat_interval_ms * options.heartbeat_misses;
      for (Slot& slot : slots) {
        if (slot.state != Slot::State::kBusy || slot.killed_by_watchdog ||
            slot.proc == nullptr) {
          continue;
        }
        WorkerFailure reason;
        if (draining && drain_deadline.expired()) {
          reason = WorkerFailure::kDrain;
        } else if (slot.hard_deadline.expired()) {
          reason = WorkerFailure::kDeadline;
        } else if (now - slot.last_beat_ms > stale_ms) {
          reason = WorkerFailure::kHang;
        } else {
          continue;
        }
        // Flag first, kill second: the dispatch thread blocked on this
        // worker's pipe observes EOF only after the SIGKILL, so it always
        // sees the reason.
        slot.killed_by_watchdog = true;
        slot.kill_reason = reason;
        slot.proc->Kill();
      }
    }
  }

  /// Leases a slot for one request: an idle worker if one exists, else a
  /// dead slot past its backoff (spawned here), else waits. Caller must
  /// hold no locks. On success the slot is kBusy and owned by the caller.
  StatusOr<Slot*> AcquireSlot(Deadline deadline) {
    std::unique_lock<std::mutex> lock(mu);
    int spawn_failures = 0;
    Status last_spawn_error;
    for (;;) {
      if (draining || stopping) {
        return CancelledError("supervisor draining; dispatch refused");
      }
      if (deadline.expired()) {
        return DeadlineExceededError("no worker slot before the deadline");
      }
      // Prefer a warm worker.
      for (Slot& slot : slots) {
        if (slot.state == Slot::State::kIdle && slot.proc != nullptr) {
          LeaseLocked(&slot, deadline);
          return &slot;
        }
      }
      // Else respawn a dead slot whose backoff has passed.
      const double now = NowMs();
      Slot* spawnable = nullptr;
      for (Slot& slot : slots) {
        if (slot.state == Slot::State::kDead && now >= slot.next_spawn_ms) {
          spawnable = &slot;
          break;
        }
      }
      if (spawnable != nullptr) {
        spawnable->state = Slot::State::kSpawning;
        lock.unlock();
        WorkerSpawnOptions spawn;
        spawn.binary = options.binary;
        spawn.heartbeat_interval_ms = options.heartbeat_interval_ms;
        spawn.rlimit_as_bytes = options.rlimit_as_bytes;
        StatusOr<WorkerProcess> proc = WorkerProcess::Spawn(spawn);
        lock.lock();
        if (!proc.ok()) {
          spawnable->state = Slot::State::kDead;
          spawnable->consecutive_crashes += 1;
          spawnable->next_spawn_ms = NowMs() + BackoffMs(spawnable);
          cv.notify_all();
          last_spawn_error = proc.status();
          if (++spawn_failures >= 3) {
            return last_spawn_error.WithContext(
                "worker spawn failed " + std::to_string(spawn_failures) +
                " times");
          }
          continue;
        }
        if (draining || stopping) {
          // Drain raced the spawn: this worker must not outlive the pool.
          proc->Kill();
          int ignored = 0;
          while (::waitpid(proc->pid(), &ignored, 0) < 0 && errno == EINTR) {
          }
          spawnable->state = Slot::State::kDead;
          return CancelledError("supervisor draining; dispatch refused");
        }
        spawnable->proc =
            std::make_unique<WorkerProcess>(*std::move(proc));
        ActiveGauge().Add(1.0);
        LeaseLocked(spawnable, deadline);
        return spawnable;
      }
      // Nothing available: wait for an idle worker, an expired backoff, or
      // the deadline — whichever is soonest.
      double wait_ms = options.watchdog_period_ms;
      for (const Slot& slot : slots) {
        if (slot.state == Slot::State::kDead) {
          wait_ms = std::min(wait_ms, std::max(1.0, slot.next_spawn_ms - now));
        }
      }
      wait_ms = std::min(wait_ms, std::max(1.0, deadline.remaining_millis()));
      cv.wait_for(lock, std::chrono::duration<double, std::milli>(wait_ms));
    }
  }

  void LeaseLocked(Slot* slot, Deadline deadline) {
    slot->state = Slot::State::kBusy;
    slot->hard_deadline =
        deadline.is_infinite()
            ? (draining ? drain_deadline : Deadline::Infinite())
            : Deadline::AfterMillis(deadline.remaining_millis() +
                                    options.deadline_grace_ms);
    slot->last_beat_ms = NowMs();
    slot->killed_by_watchdog = false;
  }

  /// Returns a leased worker to the pool after a clean result.
  void Release(Slot* slot) {
    std::lock_guard<std::mutex> lock(mu);
    slot->consecutive_crashes = 0;
    if (draining || stopping) {
      // Drain reaps on the way in: a worker finishing its request during
      // drain is killed here, not leaked.
      slot->proc->Kill();
      ReapLocked(slot);
      return;
    }
    slot->state = Slot::State::kIdle;
    cv.notify_all();
  }

  /// Classifies and accounts a worker death observed by its dispatch
  /// thread. Returns the error Execute reports for the in-flight request.
  Status HandleDeath(Slot* slot, const Status& read_error) {
    std::lock_guard<std::mutex> lock(mu);
    const int pid = slot->proc != nullptr ? slot->proc->pid() : 0;
    WorkerFailure reason = slot->killed_by_watchdog ? slot->kill_reason
                                                    : WorkerFailure::kCrash;
    const int wait_status = ReapLocked(slot);
    std::string death;
    if (WIFSIGNALED(wait_status)) {
      death = std::string("signal ") + strsignal(WTERMSIG(wait_status));
      // A worker under RLIMIT_AS that over-allocates dies by abort (failed
      // allocation) — attribute those to the memory cap, not a plain crash.
      if (reason == WorkerFailure::kCrash && options.rlimit_as_bytes > 0 &&
          WTERMSIG(wait_status) == SIGABRT) {
        reason = WorkerFailure::kRlimit;
      }
    } else if (WIFEXITED(wait_status)) {
      death = "exit status " + std::to_string(WEXITSTATUS(wait_status));
    } else {
      death = "unknown wait status";
    }
    RecordRestart(reason);
    const std::string detail = "worker pid " + std::to_string(pid) + " (" +
                               death + "): " + read_error.message();
    switch (reason) {
      case WorkerFailure::kDeadline:
        FeedBreaker(/*success=*/false, /*attributable=*/false);
        return DeadlineExceededError(
            "request deadline expired; " + detail);
      case WorkerFailure::kDrain:
        FeedBreaker(/*success=*/false, /*attributable=*/false);
        return CancelledError("drain grace expired; " + detail);
      case WorkerFailure::kHang:
        FeedBreaker(/*success=*/false, /*attributable=*/true);
        return InternalError("worker hung (heartbeats stopped); " + detail);
      case WorkerFailure::kRlimit:
        FeedBreaker(/*success=*/false, /*attributable=*/true);
        return InternalError("worker exceeded its memory cap; " + detail);
      case WorkerFailure::kCrash:
      default:
        FeedBreaker(/*success=*/false, /*attributable=*/true);
        return InternalError("worker crashed; " + detail);
    }
  }

  /// Resolves the breaker grant taken at Execute entry. Stop conditions
  /// (deadline, drain) cancel the probe instead of recording: they say
  /// nothing about worker health.
  void FeedBreaker(bool success, bool attributable) {
    if (options.breaker == nullptr) return;
    if (success) {
      options.breaker->RecordSuccess();
    } else if (attributable) {
      options.breaker->RecordFailure();
    } else {
      options.breaker->CancelProbe();
    }
  }
};

Supervisor::Supervisor(SupervisorOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {
  impl_->slots.resize(
      static_cast<size_t>(std::max(1, impl_->options.workers)));
  for (size_t i = 0; i < impl_->slots.size(); ++i) {
    impl_->slots[i].index = static_cast<int>(i);
    impl_->slots[i].jitter_state = 0x9e3779b97f4a7c15ull + i;
  }
}

Supervisor::~Supervisor() { Shutdown(); }

Status Supervisor::Start() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->started) {
    return FailedPreconditionError("Supervisor::Start called twice");
  }
  if (impl_->options.binary.empty()) {
    return InvalidArgumentError("Supervisor needs a worker binary path");
  }
  // A worker can die with our request half-written into its pipe; that must
  // surface as EPIPE on the write, not kill the whole service.
  ::signal(SIGPIPE, SIG_IGN);
  impl_->started = true;
  impl_->watchdog = std::thread([this] { impl_->WatchdogLoop(); });
  return OkStatus();
}

StatusOr<WorkerDispatch> Supervisor::Execute(const WorkerRequest& request,
                                             Deadline deadline) {
  Impl& impl = *impl_;
  if (impl.options.breaker != nullptr && !impl.options.breaker->Allow()) {
    return ResourceExhaustedError(kBreakerOpenMessage);
  }
  // From here every return path resolves the breaker grant exactly once
  // (RecordSuccess / RecordFailure / CancelProbe via FeedBreaker).

  // One silent retry: a worker that dies before reading the request (EPIPE
  // on send) provably never started it, so a fresh worker can take it with
  // no at-most-once concerns. Anything after the send is never retried —
  // the worker may have had side effects and, for the batch service, a
  // poisoned request must fail (not bounce across the pool killing every
  // worker).
  for (int send_attempt = 0;; ++send_attempt) {
    StatusOr<Slot*> leased = impl.AcquireSlot(deadline);
    if (!leased.ok()) {
      const StatusCode code = leased.status().code();
      impl.FeedBreaker(/*success=*/false,
                       /*attributable=*/code != StatusCode::kCancelled &&
                           code != StatusCode::kDeadlineExceeded);
      return leased.status().WithContext("Supervisor::Execute");
    }
    Slot* slot = *leased;
    const int pid = slot->proc->pid();

    const Status sent = slot->proc->SendRequest(request);
    if (!sent.ok()) {
      const Status death = impl.HandleDeath(slot, sent);
      if (sent.code() == StatusCode::kFailedPrecondition &&
          send_attempt == 0) {
        // The breaker grant was resolved by HandleDeath; take a new one for
        // the retry so accounting stays 1:1 with grants.
        if (impl.options.breaker != nullptr &&
            !impl.options.breaker->Allow()) {
          return ResourceExhaustedError(kBreakerOpenMessage);
        }
        continue;
      }
      return death.WithContext("request '" + request.id +
                               "' failed before dispatch");
    }

    // Pump frames until the result. Heartbeats refresh the watchdog clock;
    // the hard read deadline (request deadline + 2x grace) only fires if
    // the watchdog itself is wedged.
    Deadline read_deadline =
        deadline.is_infinite()
            ? Deadline::Infinite()
            : Deadline::AfterMillis(deadline.remaining_millis() +
                                    2.0 * impl.options.deadline_grace_ms);
    for (;;) {
      StatusOr<WireFrame> frame =
          ReadFrameWithDeadline(slot->proc->response_fd(), read_deadline);
      if (!frame.ok()) {
        if (frame.status().code() == StatusCode::kDeadlineExceeded) {
          // Watchdog missed it (or is configured off): kill here, then
          // classify through the same death path.
          {
            std::lock_guard<std::mutex> lock(impl.mu);
            if (!slot->killed_by_watchdog) {
              slot->killed_by_watchdog = true;
              slot->kill_reason = WorkerFailure::kDeadline;
            }
            slot->proc->Kill();
          }
          // Drain the pipe to EOF so classification sees the final state.
          Status death = impl.HandleDeath(
              slot, DeadlineExceededError("no result before the deadline"));
          return death.WithContext("request '" + request.id + "'");
        }
        // EOF (FailedPrecondition) or a torn frame (DataLoss): the worker
        // died mid-request. A torn result frame is a *crash*, not data
        // loss — nothing of the partial frame is trusted or surfaced.
        Status death = impl.HandleDeath(slot, frame.status());
        return death.WithContext("request '" + request.id + "'");
      }
      if (frame->type == kFrameHeartbeat) {
        std::lock_guard<std::mutex> lock(impl.mu);
        slot->last_beat_ms = NowMs();
        continue;
      }
      if (frame->type != kFrameResult) {
        {
          std::lock_guard<std::mutex> lock(impl.mu);
          slot->proc->Kill();
        }
        Status death = impl.HandleDeath(
            slot, InternalError(std::string("unexpected frame type '") +
                                frame->type + "'"));
        return death.WithContext("request '" + request.id + "'");
      }
      StatusOr<WorkerResult> result = DecodeWorkerResult(frame->body);
      if (!result.ok()) {
        // A frame that passed its checksum but does not decode means the
        // two ends disagree about the protocol — kill and classify as a
        // crash rather than trusting anything further from this worker.
        {
          std::lock_guard<std::mutex> lock(impl.mu);
          slot->proc->Kill();
        }
        Status death = impl.HandleDeath(slot, result.status());
        return death.WithContext("request '" + request.id + "'");
      }
      WorkerDispatch dispatch;
      dispatch.result = *std::move(result);
      dispatch.pid = pid;
      dispatch.worker_index = slot->index;
      impl.Release(slot);
      // A clean protocol round-trip is worker health, whatever the
      // request-level status says: an injected per-request fault must not
      // bench the pool.
      impl.FeedBreaker(/*success=*/true, /*attributable=*/true);
      return dispatch;
    }
  }
}

void Supervisor::RequestDrain(Deadline grace) {
  Impl& impl = *impl_;
  std::lock_guard<std::mutex> lock(impl.mu);
  impl.draining = true;
  impl.drain_deadline = grace;
  // Idle workers have no work to finish: kill and reap on the spot so the
  // drain path leaks nothing even if Shutdown never runs.
  for (Slot& slot : impl.slots) {
    if (slot.state == Slot::State::kIdle && slot.proc != nullptr) {
      slot.proc->Kill();
      impl.ReapLocked(&slot);
    }
    // Busy workers: the watchdog enforces `grace`, and Release/HandleDeath
    // reap them when their dispatch resolves.
    if (slot.state == Slot::State::kBusy && !slot.hard_deadline.expired()) {
      slot.hard_deadline = Deadline::Earlier(slot.hard_deadline, grace);
    }
  }
  impl.cv.notify_all();
}

void Supervisor::Shutdown() {
  Impl& impl = *impl_;
  {
    std::lock_guard<std::mutex> lock(impl.mu);
    if (impl.stopping) return;
    impl.stopping = true;
    impl.cv.notify_all();
  }
  if (impl.watchdog.joinable()) impl.watchdog.join();
  std::lock_guard<std::mutex> lock(impl.mu);
  for (Slot& slot : impl.slots) {
    if (slot.proc != nullptr) {
      slot.proc->Kill();
      impl.ReapLocked(&slot);
    }
  }
}

int Supervisor::ActiveWorkers() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  int live = 0;
  for (const Slot& slot : impl_->slots) {
    if (slot.proc != nullptr) ++live;
  }
  return live;
}

}  // namespace gputc
