#ifndef GPUTC_SERVICE_OVERLOAD_H_
#define GPUTC_SERVICE_OVERLOAD_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace gputc {

// Adaptive concurrency limiting for the serve daemon: an AIMD controller on
// observed tail latency, layered in FRONT of the queue bound and the
// memory-based admission gate. The queue bound protects the process from
// unbounded buffering and the admission gate from memory blowup, but
// neither notices the earlier failure mode of an overloaded service:
// latency collapse while every request still "fits". This limiter does —
// when the p-th percentile of recent request latencies exceeds the target,
// the concurrency limit multiplicatively shrinks (shedding load before the
// service thrashes); while latency stays healthy it creeps back up one slot
// per window (probing for capacity). The classic TCP congestion-control
// shape, applied to request concurrency.

/// Tuning of one AdaptiveLimiter.
struct AdaptiveLimiterOptions {
  /// Concurrency limit bounds and the starting point. The limit always
  /// stays within [min_limit, max_limit].
  int initial_limit = 4;
  int min_limit = 1;
  int max_limit = 64;
  /// Latency target: adapt on the `percentile`-th percentile of each
  /// window crossing `target_ms`.
  double target_ms = 1000.0;
  double percentile = 99.0;
  /// Completions per adaptation window. Small enough to react within a few
  /// dozen requests, large enough that one outlier is not a regime change.
  int window = 32;
  /// Multiplicative decrease factor on an unhealthy window.
  double decrease_factor = 0.7;
};

/// Thread-safe AIMD concurrency limiter. Acquire before submitting a
/// request, Release with the observed latency when its terminal outcome
/// arrives (including failures — a failing service is usually also a slow
/// one, and its latencies are exactly the signal).
class AdaptiveLimiter {
 public:
  explicit AdaptiveLimiter(AdaptiveLimiterOptions options);

  /// Claims one concurrency slot. ResourceExhausted when the request count
  /// in flight has reached the current adaptive limit — the caller must
  /// reject with RetryAfterMs(), not queue.
  Status TryAcquire();

  /// Returns the slot and feeds the latency sample to the controller.
  void Release(double latency_ms);

  /// Returns the slot WITHOUT a latency sample — for requests that claimed a
  /// slot but never executed (shed at a later gate, WAL append failure).
  /// Feeding those a fake 0 ms sample would drag the window p99 down during
  /// sustained overload and push the limit up exactly when it should shrink.
  void ReleaseSlot();

  /// How long a rejected client should back off before retrying: the last
  /// observed window p99 (clamped to [25ms, 5s]), or the target while no
  /// window has completed. Monotone in observed load, so a storm of
  /// rejected clients spreads out instead of thundering straight back.
  int64_t RetryAfterMs() const;

  int limit() const;
  int inflight() const;
  /// Windows that ended unhealthy (p99 over target) since construction.
  int64_t overloaded_windows() const;

 private:
  void AdaptLocked();

  const AdaptiveLimiterOptions options_;
  mutable std::mutex mu_;
  int limit_;
  int inflight_ = 0;
  std::vector<double> window_;
  double last_window_p99_ = -1.0;
  int64_t overloaded_windows_ = 0;
};

}  // namespace gputc

#endif  // GPUTC_SERVICE_OVERLOAD_H_
