#ifndef GPUTC_SERVICE_WORKER_PROCESS_H_
#define GPUTC_SERVICE_WORKER_PROCESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "service/manifest.h"
#include "util/deadline.h"
#include "util/status.h"

namespace gputc {

// Process isolation primitives for the batch service: one WorkerProcess is a
// fork/exec'd `gputc worker` subprocess speaking a length-prefixed,
// CRC32C-checked frame protocol over two pipes. The framing is the
// durable_file segment format ([u32 len][u32 crc32c][payload], little
// endian) so a torn frame — a worker SIGKILLed mid-write — is detected the
// same way a torn log tail is: the checksum fails or the bytes run out, and
// nothing after the tear is trusted. The first payload byte is the frame
// type:
//
//   'Q'  request   (supervisor -> worker)  body = EncodeWorkerRequest
//   'H'  heartbeat (worker -> supervisor)  body = stage label ("tick",
//        "validate", "Hu/base", ...) — emitted on a timer and per executor
//        stage, so the supervisor can tell slow (beats flowing) from hung
//        (beats stopped)
//   'R'  result    (worker -> supervisor)  body = EncodeWorkerResult
//
// One counting request per dispatch: the worker stays alive between
// requests (blocked reading its request pipe) but never interleaves two.

/// Frame type tags.
inline constexpr char kFrameRequest = 'Q';
inline constexpr char kFrameHeartbeat = 'H';
inline constexpr char kFrameResult = 'R';

/// One decoded frame.
struct WireFrame {
  char type = 0;
  std::string body;
};

/// Writes one framed message ([len][crc][type+body], fully, no fsync — pipes
/// have no durability). Passes the "worker.response.torn" fail point between
/// the two halves of a result frame, so a crash armed there leaves a
/// genuinely torn frame on the pipe for the supervisor to classify.
Status WriteFrame(int fd, char type, std::string_view body);

/// Blocking read of one frame. FailedPrecondition on a clean EOF at a frame
/// boundary, DataLoss on a torn or checksum-failing frame (the peer died
/// mid-write, or wrote garbage).
StatusOr<WireFrame> ReadFrame(int fd);

/// Reads one frame, polling until `deadline` (DeadlineExceeded on expiry).
/// `poll_slice_ms` bounds the latency of noticing the deadline.
StatusOr<WireFrame> ReadFrameWithDeadline(int fd, Deadline deadline,
                                          int poll_slice_ms = 10);

/// Everything a worker needs to execute one request, serializable onto the
/// wire. Mirrors BatchRequest plus the resolved batch-level policy pieces
/// the worker cannot see (effective timeout, fallback chain spec).
struct WorkerRequest {
  std::string id;
  std::string source;
  BatchRequest::Kind kind = BatchRequest::Kind::kDataset;
  std::string target;
  std::map<std::string, std::string> params;
  /// Effective wall-clock budget the worker's executor self-enforces
  /// (<= 0 = none); the supervisor's watchdog backstops it with SIGKILL.
  double timeout_ms = 0.0;
  /// Fallback chain spec ("Hu,cpu"), already resolved from the batch default
  /// and any per-request override.
  std::string chain;
  /// Per-request fail-point schedule armed inside the worker before the
  /// request runs and reverted after (the batch chaos hook).
  std::string failpoints;
  /// Tier-2 preprocessing-cache directory shared with the supervisor (empty
  /// = uncached). The worker builds its own in-process tier 1 on first use
  /// and keeps it across requests; `prep_cache_mb` bounds it (0 = default).
  std::string prep_cache_dir;
  int64_t prep_cache_mb = 0;
};

/// What one worker execution produced, serializable back. `code`/`message`
/// reconstruct the executor's Status (kOk when the count succeeded).
struct WorkerResult {
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::string stage;    // Winning fallback stage ("" on failure).
  std::string variant;  // Winning degradation variant ("" on failure).
  int64_t triangles = 0;
  int attempts = 0;
  std::vector<std::string> trace;  // One line per attempt.
  double materialize_ms = 0.0;
  double exec_ms = 0.0;

  Status status() const {
    return code == StatusCode::kOk ? OkStatus() : Status(code, message);
  }
};

/// Line-oriented wire codecs. Encode/Decode round-trip exactly; Decode is
/// strict (unknown keys and malformed numbers are InvalidArgument) because
/// both ends are the same binary — a decode failure means a torn or foreign
/// payload, not a version skew to paper over.
std::string EncodeWorkerRequest(const WorkerRequest& request);
StatusOr<WorkerRequest> DecodeWorkerRequest(std::string_view body);
std::string EncodeWorkerResult(const WorkerResult& result);
StatusOr<WorkerResult> DecodeWorkerResult(std::string_view body);

/// Spawn tuning for one worker subprocess.
struct WorkerSpawnOptions {
  /// Absolute path of the gputc binary to exec.
  std::string binary;
  /// Heartbeat cadence the worker is told to beat at.
  double heartbeat_interval_ms = 25.0;
  /// When > 0, the child calls setrlimit(RLIMIT_AS, this) before exec, so a
  /// worker that over-allocates dies alone instead of OOMing the service.
  /// Ignored in sanitizer builds (ASan's shadow reservation needs unlimited
  /// address space).
  int64_t rlimit_as_bytes = 0;
};

/// A live `gputc worker` subprocess: the pid plus the two pipe ends the
/// supervisor talks through. Move-only; the destructor closes the pipes but
/// does NOT kill or reap — the supervisor owns lifecycle (kill, waitpid) so
/// zombie accounting lives in exactly one place.
class WorkerProcess {
 public:
  /// Forks and execs `binary worker --request-fd 3 --response-fd 4 ...`.
  /// Passes the "worker.spawn" fail point before forking, and "worker.exec"
  /// before exec — the latter swaps in a nonexistent binary path so the
  /// child's real execve-failure path (errno over a CLOEXEC status pipe) is
  /// what reports the error. The child inherits the parent's environment
  /// (including any ambient GPUTC_FAILPOINTS), redirects stdout to /dev/null
  /// (the service's stdout may be the journal stream), keeps stderr, and
  /// closes every other inherited descriptor.
  static StatusOr<WorkerProcess> Spawn(const WorkerSpawnOptions& options);

  WorkerProcess(WorkerProcess&& other) noexcept;
  WorkerProcess& operator=(WorkerProcess&& other) noexcept;
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;
  ~WorkerProcess();

  /// Frames and writes one request onto the worker's request pipe. A write
  /// failure (EPIPE: the worker died before reading it) is safe to retry on
  /// a fresh worker — the request never reached this one.
  Status SendRequest(const WorkerRequest& request);

  int pid() const { return pid_; }
  int response_fd() const { return response_fd_; }

  /// SIGKILL. Safe to call repeatedly; reaping is separate (the supervisor
  /// waitpids exactly the pids it owns, never -1, so it coexists with other
  /// forkers in the process, e.g. the crash-test harness).
  void Kill();

 private:
  WorkerProcess(int pid, int request_fd, int response_fd)
      : pid_(pid), request_fd_(request_fd), response_fd_(response_fd) {}
  void CloseFds();

  int pid_ = -1;
  int request_fd_ = -1;   // Parent writes requests here.
  int response_fd_ = -1;  // Parent reads heartbeats/results here.
};

}  // namespace gputc

#endif  // GPUTC_SERVICE_WORKER_PROCESS_H_
