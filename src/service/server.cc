#include "service/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/version.h"

namespace gputc {
namespace {

/// Poll tick. Short enough that connection deadlines (default 10s, tests use
/// ~100ms) are enforced promptly; cross-thread events never wait for it —
/// the wakeup pipe interrupts the poll.
constexpr int kPollTickMs = 20;

double MillisBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

double MillisSince(std::chrono::steady_clock::time_point from) {
  return MillisBetween(from, std::chrono::steady_clock::now());
}

/// The request source echoed in door-rejection lines. Bounded: an attacker's
/// 64 KiB garbage line must not become a 64 KiB error response.
std::string BoundedSource(const std::string& line) {
  constexpr size_t kMax = 160;
  if (line.size() <= kMax) return line;
  return line.substr(0, kMax) + "...";
}

bool IsBlankOrComment(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t') continue;
    return c == '#' || c == '%';
  }
  return true;
}

Counter& ServerRejectionCounter(const char* reason) {
  return MetricsRegistry::Global().GetCounter(
      "gputc_overload_rejections_total",
      "Requests shed by an overload gate, by reason", {{"reason", reason}});
}

Gauge& ConnectionsGauge() {
  return MetricsRegistry::Global().GetGauge(
      "gputc_connections_active", "Open data connections on the serve daemon");
}

/// Minimal HTTP/1.0 response for probe clients (curl, kubelet); plain-text
/// clients that send a bare endpoint name get the body alone.
std::string HttpResponse(int code, const std::string& reason,
                         const std::string& body,
                         const std::string& extra_header = "") {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason + "\r\n";
  out += "Content-Type: text/plain; version=0.0.4\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (!extra_header.empty()) out += extra_header + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      service_(options_.batch),
      limiter_(options_.limiter) {}

Server::~Server() {
  for (int fd : {listen_fd_, health_fd_, wake_r_, wake_w_}) {
    if (fd >= 0) ::close(fd);
  }
}

Status Server::Start() {
  GPUTC_CHECK(!started_) << "Server::Start called twice";
  started_ = true;

  GPUTC_ASSIGN_OR_RETURN(listen_fd_, OpenListener(options_.listen));
  if (!options_.listen.is_unix) {
    listen_port_ = options_.listen.port;
    if (listen_port_ == 0) {
      sockaddr_in addr{};
      socklen_t len = sizeof(addr);
      if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        &len) == 0) {
        listen_port_ = ntohs(addr.sin_port);
      }
    }
  }
  if (options_.has_health) {
    GPUTC_ASSIGN_OR_RETURN(health_fd_, OpenListener(options_.health));
  }

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
    return InternalError("pipe2 for the server wakeup pipe failed");
  }
  wake_r_ = pipe_fds[0];
  wake_w_ = pipe_fds[1];

  service_.set_on_report([this](const RequestReport& r) { OnReport(r); });
  service_.Start();
  return OkStatus();
}

Status Server::ParseLine(const std::string& line,
                         std::vector<BatchRequest>* requests) const {
  std::istringstream in(line);
  GPUTC_ASSIGN_OR_RETURN(*requests, ParseManifest(in));
  return OkStatus();
}

Status Server::ValidateRecovered(const std::string& id,
                                 const std::string& line) const {
  std::vector<BatchRequest> parsed;
  GPUTC_RETURN_IF_ERROR(ParseLine(line, &parsed));
  if (parsed.size() != 1) {
    return InvalidArgumentError("recovered WAL intent '" + id +
                                "' does not hold exactly one request: '" +
                                BoundedSource(line) + "'");
  }
  return OkStatus();
}

Status Server::SubmitRecovered(const std::string& id,
                               const std::string& line) {
  GPUTC_RETURN_IF_ERROR(ValidateRecovered(id, line));
  std::vector<BatchRequest> parsed;
  GPUTC_RETURN_IF_ERROR(ParseLine(line, &parsed));
  BatchRequest request = std::move(parsed[0]);
  request.id = id;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    // Exactly-once: a duplicate id must not clobber a registered request —
    // the overwritten entry's report would route to the wrong owner and the
    // orphaned second report would leak an inflight slot.
    if (!pending_.emplace(id, PendingRequest{0, Clock::now(), false})
             .second) {
      return FailedPreconditionError("request id '" + id +
                                     "' is already registered");
    }
  }
  inflight_total_.fetch_add(1, std::memory_order_acq_rel);
  service_.Submit(std::move(request));
  return OkStatus();
}

void Server::RequestShutdown(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(reason_mu_);
    if (shutdown_reason_.empty()) shutdown_reason_ = reason;
  }
  shutdown_requested_.store(true, std::memory_order_release);
  Wake();
}

std::string Server::shutdown_reason() const {
  std::lock_guard<std::mutex> lock(reason_mu_);
  return shutdown_reason_;
}

bool Server::ready() const {
  if (shutdown_requested_.load(std::memory_order_acquire)) return false;
  if (options_.storage != nullptr && options_.storage->strict_stopped()) {
    // The strict-WAL fail-stop fired: the daemon is finishing in-flight
    // work on its way to exit code 6 and must take no new traffic.
    return false;
  }
  if (options_.batch.isolate > 0) {
    // A daemon whose worker pool is crash-looping still answers (degraded
    // cpu failover), but a load balancer should stop preferring it.
    BatchService& service = const_cast<BatchService&>(service_);
    if (service.breakers().ForBackend("worker").state() ==
        CircuitBreaker::State::kOpen) {
      return false;
    }
  }
  return true;
}

void Server::Wake() {
  // A full pipe already guarantees a pending wakeup; any error here is
  // therefore ignorable by design.
  const char byte = 'w';
  [[maybe_unused]] ssize_t ignored = ::write(wake_w_, &byte, 1);
}

void Server::OnReport(const RequestReport& report) {
  // Serialized by the service's journal lock: WAL done + journal file first
  // (durability before emission — the exactly-once contract), then route the
  // response to its connection.
  if (options_.on_report) options_.on_report(report);

  PendingRequest info;
  bool known = false;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(report.id);
    if (it != pending_.end()) {
      info = it->second;
      pending_.erase(it);
      known = true;
    }
  }
  if (!known) return;  // Not ours (defensive; every submit registers).
  inflight_total_.fetch_sub(1, std::memory_order_acq_rel);
  if (info.limited) limiter_.Release(MillisSince(info.submitted));
  if (info.conn_id != 0) {
    std::lock_guard<std::mutex> lock(responses_mu_);
    responses_.emplace_back(info.conn_id, report.ToJson());
  }
  Wake();
}

size_t Server::DataConnectionCount() const {
  size_t count = 0;
  for (const auto& [fd, conn] : conns_) {
    if (!conn.is_health) ++count;
  }
  return count;
}

size_t Server::HealthConnectionCount() const {
  size_t count = 0;
  for (const auto& [fd, conn] : conns_) {
    if (conn.is_health) ++count;
  }
  return count;
}

void Server::AcceptPending(int listener_fd, bool is_health) {
  for (;;) {
    // Each listener has its own cap; a probe flood on the health port must
    // not be able to exhaust descriptors just because it bypasses the data
    // cap. Reached mid-burst, the rest stays in the backlog.
    if (is_health
            ? HealthConnectionCount() >= options_.max_health_connections
            : DataConnectionCount() >= options_.max_connections) {
      return;
    }
    StatusOr<int> accepted = AcceptRetry(listener_fd);
    if (!accepted.ok()) {
      // EMFILE/ENFILE (or any other accept error): the listener stays
      // readable, so a level-triggered poll would spin on it. Deregister
      // every listener briefly; the idle sweep frees descriptors meanwhile.
      accept_backoff_ = Deadline::AfterMillis(100.0);
      return;
    }
    if (*accepted < 0) return;
    const int fd = *accepted;
    if (Status nb = SetNonBlocking(fd); !nb.ok()) {
      ::close(fd);
      continue;
    }
    const uint64_t id = ++next_conn_id_;
    auto [it, inserted] = conns_.emplace(fd, Connection(fd, id));
    GPUTC_CHECK(inserted) << "fd " << fd << " already tracked";
    Connection& conn = it->second;
    conn.is_health = is_health;
    conn_fd_[id] = fd;
    if (!is_health) {
      ++summary_.connections_accepted;
      ConnectionsGauge().Add(1.0);
      if (options_.send_hello) {
        conn.QueueLine("{\"hello\":\"gputc\",\"version\":\"" +
                       VersionString() + "\",\"proto\":1}");
      }
    }
  }
}

void Server::QueueErrorLine(Connection& conn, const std::string& id,
                            const std::string& source, Status status,
                            int64_t retry_after_ms) {
  RequestReport report;
  report.id = id;
  report.source = BoundedSource(source);
  report.outcome = RequestOutcome::kRejected;
  report.status = std::move(status);
  report.retry_after_ms = retry_after_ms;
  conn.QueueLine(report.ToJson());
}

void Server::HandleRequestLine(Connection& conn, const std::string& line) {
  if (IsBlankOrComment(line)) return;  // Manifest semantics: no response.
  ++summary_.requests_received;

  std::vector<BatchRequest> parsed;
  const Status parse_status = ParseLine(line, &parsed);
  if (!parse_status.ok() || parsed.size() != 1) {
    ++summary_.protocol_errors;
    QueueErrorLine(conn, "", line,
                   parse_status.ok()
                       ? InvalidArgumentError(
                             "request must be exactly one manifest line")
                       : parse_status,
                   /*retry_after_ms=*/-1);
    return;
  }
  BatchRequest request = std::move(parsed[0]);
  // The run epoch (nonzero on a resumed WAL) keeps generated ids unique
  // across runs: without it, run two's "net-1-1" would collide with a
  // WAL-recovered pending request registered under the same id by run one.
  const std::string id =
      (options_.run_epoch > 0
           ? "net-r" + std::to_string(options_.run_epoch) + "-"
           : std::string("net-")) +
      std::to_string(conn.id()) + "-" + std::to_string(++next_request_seq_);
  request.id = id;
  {
    // Structurally impossible given the epoch, but an id collision breaks
    // the exactly-once contract in three ways at once (misrouted response,
    // leaked inflight slot, double WAL done) — so belt-and-braces.
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (pending_.count(id) > 0) {
      QueueErrorLine(conn, id, request.source,
                     InternalError("generated request id '" + id +
                                   "' collides with a registered request"),
                     /*retry_after_ms=*/-1);
      return;
    }
  }

  // Overload gate 1: adaptive concurrency (tail-latency AIMD).
  const Status slot = limiter_.TryAcquire();
  if (!slot.ok()) {
    ++summary_.overload_rejections;
    ServerRejectionCounter("concurrency").Increment();
    QueueErrorLine(conn, id, request.source, slot, limiter_.RetryAfterMs());
    return;
  }
  // Overload gate 2: the hard queue bound. Submit below must never block
  // the poll thread, so the server refuses before the queue could.
  if (inflight_total_.load(std::memory_order_acquire) >=
      options_.batch.queue_depth) {
    limiter_.ReleaseSlot();  // No latency sample: nothing executed.
    ++summary_.overload_rejections;
    ServerRejectionCounter("queue").Increment();
    QueueErrorLine(conn, id, request.source,
                   ResourceExhaustedError(
                       "service work queue is full (" +
                       std::to_string(options_.batch.queue_depth) +
                       " requests in flight)"),
                   limiter_.RetryAfterMs());
    return;
  }
  // Durability: the WAL intent must exist before the service can produce an
  // outcome, or a crash between the two would lose the request.
  if (options_.on_intent) {
    const Status logged = options_.on_intent(id, line);
    if (!logged.ok()) {
      limiter_.ReleaseSlot();  // No latency sample: nothing executed.
      QueueErrorLine(conn, id, request.source,
                     logged.WithContext("write-ahead intent"),
                     /*retry_after_ms=*/-1);
      // A daemon that cannot persist intents must stop taking work.
      RequestShutdown("WAL append failed: " + logged.ToString());
      return;
    }
  }
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_[id] = PendingRequest{conn.id(), Clock::now(), true};
  }
  inflight_total_.fetch_add(1, std::memory_order_acq_rel);
  ++conn.inflight;
  service_.Submit(std::move(request));
}

void Server::HandleHealthLine(Connection& conn, const std::string& line) {
  // "GET /readyz HTTP/1.1" from probes, or a bare "readyz" from nc.
  std::istringstream in(line);
  std::string token;
  in >> token;
  bool http = false;
  if (token == "GET" || token == "HEAD") {
    http = true;
    in >> token;
  }
  if (!token.empty() && token.front() == '/') token.erase(0, 1);
  const size_t query = token.find('?');
  if (query != std::string::npos) token.resize(query);

  int code = 200;
  std::string reason = "OK";
  std::string body;
  std::string extra_header;
  if (token == "healthz") {
    body = "ok\n";
  } else if (token == "readyz") {
    const bool storage_stopped =
        options_.storage != nullptr && options_.storage->strict_stopped();
    if (ready()) {
      body = "ready\n";
      if (options_.storage != nullptr && options_.storage->degraded()) {
        // Serving, but a sink lost its disk (journal mirroring to stderr,
        // cache tier benched, low free space): tell the load balancer
        // without failing the probe.
        extra_header = "X-Gputc-Storage: degraded";
      }
    } else {
      code = 503;
      reason = "Service Unavailable";
      body = storage_stopped ? "storage-degraded\n"
             : shutdown_requested_.load(std::memory_order_acquire)
                 ? "draining\n"
                 : "worker breaker open\n";
    }
  } else if (token == "metrics") {
    body = MetricsRegistry::Global().PrometheusText();
  } else {
    code = 404;
    reason = "Not Found";
    body = "unknown endpoint (healthz | readyz | metrics)\n";
  }
  conn.QueueRaw(http ? HttpResponse(code, reason, body, extra_header) : body);
  conn.close_after_flush = true;
  conn.HalfCloseRead();
}

void Server::DeliverResponses() {
  std::vector<std::pair<uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(responses_mu_);
    batch.swap(responses_);
  }
  for (auto& [conn_id, json] : batch) {
    auto it = conn_fd_.find(conn_id);
    if (it == conn_fd_.end()) continue;  // Peer gone; the journal has it.
    Connection& conn = conns_.at(it->second);
    conn.QueueLine(json);
    if (conn.inflight > 0) --conn.inflight;
    ++summary_.responses_sent;
  }
}

void Server::SweepDeadlines(std::vector<int>* dead) {
  for (auto& [fd, conn] : conns_) {
    if (conn.wants_write() &&
        MillisSince(conn.write_pending_since()) > options_.io_timeout_ms) {
      // The peer stopped draining its responses; it forfeits them.
      ++summary_.protocol_errors;
      dead->push_back(fd);
      continue;
    }
    if (conn.read_open() && conn.partial_bytes() > 0 &&
        MillisSince(conn.partial_since()) > options_.io_timeout_ms) {
      // Slowloris: an unfinished request line past the I/O deadline.
      ++summary_.protocol_errors;
      if (!conn.is_health) {
        QueueErrorLine(conn, "", "",
                       DeadlineExceededError(
                           "request line not completed within " +
                           std::to_string(
                               static_cast<int64_t>(options_.io_timeout_ms)) +
                           "ms"),
                       /*retry_after_ms=*/-1);
      }
      conn.HalfCloseRead();
      conn.close_after_flush = true;
      continue;
    }
    if (conn.read_open() && conn.inflight == 0 && !conn.wants_write() &&
        conn.partial_bytes() == 0 &&
        MillisSince(conn.last_activity()) > options_.idle_timeout_ms) {
      dead->push_back(fd);  // Quiet connection; close cleanly.
    }
  }
}

void Server::DestroyConnection(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (!it->second.is_health) ConnectionsGauge().Add(-1.0);
  conn_fd_.erase(it->second.id());
  conns_.erase(it);  // Destructor closes the fd.
}

void Server::CloseListeners() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (options_.listen.is_unix) ::unlink(options_.listen.path.c_str());
}

ServerSummary Server::Run() {
  Phase phase = Phase::kServing;
  Deadline grace;
  Deadline final_deadline;
  bool service_drained = false;

  for (;;) {
    // Disk-health heartbeat: rate-limited inside the monitor, so this is a
    // cheap call per poll tick that keeps gputc_disk_free_bytes and the
    // /readyz degraded header current.
    if (options_.storage != nullptr) options_.storage->MaybeProbe();
    if (phase == Phase::kServing &&
        shutdown_requested_.load(std::memory_order_acquire)) {
      // Drain ladder, rungs one and two: stop accepting (readiness already
      // reads false), then half-close every data reader. In-flight work
      // keeps running; queued responses still go out.
      phase = Phase::kDraining;
      CloseListeners();
      for (auto& [fd, conn] : conns_) {
        if (conn.is_health) continue;
        conn.HalfCloseRead();
        conn.close_after_flush = true;
      }
      grace = Deadline::AfterMillis(std::max(0.0, options_.drain_grace_ms));
    }
    if (phase == Phase::kDraining) {
      bool writes_pending = false;
      for (const auto& [fd, conn] : conns_) {
        if (!conn.is_health && conn.wants_write()) writes_pending = true;
      }
      bool responses_pending;
      {
        std::lock_guard<std::mutex> lock(responses_mu_);
        responses_pending = !responses_.empty();
      }
      const bool work_pending =
          inflight_total_.load(std::memory_order_acquire) > 0;
      if (!work_pending && !responses_pending && !writes_pending) break;
      if (grace.expired() && !service_drained) {
        // Rung three: the grace window closed; cancel stragglers through
        // the service's own drain (watchdog fires their CancelTokens, shed
        // queue entries are journaled as rejected).
        service_drained = true;
        service_.RequestDrain(shutdown_reason());
        final_deadline =
            Deadline::AfterMillis(options_.batch.drain_grace_ms + 2000.0);
      }
      if (service_drained && final_deadline.expired()) break;
    }

    std::vector<pollfd> pfds;
    pfds.push_back(pollfd{wake_r_, POLLIN, 0});
    // Listeners leave the poll set at their connection cap and during an
    // accept-failure backoff (EMFILE): a readable listener we will not
    // accept from would spin the level-triggered loop.
    const bool accepts_ok = accept_backoff_.expired();
    const bool poll_listener =
        phase == Phase::kServing && listen_fd_ >= 0 && accepts_ok &&
        DataConnectionCount() < options_.max_connections;
    if (poll_listener) pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    if (health_fd_ >= 0 && accepts_ok &&
        HealthConnectionCount() < options_.max_health_connections) {
      pfds.push_back(pollfd{health_fd_, POLLIN, 0});
    }
    const size_t conns_at = pfds.size();
    for (const auto& [fd, conn] : conns_) {
      short events = 0;
      if (conn.read_open()) events |= POLLIN;
      if (conn.wants_write()) events |= POLLOUT;
      pfds.push_back(pollfd{fd, events, 0});
    }

    const StatusOr<int> ready_count =
        PollRetry(pfds.data(), pfds.size(), kPollTickMs);
    GPUTC_CHECK(ready_count.ok()) << ready_count.status().ToString();

    if ((pfds[0].revents & POLLIN) != 0) {
      char drain_buf[256];
      bool would_block = false;
      while (true) {
        const StatusOr<size_t> n =
            ReadRetry(wake_r_, drain_buf, sizeof(drain_buf), &would_block);
        if (!n.ok() || would_block || *n == 0) break;
      }
    }
    DeliverResponses();

    for (size_t i = 1; i < conns_at; ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      AcceptPending(pfds[i].fd, /*is_health=*/pfds[i].fd == health_fd_);
    }

    std::vector<int> dead;
    for (size_t i = conns_at; i < pfds.size(); ++i) {
      const int fd = pfds[i].fd;
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Connection& conn = it->second;
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          conn.read_open()) {
        std::vector<std::string> lines;
        const ReadEvent event = conn.ReadLines(options_.max_line_bytes,
                                               &lines);
        for (const std::string& line : lines) {
          if (conn.is_health) {
            // One probe request per connection; ignore the rest of an HTTP
            // header block.
            if (!conn.close_after_flush) HandleHealthLine(conn, line);
          } else {
            HandleRequestLine(conn, line);
          }
        }
        switch (event) {
          case ReadEvent::kProgress:
            break;
          case ReadEvent::kEof:
            conn.close_after_flush = true;
            break;
          case ReadEvent::kTornEof:
            // Mid-request disconnect: the partial line is unrecoverable,
            // but responses for completed requests still get delivered.
            if (!conn.is_health) ++summary_.protocol_errors;
            conn.close_after_flush = true;
            break;
          case ReadEvent::kLineTooLong:
            ++summary_.protocol_errors;
            if (!conn.is_health) {
              QueueErrorLine(
                  conn, "", "",
                  InvalidArgumentError(
                      "request line exceeds " +
                      std::to_string(options_.max_line_bytes) + " bytes"),
                  /*retry_after_ms=*/-1);
            }
            conn.HalfCloseRead();
            conn.close_after_flush = true;
            break;
          case ReadEvent::kError:
            dead.push_back(fd);
            continue;
        }
      }
      if (conn.wants_write()) {
        if (const Status flushed = conn.FlushWrites(); !flushed.ok()) {
          dead.push_back(fd);
          continue;
        }
      }
      if (conn.close_after_flush && conn.inflight == 0 &&
          !conn.wants_write()) {
        dead.push_back(fd);
      }
    }

    SweepDeadlines(&dead);
    for (int fd : dead) DestroyConnection(fd);
  }

  // The ladder's last rung: join the service, deliver any reports that
  // landed during the join (best effort — sockets are non-blocking and the
  // grace is spent), and account for everything.
  summary_.batch = service_.Finish();
  DeliverResponses();
  for (auto& [fd, conn] : conns_) {
    if (conn.wants_write()) (void)conn.FlushWrites();
  }
  while (!conns_.empty()) DestroyConnection(conns_.begin()->first);
  if (health_fd_ >= 0) {
    ::close(health_fd_);
    health_fd_ = -1;
    if (options_.health.is_unix) ::unlink(options_.health.path.c_str());
  }
  CloseListeners();
  ConnectionsGauge().Set(0.0);
  summary_.drain_reason = shutdown_reason();
  return summary_;
}

}  // namespace gputc
