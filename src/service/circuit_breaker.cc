#include "service/circuit_breaker.h"

#include <chrono>

namespace gputc {
namespace {

double SteadyNowMillis() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options,
                               std::function<double()> now_ms)
    : options_(options), now_ms_(now_ms ? std::move(now_ms) : SteadyNowMillis) {}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_ms_() - opened_at_ms_ < options_.open_cooldown_ms) return false;
      state_ = State::kHalfOpen;
      probes_outstanding_ = 0;
      probe_successes_ = 0;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probes_outstanding_ >= options_.half_open_probes) return false;
      ++probes_outstanding_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    if (probes_outstanding_ > 0) --probes_outstanding_;
    if (++probe_successes_ >= options_.half_open_probes) {
      state_ = State::kClosed;
      probes_outstanding_ = 0;
      probe_successes_ = 0;
    }
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       consecutive_failures_ >= options_.failure_threshold)) {
    state_ = State::kOpen;
    opened_at_ms_ = now_ms_();
    probes_outstanding_ = 0;
    probe_successes_ = 0;
  }
}

void CircuitBreaker::CancelProbe() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen && probes_outstanding_ > 0) {
    --probes_outstanding_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

const char* BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

BreakerBoard::BreakerBoard(CircuitBreakerOptions options,
                           std::function<double()> now_ms)
    : options_(options), now_ms_(std::move(now_ms)) {}

CircuitBreaker& BreakerBoard::ForBackend(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<CircuitBreaker>& slot = breakers_[name];
  if (slot == nullptr) {
    slot = std::make_unique<CircuitBreaker>(options_, now_ms_);
  }
  return *slot;
}

std::vector<std::string> BreakerBoard::BackendNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(breakers_.size());
  for (const auto& [name, breaker] : breakers_) names.push_back(name);
  return names;
}

}  // namespace gputc
