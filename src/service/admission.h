#ifndef GPUTC_SERVICE_ADMISSION_H_
#define GPUTC_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/deadline.h"
#include "util/status.h"

namespace gputc {

/// Global memory admission control for concurrent requests: the sum of
/// EstimateHostBytes over every admitted (in-flight) request is kept under a
/// process-wide budget, so N workers cannot collectively commit to more
/// peak host memory than one configured ceiling.
///
/// Semantics:
///  - A request larger than the whole budget can never run: Admit fails fast
///    with ResourceExhausted.
///  - A request that merely does not fit *right now* waits until enough
///    in-flight work releases its reservation (admission is backpressure,
///    not shedding), unless `cancel` fires or Abort() drains the controller,
///    which fail the wait with Cancelled.
///  - budget_bytes <= 0 disables the budget; Admit still tracks in-flight
///    counts so drain reporting stays accurate.
///
/// All members are thread-safe.
class AdmissionController {
 public:
  explicit AdmissionController(int64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Reserves `bytes` against the budget, blocking while full. Every
  /// successful Admit must be paired with exactly one Release(bytes).
  Status Admit(int64_t bytes, const CancelToken& cancel);

  /// Returns a reservation made by Admit.
  void Release(int64_t bytes);

  /// Fails all current and future Admit calls with Cancelled (drain).
  void Abort();

  int64_t budget_bytes() const { return budget_bytes_; }
  int64_t in_use_bytes() const;
  int in_flight() const;

 private:
  const int64_t budget_bytes_;
  mutable std::mutex mu_;
  std::condition_variable freed_;
  int64_t in_use_bytes_ = 0;
  int in_flight_ = 0;
  bool aborted_ = false;
};

}  // namespace gputc

#endif  // GPUTC_SERVICE_ADMISSION_H_
