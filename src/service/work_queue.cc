#include "service/work_queue.h"

namespace gputc {

const char* ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kBlock:
      return "block";
    case ShedPolicy::kReject:
      return "reject";
    case ShedPolicy::kDropOldest:
      return "drop-oldest";
  }
  return "unknown";
}

StatusOr<ShedPolicy> ParseShedPolicy(std::string_view spec) {
  if (spec == "block") return ShedPolicy::kBlock;
  if (spec == "reject") return ShedPolicy::kReject;
  if (spec == "drop-oldest") return ShedPolicy::kDropOldest;
  return InvalidArgumentError("unknown shed policy '" + std::string(spec) +
                              "'; valid choices: block reject drop-oldest");
}

}  // namespace gputc
