#ifndef GPUTC_SERVICE_CIRCUIT_BREAKER_H_
#define GPUTC_SERVICE_CIRCUIT_BREAKER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gputc {

/// Tuning of one breaker. The defaults suit the batch service's per-backend
/// breakers: a backend (counter algorithm) that fails a few requests in a row
/// is benched briefly instead of burning an attempt of every later request.
struct CircuitBreakerOptions {
  /// Consecutive recorded failures that trip the breaker open.
  int failure_threshold = 3;
  /// How long an open breaker refuses traffic before letting probes through.
  double open_cooldown_ms = 250.0;
  /// Successful half-open probes required to close again. Also caps how many
  /// probes may be in flight at once, so a half-open backend is trialled by a
  /// trickle, not a stampede.
  int half_open_probes = 1;
};

/// Classic three-state circuit breaker, thread-safe.
///
///   closed ──(failure_threshold consecutive failures)──> open
///   open ──(open_cooldown_ms elapsed, next Allow)──> half-open
///   half-open ──(half_open_probes successes)──> closed
///   half-open ──(any failure)──> open (cooldown restarts)
///
/// Callers ask Allow() before using the backend and report the outcome with
/// RecordSuccess/RecordFailure. The clock is injectable so tests drive the
/// open -> half-open transition deterministically.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options = {},
                          std::function<double()> now_ms = {});

  /// True when the backend may be tried now. An expired cooldown flips the
  /// breaker to half-open as a side effect; in half-open, at most
  /// `half_open_probes` unresolved grants are outstanding at a time.
  bool Allow();

  /// Reports the outcome of a granted attempt.
  void RecordSuccess();
  void RecordFailure();

  /// Returns an Allow() grant that was never exercised (the fallback chain
  /// succeeded before reaching this backend), so a half-open breaker does
  /// not leak its probe quota and wedge refusing forever.
  void CancelProbe();

  State state() const;
  int consecutive_failures() const;

 private:
  const CircuitBreakerOptions options_;
  const std::function<double()> now_ms_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  double opened_at_ms_ = 0.0;
  int probes_outstanding_ = 0;
  int probe_successes_ = 0;
};

/// Stable lower-case name ("closed", "open", "half-open").
const char* BreakerStateName(CircuitBreaker::State state);

/// One breaker per backend name, created on first use. References handed out
/// stay valid for the board's lifetime; the breakers themselves are
/// thread-safe, so workers share them freely.
class BreakerBoard {
 public:
  explicit BreakerBoard(CircuitBreakerOptions options = {},
                        std::function<double()> now_ms = {});

  CircuitBreaker& ForBackend(const std::string& name);

  /// Names with a breaker, in lexicographic order (for reporting).
  std::vector<std::string> BackendNames() const;

 private:
  const CircuitBreakerOptions options_;
  const std::function<double()> now_ms_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
};

}  // namespace gputc

#endif  // GPUTC_SERVICE_CIRCUIT_BREAKER_H_
