#include "service/cache_store.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/durable_file.h"
#include "util/failpoint.h"

namespace gputc {
namespace {

constexpr char kFileHeader[] = "GPTC-PREP-CACHE-V1\n";
constexpr size_t kFileHeaderLen = sizeof(kFileHeader) - 1;
constexpr char kFilePrefix[] = "prep-";
constexpr char kFileSuffix[] = ".gptc";
/// A framed section can never legitimately exceed this; anything larger is a
/// corrupt length field, not a real artifact.
constexpr uint32_t kMaxSectionBytes = 1u << 30;

void AppendFramed(std::string* out, std::string_view payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32c(payload);
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out->append(payload.data(), payload.size());
}

/// Reads one [len][crc][bytes] section starting at `*pos`; DataLoss on any
/// truncation or checksum mismatch.
StatusOr<std::string> ReadFramed(const std::string& bytes, size_t* pos,
                                 const char* what) {
  if (bytes.size() - *pos < 2 * sizeof(uint32_t)) {
    return DataLossError(std::string("cache file truncated before ") + what +
                         " frame header");
  }
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, bytes.data() + *pos, sizeof(len));
  std::memcpy(&crc, bytes.data() + *pos + sizeof(len), sizeof(crc));
  *pos += 2 * sizeof(uint32_t);
  if (len > kMaxSectionBytes || len > bytes.size() - *pos) {
    return DataLossError(std::string("cache file truncated inside ") + what +
                         " section (" + std::to_string(len) + " bytes framed)");
  }
  std::string payload = bytes.substr(*pos, len);
  *pos += len;
  if (Crc32c(payload) != crc) {
    return DataLossError(std::string(what) + " section checksum mismatch");
  }
  return payload;
}

}  // namespace

std::string DiskCacheStore::PathFor(const PrepCacheKey& key) const {
  return dir_ + "/" + kFilePrefix + key.id + kFileSuffix;
}

Status DiskCacheStore::EnsureDir() const {
  struct stat st;
  if (::stat(dir_.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return InvalidArgumentError("prep-cache path '" + dir_ +
                                  "' exists and is not a directory");
    }
    return OkStatus();
  }
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    return InvalidArgumentError("cannot create prep-cache directory '" +
                                dir_ + "': " + std::strerror(errno));
  }
  return OkStatus();
}

Status DiskCacheStore::CheckDir() const {
  struct stat st;
  if (::stat(dir_.c_str(), &st) != 0) {
    if (errno == ENOENT) {
      return NotFoundError("prep-cache directory '" + dir_ +
                           "' does not exist");
    }
    return FailedPreconditionError("cannot stat prep-cache directory '" +
                                   dir_ + "': " + std::strerror(errno));
  }
  if (!S_ISDIR(st.st_mode)) {
    return InvalidArgumentError("prep-cache path '" + dir_ +
                                "' exists and is not a directory");
  }
  if (::access(dir_.c_str(), R_OK | W_OK | X_OK) != 0) {
    return FailedPreconditionError("prep-cache directory '" + dir_ +
                                   "' is not readable+writable: " +
                                   std::strerror(errno));
  }
  return OkStatus();
}

void DiskCacheStore::RecordOutcome(const Status& status, bool benign) {
  if (status.ok() || benign) {
    breaker_.RecordSuccess();
    return;
  }
  breaker_.RecordFailure();
  if (health_ != nullptr) {
    health_->RecordError("cache", status);
    if (breaker_.state() == CircuitBreaker::State::kOpen) {
      health_->NoteDegraded("cache",
                            "tier-2 disk benched after consecutive faults "
                            "(last: " +
                                status.message() + ")");
    }
  }
}

StatusOr<std::string> DiskCacheStore::Load(const PrepCacheKey& key) {
  // The store is a recoverable boundary by construction — open our own
  // scope so armed cache.* points land here even from un-scoped callers.
  FailPointScope scope;
  // A benched tier-2 answers every load as a miss without touching the
  // disk: tier 1 keeps serving, the request recomputes at worst.
  if (!breaker_.Allow()) {
    return NotFoundError("prep-cache tier-2 breaker open (disk benched)");
  }
  {
    const Status injected = CheckFailPoint("cache.load");
    if (!injected.ok()) {
      RecordOutcome(injected, /*benign=*/false);
      return injected;
    }
  }

  const std::string path = PathFor(key);
  StatusOr<std::string> result = [&]() -> StatusOr<std::string> {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return NotFoundError("no cached artifact at " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) {
      return DataLossError("short read of cache file " + path);
    }
    const std::string bytes = buffer.str();

    if (bytes.size() < kFileHeaderLen ||
        bytes.compare(0, kFileHeaderLen, kFileHeader) != 0) {
      return DataLossError("cache file " + path + " has a foreign header");
    }
    size_t pos = kFileHeaderLen;
    GPUTC_ASSIGN_OR_RETURN(const std::string canonical,
                           ReadFramed(bytes, &pos, "key"));
    if (canonical != key.canonical) {
      // A real 64-bit id collision: the file belongs to another fingerprint.
      // Miss, don't destroy the other key's entry.
      return NotFoundError("cache file " + path +
                           " holds a different fingerprint (id collision)");
    }
    GPUTC_ASSIGN_OR_RETURN(std::string payload,
                           ReadFramed(bytes, &pos, "artifact"));
    if (pos != bytes.size()) {
      return DataLossError("cache file " + path + " has trailing bytes");
    }
    return payload;
  }();
  // A miss (absent file, id collision) is the disk doing its job, not a
  // fault: only real I/O or corruption failures feed the breaker.
  const bool benign =
      !result.ok() && result.status().code() == StatusCode::kNotFound;
  RecordOutcome(result.ok() ? OkStatus() : result.status(), benign);
  return result;
}

Status DiskCacheStore::Store(const PrepCacheKey& key,
                             std::string_view encoded) {
  FailPointScope scope;
  // Benched tier: skip the disk entirely. The caller treats any store
  // failure as "lost future reuse", never as a failed request.
  if (!breaker_.Allow()) {
    return FailedPreconditionError(
        "prep-cache tier-2 breaker open (store skipped)");
  }
  const Status stored = [&]() -> Status {
    GPUTC_INJECT_FAULT("cache.store");
    GPUTC_RETURN_IF_ERROR(EnsureDir());

    std::string content;
    content.reserve(kFileHeaderLen + key.canonical.size() + encoded.size() +
                    16);
    content.append(kFileHeader, kFileHeaderLen);
    AppendFramed(&content, key.canonical);
    AppendFramed(&content, encoded);

    GPUTC_ASSIGN_OR_RETURN(AtomicFileWriter writer,
                           AtomicFileWriter::Create(PathFor(key)));
    GPUTC_RETURN_IF_ERROR(writer.Append(content));
    return writer.Commit();
  }();
  RecordOutcome(stored, /*benign=*/false);
  return stored;
}

StatusOr<DiskCacheStore::DiskStats> DiskCacheStore::ScanStats() const {
  DiskStats stats;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return stats;  // Never-written cache: empty.
    return InvalidArgumentError("cannot open prep-cache directory '" + dir_ +
                                "': " + std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.rfind(kFilePrefix, 0) != 0 ||
        name.size() <= sizeof(kFileSuffix) - 1 ||
        name.compare(name.size() - (sizeof(kFileSuffix) - 1),
                     sizeof(kFileSuffix) - 1, kFileSuffix) != 0) {
      continue;
    }
    struct stat st;
    if (::stat((dir_ + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      ++stats.files;
      stats.bytes += static_cast<int64_t>(st.st_size);
    }
  }
  ::closedir(dir);
  return stats;
}

StatusOr<int64_t> DiskCacheStore::PurgeAll() {
  int64_t removed = 0;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return removed;
    return InvalidArgumentError("cannot open prep-cache directory '" + dir_ +
                                "': " + std::strerror(errno));
  }
  std::vector<std::string> victims;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.rfind(kFilePrefix, 0) == 0 &&
        name.size() > sizeof(kFileSuffix) - 1 &&
        name.compare(name.size() - (sizeof(kFileSuffix) - 1),
                     sizeof(kFileSuffix) - 1, kFileSuffix) == 0) {
      victims.push_back(dir_ + "/" + name);
    }
  }
  ::closedir(dir);
  int failures = 0;
  std::string first_error;
  for (const std::string& path : victims) {
    if (::unlink(path.c_str()) == 0) {
      ++removed;
    } else if (errno != ENOENT) {  // Lost a race to another purger: fine.
      ++failures;
      if (first_error.empty()) {
        first_error = "cannot remove '" + path + "': " + std::strerror(errno);
      }
    }
  }
  if (failures > 0) {
    return FailedPreconditionError(
        "purge left " + std::to_string(failures) + " artifact(s) behind (" +
        first_error + ")");
  }
  return removed;
}

}  // namespace gputc
