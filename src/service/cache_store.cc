#include "service/cache_store.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/durable_file.h"
#include "util/failpoint.h"

namespace gputc {
namespace {

constexpr char kFileHeader[] = "GPTC-PREP-CACHE-V1\n";
constexpr size_t kFileHeaderLen = sizeof(kFileHeader) - 1;
constexpr char kFilePrefix[] = "prep-";
constexpr char kFileSuffix[] = ".gptc";
/// A framed section can never legitimately exceed this; anything larger is a
/// corrupt length field, not a real artifact.
constexpr uint32_t kMaxSectionBytes = 1u << 30;

void AppendFramed(std::string* out, std::string_view payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32c(payload);
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out->append(payload.data(), payload.size());
}

/// Reads one [len][crc][bytes] section starting at `*pos`; DataLoss on any
/// truncation or checksum mismatch.
StatusOr<std::string> ReadFramed(const std::string& bytes, size_t* pos,
                                 const char* what) {
  if (bytes.size() - *pos < 2 * sizeof(uint32_t)) {
    return DataLossError(std::string("cache file truncated before ") + what +
                         " frame header");
  }
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, bytes.data() + *pos, sizeof(len));
  std::memcpy(&crc, bytes.data() + *pos + sizeof(len), sizeof(crc));
  *pos += 2 * sizeof(uint32_t);
  if (len > kMaxSectionBytes || len > bytes.size() - *pos) {
    return DataLossError(std::string("cache file truncated inside ") + what +
                         " section (" + std::to_string(len) + " bytes framed)");
  }
  std::string payload = bytes.substr(*pos, len);
  *pos += len;
  if (Crc32c(payload) != crc) {
    return DataLossError(std::string(what) + " section checksum mismatch");
  }
  return payload;
}

}  // namespace

std::string DiskCacheStore::PathFor(const PrepCacheKey& key) const {
  return dir_ + "/" + kFilePrefix + key.id + kFileSuffix;
}

Status DiskCacheStore::EnsureDir() const {
  struct stat st;
  if (::stat(dir_.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return InvalidArgumentError("prep-cache path '" + dir_ +
                                  "' exists and is not a directory");
    }
    return OkStatus();
  }
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    return InvalidArgumentError("cannot create prep-cache directory '" +
                                dir_ + "': " + std::strerror(errno));
  }
  return OkStatus();
}

StatusOr<std::string> DiskCacheStore::Load(const PrepCacheKey& key) {
  // The store is a recoverable boundary by construction — open our own
  // scope so armed cache.* points land here even from un-scoped callers.
  FailPointScope scope;
  GPUTC_INJECT_FAULT("cache.load");

  const std::string path = PathFor(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("no cached artifact at " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return DataLossError("short read of cache file " + path);
  }
  const std::string bytes = buffer.str();

  if (bytes.size() < kFileHeaderLen ||
      bytes.compare(0, kFileHeaderLen, kFileHeader) != 0) {
    return DataLossError("cache file " + path + " has a foreign header");
  }
  size_t pos = kFileHeaderLen;
  GPUTC_ASSIGN_OR_RETURN(const std::string canonical,
                         ReadFramed(bytes, &pos, "key"));
  if (canonical != key.canonical) {
    // A real 64-bit id collision: the file belongs to another fingerprint.
    // Miss, don't destroy the other key's entry.
    return NotFoundError("cache file " + path +
                         " holds a different fingerprint (id collision)");
  }
  GPUTC_ASSIGN_OR_RETURN(std::string payload,
                         ReadFramed(bytes, &pos, "artifact"));
  if (pos != bytes.size()) {
    return DataLossError("cache file " + path + " has trailing bytes");
  }
  return payload;
}

Status DiskCacheStore::Store(const PrepCacheKey& key,
                             std::string_view encoded) {
  FailPointScope scope;
  GPUTC_INJECT_FAULT("cache.store");
  GPUTC_RETURN_IF_ERROR(EnsureDir());

  std::string content;
  content.reserve(kFileHeaderLen + key.canonical.size() + encoded.size() + 16);
  content.append(kFileHeader, kFileHeaderLen);
  AppendFramed(&content, key.canonical);
  AppendFramed(&content, encoded);

  GPUTC_ASSIGN_OR_RETURN(AtomicFileWriter writer,
                         AtomicFileWriter::Create(PathFor(key)));
  GPUTC_RETURN_IF_ERROR(writer.Append(content));
  return writer.Commit();
}

StatusOr<DiskCacheStore::DiskStats> DiskCacheStore::ScanStats() const {
  DiskStats stats;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return stats;  // Never-written cache: empty.
    return InvalidArgumentError("cannot open prep-cache directory '" + dir_ +
                                "': " + std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.rfind(kFilePrefix, 0) != 0 ||
        name.size() <= sizeof(kFileSuffix) - 1 ||
        name.compare(name.size() - (sizeof(kFileSuffix) - 1),
                     sizeof(kFileSuffix) - 1, kFileSuffix) != 0) {
      continue;
    }
    struct stat st;
    if (::stat((dir_ + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      ++stats.files;
      stats.bytes += static_cast<int64_t>(st.st_size);
    }
  }
  ::closedir(dir);
  return stats;
}

StatusOr<int64_t> DiskCacheStore::PurgeAll() {
  int64_t removed = 0;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return removed;
    return InvalidArgumentError("cannot open prep-cache directory '" + dir_ +
                                "': " + std::strerror(errno));
  }
  std::vector<std::string> victims;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.rfind(kFilePrefix, 0) == 0 &&
        name.size() > sizeof(kFileSuffix) - 1 &&
        name.compare(name.size() - (sizeof(kFileSuffix) - 1),
                     sizeof(kFileSuffix) - 1, kFileSuffix) == 0) {
      victims.push_back(dir_ + "/" + name);
    }
  }
  ::closedir(dir);
  for (const std::string& path : victims) {
    if (::unlink(path.c_str()) == 0) ++removed;
  }
  return removed;
}

}  // namespace gputc
