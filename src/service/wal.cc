#include "service/wal.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <set>

#include "util/failpoint.h"
#include "util/logging.h"

namespace gputc {
namespace {

// Record payload layout (the segment frame already carries length + CRC):
//   u8  type          'I' (intent), 'D' (done), or 'V' (version)
//   u32 id_len        little-endian ('I'/'D')
//   id bytes          ('I'/'D')
//   u32 spec_len      (intent records, optional) little-endian
//   spec bytes        (intent records, optional) the request's manifest line
//   u32 outcome_len   (done records only) little-endian
//   outcome bytes     (done records only) outcome name, e.g. "ok"
//   journal JSON      (done records only, to end of payload)
//   version text      (version records, to end of payload)
// The outcome travels as its own field so resume classifies replayed lines
// without parsing the journal JSON (a substring scan of the JSON can match
// inside an escaped message and misread the outcome). The intent spec field
// is optional on decode — logs written before it existed replay unchanged.
constexpr char kIntent = 'I';
constexpr char kDone = 'D';
constexpr char kVersion = 'V';

void PutLengthPrefixed(std::string* payload, const std::string& field) {
  const uint32_t len = static_cast<uint32_t>(field.size());
  for (int i = 0; i < 4; ++i) {
    payload->push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  *payload += field;
}

std::string EncodeIntent(const std::string& id, const std::string& spec) {
  std::string payload;
  payload.reserve(1 + 4 + id.size() + (spec.empty() ? 0 : 4 + spec.size()));
  payload.push_back(kIntent);
  PutLengthPrefixed(&payload, id);
  if (!spec.empty()) PutLengthPrefixed(&payload, spec);
  return payload;
}

std::string EncodeVersion(const std::string& version) {
  std::string payload;
  payload.reserve(1 + version.size());
  payload.push_back(kVersion);
  payload += version;
  return payload;
}

std::string EncodeDone(const std::string& id, const std::string& outcome,
                       const std::string& journal_json) {
  std::string payload;
  payload.reserve(1 + 4 + id.size() + 4 + outcome.size() +
                  journal_json.size());
  payload.push_back(kDone);
  PutLengthPrefixed(&payload, id);
  PutLengthPrefixed(&payload, outcome);
  payload += journal_json;
  return payload;
}

struct DecodedRecord {
  char type = 0;
  std::string id;
  std::string spec;     // Intent records only ("" when absent).
  std::string outcome;  // Done records only.
  std::string line;     // Done journal line, or version text.
};

StatusOr<uint32_t> GetLengthPrefix(const std::string& payload, size_t pos) {
  if (payload.size() - pos < 4) {
    return DataLossError("WAL record of " + std::to_string(payload.size()) +
                         " bytes is shorter than its fixed fields");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(
               static_cast<unsigned char>(payload[pos + i]))
           << (8 * i);
  }
  if (payload.size() - pos - 4 < len) {
    return DataLossError("WAL record field length " + std::to_string(len) +
                         " overruns the " + std::to_string(payload.size()) +
                         "-byte record");
  }
  return len;
}

Status DecodeRecord(const std::string& payload, DecodedRecord* out) {
  if (payload.empty()) {
    return DataLossError("empty WAL record");
  }
  out->type = payload[0];
  if (out->type != kIntent && out->type != kDone && out->type != kVersion) {
    return DataLossError(std::string("unknown WAL record type '") +
                         out->type + "'");
  }
  if (out->type == kVersion) {
    out->line.assign(payload, 1, payload.size() - 1);
    return OkStatus();
  }
  GPUTC_ASSIGN_OR_RETURN(const uint32_t id_len, GetLengthPrefix(payload, 1));
  size_t pos = 1 + 4;
  out->id.assign(payload, pos, id_len);
  pos += id_len;
  if (out->type == kIntent) {
    if (pos < payload.size()) {
      GPUTC_ASSIGN_OR_RETURN(const uint32_t spec_len,
                             GetLengthPrefix(payload, pos));
      out->spec.assign(payload, pos + 4, spec_len);
    }
    return OkStatus();
  }
  GPUTC_ASSIGN_OR_RETURN(const uint32_t outcome_len,
                         GetLengthPrefix(payload, pos));
  pos += 4;
  out->outcome.assign(payload, pos, outcome_len);
  pos += outcome_len;
  out->line.assign(payload, pos, payload.size() - pos);
  return OkStatus();
}

/// Folds verified segment records into a WalReplay. Shared by the
/// read-only ReplayWal and the open-once WriteAheadLog::Replay path.
StatusOr<WalReplay> FoldWalRecords(const SegmentScan& scan,
                                   const std::string& context) {
  WalReplay replay;
  replay.torn_bytes = scan.dropped_bytes;

  std::set<std::string> done_ids;
  std::set<std::string> intent_ids;
  std::map<std::string, std::string> intent_specs;
  for (const std::string& payload : scan.records) {
    DecodedRecord record;
    GPUTC_RETURN_IF_ERROR(
        DecodeRecord(payload, &record).WithContext(context));
    if (record.type == kVersion) {
      replay.versions.push_back(std::move(record.line));
    } else if (record.type == kDone) {
      // First terminal outcome wins: a duplicate done for the same id could
      // only come from a run that raced a crash, and re-emitting one line
      // per id is the exactly-once contract.
      if (done_ids.insert(record.id).second) {
        replay.done.push_back({std::move(record.id),
                               std::move(record.outcome),
                               std::move(record.line)});
      }
    } else {
      if (!record.spec.empty()) {
        intent_specs[record.id] = std::move(record.spec);
      }
      intent_ids.insert(std::move(record.id));
    }
  }
  for (const WalDoneRecord& record : replay.done) {
    intent_ids.erase(record.id);
  }
  // Preserve intent order for the pending list by re-scanning in sequence.
  std::set<std::string> emitted;
  for (const std::string& payload : scan.records) {
    if (payload.empty() || payload[0] != kIntent) continue;
    DecodedRecord record;
    if (!DecodeRecord(payload, &record).ok()) continue;
    if (intent_ids.count(record.id) > 0 && emitted.insert(record.id).second) {
      auto spec = intent_specs.find(record.id);
      if (spec != intent_specs.end()) {
        replay.pending_specs[record.id] = std::move(spec->second);
      }
      replay.pending.push_back(std::move(record.id));
    }
  }
  if (replay.torn_bytes > 0) {
    GPUTC_LOG(Warning) << context << ": recovered past a torn tail ("
                       << replay.torn_bytes << " byte(s) dropped); "
                       << replay.done.size() << " done, "
                       << replay.pending.size() << " pending";
  }
  return replay;
}

}  // namespace

const WalDoneRecord* WalReplay::FindDone(const std::string& id) const {
  for (const WalDoneRecord& record : done) {
    if (record.id == id) return &record;
  }
  return nullptr;
}

std::string WalLogPath(const std::string& dir) { return dir + "/wal.log"; }

StatusOr<WriteAheadLog> WriteAheadLog::Open(const std::string& dir) {
  if (dir.empty()) return InvalidArgumentError("empty WAL directory");
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status(StatusCode::kInternal,
                  "cannot create WAL directory '" + dir +
                      "': " + std::strerror(errno));
  }
  GPUTC_ASSIGN_OR_RETURN(SegmentWriter writer,
                         SegmentWriter::Open(WalLogPath(dir)));
  return WriteAheadLog(std::move(writer));
}

Status WriteAheadLog::LogIntent(const std::string& id,
                                const std::string& spec) {
  // The WAL is a resilient path by construction — a lost or torn intent
  // only means the request re-runs — so it opts into fault injection.
  FailPointScope scope;
  GPUTC_RETURN_IF_ERROR(
      CheckFailPoint("wal.intent").WithContext("intent('" + id + "')"));
  const Status appended = writer_.Append(EncodeIntent(id, spec));
  if (!appended.ok()) return appended.WithContext("WAL intent('" + id + "')");
  return appended;
}

Status WriteAheadLog::LogVersion(const std::string& version) {
  const Status appended = writer_.Append(EncodeVersion(version));
  if (!appended.ok()) return appended.WithContext("WAL version record");
  return appended;
}

Status WriteAheadLog::LogDone(const std::string& id,
                              const std::string& outcome,
                              const std::string& journal_json) {
  const Status appended =
      writer_.Append(EncodeDone(id, outcome, journal_json));
  if (!appended.ok()) return appended.WithContext("WAL done('" + id + "')");
  // The done record is durable; the journal line has NOT been emitted yet.
  // A crash armed here is the narrowest no-double-count window: resume must
  // re-emit the stored line verbatim rather than re-running the request.
  FailPointScope scope;
  GPUTC_RETURN_IF_ERROR(
      CheckFailPoint("wal.done").WithContext("done('" + id + "')"));
  return OkStatus();
}

StatusOr<WalReplay> WriteAheadLog::Replay() const {
  return FoldWalRecords(writer_.recovered(),
                        "WAL replay('" + writer_.path() + "')");
}

StatusOr<WalReplay> ReplayWal(const std::string& dir) {
  if (dir.empty()) return InvalidArgumentError("empty WAL directory");
  StatusOr<SegmentScan> scan = ScanSegment(WalLogPath(dir));
  if (!scan.ok()) {
    if (scan.status().code() == StatusCode::kNotFound) return WalReplay{};
    return scan.status().WithContext("ReplayWal('" + dir + "')");
  }
  return FoldWalRecords(*scan, "ReplayWal('" + dir + "')");
}

}  // namespace gputc
