#include "service/wal.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <set>

#include "util/failpoint.h"
#include "util/logging.h"

namespace gputc {
namespace {

// Record payload layout (the segment frame already carries length + CRC):
//   u8  type       'I' (intent) or 'D' (done)
//   u32 id_len     little-endian
//   id bytes
//   journal JSON   (done records only, to end of payload)
constexpr char kIntent = 'I';
constexpr char kDone = 'D';

std::string EncodeRecord(char type, const std::string& id,
                         const std::string& rest) {
  std::string payload;
  payload.reserve(1 + 4 + id.size() + rest.size());
  payload.push_back(type);
  const uint32_t id_len = static_cast<uint32_t>(id.size());
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<char>((id_len >> (8 * i)) & 0xff));
  }
  payload += id;
  payload += rest;
  return payload;
}

Status DecodeRecord(const std::string& payload, char* type, std::string* id,
                    std::string* rest) {
  if (payload.size() < 5) {
    return DataLossError("WAL record of " + std::to_string(payload.size()) +
                         " bytes is shorter than its fixed fields");
  }
  *type = payload[0];
  if (*type != kIntent && *type != kDone) {
    return DataLossError(std::string("unknown WAL record type '") + *type +
                         "'");
  }
  uint32_t id_len = 0;
  for (int i = 0; i < 4; ++i) {
    id_len |= static_cast<uint32_t>(
                  static_cast<unsigned char>(payload[1 + i]))
              << (8 * i);
  }
  if (payload.size() - 5 < id_len) {
    return DataLossError("WAL record id length " + std::to_string(id_len) +
                         " overruns the " + std::to_string(payload.size()) +
                         "-byte record");
  }
  id->assign(payload, 5, id_len);
  rest->assign(payload, 5 + id_len, payload.size() - 5 - id_len);
  return OkStatus();
}

}  // namespace

const std::string* WalReplay::FindDone(const std::string& id) const {
  for (const auto& [done_id, line] : done) {
    if (done_id == id) return &line;
  }
  return nullptr;
}

std::string WalLogPath(const std::string& dir) { return dir + "/wal.log"; }

StatusOr<WriteAheadLog> WriteAheadLog::Open(const std::string& dir) {
  if (dir.empty()) return InvalidArgumentError("empty WAL directory");
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status(StatusCode::kInternal,
                  "cannot create WAL directory '" + dir +
                      "': " + std::strerror(errno));
  }
  GPUTC_ASSIGN_OR_RETURN(SegmentWriter writer,
                         SegmentWriter::Open(WalLogPath(dir)));
  return WriteAheadLog(std::move(writer));
}

Status WriteAheadLog::LogIntent(const std::string& id) {
  // The WAL is a resilient path by construction — a lost or torn intent
  // only means the request re-runs — so it opts into fault injection.
  FailPointScope scope;
  GPUTC_RETURN_IF_ERROR(
      CheckFailPoint("wal.intent").WithContext("intent('" + id + "')"));
  const Status appended = writer_.Append(EncodeRecord(kIntent, id, ""));
  if (!appended.ok()) return appended.WithContext("WAL intent('" + id + "')");
  return appended;
}

Status WriteAheadLog::LogDone(const std::string& id,
                              const std::string& journal_json) {
  const Status appended =
      writer_.Append(EncodeRecord(kDone, id, journal_json));
  if (!appended.ok()) return appended.WithContext("WAL done('" + id + "')");
  // The done record is durable; the journal line has NOT been emitted yet.
  // A crash armed here is the narrowest no-double-count window: resume must
  // re-emit the stored line verbatim rather than re-running the request.
  FailPointScope scope;
  GPUTC_RETURN_IF_ERROR(
      CheckFailPoint("wal.done").WithContext("done('" + id + "')"));
  return OkStatus();
}

StatusOr<WalReplay> ReplayWal(const std::string& dir) {
  WalReplay replay;
  if (dir.empty()) return InvalidArgumentError("empty WAL directory");
  StatusOr<SegmentScan> scan = ScanSegment(WalLogPath(dir));
  if (!scan.ok()) {
    if (scan.status().code() == StatusCode::kNotFound) return replay;
    return scan.status().WithContext("ReplayWal('" + dir + "')");
  }
  replay.torn_bytes = scan->dropped_bytes;

  std::set<std::string> done_ids;
  std::set<std::string> intent_ids;
  for (const std::string& payload : scan->records) {
    char type = 0;
    std::string id;
    std::string rest;
    GPUTC_RETURN_IF_ERROR(DecodeRecord(payload, &type, &id, &rest)
                              .WithContext("ReplayWal('" + dir + "')"));
    if (type == kDone) {
      // First terminal outcome wins: a duplicate done for the same id could
      // only come from a run that raced a crash, and re-emitting one line
      // per id is the exactly-once contract.
      if (done_ids.insert(id).second) {
        replay.done.emplace_back(std::move(id), std::move(rest));
      }
    } else {
      intent_ids.insert(std::move(id));
    }
  }
  for (const auto& [id, line] : replay.done) intent_ids.erase(id);
  // Preserve intent order for the pending list by re-scanning in sequence.
  std::set<std::string> emitted;
  for (const std::string& payload : scan->records) {
    if (payload.empty() || payload[0] != kIntent) continue;
    char type = 0;
    std::string id;
    std::string rest;
    if (!DecodeRecord(payload, &type, &id, &rest).ok()) continue;
    if (intent_ids.count(id) > 0 && emitted.insert(id).second) {
      replay.pending.push_back(std::move(id));
    }
  }
  if (replay.torn_bytes > 0) {
    GPUTC_LOG(Warning) << "WAL '" << dir << "': recovered past a torn tail ("
                       << replay.torn_bytes << " byte(s) dropped); "
                       << replay.done.size() << " done, "
                       << replay.pending.size() << " pending";
  }
  return replay;
}

}  // namespace gputc
