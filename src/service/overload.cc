#include "service/overload.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace gputc {

AdaptiveLimiter::AdaptiveLimiter(AdaptiveLimiterOptions options)
    : options_(options), limit_(options.initial_limit) {
  GPUTC_CHECK_GT(options_.min_limit, 0);
  GPUTC_CHECK_GE(options_.max_limit, options_.min_limit);
  GPUTC_CHECK_GT(options_.window, 0);
  GPUTC_CHECK(options_.decrease_factor > 0.0 &&
              options_.decrease_factor < 1.0);
  limit_ = std::clamp(limit_, options_.min_limit, options_.max_limit);
  window_.reserve(static_cast<size_t>(options_.window));
}

Status AdaptiveLimiter::TryAcquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ >= limit_) {
    return ResourceExhaustedError(
        "adaptive concurrency limit reached (" + std::to_string(inflight_) +
        " in flight, limit " + std::to_string(limit_) + ")");
  }
  ++inflight_;
  return OkStatus();
}

void AdaptiveLimiter::Release(double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ > 0) --inflight_;
  window_.push_back(latency_ms);
  if (static_cast<int>(window_.size()) >= options_.window) AdaptLocked();
}

void AdaptiveLimiter::ReleaseSlot() {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ > 0) --inflight_;
}

void AdaptiveLimiter::AdaptLocked() {
  last_window_p99_ = Percentile(window_, options_.percentile);
  window_.clear();
  if (last_window_p99_ > options_.target_ms) {
    // Multiplicative decrease: shed hard, the tail is already collapsing.
    ++overloaded_windows_;
    limit_ = std::max(
        options_.min_limit,
        static_cast<int>(std::floor(limit_ * options_.decrease_factor)));
  } else {
    // Additive increase: probe for headroom one slot at a time.
    limit_ = std::min(options_.max_limit, limit_ + 1);
  }
}

int64_t AdaptiveLimiter::RetryAfterMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  const double base =
      last_window_p99_ > 0.0 ? last_window_p99_ : options_.target_ms;
  return static_cast<int64_t>(std::clamp(base, 25.0, 5000.0));
}

int AdaptiveLimiter::limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limit_;
}

int AdaptiveLimiter::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

int64_t AdaptiveLimiter::overloaded_windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overloaded_windows_;
}

}  // namespace gputc
