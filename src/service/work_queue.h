#ifndef GPUTC_SERVICE_WORK_QUEUE_H_
#define GPUTC_SERVICE_WORK_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace gputc {

/// What a full queue does with the next Push: make the producer wait, refuse
/// the new item, or evict the oldest queued item to make room. The policy the
/// batch service exposes as --shed-policy.
enum class ShedPolicy {
  kBlock,      // Push blocks until a worker frees a slot (backpressure).
  kReject,     // Push fails fast with ResourceExhausted (load shedding).
  kDropOldest  // Push succeeds; the oldest queued item is returned as shed.
};

/// Stable lower-case name ("block", "reject", "drop-oldest").
const char* ShedPolicyName(ShedPolicy policy);

/// Parses a --shed-policy value; InvalidArgument lists the valid choices.
StatusOr<ShedPolicy> ParseShedPolicy(std::string_view spec);

/// Bounded multi-producer multi-consumer FIFO with a pluggable overload
/// policy and drain semantics. All members are thread-safe.
///
/// Lifecycle: producers Push until Close() (after which every Push fails with
/// FailedPrecondition, including producers already blocked in a kBlock wait);
/// consumers Pop until the queue is closed AND empty, then receive nullopt.
/// FlushPending hands back whatever never reached a worker so a draining
/// caller can account for every item it accepted.
template <typename T>
class WorkQueue {
 public:
  /// Outcome of one Push. `status` is OK when the item was accepted;
  /// `shed` carries the evicted victim under kDropOldest, which the caller
  /// must account for (the service journals it as rejected).
  struct PushResult {
    Status status;
    std::optional<T> shed;
  };

  WorkQueue(size_t capacity, ShedPolicy policy)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  PushResult Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (policy_ == ShedPolicy::kBlock) {
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
    }
    PushResult result;
    if (closed_) {
      result.status = FailedPreconditionError("work queue is closed");
      return result;
    }
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case ShedPolicy::kBlock:
          break;  // Unreachable: the wait above guaranteed a slot.
        case ShedPolicy::kReject:
          result.status = ResourceExhaustedError(
              "work queue is full (" + std::to_string(capacity_) +
              " queued); request rejected by shed policy 'reject'");
          return result;
        case ShedPolicy::kDropOldest:
          result.shed = std::move(items_.front());
          items_.pop_front();
          break;
      }
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return result;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// nullopt means "no more work, ever" — the worker exit signal.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Stops intake: every subsequent (or currently blocked) Push fails.
  /// Already-queued items still drain through Pop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Removes every queued-but-unstarted item (for drain accounting). Usually
  /// called after Close(); items pushed afterwards would drain normally.
  std::vector<T> FlushPending() {
    std::vector<T> flushed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      flushed.reserve(items_.size());
      while (!items_.empty()) {
        flushed.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    not_full_.notify_all();
    return flushed;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }
  ShedPolicy policy() const { return policy_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const size_t capacity_;
  const ShedPolicy policy_;
  bool closed_ = false;
};

}  // namespace gputc

#endif  // GPUTC_SERVICE_WORK_QUEUE_H_
