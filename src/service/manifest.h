#ifndef GPUTC_SERVICE_MANIFEST_H_
#define GPUTC_SERVICE_MANIFEST_H_

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gputc {

/// One request of a batch manifest: which graph to count triangles on, plus
/// optional per-request policy overrides.
struct BatchRequest {
  /// Stable journal key: "<line>:<source>" — unique even when the same
  /// source appears on several manifest lines.
  std::string id;
  /// The source token as written in the manifest.
  std::string source;

  enum class Kind { kDataset, kFile, kGenerate };
  Kind kind = Kind::kDataset;

  /// Dataset name (kDataset), path (kFile), or family (kGenerate:
  /// rmat | powerlaw | er | ws).
  std::string target;
  /// Generator parameters (kGenerate), e.g. {"scale","9"},{"seed","3"}.
  std::map<std::string, std::string> params;

  /// Per-request overrides; negative / empty means "use the batch default".
  double timeout_ms = -1.0;
  std::string fallback;
  /// Fail-point schedule ("site=code[@count];...") armed for this request
  /// only — the chaos/testing hook that lets a batch poison exactly one
  /// request. Under `--isolate` the schedule is armed inside the worker
  /// subprocess that executes the request; in-process it arms the (process
  /// wide) registry, which is exactly the blast-radius difference the
  /// isolation tests demonstrate.
  std::string failpoints;
};

// Manifest format: one request per line.
//
//   # comment (also '%'), blank lines ignored
//   dataset:email-Eucore
//   email-Eucore                     (no ':' and no '/' or '.' -> dataset)
//   file:graphs/g1.txt
//   graphs/g2.bin                    (a '/' or '.' -> file path)
//   gen:rmat:scale=9,edge-factor=8,seed=3
//   gen:powerlaw:nodes=400,gamma=2.1,min-degree=2,max-degree=60,seed=7
//   gen:er:nodes=1000,edges=5000,seed=1
//   gen:ws:nodes=1000,k=4,beta=0.05,seed=1
//
// A source may be followed by whitespace-separated per-request overrides:
//
//   dataset:gowalla timeout-ms=250 fallback=Hu,cpu
//   gen:er:nodes=100,edges=300 failpoints=tc.block=crash@1
//
// Parsing is strict: unknown generator families, malformed key=value pairs,
// and unknown override keys fail with InvalidArgument naming the line.

/// Parses a manifest stream. The returned requests keep manifest order.
StatusOr<std::vector<BatchRequest>> ParseManifest(std::istream& in);

/// Loads and parses a manifest file; NotFound when it cannot be opened.
StatusOr<std::vector<BatchRequest>> LoadManifest(const std::string& path);

/// Loads or generates the graph a request names. Generation parameters are
/// validated (Try* generators); files go through the standard loaders. The
/// "io.load" fail point is armed on every path, so batch chaos schedules can
/// inject load faults per request.
StatusOr<Graph> MaterializeRequest(const BatchRequest& request);

}  // namespace gputc

#endif  // GPUTC_SERVICE_MANIFEST_H_
