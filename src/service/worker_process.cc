#include "service/worker_process.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/durable_file.h"
#include "util/failpoint.h"
#include "util/net_io.h"

// Sanitizer shadow memory reserves terabytes of address space; RLIMIT_AS
// would kill every worker at startup, so the limit is compiled out of
// sanitizer builds (the isolation tests still run, just without the
// memory-containment teeth).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GPUTC_SANITIZER_BUILD 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#ifndef GPUTC_SANITIZER_BUILD
#define GPUTC_SANITIZER_BUILD 1
#endif
#endif
#endif

namespace gputc {
namespace {

constexpr size_t kFrameHeaderBytes = 8;
/// Upper bound on one frame's payload: far above any real request/result
/// (the largest carries a few KB of trace lines) but small enough that a
/// garbage length from a torn header cannot trigger a giant allocation.
constexpr uint32_t kMaxFramePayload = 16u << 20;

/// The fds the worker subcommand is execed with. Fixed numbers (not flags
/// that could drift) keep the child-side dup2 dance auditable.
constexpr int kChildRequestFd = 3;
constexpr int kChildResponseFd = 4;
constexpr int kChildStatusFd = 5;

void PutU32(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

uint32_t GetU32(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24);
}

// EINTR-safe exact I/O lives in util/net_io (WriteAllFd/ReadFullFd), shared
// with the serve daemon; the EPIPE -> FailedPrecondition classification
// (peer gone, request safe to retry elsewhere) is part of its contract.

/// Escapes newlines/backslashes so any string survives the line protocol.
std::string EscapeValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

StatusOr<std::string> UnescapeValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\') {
      out += value[i];
      continue;
    }
    if (i + 1 >= value.size()) {
      return InvalidArgumentError("dangling escape at end of value");
    }
    ++i;
    if (value[i] == 'n') {
      out += '\n';
    } else if (value[i] == '\\') {
      out += '\\';
    } else {
      return InvalidArgumentError(std::string("unknown escape '\\") +
                                  value[i] + "'");
    }
  }
  return out;
}

void AppendLine(std::string* out, std::string_view key,
                std::string_view value) {
  out->append(key);
  out->push_back('=');
  out->append(EscapeValue(value));
  out->push_back('\n');
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Status ParseWireDouble(const std::string& raw, std::string_view key,
                       double* out) {
  char* end = nullptr;
  *out = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end == raw.c_str() || *end != '\0') {
    return InvalidArgumentError("wire field '" + std::string(key) +
                                "' value '" + raw + "' is not a number");
  }
  return OkStatus();
}

Status ParseWireInt(const std::string& raw, std::string_view key,
                    int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(raw.c_str(), &end, 10);
  if (raw.empty() || end == raw.c_str() || *end != '\0') {
    return InvalidArgumentError("wire field '" + std::string(key) +
                                "' value '" + raw + "' is not an integer");
  }
  return OkStatus();
}

/// Walks "key=value\n" lines, invoking `visit(key, unescaped_value)`.
Status ForEachWireLine(
    std::string_view body,
    const std::function<Status(std::string_view, const std::string&)>& visit) {
  size_t begin = 0;
  while (begin < body.size()) {
    size_t end = body.find('\n', begin);
    if (end == std::string_view::npos) end = body.size();
    const std::string_view line = body.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return InvalidArgumentError("malformed wire line '" + std::string(line) +
                                  "'");
    }
    GPUTC_ASSIGN_OR_RETURN(const std::string value,
                           UnescapeValue(line.substr(eq + 1)));
    GPUTC_RETURN_IF_ERROR(visit(line.substr(0, eq), value));
  }
  return OkStatus();
}

}  // namespace

Status WriteFrame(int fd, char type, std::string_view body) {
  std::string frame(kFrameHeaderBytes + 1 + body.size(), '\0');
  PutU32(&frame[0], static_cast<uint32_t>(1 + body.size()));
  frame[kFrameHeaderBytes] = type;
  std::copy(body.begin(), body.end(), frame.begin() + kFrameHeaderBytes + 1);
  PutU32(&frame[4], Crc32c(frame.data() + kFrameHeaderBytes, 1 + body.size()));

  // Result frames deliberately land in two writes with the
  // "worker.response.torn" site between them: armed as `crash`, the worker
  // dies leaving half a frame on the pipe — the exact artifact the
  // supervisor must classify as a crash, not as usable data.
  if (type == kFrameResult) {
    FailPointScope scope;
    const size_t split = kFrameHeaderBytes + (1 + body.size()) / 2;
    GPUTC_RETURN_IF_ERROR(WriteAllFd(fd, frame.data(), split));
    GPUTC_RETURN_IF_ERROR(CheckFailPoint("worker.response.torn"));
    return WriteAllFd(fd, frame.data() + split, frame.size() - split);
  }
  return WriteAllFd(fd, frame.data(), frame.size());
}

StatusOr<WireFrame> ReadFrame(int fd) {
  char header[kFrameHeaderBytes];
  GPUTC_ASSIGN_OR_RETURN(const size_t header_read,
                         ReadFullFd(fd, header, sizeof(header)));
  if (header_read == 0) {
    return FailedPreconditionError("pipe closed at a frame boundary");
  }
  if (header_read < sizeof(header)) {
    return DataLossError("torn frame: EOF after " +
                         std::to_string(header_read) + " header byte(s)");
  }
  const uint32_t payload_len = GetU32(header);
  const uint32_t expected_crc = GetU32(header + 4);
  if (payload_len == 0 || payload_len > kMaxFramePayload) {
    return DataLossError("corrupt frame header: payload length " +
                         std::to_string(payload_len));
  }
  std::string payload(payload_len, '\0');
  GPUTC_ASSIGN_OR_RETURN(const size_t payload_read,
                         ReadFullFd(fd, &payload[0], payload_len));
  if (payload_read < payload_len) {
    return DataLossError("torn frame: EOF after " +
                         std::to_string(payload_read) + " of " +
                         std::to_string(payload_len) + " payload byte(s)");
  }
  if (Crc32c(payload) != expected_crc) {
    return DataLossError("frame checksum mismatch");
  }
  WireFrame frame;
  frame.type = payload[0];
  frame.body = payload.substr(1);
  return frame;
}

StatusOr<WireFrame> ReadFrameWithDeadline(int fd, Deadline deadline,
                                          int poll_slice_ms) {
  // Poll for the first byte under the deadline; once a frame has started
  // arriving, read it to completion (a peer that starts a frame and then
  // wedges is the watchdog's problem — SIGKILL turns the stall into an EOF
  // and this read into a DataLoss).
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const double remaining = deadline.remaining_millis();
    if (remaining <= 0.0) {
      return DeadlineExceededError("no frame before the deadline");
    }
    int wait_ms = poll_slice_ms;
    if (remaining < wait_ms) wait_ms = remaining < 1.0 ? 1 : static_cast<int>(remaining);
    GPUTC_ASSIGN_OR_RETURN(const int ready, PollRetry(&pfd, 1, wait_ms));
    if (ready == 0) continue;
    // POLLHUP with no POLLIN still reads as EOF below; let ReadFrame decide.
    return ReadFrame(fd);
  }
}

std::string EncodeWorkerRequest(const WorkerRequest& request) {
  std::string out;
  AppendLine(&out, "id", request.id);
  AppendLine(&out, "source", request.source);
  AppendLine(&out, "kind", std::to_string(static_cast<int>(request.kind)));
  AppendLine(&out, "target", request.target);
  for (const auto& [key, value] : request.params) {
    AppendLine(&out, "param", key + "=" + value);
  }
  AppendLine(&out, "timeout-ms", FormatDouble(request.timeout_ms));
  AppendLine(&out, "chain", request.chain);
  AppendLine(&out, "failpoints", request.failpoints);
  AppendLine(&out, "prep-cache-dir", request.prep_cache_dir);
  AppendLine(&out, "prep-cache-mb", std::to_string(request.prep_cache_mb));
  return out;
}

StatusOr<WorkerRequest> DecodeWorkerRequest(std::string_view body) {
  WorkerRequest request;
  const Status parsed = ForEachWireLine(
      body,
      [&request](std::string_view key, const std::string& value) -> Status {
        if (key == "id") {
          request.id = value;
        } else if (key == "source") {
          request.source = value;
        } else if (key == "kind") {
          int64_t kind = 0;
          GPUTC_RETURN_IF_ERROR(ParseWireInt(value, key, &kind));
          if (kind < 0 || kind > static_cast<int>(BatchRequest::Kind::kGenerate)) {
            return InvalidArgumentError("wire kind " + value +
                                        " out of range");
          }
          request.kind = static_cast<BatchRequest::Kind>(kind);
        } else if (key == "target") {
          request.target = value;
        } else if (key == "param") {
          const size_t eq = value.find('=');
          if (eq == std::string::npos || eq == 0) {
            return InvalidArgumentError("malformed wire param '" + value +
                                        "'");
          }
          request.params[value.substr(0, eq)] = value.substr(eq + 1);
        } else if (key == "timeout-ms") {
          GPUTC_RETURN_IF_ERROR(
              ParseWireDouble(value, key, &request.timeout_ms));
        } else if (key == "chain") {
          request.chain = value;
        } else if (key == "failpoints") {
          request.failpoints = value;
        } else if (key == "prep-cache-dir") {
          request.prep_cache_dir = value;
        } else if (key == "prep-cache-mb") {
          int64_t mb = 0;
          GPUTC_RETURN_IF_ERROR(ParseWireInt(value, key, &mb));
          request.prep_cache_mb = mb;
        } else {
          return InvalidArgumentError("unknown wire field '" +
                                      std::string(key) + "'");
        }
        return OkStatus();
      });
  if (!parsed.ok()) return parsed.WithContext("DecodeWorkerRequest");
  if (request.id.empty()) {
    return InvalidArgumentError("DecodeWorkerRequest: missing request id");
  }
  return request;
}

std::string EncodeWorkerResult(const WorkerResult& result) {
  std::string out;
  AppendLine(&out, "code", std::to_string(static_cast<int>(result.code)));
  AppendLine(&out, "message", result.message);
  AppendLine(&out, "stage", result.stage);
  AppendLine(&out, "variant", result.variant);
  AppendLine(&out, "triangles", std::to_string(result.triangles));
  AppendLine(&out, "attempts", std::to_string(result.attempts));
  for (const std::string& line : result.trace) {
    AppendLine(&out, "trace", line);
  }
  AppendLine(&out, "materialize-ms", FormatDouble(result.materialize_ms));
  AppendLine(&out, "exec-ms", FormatDouble(result.exec_ms));
  return out;
}

StatusOr<WorkerResult> DecodeWorkerResult(std::string_view body) {
  WorkerResult result;
  const Status parsed = ForEachWireLine(
      body, [&result](std::string_view key, const std::string& value) -> Status {
        if (key == "code") {
          int64_t code = 0;
          GPUTC_RETURN_IF_ERROR(ParseWireInt(value, key, &code));
          if (code < 0 || code > static_cast<int>(StatusCode::kCancelled)) {
            return InvalidArgumentError("wire status code " + value +
                                        " out of range");
          }
          result.code = static_cast<StatusCode>(code);
        } else if (key == "message") {
          result.message = value;
        } else if (key == "stage") {
          result.stage = value;
        } else if (key == "variant") {
          result.variant = value;
        } else if (key == "triangles") {
          GPUTC_RETURN_IF_ERROR(ParseWireInt(value, key, &result.triangles));
        } else if (key == "attempts") {
          int64_t attempts = 0;
          GPUTC_RETURN_IF_ERROR(ParseWireInt(value, key, &attempts));
          result.attempts = static_cast<int>(attempts);
        } else if (key == "trace") {
          result.trace.push_back(value);
        } else if (key == "materialize-ms") {
          GPUTC_RETURN_IF_ERROR(
              ParseWireDouble(value, key, &result.materialize_ms));
        } else if (key == "exec-ms") {
          GPUTC_RETURN_IF_ERROR(ParseWireDouble(value, key, &result.exec_ms));
        } else {
          return InvalidArgumentError("unknown wire field '" +
                                      std::string(key) + "'");
        }
        return OkStatus();
      });
  if (!parsed.ok()) return parsed.WithContext("DecodeWorkerResult");
  return result;
}

StatusOr<WorkerProcess> WorkerProcess::Spawn(
    const WorkerSpawnOptions& options) {
  FailPointScope scope;
  GPUTC_RETURN_IF_ERROR(
      CheckFailPoint("worker.spawn").WithContext("WorkerProcess::Spawn"));
  if (options.binary.empty()) {
    return InvalidArgumentError("WorkerProcess::Spawn: empty binary path");
  }
  // Armed "worker.exec" swaps in a nonexistent path, so the child's real
  // execve-failure reporting (errno over the CLOEXEC status pipe) is what
  // carries the error — the one spawn path a unit test cannot reach
  // honestly any other way.
  std::string exec_path = options.binary;
  if (!CheckFailPoint("worker.exec").ok()) {
    exec_path += ".failpoint-missing";
  }

  int request_pipe[2];   // parent writes [1] -> child reads [0]
  int response_pipe[2];  // child writes [1] -> parent reads [0]
  int status_pipe[2];    // child reports exec errno on [1]
  if (::pipe2(request_pipe, O_CLOEXEC) != 0) {
    return InternalError(std::string("pipe2: ") + strerror(errno));
  }
  if (::pipe2(response_pipe, O_CLOEXEC) != 0) {
    const int saved = errno;
    ::close(request_pipe[0]);
    ::close(request_pipe[1]);
    return InternalError(std::string("pipe2: ") + strerror(saved));
  }
  if (::pipe2(status_pipe, O_CLOEXEC) != 0) {
    const int saved = errno;
    ::close(request_pipe[0]);
    ::close(request_pipe[1]);
    ::close(response_pipe[0]);
    ::close(response_pipe[1]);
    return InternalError(std::string("pipe2: ") + strerror(saved));
  }

  // Raise the child-side ends above the dup2 targets (3/4/5) so the dance
  // below can never dup2 over a pipe end it still needs.
  int child_request = ::fcntl(request_pipe[0], F_DUPFD_CLOEXEC, 10);
  int child_response = ::fcntl(response_pipe[1], F_DUPFD_CLOEXEC, 10);
  int child_status = ::fcntl(status_pipe[1], F_DUPFD_CLOEXEC, 10);
  ::close(request_pipe[0]);
  ::close(response_pipe[1]);
  ::close(status_pipe[1]);
  if (child_request < 0 || child_response < 0 || child_status < 0) {
    if (child_request >= 0) ::close(child_request);
    if (child_response >= 0) ::close(child_response);
    if (child_status >= 0) ::close(child_status);
    ::close(request_pipe[1]);
    ::close(response_pipe[0]);
    ::close(status_pipe[0]);
    return InternalError("fcntl(F_DUPFD_CLOEXEC) failed");
  }

  // Everything the child needs is materialized before fork: between fork and
  // exec only async-signal-safe calls are allowed (the parent is
  // multithreaded, so the child's heap/locks are in an arbitrary state).
  char interval_buf[64];
  std::snprintf(interval_buf, sizeof(interval_buf),
                "--heartbeat-interval-ms=%.17g", options.heartbeat_interval_ms);
  std::string request_fd_flag =
      "--request-fd=" + std::to_string(kChildRequestFd);
  std::string response_fd_flag =
      "--response-fd=" + std::to_string(kChildResponseFd);
  char* const argv[] = {const_cast<char*>(exec_path.c_str()),
                        const_cast<char*>("worker"),
                        const_cast<char*>(request_fd_flag.c_str()),
                        const_cast<char*>(response_fd_flag.c_str()),
                        interval_buf, nullptr};
#ifndef GPUTC_SANITIZER_BUILD
  const int64_t rlimit_bytes = options.rlimit_as_bytes;
#else
  const int64_t rlimit_bytes = 0;
#endif

  const int pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    ::close(child_request);
    ::close(child_response);
    ::close(child_status);
    ::close(request_pipe[1]);
    ::close(response_pipe[0]);
    ::close(status_pipe[0]);
    return InternalError(std::string("fork: ") + strerror(saved));
  }

  if (pid == 0) {
    // Child. dup2 clears CLOEXEC on the target, which is exactly right for
    // the request/response fds (the worker must inherit them) and exactly
    // wrong for the status fd (it must vanish on a successful exec), so
    // CLOEXEC is re-set on that one.
    ::dup2(child_request, kChildRequestFd);
    ::dup2(child_response, kChildResponseFd);
    ::dup2(child_status, kChildStatusFd);
    ::fcntl(kChildStatusFd, F_SETFD, FD_CLOEXEC);
    // The service's stdout may BE the journal stream; a worker must never
    // write into it.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      if (devnull > STDERR_FILENO) ::close(devnull);
    }
    // Belt-and-braces fd hygiene: O_CLOEXEC covers the pipes made here, but
    // the parent also holds journal/WAL/trace descriptors opened elsewhere.
    for (int fd = kChildStatusFd + 1; fd < 256; ++fd) ::close(fd);
    if (rlimit_bytes > 0) {
      struct rlimit lim;
      lim.rlim_cur = static_cast<rlim_t>(rlimit_bytes);
      lim.rlim_max = static_cast<rlim_t>(rlimit_bytes);
      ::setrlimit(RLIMIT_AS, &lim);
    }
    ::execv(argv[0], argv);
    // exec failed: report errno to the parent and die without running any
    // atexit handler inherited from it.
    const int exec_errno = errno;
    ssize_t ignored =
        ::write(kChildStatusFd, &exec_errno, sizeof(exec_errno));
    (void)ignored;
    ::_exit(127);
  }

  // Parent.
  ::close(child_request);
  ::close(child_response);
  ::close(child_status);

  // The status pipe answers "did exec happen?": CLOEXEC closes it on
  // success (clean EOF), and the errno arrives on failure. This blocks only
  // for the fork->exec window, which is bounded.
  int exec_errno = 0;
  GPUTC_ASSIGN_OR_RETURN(
      const size_t status_read,
      ReadFullFd(status_pipe[0], reinterpret_cast<char*>(&exec_errno),
                 sizeof(exec_errno)));
  ::close(status_pipe[0]);
  if (status_read != 0) {
    ::close(request_pipe[1]);
    ::close(response_pipe[0]);
    int wait_status = 0;
    ::waitpid(pid, &wait_status, 0);
    return InternalError("worker exec of '" + exec_path +
                         "' failed: " + strerror(exec_errno));
  }
  return WorkerProcess(pid, request_pipe[1], response_pipe[0]);
}

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept
    : pid_(other.pid_),
      request_fd_(other.request_fd_),
      response_fd_(other.response_fd_) {
  other.pid_ = -1;
  other.request_fd_ = -1;
  other.response_fd_ = -1;
}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
  if (this != &other) {
    CloseFds();
    pid_ = other.pid_;
    request_fd_ = other.request_fd_;
    response_fd_ = other.response_fd_;
    other.pid_ = -1;
    other.request_fd_ = -1;
    other.response_fd_ = -1;
  }
  return *this;
}

WorkerProcess::~WorkerProcess() { CloseFds(); }

void WorkerProcess::CloseFds() {
  if (request_fd_ >= 0) ::close(request_fd_);
  if (response_fd_ >= 0) ::close(response_fd_);
  request_fd_ = -1;
  response_fd_ = -1;
}

Status WorkerProcess::SendRequest(const WorkerRequest& request) {
  if (request_fd_ < 0) {
    return FailedPreconditionError("SendRequest on a closed worker");
  }
  return WriteFrame(request_fd_, kFrameRequest, EncodeWorkerRequest(request))
      .WithContext("SendRequest to worker pid " + std::to_string(pid_));
}

void WorkerProcess::Kill() {
  if (pid_ > 0) ::kill(pid_, SIGKILL);
}

}  // namespace gputc
