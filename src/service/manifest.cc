#include "service/manifest.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/failpoint.h"

namespace gputc {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits "k1=v1,k2=v2" into a map; InvalidArgument on a malformed pair.
Status ParseParams(std::string_view spec,
                   std::map<std::string, std::string>* out) {
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view pair = Trim(spec.substr(begin, end - begin));
    begin = end + 1;
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq == pair.size() - 1) {
      return InvalidArgumentError("malformed parameter '" + std::string(pair) +
                                  "' (expected key=value)");
    }
    (*out)[std::string(Trim(pair.substr(0, eq)))] =
        std::string(Trim(pair.substr(eq + 1)));
  }
  return OkStatus();
}

Status ParseStrictDouble(const std::string& raw, const std::string& what,
                         double* out) {
  char* end = nullptr;
  *out = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end == raw.c_str() || *end != '\0') {
    return InvalidArgumentError(what + " value '" + raw +
                                "' is not a number");
  }
  return OkStatus();
}

/// Parses one non-comment manifest line into a request (sans id).
Status ParseLine(std::string_view line, BatchRequest* request) {
  std::istringstream tokens{std::string(line)};
  std::string source;
  tokens >> source;
  request->source = source;

  if (source.rfind("dataset:", 0) == 0) {
    request->kind = BatchRequest::Kind::kDataset;
    request->target = source.substr(8);
  } else if (source.rfind("file:", 0) == 0) {
    request->kind = BatchRequest::Kind::kFile;
    request->target = source.substr(5);
  } else if (source.rfind("gen:", 0) == 0) {
    request->kind = BatchRequest::Kind::kGenerate;
    const std::string rest = source.substr(4);
    const size_t colon = rest.find(':');
    request->target = rest.substr(0, colon);
    if (colon != std::string::npos) {
      GPUTC_RETURN_IF_ERROR(ParseParams(rest.substr(colon + 1),
                                        &request->params));
    }
    if (request->target != "rmat" && request->target != "powerlaw" &&
        request->target != "er" && request->target != "ws") {
      return InvalidArgumentError("unknown generator family '" +
                                  request->target +
                                  "'; valid choices: rmat powerlaw er ws");
    }
  } else if (source.find('/') != std::string::npos ||
             source.find('.') != std::string::npos) {
    request->kind = BatchRequest::Kind::kFile;
    request->target = source;
  } else {
    request->kind = BatchRequest::Kind::kDataset;
    request->target = source;
  }
  if (request->target.empty()) {
    return InvalidArgumentError("empty source in '" + std::string(line) + "'");
  }

  std::string override_token;
  while (tokens >> override_token) {
    const size_t eq = override_token.find('=');
    if (eq == std::string::npos || eq == 0 || eq == override_token.size() - 1) {
      return InvalidArgumentError("malformed override '" + override_token +
                                  "' (expected key=value)");
    }
    const std::string key = override_token.substr(0, eq);
    const std::string value = override_token.substr(eq + 1);
    if (key == "timeout-ms") {
      GPUTC_RETURN_IF_ERROR(
          ParseStrictDouble(value, "timeout-ms", &request->timeout_ms));
      if (request->timeout_ms < 0.0) {
        return InvalidArgumentError("timeout-ms must be >= 0, got " + value);
      }
    } else if (key == "fallback") {
      request->fallback = value;
    } else if (key == "failpoints") {
      // Only the coarse shape is checked here; ArmFromString validates the
      // full syntax in the process that arms it (the worker under --isolate)
      // and a malformed schedule fails that request, not the whole batch.
      if (value.find('=') == std::string::npos) {
        return InvalidArgumentError(
            "failpoints override '" + value +
            "' is not a 'site=code[@count][%prob][$seed];...' schedule");
      }
      request->failpoints = value;
    } else {
      return InvalidArgumentError(
          "unknown override key '" + key +
          "'; valid keys: timeout-ms fallback failpoints");
    }
  }
  return OkStatus();
}

int64_t GetIntParam(const std::map<std::string, std::string>& params,
                    const std::string& key, int64_t def) {
  const auto it = params.find(key);
  if (it == params.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double GetDoubleParam(const std::map<std::string, std::string>& params,
                      const std::string& key, double def) {
  const auto it = params.find(key);
  if (it == params.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace

StatusOr<std::vector<BatchRequest>> ParseManifest(std::istream& in) {
  std::vector<BatchRequest> requests;
  std::string raw;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#' || line.front() == '%') continue;
    BatchRequest request;
    const Status parsed = ParseLine(line, &request);
    if (!parsed.ok()) {
      return parsed.WithContext("manifest line " + std::to_string(line_number));
    }
    request.id = std::to_string(line_number) + ":" + request.source;
    requests.push_back(std::move(request));
  }
  return requests;
}

StatusOr<std::vector<BatchRequest>> LoadManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open manifest '" + path + "'");
  }
  StatusOr<std::vector<BatchRequest>> requests = ParseManifest(in);
  if (!requests.ok()) {
    return requests.status().WithContext("manifest '" + path + "'");
  }
  return requests;
}

StatusOr<Graph> MaterializeRequest(const BatchRequest& request) {
  switch (request.kind) {
    case BatchRequest::Kind::kDataset:
      return TryLoadDataset(request.target);
    case BatchRequest::Kind::kFile:
      return LoadGraph(request.target);
    case BatchRequest::Kind::kGenerate:
      break;
  }
  // Generated inputs pass the same "io.load" site as file loads, so one
  // chaos schedule covers every manifest source kind.
  GPUTC_INJECT_FAULT("io.load");
  const std::map<std::string, std::string>& p = request.params;
  const uint64_t seed = static_cast<uint64_t>(GetIntParam(p, "seed", 1));
  if (request.target == "rmat") {
    return TryGenerateRmat(static_cast<int>(GetIntParam(p, "scale", 8)),
                           static_cast<int>(GetIntParam(p, "edge-factor", 8)),
                           seed);
  }
  if (request.target == "powerlaw") {
    return TryGeneratePowerLawConfiguration(
        static_cast<VertexId>(GetIntParam(p, "nodes", 1000)),
        GetDoubleParam(p, "gamma", 2.1),
        static_cast<EdgeCount>(GetIntParam(p, "min-degree", 2)),
        static_cast<EdgeCount>(GetIntParam(p, "max-degree", 100)), seed);
  }
  if (request.target == "er") {
    return TryGenerateErdosRenyi(
        static_cast<VertexId>(GetIntParam(p, "nodes", 1000)),
        static_cast<EdgeCount>(GetIntParam(p, "edges", 5000)), seed);
  }
  if (request.target == "ws") {
    return TryGenerateWattsStrogatz(
        static_cast<VertexId>(GetIntParam(p, "nodes", 1000)),
        static_cast<int>(GetIntParam(p, "k", 4)),
        GetDoubleParam(p, "beta", 0.05), seed);
  }
  return InvalidArgumentError("unknown generator family '" + request.target +
                              "'");
}

}  // namespace gputc
