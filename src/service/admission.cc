#include "service/admission.h"

#include <chrono>
#include <string>

namespace gputc {

Status AdmissionController::Admit(int64_t bytes, const CancelToken& cancel) {
  if (bytes < 0) bytes = 0;
  std::unique_lock<std::mutex> lock(mu_);
  if (budget_bytes_ > 0 && bytes > budget_bytes_) {
    return ResourceExhaustedError(
        "request needs ~" + std::to_string(bytes) +
        " bytes of host memory, over the whole service budget of " +
        std::to_string(budget_bytes_) + " bytes; it can never be admitted");
  }
  // Wait on a short tick rather than a bare condition so an external
  // CancelToken (which has no hook into our condvar) is noticed promptly.
  while (!aborted_ && !cancel.cancelled() && budget_bytes_ > 0 &&
         in_use_bytes_ + bytes > budget_bytes_) {
    freed_.wait_for(lock, std::chrono::milliseconds(5));
  }
  if (aborted_) {
    return CancelledError("admission controller aborted (service draining)");
  }
  if (cancel.cancelled()) {
    return CancelledError("cancelled while waiting for memory admission: " +
                          cancel.reason());
  }
  in_use_bytes_ += bytes;
  ++in_flight_;
  return OkStatus();
}

void AdmissionController::Release(int64_t bytes) {
  if (bytes < 0) bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_use_bytes_ -= bytes;
    if (in_use_bytes_ < 0) in_use_bytes_ = 0;
    if (in_flight_ > 0) --in_flight_;
  }
  freed_.notify_all();
}

void AdmissionController::Abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  freed_.notify_all();
}

int64_t AdmissionController::in_use_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_bytes_;
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

}  // namespace gputc
