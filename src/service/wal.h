#ifndef GPUTC_SERVICE_WAL_H_
#define GPUTC_SERVICE_WAL_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/durable_file.h"
#include "util/status.h"

namespace gputc {

// Write-ahead journal for crash-safe batch execution. One record per state
// transition of a manifest request:
//
//   intent(id[, spec])  — the request is about to be submitted to the
//                         service; `spec` (optional) is its manifest line,
//                         stored so a resume that has no manifest — the
//                         serve daemon, whose requests arrive over sockets —
//                         can re-admit the work. Decoding tolerates records
//                         without the field, so logs written by earlier
//                         releases replay unchanged.
//   done(id, outcome,   — the request reached a terminal outcome; `outcome`
//        json)            is its outcome name ("ok", "rejected", ...) stored
//                         as its own field so resume never re-parses the
//                         journal JSON, and `json` is the complete journal
//                         line, stored verbatim
//   version(text)       — the gputc version string of the run that appended
//                         after it; written at every Open so a resumed log
//                         records which builds touched it. Ignored by the
//                         pending/done fold.
//
// Records live in `<dir>/wal.log`, an append-only segment with per-record
// CRC32C framing (util/durable_file). Every append is fsynced before the
// caller proceeds, which yields the exactly-once invariant across a crash:
//
//   * done is durable *before* the journal line is emitted, so a request
//     whose journal line was lost to a crash is replayed verbatim on resume
//     instead of being re-counted (no double-counting);
//   * intent is durable *before* the request enters the work queue, so a
//     request killed mid-execution is re-admitted on resume (no losses).
//
// A terminal outcome in the WAL is final — resume re-emits done lines
// verbatim (including rejections and failures) and only re-admits requests
// with no terminal outcome. Replay tolerates a torn tail (the crash can
// only tear the final record, which recovery truncates); any record that
// passes its CRC but does not decode is real corruption and fails replay.

/// One replayed terminal outcome: the request id, its outcome name exactly
/// as the first run recorded it, and its journal line stored verbatim.
struct WalDoneRecord {
  std::string id;
  std::string outcome;
  std::string line;
};

/// What a WAL replay reconstructed from a previous run.
struct WalReplay {
  /// Terminal outcomes in WAL order.
  std::vector<WalDoneRecord> done;
  /// Requests with an intent but no terminal outcome, in intent order —
  /// the work a resume must re-admit.
  std::vector<std::string> pending;
  /// Manifest line stored with a pending intent, keyed by id; absent when
  /// the intent carried no spec (batch mode, where the manifest is the
  /// source of truth).
  std::map<std::string, std::string> pending_specs;
  /// Version strings of every run that opened this log, in append order.
  std::vector<std::string> versions;
  /// Torn tail bytes dropped during recovery (0 on a clean shutdown).
  uint64_t torn_bytes = 0;

  bool empty() const { return done.empty() && pending.empty(); }
  /// The stored record for `id`, if it reached a terminal outcome.
  const WalDoneRecord* FindDone(const std::string& id) const;
};

/// Append side of the WAL. Open recovers the segment (truncating a torn
/// tail) and appends after the surviving records, so one log accumulates
/// intent/done pairs across any number of crash/resume cycles.
class WriteAheadLog {
 public:
  /// Creates `dir` if missing and opens `<dir>/wal.log`.
  static StatusOr<WriteAheadLog> Open(const std::string& dir);

  /// Durably records that `id` is about to be submitted. A non-empty `spec`
  /// (the request's manifest line) is stored with the intent so a manifest-
  /// less resume can re-admit the request. Passes the "wal.intent" fail
  /// point before the append.
  Status LogIntent(const std::string& id, const std::string& spec = "");

  /// Durably records `version` (the VersionString of the running build).
  /// Appended once per Open by the CLI, so the log's history names the
  /// builds that wrote it.
  Status LogVersion(const std::string& version);

  /// Durably records the terminal outcome of `id`: `outcome` is its outcome
  /// name (RequestOutcomeName) and `journal_json` its journal line, stored
  /// verbatim. Passes the "wal.done" fail point *after* the append is
  /// durable — a crash armed there models dying between WAL commit and
  /// journal emit, the window the verbatim replay exists for.
  Status LogDone(const std::string& id, const std::string& outcome,
                 const std::string& journal_json);

  /// Folds the records recovered when the log was opened into a WalReplay —
  /// the resume path uses this instead of ReplayWal so the segment is
  /// scanned exactly once (Open already read and verified it).
  StatusOr<WalReplay> Replay() const;

  const std::string& path() const { return writer_.path(); }

 private:
  explicit WriteAheadLog(SegmentWriter writer) : writer_(std::move(writer)) {}

  SegmentWriter writer_;
};

/// Path of the log segment inside a WAL directory.
std::string WalLogPath(const std::string& dir);

/// Reads `<dir>/wal.log` and folds its records into a WalReplay. A missing
/// directory or log is an empty replay (fresh start), a torn tail is
/// tolerated and counted, and an undecodable record that passed its CRC is
/// a DataLoss error.
StatusOr<WalReplay> ReplayWal(const std::string& dir);

}  // namespace gputc

#endif  // GPUTC_SERVICE_WAL_H_
