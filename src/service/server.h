#ifndef GPUTC_SERVICE_SERVER_H_
#define GPUTC_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/batch_service.h"
#include "service/connection.h"
#include "service/overload.h"
#include "service/storage_health.h"
#include "util/deadline.h"
#include "util/net_io.h"

namespace gputc {

// The network serving layer (`gputc serve`): a poll-based daemon that speaks
// the manifest line protocol over TCP or a unix-domain socket — one request
// line in, one journal JSON line out — and routes every request through the
// existing BatchService / Supervisor / WAL stack, so process isolation,
// crash containment, and --resume work over the wire exactly as they do for
// `gputc batch`.
//
// The robustness surface lives here, in layers:
//
//   accept      — hard max-connections cap; the listener simply leaves poll
//                 while at the cap (backpressure lands in the SYN backlog,
//                 not in our memory).
//   connection  — request-line length cap, per-connection read/write
//                 deadlines, idle timeout (Connection; the slowloris
//                 defenses), EINTR/partial-I/O safety (util/net_io).
//   admission   — an adaptive AIMD concurrency limiter on observed p99
//                 latency (overload.h), then a hard queue bound, then the
//                 service's own memory admission gate. Overload rejections
//                 are structured journal lines carrying retry_after_ms.
//   shutdown    — a graceful-drain ladder on SIGTERM/SIGINT: stop accepting
//                 -> flip readiness -> half-close every reader -> deliver
//                 in-flight responses within a grace window -> cancel
//                 stragglers through the service's drain -> flush and exit.
//
// A separate health listener serves liveness (/healthz), readiness
// (/readyz — false while draining or while the worker breaker is open), and
// Prometheus text (/metrics), so probes never compete with data traffic for
// the request path.

/// Tuning and integration hooks of one Server.
struct ServerOptions {
  /// Data listener (required).
  ListenSpec listen;
  /// Optional health/metrics listener.
  bool has_health = false;
  ListenSpec health;

  /// Hard cap on concurrently open data connections; the listener is not
  /// polled while at the cap.
  size_t max_connections = 64;
  /// Separate (small) cap for the health listener, enforced the same way —
  /// probes must not be able to exhaust descriptors just because they
  /// bypass the data cap.
  size_t max_health_connections = 8;
  /// Request-line length cap (unterminated buffered bytes).
  size_t max_line_bytes = 64 * 1024;
  /// Close connections with no activity, no in-flight work, and nothing
  /// buffered after this long.
  double idle_timeout_ms = 30000.0;
  /// Slowloris/stall bound: a request line that stays unfinished this long,
  /// or a response the peer has not drained in this long, kills the
  /// connection.
  double io_timeout_ms = 10000.0;
  /// Drain ladder grace: how long in-flight requests may finish naturally
  /// after shutdown is requested before the service cancels them.
  double drain_grace_ms = 2000.0;
  /// Emit the version hello line on accept (protocol clients expect it;
  /// tests may turn it off).
  bool send_hello = true;

  /// How many previous runs already wrote the WAL this daemon resumed
  /// (`WalReplay::versions.size()`; 0 for a fresh log or no WAL). Folded
  /// into generated request ids — "net-r<epoch>-<conn>-<seq>" when nonzero —
  /// so ids are unique across crash/resume cycles: a recovered pending
  /// request registered under its old id can never collide with a new
  /// request of the resumed run (which would misroute its response, leak an
  /// inflight slot, and double-write WAL done for one id).
  uint64_t run_epoch = 0;

  AdaptiveLimiterOptions limiter;
  BatchServiceOptions batch;

  /// Durability hook: called on the poll thread after a request passes every
  /// overload gate and before it is submitted (the WAL intent append). A
  /// failure fails the request and starts a drain — a daemon that cannot
  /// log intents must not accept work.
  std::function<Status(const std::string& id, const std::string& line)>
      on_intent;
  /// Journal hook: called once per terminal report, serialized in journal
  /// order (the WAL done append + journal file write), before the response
  /// line is queued to the client.
  std::function<void(const RequestReport&)> on_report;

  /// Disk-health view (not owned; must outlive the server). The poll loop
  /// drives MaybeProbe every tick; /readyz flips to 503 "storage-degraded"
  /// once a strict-WAL stop is recorded and carries an
  /// "X-Gputc-Storage: degraded" header while any sink runs degraded.
  StorageHealthMonitor* storage = nullptr;
};

/// What Run() returns once the drain ladder completes.
struct ServerSummary {
  int64_t connections_accepted = 0;
  int64_t requests_received = 0;
  int64_t responses_sent = 0;
  int64_t overload_rejections = 0;
  /// Oversized lines, unparseable requests, mid-request disconnects,
  /// slowloris kills.
  int64_t protocol_errors = 0;
  std::string drain_reason;
  /// The underlying service's complete journal.
  BatchSummary batch;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens the listeners and the wakeup pipe and starts the batch service.
  /// Call once, before Run.
  Status Start();

  /// Side-effect-free admissibility check for one WAL-recovered request
  /// line: parses it and requires exactly one request. Run this over every
  /// recovered intent (and resolve the failures) BEFORE the first
  /// SubmitRecovered — once a recovered request is in flight, its report
  /// can race anything the caller emits outside the journal lock.
  Status ValidateRecovered(const std::string& id,
                           const std::string& line) const;

  /// Re-submits one WAL-recovered pending request (after Start, before Run).
  /// No live connection owns it, so its outcome goes to the journal hooks
  /// only; the WAL intent already exists, so on_intent is skipped. Fails
  /// without side effects on an invalid line (ValidateRecovered) or an id
  /// that is already registered (exactly-once: never clobber a pending
  /// entry).
  Status SubmitRecovered(const std::string& id, const std::string& line);

  /// The poll loop. Blocks until RequestShutdown's drain ladder completes;
  /// returns the final accounting.
  ServerSummary Run();

  /// Starts the graceful-drain ladder. Thread-safe and idempotent (the
  /// signal watcher calls it); the first reason wins.
  void RequestShutdown(const std::string& reason);

  /// Actual bound TCP port (resolves --listen HOST:0); 0 for unix sockets.
  /// Valid after Start.
  int listen_port() const { return listen_port_; }
  /// False once shutdown has been requested, the worker backend breaker is
  /// open, or the storage monitor recorded a strict-WAL stop — what /readyz
  /// reports.
  bool ready() const;

  const AdaptiveLimiter& limiter() const { return limiter_; }
  BatchService& service() { return service_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Where a submitted request's response goes, and what the limiter is
  /// owed. conn_id 0 = recovered request (no connection).
  struct PendingRequest {
    uint64_t conn_id = 0;
    Clock::time_point submitted;
    bool limited = false;
  };

  enum class Phase { kServing, kDraining };

  /// Terminal-report hook installed on the batch service (worker threads).
  void OnReport(const RequestReport& report);
  /// Pokes the wakeup pipe so the poll loop notices cross-thread state.
  void Wake();

  void AcceptPending(int listener_fd, bool is_health);
  /// One complete request line from a data connection: parse, run the
  /// overload gates, log intent, submit. Queues a structured rejection or
  /// error line itself when the request never reaches the service.
  void HandleRequestLine(Connection& conn, const std::string& line);
  /// One request line from the health listener ("GET /readyz HTTP/1.1" or
  /// bare "readyz"): queues the response and marks the connection done.
  void HandleHealthLine(Connection& conn, const std::string& line);
  /// Queues a server-side rejection/error journal line (never reaches the
  /// WAL or journal file — the request was refused at the door).
  void QueueErrorLine(Connection& conn, const std::string& id,
                      const std::string& source, Status status,
                      int64_t retry_after_ms);
  /// Delivers queued responses from worker threads to their connections.
  void DeliverResponses();
  /// Enforces the idle / partial-read / write-stall deadlines.
  void SweepDeadlines(std::vector<int>* dead);
  size_t DataConnectionCount() const;
  size_t HealthConnectionCount() const;
  void DestroyConnection(int fd);
  void CloseListeners();
  Status ParseLine(const std::string& line,
                   std::vector<BatchRequest>* requests) const;
  std::string shutdown_reason() const;

  ServerOptions options_;
  BatchService service_;
  AdaptiveLimiter limiter_;

  int listen_fd_ = -1;
  int health_fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  int listen_port_ = 0;
  bool started_ = false;

  uint64_t next_conn_id_ = 0;
  uint64_t next_request_seq_ = 0;
  /// While unexpired, no listener is polled: accept failed with a resource
  /// error (EMFILE/ENFILE), and a still-readable listener would otherwise
  /// make the level-triggered poll loop spin until descriptors free up.
  Deadline accept_backoff_ = Deadline::AfterMillis(0.0);
  std::map<int, Connection> conns_;            // fd -> connection.
  std::unordered_map<uint64_t, int> conn_fd_;  // connection id -> fd.

  /// Submitted-but-unresolved requests (poll thread inserts, OnReport on
  /// worker threads erases).
  mutable std::mutex pending_mu_;
  std::unordered_map<std::string, PendingRequest> pending_;
  std::atomic<size_t> inflight_total_{0};

  /// Terminal journal lines waiting for the poll thread to route them to
  /// their connections.
  std::mutex responses_mu_;
  std::vector<std::pair<uint64_t, std::string>> responses_;

  std::atomic<bool> shutdown_requested_{false};
  mutable std::mutex reason_mu_;
  std::string shutdown_reason_;

  ServerSummary summary_;
};

}  // namespace gputc

#endif  // GPUTC_SERVICE_SERVER_H_
