#ifndef GPUTC_SERVICE_BATCH_SERVICE_H_
#define GPUTC_SERVICE_BATCH_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.h"
#include "core/prep_cache.h"
#include "service/admission.h"
#include "service/cache_store.h"
#include "service/circuit_breaker.h"
#include "service/manifest.h"
#include "service/supervisor.h"
#include "service/work_queue.h"
#include "sim/device.h"
#include "util/deadline.h"

namespace gputc {

// The multi-request layer above ExecuteResilient: a thread-pooled batch
// execution service with production-grade overload protection. One request =
// one graph counted under the per-request resilience of PR 2; the service
// adds what a fleet of concurrent requests needs — a bounded work queue with
// a load-shedding policy, global memory admission control, per-backend
// circuit breakers, a deadline watchdog, and graceful drain that accounts
// for every accepted request in a journal.

/// Tuning of one BatchService.
struct BatchServiceOptions {
  /// Worker threads executing requests concurrently.
  int jobs = 4;
  /// Bounded queue depth between Submit and the workers.
  size_t queue_depth = 16;
  /// What Submit does when the queue is full.
  ShedPolicy shed_policy = ShedPolicy::kBlock;
  /// Global host-memory budget: the sum of EstimateHostBytes over admitted
  /// requests stays under this. <= 0 disables the budget.
  int64_t mem_budget_bytes = 0;
  /// Per-request wall-clock deadline enforced by the watchdog thread firing
  /// the request's CancelToken. <= 0 means no deadline. A manifest line's
  /// timeout-ms override takes precedence.
  double request_timeout_ms = 0.0;
  /// On drain, how long in-flight requests may keep running before the
  /// watchdog cancels them. <= 0 cancels immediately.
  double drain_grace_ms = 1000.0;
  /// Template for each request's execution policy. The service owns the
  /// deadline (watchdog) and the cancel token; timeout_ms here is ignored.
  ExecutionPolicy policy;
  /// Default fallback chain (a manifest line's fallback= override wins).
  std::vector<FallbackStage> chain = {
      FallbackStage{false, TcAlgorithm::kHu}, FallbackStage{true}};
  PreprocessOptions preprocess;
  DeviceSpec spec = DeviceSpec::TitanXpLike();
  /// Per-backend breaker tuning.
  CircuitBreakerOptions breaker;
  /// Observability sink (optional, not owned; must outlive the service).
  /// When set, every processed request records a span tree — request >
  /// {admit, execute > attempts..., journal} — under its own trace id.
  /// Requests always carry a trace id in the journal, tracer or not.
  Tracer* tracer = nullptr;

  /// Process isolation (`gputc batch --isolate[=N]`). When > 0, requests
  /// execute in N supervised `gputc worker` subprocesses instead of
  /// in-process: a crash, hang, or memory blowup kills one worker and fails
  /// that one request, leaving every other in-flight request (and the
  /// journal/WAL invariants) intact. The global admission gate is skipped —
  /// mem_budget_bytes becomes each worker's RLIMIT_AS instead — and crash
  /// looping trips the "worker" backend breaker, failing requests over to
  /// the in-process cpu counter (degraded) until a half-open probe
  /// recovers.
  int isolate = 0;
  /// gputc binary to exec as workers; required when isolate > 0.
  std::string worker_binary;
  /// Heartbeat cadence for isolated workers (supervisor hang detection).
  double heartbeat_interval_ms = 25.0;
  /// When >= 0, rejected reports carry this retry hint (retry_after_ms in
  /// the journal line) so shed clients back off instead of hammering. The
  /// serve daemon sets it; batch mode keeps the default -1 and its journal
  /// lines stay byte-identical to earlier releases.
  double reject_retry_after_ms = -1.0;

  /// Preprocessing cache shared across requests (`--prep-cache[-mb]`). The
  /// cache is off by default; either knob turns it on. `prep_cache_mb`
  /// bounds tier-1 resident bytes (0 with a dir set = a default budget);
  /// `prep_cache_dir` adds the durable tier 2, which `--isolate` workers
  /// share — each worker process keeps its own tier 1 but reads/writes the
  /// same artifact directory.
  int64_t prep_cache_mb = 0;
  std::string prep_cache_dir;
  /// External cache to use instead of an owned one (not owned; must outlive
  /// the service). Overrides the two knobs above; the serve daemon and tests
  /// use it to share one cache across service restarts.
  PrepCache* prep_cache = nullptr;
};

/// Terminal classification of one submitted request. Every Submit produces
/// exactly one journal entry with one of these outcomes — nothing is dropped
/// silently.
enum class RequestOutcome {
  kOk,        // Counted with the requested (base) configuration.
  kDegraded,  // Counted, but on a fallback stage or degraded variant.
  kRejected,  // Shed before execution: queue full, drain, admission refusal,
              // or every backend's breaker open.
  kFailed     // Execution started and did not produce a count.
};

/// Stable lower-case name ("ok", "degraded", "rejected", "failed").
const char* RequestOutcomeName(RequestOutcome outcome);

/// One journal entry.
struct RequestReport {
  std::string id;      // BatchRequest::id.
  std::string source;  // BatchRequest::source.
  RequestOutcome outcome = RequestOutcome::kFailed;
  Status status;            // OK for kOk/kDegraded; the reason otherwise.
  std::string stage;        // Winning fallback stage ("" when none).
  std::string variant;      // Winning degradation variant ("" when none).
  int64_t triangles = 0;
  /// Correlation id linking this journal line to the request's span tree in
  /// the trace export. Unique per report, assigned even when the request is
  /// shed before execution (so rejected work is still correlatable).
  uint64_t trace_id = 0;
  double queue_ms = 0.0;    // Submit-to-worker-pickup wait.
  double materialize_ms = 0.0;  // Loading/parsing the graph source.
  double admit_ms = 0.0;        // Waiting on the memory admission gate.
  double exec_ms = 0.0;     // Worker processing time (load + count).
  int attempts = 0;         // ExecutionTrace length.
  std::vector<std::string> trace;  // One line per attempt, for the journal.
  /// Backoff hint for kRejected outcomes: how many milliseconds the client
  /// should wait before retrying. Emitted in ToJson only when >= 0, so
  /// journals that never set it are unchanged.
  int64_t retry_after_ms = -1;
  /// False when this line lost its durability cover: the WAL is running
  /// under --wal-policy degrade and could not persist the done record, so a
  /// crash after this line may re-run the request. Emitted in ToJson only
  /// when false ("durable":false), so healthy-disk journals are unchanged.
  bool durable = true;

  /// Single-line JSON object for the machine-readable journal.
  std::string ToJson() const;
};

/// Everything Finish returns: the journal (in completion order) plus drain
/// metadata and outcome tallies.
struct BatchSummary {
  std::vector<RequestReport> reports;
  bool drained = false;
  std::string drain_reason;

  int CountOutcome(RequestOutcome outcome) const;
  /// True when every report is kOk or kDegraded.
  bool AllSucceeded() const;
  /// True when no report is kOk or kDegraded.
  bool NoneSucceeded() const;
};

class BatchService {
 public:
  explicit BatchService(BatchServiceOptions options);
  /// Joins all threads; equivalent to Finish() when still running.
  ~BatchService();

  BatchService(const BatchService&) = delete;
  BatchService& operator=(const BatchService&) = delete;

  /// Spawns the worker pool and the watchdog. Call once, before Submit.
  void Start();

  /// Hands one request to the service. May block under ShedPolicy::kBlock
  /// when the queue is saturated; under the other policies it returns
  /// immediately. Shed or refused requests are journaled as kRejected — the
  /// caller never loses track of a request. Passes the "service.enqueue"
  /// fail point.
  void Submit(BatchRequest request);

  /// Graceful drain: stop admitting (queued-but-unstarted work is journaled
  /// as rejected), let in-flight requests finish within drain_grace_ms, then
  /// cancel the stragglers. Idempotent; callable from any thread, including
  /// a signal-watcher. Finish() still must be called to join and collect.
  void RequestDrain(std::string reason);

  /// Closes intake, runs the queue dry (or drains), joins every thread and
  /// returns the complete journal. Call once.
  BatchSummary Finish();

  /// Streaming hook invoked once per journal entry as it is produced, in
  /// journal order (serialized by the journal lock). Set before Start.
  void set_on_report(std::function<void(const RequestReport&)> hook) {
    on_report_ = std::move(hook);
  }

  bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// The reason passed to RequestDrain ("" while not draining).
  std::string drain_reason() const;
  const BatchServiceOptions& options() const { return options_; }
  /// The per-backend breaker board (exposed for tests and reporting).
  BreakerBoard& breakers() { return breakers_; }
  /// The effective preprocessing cache (external, owned, or null when off).
  PrepCache* prep_cache() const { return prep_cache_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct QueuedRequest {
    BatchRequest request;
    Clock::time_point enqueued_at;
  };

  /// One worker's in-flight registration, scanned by the watchdog.
  struct InflightSlot {
    bool active = false;
    CancelToken cancel;
    Deadline deadline;
  };

  void WorkerLoop(int worker_index);
  void WatchdogLoop();
  void Process(int worker_index, QueuedRequest queued);
  /// The --isolate execution path: dispatches the request to a supervised
  /// worker subprocess, with cpu failover when the worker breaker is open.
  /// Fills the execution fields of `report` and calls `finish` exactly once.
  void ProcessIsolated(const BatchRequest& request, double timeout_ms,
                       RequestReport* report, uint64_t parent_span_id,
                       const std::function<void(RequestOutcome, Status)>&
                           finish);
  /// Appends the report and fires the streaming hook. `parent_span` (with
  /// the report's trace_id) parents the "journal" span when tracing is on.
  void Journal(RequestReport report, uint64_t parent_span = 0);
  RequestReport RejectedReport(const BatchRequest& request, Status reason,
                               double queue_ms) const;
  /// Applies the per-stage outcomes of one executed request to the breaker
  /// board and returns unused half-open probe grants.
  void FeedBreakers(const std::vector<FallbackStage>& allowed,
                    const ExecutionTrace& trace);

  const BatchServiceOptions options_;
  /// Tier-2 store + owned tier-1 cache, built from the options knobs when no
  /// external cache was supplied. `prep_cache_` is the one pointer Process
  /// consults: external > owned > null.
  std::unique_ptr<DiskCacheStore> cache_store_;
  std::unique_ptr<PrepCache> owned_cache_;
  PrepCache* prep_cache_ = nullptr;
  WorkQueue<QueuedRequest> queue_;
  AdmissionController admission_;
  BreakerBoard breakers_;
  /// Worker-subprocess pool; null unless options_.isolate > 0.
  std::unique_ptr<Supervisor> supervisor_;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::atomic<bool> stop_watchdog_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};

  mutable std::mutex journal_mu_;
  std::vector<RequestReport> journal_;
  std::function<void(const RequestReport&)> on_report_;

  mutable std::mutex state_mu_;  // Guards slots_, drain metadata.
  std::vector<InflightSlot> slots_;
  std::string drain_reason_;
  bool drain_deadline_armed_ = false;
  Deadline drain_deadline_;
};

}  // namespace gputc

#endif  // GPUTC_SERVICE_BATCH_SERVICE_H_
