#ifndef GPUTC_SERVICE_CACHE_STORE_H_
#define GPUTC_SERVICE_CACHE_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "core/prep_cache.h"
#include "service/circuit_breaker.h"
#include "service/storage_health.h"
#include "util/status.h"

namespace gputc {

// Tier 2 of the preprocessing cache (`--prep-cache DIR`): one durable file
// per fingerprint, written via AtomicFileWriter so a crash mid-store leaves
// the old artifact (or nothing), never a torn one, and verified on load with
// the same CRC32C discipline as every other artifact the system persists.
//
// On-disk format of `prep-<id>.gptc`:
//
//   "GPTC-PREP-CACHE-V1\n"
//   [u32 key_len][u32 crc32c(key)]      the canonical fingerprint text
//   key bytes
//   [u32 payload_len][u32 crc32c(payload)]
//   payload bytes                       EncodePrepArtifact output
//
// The canonical key inside the file is compared against the requested key on
// load: a 64-bit id collision (two fingerprints, one file name) degrades to
// NotFound — a miss — never to a wrong artifact. Any structural or checksum
// failure is DataLoss, which the PrepCache turns into a recompute + rewrite;
// a bad cache file can cost time, never correctness.
//
// The fail-point sites "cache.load" and "cache.store" are compiled into
// these paths, and the store opens its own FailPointScope like the durable
// layer does: every injection here lands on a path that recovers by design,
// and the crash harness kills the process at exactly these boundaries.
//
// Storage-fault policy: the tier is optional by construction, so a failing
// disk must never fail a request. A per-sink circuit breaker watches
// Load/Store outcomes — after `failure_threshold` consecutive storage
// faults the tier-2 disk is benched (loads miss, stores are skipped, no
// syscalls issued) while tier 1 keeps serving from memory; a half-open
// probe re-admits the disk once it recovers. A wired StorageHealthMonitor
// hears every fault (gputc_storage_errors_total{sink="cache"}) and the
// benched state (degraded header on /readyz).
class DiskCacheStore : public PrepCacheStore {
 public:
  /// The store is lazy: nothing touches the filesystem until the first
  /// Load/Store. Call EnsureDir() up front to surface an unusable directory
  /// as a flag error instead of silent per-request store failures.
  /// The breaker options/clock are injectable for tests; the default
  /// cooldown is long enough that a flapping disk is probed at a trickle.
  explicit DiskCacheStore(std::string dir,
                          CircuitBreakerOptions breaker_options =
                              CircuitBreakerOptions{3, 5000.0, 1},
                          std::function<double()> now_ms = {})
      : dir_(std::move(dir)),
        breaker_(breaker_options, std::move(now_ms)) {}

  /// Creates `dir` (one level) if missing; InvalidArgument when the path
  /// exists but is not a directory, or cannot be created.
  Status EnsureDir() const;

  /// Classifies the directory for the CLI cache commands without creating
  /// it: kNotFound when it vanished, kInvalidArgument when the path is not
  /// a directory (a flag error), kFailedPrecondition when it exists but is
  /// not readable+writable. OkStatus when usable.
  Status CheckDir() const;

  /// NotFound when absent (or on an id collision), DataLoss on any framing,
  /// checksum, or truncation failure. Passes the "cache.load" fail point.
  StatusOr<std::string> Load(const PrepCacheKey& key) override;

  /// Atomically writes/replaces the artifact file. Passes the "cache.store"
  /// fail point before any byte is written, so a crash armed there leaves
  /// the previous state intact.
  Status Store(const PrepCacheKey& key, std::string_view encoded) override;

  struct DiskStats {
    int64_t files = 0;
    int64_t bytes = 0;
  };
  /// Counts `prep-*.gptc` files and their total size (zeros for a missing
  /// directory — an empty cache, not an error).
  StatusOr<DiskStats> ScanStats() const;

  /// Deletes every artifact file; returns how many were removed. In-flight
  /// readers are unaffected (unlink semantics); concurrent writers simply
  /// repopulate.
  StatusOr<int64_t> PurgeAll();

  const std::string& dir() const { return dir_; }
  std::string PathFor(const PrepCacheKey& key) const;

  /// Health monitor notified of every storage fault and of the tier being
  /// benched (not owned; must outlive the store). Optional.
  void set_health(StorageHealthMonitor* health) { health_ = health; }

  /// The tier-2 breaker (exposed for tests and reporting).
  CircuitBreaker& breaker() { return breaker_; }

 private:
  /// Routes one Load/Store outcome into the breaker and the health monitor.
  /// `benign` outcomes (a miss, an id collision) count as disk successes.
  void RecordOutcome(const Status& status, bool benign);

  std::string dir_;
  CircuitBreaker breaker_;
  StorageHealthMonitor* health_ = nullptr;
};

}  // namespace gputc

#endif  // GPUTC_SERVICE_CACHE_STORE_H_
