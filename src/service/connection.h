#ifndef GPUTC_SERVICE_CONNECTION_H_
#define GPUTC_SERVICE_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace gputc {

// One accepted socket of the serve daemon, with the buffering and lifecycle
// state that makes a network peer safe to talk to: a request-line length
// cap (a client may not buffer us to death), partial-read/partial-write
// safe buffered I/O over a non-blocking fd (EINTR handled below in
// util/net_io), per-connection read/write deadlines plus an idle timeout
// (the slowloris defenses), and half-close bookkeeping for the drain
// ladder. The class owns no policy — the server decides what to do with
// extracted lines and when to kill a connection; Connection only reports.

/// What a read pass produced.
enum class ReadEvent {
  kProgress,   // Bytes (maybe lines) arrived; connection still open.
  kEof,        // Peer closed its write side at a line boundary.
  kTornEof,    // Peer closed mid-line (mid-request disconnect).
  kLineTooLong,  // Buffered bytes exceed the line cap with no newline.
  kError       // Socket error; the connection is unusable.
};

class Connection {
 public:
  /// Takes ownership of `fd` (must already be non-blocking). `id` is the
  /// server-unique connection number used in request ids and logs.
  Connection(int fd, uint64_t id);
  ~Connection();

  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&&) = delete;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Drains the socket until EAGAIN (or EOF/error), splitting complete
  /// request lines (newline-delimited, '\n' stripped, a trailing '\r'
  /// tolerated) into `*lines`. Enforces `max_line_bytes` on the unfinished
  /// remainder. Updates the activity clock on any byte.
  ReadEvent ReadLines(size_t max_line_bytes, std::vector<std::string>* lines);

  /// Appends `line` + '\n' to the write buffer (does not write yet).
  void QueueLine(const std::string& line);

  /// Appends raw bytes verbatim (the health listener's HTTP responses own
  /// their framing).
  void QueueRaw(const std::string& bytes);

  /// Writes as much buffered output as the socket accepts (partial-write
  /// safe; stops cleanly on EAGAIN). Error status means the peer is gone.
  Status FlushWrites();

  /// shutdown(SHUT_RD): stop reading but keep delivering queued responses —
  /// step two of the drain ladder. Idempotent.
  void HalfCloseRead();

  bool wants_write() const { return write_off_ < write_buf_.size(); }
  bool read_open() const { return read_open_; }
  /// Bytes of an unfinished request line currently buffered.
  size_t partial_bytes() const { return read_buf_.size(); }

  int fd() const { return fd_; }
  uint64_t id() const { return id_; }

  /// Requests submitted on this connection whose response has not been
  /// queued yet (server-maintained).
  int inflight = 0;
  /// Server marks: close once the write buffer drains and inflight == 0.
  bool close_after_flush = false;
  /// True for sockets accepted on the health listener.
  bool is_health = false;

  using Clock = std::chrono::steady_clock;
  Clock::time_point last_activity() const { return last_activity_; }
  /// When the current unfinished request line started arriving (== activity
  /// time of its first byte); meaningful while partial_bytes() > 0.
  Clock::time_point partial_since() const { return partial_since_; }
  /// When the socket last made write progress — reset on every successful
  /// (possibly partial) flush, initialized when bytes are first queued onto
  /// an empty buffer. The write-stall deadline compares against this, so
  /// only a peer that stops draining entirely trips it. Meaningful while
  /// wants_write().
  Clock::time_point write_pending_since() const {
    return write_pending_since_;
  }

 private:
  int fd_;
  uint64_t id_;
  bool read_open_ = true;
  std::string read_buf_;
  std::string write_buf_;
  size_t write_off_ = 0;
  Clock::time_point last_activity_;
  Clock::time_point partial_since_;
  Clock::time_point write_pending_since_;
};

}  // namespace gputc

#endif  // GPUTC_SERVICE_CONNECTION_H_
