#include "service/batch_service.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace gputc {
namespace {

double MillisBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// JSON string escaping for the journal (quotes, backslashes, control
/// characters; everything else passes through).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Stop errors are the caller's budget expiring, not evidence the backend is
/// unhealthy — they must not trip its breaker.
bool IsBackendAttributable(const Status& status) {
  return status.code() != StatusCode::kCancelled &&
         status.code() != StatusCode::kDeadlineExceeded;
}

/// One pressure counter shared by every overload gate in the stack — the
/// serve daemon's adaptive limiter and queue bound record "concurrency" and
/// "queue" here, this service records "queue" (shed policy) and "memory"
/// (admission refusal) — so a dashboard reads back pressure by cause.
void CountOverloadRejection(const char* reason) {
  MetricsRegistry::Global()
      .GetCounter("gputc_overload_rejections_total",
                  "Requests shed by an overload gate, by reason",
                  {{"reason", reason}})
      .Increment();
}

void RecordQueueDepth(size_t depth) {
  MetricsRegistry::Global()
      .GetGauge("gputc_queue_depth",
                "Requests waiting in the batch service work queue")
      .Set(static_cast<double>(depth));
}

}  // namespace

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kDegraded:
      return "degraded";
    case RequestOutcome::kRejected:
      return "rejected";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

std::string RequestReport::ToJson() const {
  std::string out = "{";
  out += "\"id\":\"" + JsonEscape(id) + "\"";
  out += ",\"source\":\"" + JsonEscape(source) + "\"";
  out += ",\"outcome\":\"" + std::string(RequestOutcomeName(outcome)) + "\"";
  out += ",\"code\":\"" + std::string(StatusCodeName(status.code())) + "\"";
  out += ",\"message\":\"" + JsonEscape(status.message()) + "\"";
  out += ",\"stage\":\"" + JsonEscape(stage) + "\"";
  out += ",\"variant\":\"" + JsonEscape(variant) + "\"";
  out += ",\"triangles\":" + std::to_string(triangles);
  out += ",\"trace_id\":\"" + TraceIdHex(trace_id) + "\"";
  if (retry_after_ms >= 0) {
    out += ",\"retry_after_ms\":" + std::to_string(retry_after_ms);
  }
  if (!durable) {
    // Emitted only in the degraded state, so journals written with a
    // healthy disk stay byte-identical to earlier releases.
    out += ",\"durable\":false";
  }
  out += ",\"queue_ms\":" + std::to_string(queue_ms);
  out += ",\"exec_ms\":" + std::to_string(exec_ms);
  out += ",\"timings\":{";
  out += "\"queue_ms\":" + std::to_string(queue_ms);
  out += ",\"materialize_ms\":" + std::to_string(materialize_ms);
  out += ",\"admit_ms\":" + std::to_string(admit_ms);
  out += ",\"exec_ms\":" + std::to_string(exec_ms);
  out += "}";
  out += ",\"attempts\":" + std::to_string(attempts);
  out += ",\"trace\":[";
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(trace[i]) + "\"";
  }
  out += "]}";
  return out;
}

int BatchSummary::CountOutcome(RequestOutcome outcome) const {
  int count = 0;
  for (const RequestReport& r : reports) {
    if (r.outcome == outcome) ++count;
  }
  return count;
}

bool BatchSummary::AllSucceeded() const {
  for (const RequestReport& r : reports) {
    if (r.outcome == RequestOutcome::kRejected ||
        r.outcome == RequestOutcome::kFailed) {
      return false;
    }
  }
  return true;
}

bool BatchSummary::NoneSucceeded() const {
  for (const RequestReport& r : reports) {
    if (r.outcome == RequestOutcome::kOk ||
        r.outcome == RequestOutcome::kDegraded) {
      return false;
    }
  }
  return true;
}

BatchService::BatchService(BatchServiceOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_depth, options_.shed_policy),
      admission_(options_.mem_budget_bytes),
      breakers_(options_.breaker) {
  GPUTC_CHECK_GT(options_.jobs, 0);
  GPUTC_CHECK(!options_.chain.empty());
  slots_.resize(static_cast<size_t>(options_.jobs));

  if (options_.prep_cache != nullptr) {
    prep_cache_ = options_.prep_cache;
  } else if (options_.prep_cache_mb > 0 || !options_.prep_cache_dir.empty()) {
    if (!options_.prep_cache_dir.empty()) {
      cache_store_ = std::make_unique<DiskCacheStore>(options_.prep_cache_dir);
    }
    // A dir with no explicit tier-1 budget still gets a working in-memory
    // tier, so asking only for the durable tier never disables coalescing.
    const int64_t budget_bytes = options_.prep_cache_mb > 0
                                     ? options_.prep_cache_mb << 20
                                     : kDefaultPrepCacheBytes;
    owned_cache_ = std::make_unique<PrepCache>(budget_bytes,
                                               cache_store_.get());
    prep_cache_ = owned_cache_.get();
  }
}

BatchService::~BatchService() {
  if (started_.load() && !finished_.load()) Finish();
}

void BatchService::Start() {
  GPUTC_CHECK(!started_.exchange(true)) << "BatchService started twice";
  if (options_.isolate > 0) {
    SupervisorOptions supervision;
    supervision.binary = options_.worker_binary;
    supervision.workers = options_.isolate;
    // In isolate mode the global admission budget becomes each worker's
    // RLIMIT_AS: containment by the kernel instead of by cooperative
    // accounting.
    supervision.rlimit_as_bytes = options_.mem_budget_bytes;
    supervision.heartbeat_interval_ms = options_.heartbeat_interval_ms;
    supervision.breaker = &breakers_.ForBackend("worker");
    supervisor_ = std::make_unique<Supervisor>(supervision);
    const Status started = supervisor_->Start();
    GPUTC_CHECK(started.ok()) << started.ToString();
  }
  workers_.reserve(static_cast<size_t>(options_.jobs));
  for (int i = 0; i < options_.jobs; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

void BatchService::Submit(BatchRequest request) {
  const Clock::time_point now = Clock::now();
  // The service is a resilient path, so its intake opts into fault
  // injection: an armed service.enqueue site sheds the request up front.
  FailPointScope scope;
  const Status injected = CheckFailPoint("service.enqueue");
  if (!injected.ok()) {
    Journal(RejectedReport(request, injected.WithContext("service.enqueue"),
                           0.0));
    return;
  }
  if (draining()) {
    Journal(RejectedReport(
        request,
        CancelledError("service is draining; request not admitted"), 0.0));
    return;
  }
  QueuedRequest queued{request, now};
  WorkQueue<QueuedRequest>::PushResult pushed = queue_.Push(std::move(queued));
  RecordQueueDepth(queue_.size());
  if (pushed.shed.has_value()) {
    // drop-oldest evicted the head of the queue to make room.
    CountOverloadRejection("queue");
    Journal(RejectedReport(
        pushed.shed->request,
        ResourceExhaustedError(
            "evicted from a full work queue by shed policy 'drop-oldest'"),
        MillisBetween(pushed.shed->enqueued_at, Clock::now())));
  }
  if (!pushed.status.ok()) {
    // kReject shed, or the queue closed under us (drain won the race).
    if (pushed.status.code() == StatusCode::kResourceExhausted) {
      CountOverloadRejection("queue");
    }
    Journal(RejectedReport(request, pushed.status, 0.0));
  }
}

void BatchService::RequestDrain(std::string reason) {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    drain_reason_ = std::move(reason);
    drain_deadline_armed_ = true;
    drain_deadline_ = options_.drain_grace_ms > 0.0
                          ? Deadline::AfterMillis(options_.drain_grace_ms)
                          : Deadline::AfterMillis(0.0);
  }
  queue_.Close();
  // Queued-but-unstarted work never executes; journal every entry so the
  // caller can still account for the whole batch.
  for (QueuedRequest& flushed : queue_.FlushPending()) {
    Journal(RejectedReport(
        flushed.request,
        CancelledError("service drained before execution started: " +
                       drain_reason()),
        MillisBetween(flushed.enqueued_at, Clock::now())));
  }
  // Wake admission waiters; in-flight executions run until the grace
  // deadline, when the watchdog cancels their tokens.
  admission_.Abort();
  // Isolated workers are processes, not cooperative threads: the supervisor
  // kills and reaps idle ones now and busy ones when the grace expires, so a
  // drain (including the signal-watcher path) leaks no child processes.
  if (supervisor_ != nullptr) {
    Deadline grace;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      grace = drain_deadline_;
    }
    supervisor_->RequestDrain(grace);
  }
}

BatchSummary BatchService::Finish() {
  GPUTC_CHECK(started_.load()) << "Finish() before Start()";
  if (!finished_.exchange(true)) {
    queue_.Close();
    for (std::thread& worker : workers_) worker.join();
    stop_watchdog_.store(true, std::memory_order_release);
    if (watchdog_.joinable()) watchdog_.join();
    // All dispatch threads are joined, so every remaining worker is idle:
    // kill, reap, and account for each — the no-zombies guarantee.
    if (supervisor_ != nullptr) supervisor_->Shutdown();
  }
  BatchSummary summary;
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    summary.reports = journal_;
  }
  summary.drained = draining();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    summary.drain_reason = drain_reason_;
  }
  return summary;
}

void BatchService::WorkerLoop(int worker_index) {
  while (true) {
    std::optional<QueuedRequest> queued = queue_.Pop();
    if (!queued.has_value()) return;
    RecordQueueDepth(queue_.size());
    Process(worker_index, *std::move(queued));
  }
}

void BatchService::WatchdogLoop() {
  while (!stop_watchdog_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      for (InflightSlot& slot : slots_) {
        if (!slot.active) continue;
        Deadline effective = slot.deadline;
        if (drain_deadline_armed_) {
          effective = Deadline::Earlier(effective, drain_deadline_);
        }
        if (effective.expired()) {
          slot.cancel.Cancel(
              drain_deadline_armed_ && drain_deadline_.expired()
                  ? "watchdog: drain grace period expired (" + drain_reason_ +
                        ")"
                  : "watchdog: request deadline expired");
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void BatchService::Process(int worker_index, QueuedRequest queued) {
  const Clock::time_point picked_up = Clock::now();
  const double queue_ms = MillisBetween(queued.enqueued_at, picked_up);
  const BatchRequest& request = queued.request;

  RequestReport report;
  report.id = request.id;
  report.source = request.source;
  // Every processed request gets a correlation id, tracer or not, so the
  // journal line is joinable against any external log of the same batch.
  report.trace_id = GenerateTraceId();
  report.queue_ms = queue_ms;

  Tracer* const tracer = options_.tracer;
  Span request_span = tracer != nullptr
                          ? tracer->StartSpan("request", report.trace_id)
                          : Span();
  request_span.SetAttr("id", request.id);
  request_span.SetAttr("source", request.source);
  request_span.SetAttr("queue_ms", queue_ms);

  // Worker processing is a resilient path end to end: materialization,
  // admission, and execution all see armed fail points.
  FailPointScope scope;

  const auto finish = [&](RequestOutcome outcome, Status status) {
    report.outcome = outcome;
    report.status = std::move(status);
    report.exec_ms = MillisBetween(picked_up, Clock::now());
    request_span.SetAttr("outcome", RequestOutcomeName(outcome));
    Journal(std::move(report), request_span.id());
  };

  const Status worker_fault = CheckFailPoint("service.worker");
  if (!worker_fault.ok()) {
    finish(RequestOutcome::kFailed, worker_fault.WithContext("service.worker"));
    return;
  }

  const double timeout_ms = request.timeout_ms >= 0.0
                                ? request.timeout_ms
                                : options_.request_timeout_ms;

  if (supervisor_ != nullptr) {
    // Process isolation: the worker subprocess materializes and executes;
    // this thread only dispatches and classifies. Admission is skipped —
    // each worker's RLIMIT_AS is the memory fence.
    ProcessIsolated(request, timeout_ms, &report, request_span.id(), finish);
    return;
  }

  // Per-request cancellation handle, registered with the watchdog before any
  // blocking step so deadlines and drain reach admission waits too.
  CancelToken cancel;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    InflightSlot& slot = slots_[static_cast<size_t>(worker_index)];
    slot.active = true;
    slot.cancel = cancel;
    slot.deadline = timeout_ms > 0.0 ? Deadline::AfterMillis(timeout_ms)
                                     : Deadline::Infinite();
  }
  const auto unregister = [&] {
    std::lock_guard<std::mutex> lock(state_mu_);
    slots_[static_cast<size_t>(worker_index)].active = false;
  };

  // The "admit" span covers everything between pickup and execution:
  // materializing the graph and waiting on the memory admission gate.
  Span admit_span =
      tracer != nullptr
          ? tracer->StartSpan("admit", report.trace_id, request_span.id())
          : Span();
  const Clock::time_point materialize_start = Clock::now();
  StatusOr<Graph> graph = MaterializeRequest(request);
  report.materialize_ms = MillisBetween(materialize_start, Clock::now());
  if (!graph.ok()) {
    admit_span.SetStatus(graph.status());
    admit_span.Finish();
    unregister();
    finish(RequestOutcome::kFailed,
           graph.status().WithContext("materializing '" + request.source +
                                      "'"));
    return;
  }

  // The per-request preprocess options: the shared cache rides along on a
  // copy, so options_ stays immutable and every worker thread hits one cache.
  PreprocessOptions preprocess = options_.preprocess;
  preprocess.prep_cache = prep_cache_;

  // Admission: the injected fault and genuine refusals are both sheds — the
  // request never started executing. A request whose base fingerprint is
  // already cached skips the preprocessing recompute, so it is admitted with
  // the smaller post-cache estimate — reserving the cold estimate would
  // double-count the directed graph it never rebuilds.
  const bool base_cached =
      prep_cache_ != nullptr &&
      prep_cache_->Contains(PrepFingerprint(*graph, options_.spec, preprocess));
  const int64_t estimate = base_cached ? EstimateHostBytesCached(*graph)
                                       : EstimateHostBytes(*graph);
  admit_span.SetAttr("estimate_bytes", estimate);
  const Clock::time_point admit_start = Clock::now();
  Status admitted = CheckFailPoint("service.admit");
  if (admitted.ok()) admitted = admission_.Admit(estimate, cancel);
  report.admit_ms = MillisBetween(admit_start, Clock::now());
  admit_span.SetStatus(admitted);
  admit_span.Finish();
  if (!admitted.ok()) {
    unregister();
    // A watchdog cancellation (request deadline) is a per-request failure;
    // everything else — budget refusal, drain abort — is a shed.
    const RequestOutcome outcome = cancel.cancelled() && !draining()
                                       ? RequestOutcome::kFailed
                                       : RequestOutcome::kRejected;
    // A genuine budget refusal is back pressure; a drain abort is not.
    if (outcome == RequestOutcome::kRejected && !draining()) {
      CountOverloadRejection("memory");
    }
    finish(outcome, admitted.WithContext("admission (needs ~" +
                                         std::to_string(estimate) +
                                         " bytes)"));
    return;
  }

  // Resolve the fallback chain: per-request override, then route around
  // backends whose breaker is open.
  std::vector<FallbackStage> chain = options_.chain;
  if (!request.fallback.empty()) {
    StatusOr<std::vector<FallbackStage>> parsed =
        ParseFallbackChain(request.fallback);
    if (!parsed.ok()) {
      admission_.Release(estimate);
      unregister();
      finish(RequestOutcome::kFailed,
             parsed.status().WithContext("fallback override"));
      return;
    }
    chain = *std::move(parsed);
  }
  std::vector<FallbackStage> allowed;
  allowed.reserve(chain.size());
  for (const FallbackStage& stage : chain) {
    if (breakers_.ForBackend(stage.name()).Allow()) allowed.push_back(stage);
  }
  if (allowed.empty()) {
    admission_.Release(estimate);
    unregister();
    finish(RequestOutcome::kRejected,
           ResourceExhaustedError(
               "every fallback backend has an open circuit breaker"));
    return;
  }

  // A per-request fail-point schedule arms the process-wide registry here:
  // without isolation there is no narrower blast radius to offer, which is
  // exactly what the containment tests demonstrate (a crash schedule on one
  // manifest line kills the whole in-process service, but only one worker
  // under --isolate).
  if (!request.failpoints.empty()) {
    const Status armed =
        FailPointRegistry::Instance().ArmFromString(request.failpoints);
    if (!armed.ok()) {
      admission_.Release(estimate);
      unregister();
      finish(RequestOutcome::kFailed,
             armed.WithContext("failpoints override"));
      return;
    }
  }

  ExecutionPolicy policy = options_.policy;
  policy.timeout_ms = 0.0;  // The watchdog owns the clock.
  policy.cancel = cancel;
  Span exec_span =
      tracer != nullptr
          ? tracer->StartSpan("execute", report.trace_id, request_span.id())
          : Span();
  policy.tracer = tracer;
  policy.trace_id = report.trace_id;
  policy.parent_span = exec_span.id();

  ExecutionTrace trace;
  StatusOr<ExecutionResult> executed = ExecuteResilient(
      *graph, options_.spec, policy, allowed, preprocess, &trace);
  exec_span.SetAttr("attempts", static_cast<int64_t>(trace.attempts.size()));
  if (!executed.ok()) exec_span.SetStatus(executed.status());
  exec_span.Finish();

  FeedBreakers(allowed, trace);
  admission_.Release(estimate);
  unregister();

  report.attempts = static_cast<int>(trace.attempts.size());
  report.trace.reserve(trace.attempts.size());
  for (const AttemptRecord& attempt : trace.attempts) {
    report.trace.push_back(attempt.stage + "/" + attempt.variant + " -> " +
                           (attempt.status.ok() ? "OK"
                                                : attempt.status.ToString()));
  }

  if (!executed.ok()) {
    finish(RequestOutcome::kFailed, executed.status());
    return;
  }
  report.stage = executed->stage;
  report.variant = executed->variant;
  report.triangles = executed->run.triangles;
  const bool base_config = executed->variant == "base" &&
                           executed->stage == options_.chain.front().name();
  finish(base_config ? RequestOutcome::kOk : RequestOutcome::kDegraded,
         OkStatus());
}

void BatchService::ProcessIsolated(
    const BatchRequest& request, double timeout_ms, RequestReport* report,
    uint64_t parent_span_id,
    const std::function<void(RequestOutcome, Status)>& finish) {
  Tracer* const tracer = options_.tracer;

  WorkerRequest wire;
  wire.id = request.id;
  wire.source = request.source;
  wire.kind = request.kind;
  wire.target = request.target;
  wire.params = request.params;
  wire.timeout_ms = timeout_ms;
  wire.failpoints = request.failpoints;
  // Workers keep a private tier 1 but share the durable tier-2 directory, so
  // an artifact computed by any worker (or by an earlier batch) is reusable
  // pool-wide across process restarts.
  wire.prep_cache_dir = options_.prep_cache_dir;
  wire.prep_cache_mb = options_.prep_cache_mb;
  if (!request.fallback.empty()) {
    wire.chain = request.fallback;
  } else {
    for (const FallbackStage& stage : options_.chain) {
      if (!wire.chain.empty()) wire.chain += ",";
      wire.chain += stage.name();
    }
  }

  Span dispatch_span = tracer != nullptr
                           ? tracer->StartSpan("worker.dispatch",
                                               report->trace_id, parent_span_id)
                           : Span();
  const Deadline deadline = timeout_ms > 0.0
                                ? Deadline::AfterMillis(timeout_ms)
                                : Deadline::Infinite();
  StatusOr<WorkerDispatch> dispatched = supervisor_->Execute(wire, deadline);

  if (dispatched.ok()) {
    dispatch_span.SetAttr("worker_pid",
                          static_cast<int64_t>(dispatched->pid));
    dispatch_span.SetAttr("worker_index",
                          static_cast<int64_t>(dispatched->worker_index));
    dispatch_span.Finish();
    const WorkerResult& result = dispatched->result;
    report->materialize_ms = result.materialize_ms;
    report->attempts = result.attempts;
    report->trace = result.trace;
    const Status status = result.status();
    if (!status.ok()) {
      finish(RequestOutcome::kFailed, status);
      return;
    }
    report->stage = result.stage;
    report->variant = result.variant;
    report->triangles = result.triangles;
    const bool base_config = result.variant == "base" &&
                             result.stage == options_.chain.front().name();
    finish(base_config ? RequestOutcome::kOk : RequestOutcome::kDegraded,
           OkStatus());
    return;
  }

  dispatch_span.SetStatus(dispatched.status());
  dispatch_span.Finish();

  if (!IsWorkerBreakerOpen(dispatched.status())) {
    // Crash, hang, rlimit, deadline, or drain: that one request fails (the
    // poison-pill policy — a request that kills its worker is never retried
    // across the pool), everything else in flight proceeds.
    finish(RequestOutcome::kFailed, dispatched.status());
    return;
  }

  // Crash loop tripped the "worker" breaker: fail over to the in-process
  // cpu counter so the batch keeps making (degraded) progress while the
  // benched worker pool cools down toward its half-open probe.
  Span failover_span =
      tracer != nullptr
          ? tracer->StartSpan("cpu.failover", report->trace_id, parent_span_id)
          : Span();
  const Clock::time_point materialize_start = Clock::now();
  StatusOr<Graph> graph = MaterializeRequest(request);
  report->materialize_ms = MillisBetween(materialize_start, Clock::now());
  if (!graph.ok()) {
    failover_span.SetStatus(graph.status());
    failover_span.Finish();
    finish(RequestOutcome::kFailed,
           graph.status().WithContext("materializing '" + request.source +
                                      "' for cpu failover"));
    return;
  }
  ExecutionPolicy policy = options_.policy;
  policy.timeout_ms = timeout_ms;  // No watchdog token here; self-enforced.
  policy.tracer = tracer;
  policy.trace_id = report->trace_id;
  policy.parent_span = failover_span.id();
  const std::vector<FallbackStage> cpu_chain = {FallbackStage{true}};
  ExecutionTrace trace;
  StatusOr<ExecutionResult> executed =
      ExecuteResilient(*graph, options_.spec, policy, cpu_chain,
                       options_.preprocess, &trace);
  failover_span.SetAttr("attempts",
                        static_cast<int64_t>(trace.attempts.size()));
  if (!executed.ok()) failover_span.SetStatus(executed.status());
  failover_span.Finish();
  report->attempts = static_cast<int>(trace.attempts.size());
  for (const AttemptRecord& attempt : trace.attempts) {
    report->trace.push_back(attempt.stage + "/" + attempt.variant + " -> " +
                            (attempt.status.ok()
                                 ? "OK"
                                 : attempt.status.ToString()));
  }
  if (!executed.ok()) {
    finish(RequestOutcome::kFailed,
           executed.status().WithContext(
               "cpu failover (worker circuit breaker open)"));
    return;
  }
  report->stage = executed->stage;
  report->variant = executed->variant;
  report->triangles = executed->run.triangles;
  const bool base_config = executed->variant == "base" &&
                           executed->stage == options_.chain.front().name();
  finish(base_config ? RequestOutcome::kOk : RequestOutcome::kDegraded,
         OkStatus());
}

void BatchService::FeedBreakers(const std::vector<FallbackStage>& allowed,
                                const ExecutionTrace& trace) {
  // Aggregate per stage: a stage that produced the result is a success, a
  // stage whose every attempt failed with a backend-attributable error is a
  // failure, and a granted stage the chain never reached returns its probe.
  std::set<std::string> succeeded;
  std::set<std::string> failed;
  std::set<std::string> attempted;
  for (const AttemptRecord& attempt : trace.attempts) {
    attempted.insert(attempt.stage);
    if (attempt.status.ok()) {
      succeeded.insert(attempt.stage);
    } else if (IsBackendAttributable(attempt.status)) {
      failed.insert(attempt.stage);
    }
  }
  for (const FallbackStage& stage : allowed) {
    const std::string name = stage.name();
    CircuitBreaker& breaker = breakers_.ForBackend(name);
    if (succeeded.count(name) > 0) {
      breaker.RecordSuccess();
    } else if (failed.count(name) > 0) {
      breaker.RecordFailure();
    } else if (attempted.count(name) == 0) {
      breaker.CancelProbe();
    }
    // Attempted stages that only saw stop errors (deadline/cancel) report
    // nothing: the backend was neither proven healthy nor unhealthy.
  }
}

void BatchService::Journal(RequestReport report, uint64_t parent_span) {
  {
    Span journal_span =
        options_.tracer != nullptr
            ? options_.tracer->StartSpan("journal", report.trace_id,
                                         parent_span)
            : Span();
    journal_span.SetAttr("outcome", RequestOutcomeName(report.outcome));
  }
  MetricsRegistry::Global()
      .GetCounter("gputc_requests_total",
                  "Batch requests journaled, by terminal outcome",
                  {{"outcome", RequestOutcomeName(report.outcome)}})
      .Increment();
  MetricsRegistry::Global()
      .GetHistogram("gputc_request_queue_ms",
                    "Submit-to-worker-pickup wait in milliseconds", 0.0,
                    10000.0, 20)
      .Observe(report.queue_ms);
  MetricsRegistry::Global()
      .GetHistogram("gputc_request_exec_ms",
                    "Worker processing time in milliseconds", 0.0, 10000.0, 20)
      .Observe(report.exec_ms);
  std::lock_guard<std::mutex> lock(journal_mu_);
  journal_.push_back(std::move(report));
  if (on_report_) on_report_(journal_.back());
}

RequestReport BatchService::RejectedReport(const BatchRequest& request,
                                           Status reason,
                                           double queue_ms) const {
  RequestReport report;
  report.id = request.id;
  report.source = request.source;
  // Shed requests never execute, but they still get a correlation id: a
  // rejected line with no trace_id would be the one unjoinable journal row.
  report.trace_id = GenerateTraceId();
  report.outcome = RequestOutcome::kRejected;
  report.status = std::move(reason);
  report.queue_ms = queue_ms;
  if (options_.reject_retry_after_ms >= 0.0) {
    report.retry_after_ms =
        static_cast<int64_t>(options_.reject_retry_after_ms);
  }
  return report;
}

std::string BatchService::drain_reason() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return drain_reason_;
}

}  // namespace gputc
