#ifndef GPUTC_SERVICE_STORAGE_HEALTH_H_
#define GPUTC_SERVICE_STORAGE_HEALTH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace gputc {

// Storage-fault policy and health tracking for the durable sinks (WAL,
// journal, disk cache tier, trace/metrics exports). Three pieces:
//
//  * StoragePolicy — what a sink does when the disk fails underneath it.
//    The WAL is the one sink whose policy the operator chooses
//    (`--wal-policy`): `strict` (default) is fail-stop — stop admitting,
//    finish in-flight work, exit with code 6, journal holding exactly the
//    durable prefix — because a WAL that cannot persist intents can no
//    longer back the exactly-once guarantee. `degrade` keeps serving and
//    stamps every journal line that lost its durability cover with
//    "durable":false. The other sinks have fixed policies: the journal
//    degrades to stderr mirroring, the disk cache tier trips a circuit
//    breaker while the memory tier keeps serving, trace/metrics exports are
//    best-effort warn-once.
//
//  * StorageHealthMonitor — the serve loop's view of the disk. Sinks report
//    faults through RecordError (metric:
//    gputc_storage_errors_total{sink,errno}); MaybeProbe periodically
//    statvfs-es the watched directory (gputc_disk_free_bytes) and performs a
//    small probe write+fsync, classifying free space against low/critical
//    watermarks. /readyz flips to 503 "storage-degraded" under a strict-WAL
//    stop and carries a degraded header otherwise.
//
//  * PreflightSpaceCheck — batch refuses a manifest whose projected WAL +
//    journal bytes exceed the free space up front, instead of failing
//    halfway through.

/// What a sink does when storage fails beneath it.
enum class StoragePolicy {
  kStrict,   // Fail-stop: stop admitting, finish in-flight, exit code 6.
  kDegrade,  // Keep serving; lines that lost durability say "durable":false.
};

/// Parses "strict" / "degrade" (the --wal-policy values).
StatusOr<StoragePolicy> ParseStoragePolicy(std::string_view text);
const char* StoragePolicyName(StoragePolicy policy);

class StorageHealthMonitor {
 public:
  enum class DiskState {
    kUnknown,   // Never probed (or probing disabled).
    kOk,        // Free space above the low watermark, probe writes succeed.
    kLow,       // Below the low watermark: degraded header on /readyz.
    kCritical,  // Below the critical watermark or probe write failed.
  };

  struct Options {
    /// Directory to statvfs and probe-write; empty disables probing (sinks
    /// can still RecordError).
    std::string probe_dir;
    double probe_interval_ms = 1000.0;
    uint64_t low_free_bytes = 64ull << 20;      // 64 MiB
    uint64_t critical_free_bytes = 8ull << 20;  // 8 MiB
    /// Injectable clock for tests; defaults to steady_clock.
    std::function<int64_t()> now_ms;
  };

  StorageHealthMonitor() : StorageHealthMonitor(Options{}) {}
  explicit StorageHealthMonitor(Options options);

  StorageHealthMonitor(const StorageHealthMonitor&) = delete;
  StorageHealthMonitor& operator=(const StorageHealthMonitor&) = delete;

  /// One storage fault at `sink` ("wal", "journal", "cache", "export",
  /// "probe"). Bumps gputc_storage_errors_total{sink,errno} — the errno
  /// label recovered from the status message, identical for real and
  /// injected faults.
  void RecordError(std::string_view sink, const Status& status);

  /// Marks a sink as running in its degraded mode (sticky; first reason per
  /// sink wins). Flips degraded() without stopping the service.
  void NoteDegraded(std::string_view sink, std::string reason);

  /// The strict-WAL fail-stop fired: /readyz becomes 503 "storage-degraded"
  /// and the process is on its way to exit code 6.
  void RecordStrictStop(std::string reason);

  bool strict_stopped() const;
  std::string strict_stop_reason() const;

  /// True when any sink runs degraded or the disk is at/below the low
  /// watermark — the "serving, but tell the load balancer" state.
  bool degraded() const;
  std::string degraded_reason() const;

  int64_t errors_total() const;
  DiskState disk_state() const;
  uint64_t free_bytes() const;

  /// Rate-limited probe: statvfs + a small write+fsync+unlink in probe_dir.
  /// The serve loop calls this every poll tick; it no-ops until
  /// probe_interval_ms has passed. No-op when probe_dir is empty.
  void MaybeProbe();

  /// One probe immediately, ignoring the interval. Returns the probe-write
  /// status (statvfs failures only warn — a disk that cannot report free
  /// space can still take writes).
  Status ProbeNow();

  static const char* DiskStateName(DiskState state);

 private:
  const Options options_;
  mutable std::mutex mu_;
  bool strict_stopped_ = false;
  std::string strict_stop_reason_;
  std::map<std::string, std::string> degraded_sinks_;
  int64_t errors_total_ = 0;
  DiskState disk_state_ = DiskState::kUnknown;
  uint64_t free_bytes_ = 0;
  int64_t last_probe_ms_ = -1;
};

/// Refuses up front when the filesystem holding `dir` has less free space
/// than `projected_bytes` (kResourceExhausted). statvfs failure is not a
/// refusal — it warns and admits, because a disk that cannot report free
/// space may still take writes. Passes the "storage.preflight" fail point
/// (inject `enospc` there to force a refusal deterministically).
Status PreflightSpaceCheck(const std::string& dir, uint64_t projected_bytes);

/// Projected WAL + journal footprint of a manifest of `requests` requests:
/// intent + done records plus one journal line, with headroom. The batch
/// preflight compares this against the free space of the WAL directory.
uint64_t EstimateBatchStorageBytes(size_t requests);

}  // namespace gputc

#endif  // GPUTC_SERVICE_STORAGE_HEALTH_H_
