#ifndef GPUTC_SERVICE_SUPERVISOR_H_
#define GPUTC_SERVICE_SUPERVISOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/circuit_breaker.h"
#include "service/worker_process.h"
#include "util/deadline.h"
#include "util/status.h"

namespace gputc {

// Supervision of a pool of `gputc worker` subprocesses. The supervisor owns
// the whole worker lifecycle so crash containment has exactly one authority:
//
//   * dispatch — Execute() leases an idle worker (lazily spawning or
//     respawning one), sends the request, and pumps heartbeat frames until
//     the result arrives;
//   * watchdog — a scanner thread SIGKILLs workers that blow past their
//     request deadline, stop heartbeating (3 missed beats = hung, not
//     slow), or outlive a drain grace period;
//   * restart — a dead worker's slot respawns lazily with exponential
//     backoff plus jitter, so a crash-looping binary cannot peg a CPU
//     fork-bombing;
//   * crash-loop breaker — consecutive worker failures feed the batch
//     service's per-backend CircuitBreaker ("worker"), which trips after
//     the configured threshold and fails requests over to the in-process
//     cpu counter until a half-open probe succeeds;
//   * reaping — every pid the supervisor forks is waitpid()ed by pid
//     (never wait(-1)), so it coexists with other forkers in the process
//     (the crash-test harness) and leaves zero zombies behind.
//
// Worker state machine (per slot):
//
//   dead ──spawn──> idle ──Execute──> busy ──result──> idle
//    ^                                  │
//    └──(crash | hang | rlimit | deadline kill | drain kill)──────┘
//
// A death while busy fails that one in-flight request; every other slot is
// untouched — the containment property the isolation tests pin down.

/// How a worker left the busy state abnormally.
enum class WorkerFailure {
  kCrash,     // Died on its own (signal or exit) while holding a request.
  kHang,      // Watchdog kill: heartbeats stopped flowing.
  kRlimit,    // Died to the RLIMIT_AS cap (abort on failed allocation).
  kDeadline,  // Watchdog kill: request deadline (plus grace) expired.
  kDrain,     // Watchdog kill: drain grace expired with the request running.
};

/// Stable lower-case name ("crash", "hang", "rlimit", "deadline", "drain").
const char* WorkerFailureName(WorkerFailure failure);

struct SupervisorOptions {
  /// gputc binary to exec as `<binary> worker ...`.
  std::string binary;
  /// Pool size (slots; workers themselves spawn lazily).
  int workers = 1;
  /// Per-worker RLIMIT_AS; 0 = unlimited. See WorkerSpawnOptions.
  int64_t rlimit_as_bytes = 0;
  /// Heartbeat cadence workers are spawned with.
  double heartbeat_interval_ms = 25.0;
  /// Consecutive missed beats before the watchdog declares a hang.
  int heartbeat_misses = 3;
  /// Slack past a request's deadline before the watchdog SIGKILLs — the
  /// worker self-enforces the deadline via its executor, so the kill only
  /// fires when that cooperative path is itself wedged.
  double deadline_grace_ms = 100.0;
  /// Restart backoff: base * 2^(consecutive crashes - 1), capped, ±25%
  /// jitter.
  double backoff_base_ms = 50.0;
  double backoff_cap_ms = 2000.0;
  /// Watchdog scan period.
  double watchdog_period_ms = 10.0;
  /// Crash-loop breaker (not owned; optional). The supervisor is its sole
  /// client for the "worker" backend: Allow() gates every Execute, clean
  /// results record success, crash/hang/rlimit record failure, and
  /// deadline/drain kills cancel the grant — stop conditions say nothing
  /// about worker health (mirroring the in-process IsBackendAttributable
  /// rule).
  CircuitBreaker* breaker = nullptr;
};

/// A successful dispatch: the worker's result plus which process ran it.
struct WorkerDispatch {
  WorkerResult result;
  int pid = 0;
  int worker_index = 0;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Starts the watchdog. Workers spawn lazily on first dispatch.
  Status Start();

  /// Runs one request on a worker, blocking until the result, a worker
  /// death, or `deadline`. Thread-safe; each concurrent caller leases its
  /// own worker. Failure mapping:
  ///   - breaker open           -> ResourceExhausted (IsWorkerBreakerOpen)
  ///   - crash / hang / rlimit  -> Internal, naming pid and cause; that one
  ///     request fails, other in-flight requests are unaffected
  ///   - deadline               -> DeadlineExceeded
  ///   - drain                  -> Cancelled
  /// A worker that dies *before* reading the request (EPIPE on send) is
  /// retried once on a fresh worker — the request provably never started.
  StatusOr<WorkerDispatch> Execute(const WorkerRequest& request,
                                   Deadline deadline);

  /// Begins draining: new Execute calls fail Cancelled, idle workers are
  /// killed and reaped immediately, and busy workers get until
  /// `grace` before the watchdog kills them too.
  void RequestDrain(Deadline grace);

  /// Kills and reaps every remaining worker and joins the watchdog.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  /// Live (spawned, un-reaped) workers — the value behind the
  /// gputc_worker_active gauge.
  int ActiveWorkers() const;

 private:
  struct Slot;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// True when `status` is Execute's "circuit breaker open" refusal — the one
/// worker-path failure the batch service fails over to the in-process cpu
/// counter (degraded) instead of failing the request.
bool IsWorkerBreakerOpen(const Status& status);

}  // namespace gputc

#endif  // GPUTC_SERVICE_SUPERVISOR_H_
