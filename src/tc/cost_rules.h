#ifndef GPUTC_TC_COST_RULES_H_
#define GPUTC_TC_COST_RULES_H_

#include "sim/block_cost.h"
#include "sim/device.h"

namespace gputc {

// Shared costing rules for the simulated triangle-counting kernels. Every
// algorithm charges the same primitive operations through these helpers so
// that cross-algorithm comparisons (Tables 5/6, Figure 10) are apples to
// apples. The rules follow the coalescing model in sim/memory.h.

/// One thread binary searching a GLOBAL-memory list of length `len`.
ThreadWork BinarySearchGlobal(int64_t len, const DeviceSpec& spec);

/// One thread binary searching a SHARED-memory list of length `len`
/// (Hu-style staged tiles; transactions go to the shared-memory pipeline).
ThreadWork BinarySearchShared(int64_t len, const DeviceSpec& spec);

/// One thread binary searching `keys` ASCENDING keys in the same list of
/// length `len` (the per-arc batch every counter actually issues). Compute
/// is keys * probes; transactions are capped by the list's segment count —
/// consecutive searches share the top of the probe tree and revisit the
/// same segments, which the hardware serves from cache. `shared` applies
/// the shared-memory discount.
ThreadWork BinarySearchBatch(int64_t keys, int64_t len, bool shared,
                             const DeviceSpec& spec);

/// One thread's share of a warp-cooperative binary search for a batch of
/// keys in the same list (TriCore): `len` is the target list length,
/// `active_lanes` how many lanes participate.
ThreadWork WarpSearchLaneShare(int64_t len, int active_lanes,
                               const DeviceSpec& spec);

/// One thread streaming `elements` consecutive elements from global memory
/// (sequential scan; coalesces within the thread).
ThreadWork SequentialScan(int64_t elements, const DeviceSpec& spec);

/// One thread's share of a warp-cooperative load of `elements` consecutive
/// elements (fully coalesced).
ThreadWork CoalescedLoadLaneShare(int64_t elements, int active_lanes,
                                  const DeviceSpec& spec);

/// One scattered bitmap probe or set in global memory (Bisson).
ThreadWork BitmapAccess(const DeviceSpec& spec);

/// One thread sort-merging two lists of lengths `len_a` and `len_b`
/// (Gunrock's merge path): linear compute, sequential reads.
ThreadWork SortMerge(int64_t len_a, int64_t len_b, const DeviceSpec& spec);

}  // namespace gputc

#endif  // GPUTC_TC_COST_RULES_H_
