#ifndef GPUTC_TC_INTERSECT_H_
#define GPUTC_TC_INTERSECT_H_

#include <cstdint>
#include <span>

#include "graph/types.h"

namespace gputc {

/// Size of the intersection of two sorted id spans (merge). Exact; used by
/// every counter as the host-side ground truth while the simulator charges
/// the algorithm-specific access pattern.
inline int64_t SortedIntersectionSize(std::span<const VertexId> a,
                                      std::span<const VertexId> b) {
  int64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace gputc

#endif  // GPUTC_TC_INTERSECT_H_
