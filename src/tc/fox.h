#ifndef GPUTC_TC_FOX_H_
#define GPUTC_TC_FOX_H_

#include <cstdint>
#include <vector>

#include "order/resource_model.h"
#include "tc/counter.h"

namespace gputc {

/// Fox / Green et al. (HPEC 2018): adaptive list intersection with
/// logarithmic radix binning.
///
/// Every arc's work is estimated as d~(v) * log2(d~(u)); arcs are stably
/// partitioned into log-radix bins and each bin is executed with a matching
/// granularity — one thread per arc for light bins, one warp per arc (lanes
/// cooperate on the searches) for heavy bins. Blocks take consecutive tasks
/// within a bin, so the *edge order* determines each block's work set: this
/// is the algorithm the paper reorders edges (not vertices) for
/// (Section 6.4, Figure 15).
class FoxCounter : public SimTriangleCounter {
 public:
  /// Arcs whose cooperative work estimate is at least this use a warp.
  explicit FoxCounter(int64_t warp_threshold = 128)
      : warp_threshold_(warp_threshold) {}

  std::string name() const override { return "Fox"; }

  /// Counts with arcs in CSR order.
  StatusOr<TcResult> TryCount(const DirectedGraph& g, const DeviceSpec& spec,
                              const ExecContext& ctx) const override;

  /// Counts with arcs processed in `edge_order` (a permutation of arc
  /// indices in CSR order; position i is processed i-th). Radix binning is
  /// stable, so the given order fixes block composition within each bin.
  /// An edge_order that is not a permutation of [0, num_edges) is
  /// InvalidArgument.
  StatusOr<TcResult> TryCountWithEdgeOrder(
      const DirectedGraph& g, const DeviceSpec& spec,
      const std::vector<int64_t>& edge_order, const ExecContext& ctx) const;

  /// Unconstrained TryCountWithEdgeOrder; CHECK-aborts on error.
  TcResult CountWithEdgeOrder(const DirectedGraph& g, const DeviceSpec& spec,
                              const std::vector<int64_t>& edge_order) const;

  bool uses_intra_block_sync() const override { return false; }
  bool uses_binary_search() const override { return true; }
  ReorderUnit reorder_unit() const override { return ReorderUnit::kEdge; }

  /// The per-arc work estimates (d~(v) * probes(d~(u))) in CSR arc order;
  /// the quantity edge-A-order balances. Exposed for the Figure 15 bench.
  static std::vector<int64_t> ArcWorkEstimates(const DirectedGraph& g);

  /// Edge-unit A-order matched to this kernel's structure: within each work
  /// bin (whose blocks the kernel forms from consecutive arcs), arcs are
  /// packed by Algorithm 2 keyed on their searched-list length d~(u), so
  /// every block receives a balanced compute/memory mix. This is the edge
  /// ordering Figure 15 evaluates.
  std::vector<int64_t> AOrderedEdgeOrder(const DirectedGraph& g,
                                         const ResourceModel& model,
                                         const DeviceSpec& spec) const;

 private:
  int64_t warp_threshold_;
};

}  // namespace gputc

#endif  // GPUTC_TC_FOX_H_
