#ifndef GPUTC_TC_COUNTER_H_
#define GPUTC_TC_COUNTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "graph/directed_graph.h"
#include "sim/device.h"
#include "sim/kernel.h"
#include "util/deadline.h"
#include "util/logging.h"
#include "util/status.h"

namespace gputc {

/// Result of one (simulated) triangle-counting run: the exact triangle count
/// plus the modelled kernel cost.
struct TcResult {
  int64_t triangles = 0;
  KernelStats kernel;
};

/// Work-distribution unit a kernel reorders by (Section 6.4): Hu, TriCore
/// and Gunrock consume vertex orderings; Fox consumes edge orderings.
enum class ReorderUnit { kVertex, kEdge };

/// Interface of the simulated GPU triangle counters.
///
/// Implementations walk the directed graph on the host, computing the exact
/// triangle count, while charging every primitive operation (searches,
/// scans, bitmap probes, synchronizations) to the block cost model exactly
/// as the corresponding CUDA kernel would distribute it over blocks, warps
/// and threads. The returned KernelStats is the modelled kernel time.
///
/// The input graph must already be preprocessed: oriented by the desired
/// direction strategy and relabeled by the desired ordering — blocks take
/// work for consecutive vertex ids (or edges in CSR order), which is exactly
/// how preprocessing steers the kernels without changing them.
class SimTriangleCounter {
 public:
  virtual ~SimTriangleCounter() = default;

  /// Algorithm name as used in the paper ("Hu", "TriCore", ...).
  virtual std::string name() const = 0;

  /// Counts triangles of `g` on the simulated device under the execution
  /// envelope `ctx`. Implementations poll ctx at block granularity, so a
  /// cancellation or deadline expiry is observed within one block's work;
  /// a triangle accumulation past ctx.count_limit surfaces as OutOfRange.
  /// Fail-point sites "tc.<algo>" (entry) and "tc.block" (per block) make
  /// every counter fault-injectable.
  virtual StatusOr<TcResult> TryCount(const DirectedGraph& g,
                                      const DeviceSpec& spec,
                                      const ExecContext& ctx) const = 0;

  /// Unconstrained convenience entry point: TryCount under an infinite
  /// context. The benches and oracle tests use this; with no deadline, no
  /// cancellation and no armed fail points it cannot fail, so an error here
  /// CHECK-aborts.
  TcResult Count(const DirectedGraph& g, const DeviceSpec& spec) const {
    StatusOr<TcResult> result = TryCount(g, spec, ExecContext{});
    GPUTC_CHECK(result.ok())
        << name() << "::Count failed: " << result.status().ToString();
    return *std::move(result);
  }

  /// True if the kernel uses intra-block synchronization — the algorithms
  /// A-direction's BSP analysis applies to (Bisson, Hu).
  virtual bool uses_intra_block_sync() const = 0;

  /// True if the kernel intersects lists by binary search — the algorithms
  /// A-order's diversity analysis applies to (all but Bisson's bitmap).
  virtual bool uses_binary_search() const = 0;

  virtual ReorderUnit reorder_unit() const { return ReorderUnit::kVertex; }
};

}  // namespace gputc

#endif  // GPUTC_TC_COUNTER_H_
