#ifndef GPUTC_TC_WORK_PARTITION_H_
#define GPUTC_TC_WORK_PARTITION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/directed_graph.h"

namespace gputc {

/// A block's work set: the directed arcs of `bucket_size` consecutive
/// vertex ids (the paper's bucket B_i, Section 3.2.4: "given the order of
/// vertices, blocks usually fetch consecutive vertices as their work sets").
/// Arc indices refer to CSR order.
struct ArcRange {
  int64_t begin = 0;  // First arc index (inclusive).
  int64_t end = 0;    // Last arc index (exclusive).

  int64_t size() const { return end - begin; }
};

/// Splits the graph's arcs into per-block ranges of `bucket_size`
/// consecutive vertices each. This is the mapping through which a vertex
/// reordering steers every kernel's block composition without changing the
/// kernel: heavy vertices concentrated in one bucket (D-order) produce
/// straggler blocks, while A-order's packing balances both block load and
/// the compute/memory mix.
inline std::vector<ArcRange> VertexBucketArcRanges(const DirectedGraph& g,
                                                   int bucket_size) {
  std::vector<ArcRange> ranges;
  const VertexId n = g.num_vertices();
  for (VertexId start = 0; start < n;
       start += static_cast<VertexId>(bucket_size)) {
    const VertexId stop = static_cast<VertexId>(
        std::min<uint64_t>(n, static_cast<uint64_t>(start) +
                                  static_cast<uint64_t>(bucket_size)));
    ranges.push_back(ArcRange{g.offsets()[start], g.offsets()[stop]});
  }
  return ranges;
}

/// The arc's source vertex for each CSR arc index (helper for kernels that
/// walk flat arc ranges).
inline std::vector<VertexId> ArcSources(const DirectedGraph& g) {
  std::vector<VertexId> sources(static_cast<size_t>(g.num_edges()));
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (int64_t i = g.offsets()[u]; i < g.offsets()[u + 1]; ++i) {
      sources[static_cast<size_t>(i)] = u;
    }
  }
  return sources;
}

}  // namespace gputc

#endif  // GPUTC_TC_WORK_PARTITION_H_
