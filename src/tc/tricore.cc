#include "tc/tricore.h"

#include <algorithm>
#include <vector>

#include "obs/trace.h"
#include "sim/block_cost.h"
#include "tc/cost_rules.h"
#include "tc/intersect.h"
#include "tc/work_partition.h"
#include "util/checked_math.h"
#include "util/failpoint.h"

namespace gputc {

StatusOr<TcResult> TriCoreCounter::TryCount(const DirectedGraph& g,
                                            const DeviceSpec& spec,
                                            const ExecContext& ctx) const {
  GPUTC_INJECT_FAULT("tc.tricore");
  Span span = StartSpan(ctx, "tc.tricore");
  TcResult result;
  CheckedInt64 triangles(ctx.count_limit);
  const int lanes = spec.warp_size;

  const std::vector<VertexId> sources = ArcSources(g);
  const std::vector<ArcRange> blocks_arcs =
      VertexBucketArcRanges(g, spec.threads_per_block());

  std::vector<BlockCost> blocks;
  blocks.reserve(blocks_arcs.size());
  BlockCostModel model(spec);
  for (const ArcRange& range : blocks_arcs) {
    if (range.size() == 0) {
      blocks.push_back(BlockCost{});
      continue;
    }
    GPUTC_RETURN_IF_ERROR(ctx.CheckContinue("tc.tricore"));
    GPUTC_INJECT_FAULT("tc.block");
    model.BeginBlock();
    // Grid-stride over the block's arcs: warp w takes arcs w, w+W, ...
    for (int64_t i = range.begin; i < range.end; ++i) {
      const VertexId u = sources[static_cast<size_t>(i)];
      const VertexId v = g.adjacency()[static_cast<size_t>(i)];
      const int warp =
          static_cast<int>((i - range.begin) % spec.warps_per_block);
      const int64_t du = g.out_degree(u);
      const int64_t dv = g.out_degree(v);
      if (strategy_ == IntersectStrategy::kSortMerge) {
        // Merge-path: each lane locates its segment boundary by binary
        // search, then merges its (du + dv) / lanes slice.
        if (du + dv > 0) {
          ThreadWork lane_work = BinarySearchBatch(
              /*keys=*/1, std::max(du, dv), /*shared=*/false, spec);
          const int64_t slice = (du + dv + lanes - 1) / lanes;
          const ThreadWork merge = SortMerge(slice, 0, spec);
          lane_work += merge;
          for (int lane = 0; lane < lanes; ++lane) {
            model.AddThreadWork(warp * lanes + lane, lane_work);
          }
        }
        triangles.Add(
            SortedIntersectionSize(g.out_neighbors(u), g.out_neighbors(v)));
        continue;
      }
      // Keys are streamed from N+(v) in chunks of `lanes`; each active lane
      // searches one key in N+(u). Full chunks are identical, so they are
      // charged in one shot.
      const int64_t full_chunks = dv / lanes;
      if (full_chunks > 0) {
        ThreadWork chunk_work = CoalescedLoadLaneShare(lanes, lanes, spec);
        chunk_work += WarpSearchLaneShare(du, lanes, spec);
        const ThreadWork lane_work{
            chunk_work.compute_ops * static_cast<double>(full_chunks),
            chunk_work.mem_transactions * static_cast<double>(full_chunks),
            chunk_work.shared_transactions * static_cast<double>(full_chunks)};
        for (int lane = 0; lane < lanes; ++lane) {
          model.AddThreadWork(warp * lanes + lane, lane_work);
        }
      }
      const int remainder = static_cast<int>(dv % lanes);
      if (remainder > 0) {
        ThreadWork lane_work =
            CoalescedLoadLaneShare(remainder, remainder, spec);
        lane_work += WarpSearchLaneShare(du, remainder, spec);
        for (int lane = 0; lane < remainder; ++lane) {
          model.AddThreadWork(warp * lanes + lane, lane_work);
        }
      }
      triangles.Add(
          SortedIntersectionSize(g.out_neighbors(u), g.out_neighbors(v)));
    }
    blocks.push_back(model.Finish());
  }

  GPUTC_RETURN_IF_ERROR(triangles.ToStatus("TriCore triangle count"));
  result.triangles = triangles.value();
  result.kernel = KernelLauncher(spec).Launch(blocks);
  span.SetAttr("triangles", result.triangles);
  span.SetAttr("blocks", static_cast<int64_t>(blocks.size()));
  return result;
}

}  // namespace gputc
