#ifndef GPUTC_TC_CPU_COUNTERS_H_
#define GPUTC_TC_CPU_COUNTERS_H_

#include <cstdint>

#include "graph/directed_graph.h"
#include "graph/graph.h"
#include "util/deadline.h"
#include "util/status.h"

namespace gputc {

// Exact host-side triangle counters (the CPU families of Section 2.2.1).
// They are the correctness oracles for every simulated GPU kernel and the
// serial baselines in the benches.

/// Node-iterator [Alon et al.]: for every vertex, test all neighbor pairs.
/// O(sum d(v)^2). Exact.
int64_t CountTrianglesNodeIterator(const Graph& g);

/// Edge-iterator [Batagelj & Mrvar]: for every edge, intersect the two
/// endpoint adjacency lists. O(sum over edges of d(u)+d(v)). Exact.
int64_t CountTrianglesEdgeIterator(const Graph& g);

/// Forward algorithm [Schank & Wagner]: orient by degree, intersect
/// out-lists — the standard O(m^(3/2)) counter. Exact.
int64_t CountTrianglesForward(const Graph& g);

/// Forward algorithm under an execution envelope: polls `ctx` every 256
/// vertices, injects at fail point "tc.cpu", and counts with checked
/// accumulation. The executor's last-resort fallback stage.
StatusOr<int64_t> TryCountTrianglesForward(const Graph& g,
                                           const ExecContext& ctx);

/// Counts directed wedges closed by an arc on an oriented graph; with an
/// acyclic orientation this equals the triangle count of the underlying
/// undirected graph. Exact.
int64_t CountTrianglesDirected(const DirectedGraph& g);

/// Multicore merge-based counter in the spirit of Shun & Tangwongsan:
/// partitions vertices over `num_threads` std::threads. Exact.
int64_t CountTrianglesParallel(const Graph& g, int num_threads);

}  // namespace gputc

#endif  // GPUTC_TC_CPU_COUNTERS_H_
