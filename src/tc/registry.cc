#include "tc/registry.h"

#include "tc/bisson.h"
#include "tc/fox.h"
#include "tc/gunrock.h"
#include "tc/hu.h"
#include "tc/polak.h"
#include "tc/tricore.h"
#include "util/logging.h"

namespace gputc {

std::string ToString(TcAlgorithm algorithm) {
  switch (algorithm) {
    case TcAlgorithm::kGunrockBinarySearch:
      return "Gunrock-bs";
    case TcAlgorithm::kGunrockSortMerge:
      return "Gunrock-sm";
    case TcAlgorithm::kTriCore:
      return "TriCore";
    case TcAlgorithm::kFox:
      return "Fox";
    case TcAlgorithm::kBisson:
      return "Bisson";
    case TcAlgorithm::kHu:
      return "Hu";
    case TcAlgorithm::kPolak:
      return "Polak";
  }
  return "unknown";
}

std::unique_ptr<SimTriangleCounter> MakeCounter(TcAlgorithm algorithm) {
  switch (algorithm) {
    case TcAlgorithm::kGunrockBinarySearch:
      return std::make_unique<GunrockCounter>(
          IntersectStrategy::kBinarySearch);
    case TcAlgorithm::kGunrockSortMerge:
      return std::make_unique<GunrockCounter>(IntersectStrategy::kSortMerge);
    case TcAlgorithm::kTriCore:
      return std::make_unique<TriCoreCounter>();
    case TcAlgorithm::kFox:
      return std::make_unique<FoxCounter>();
    case TcAlgorithm::kBisson:
      return std::make_unique<BissonCounter>();
    case TcAlgorithm::kHu:
      return std::make_unique<HuCounter>();
    case TcAlgorithm::kPolak:
      return std::make_unique<PolakCounter>();
  }
  GPUTC_LOG(Fatal) << "unhandled algorithm";
  return nullptr;
}

std::vector<TcAlgorithm> PaperAlgorithms() {
  return {TcAlgorithm::kGunrockBinarySearch, TcAlgorithm::kTriCore,
          TcAlgorithm::kFox, TcAlgorithm::kBisson, TcAlgorithm::kHu};
}

}  // namespace gputc
