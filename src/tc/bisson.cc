#include "tc/bisson.h"

#include <algorithm>
#include <vector>

#include "obs/trace.h"
#include "sim/block_cost.h"
#include "tc/cost_rules.h"
#include "tc/intersect.h"
#include "util/checked_math.h"
#include "util/failpoint.h"

namespace gputc {

StatusOr<TcResult> BissonCounter::TryCount(const DirectedGraph& g,
                                           const DeviceSpec& spec,
                                           const ExecContext& ctx) const {
  GPUTC_INJECT_FAULT("tc.bisson");
  Span span = StartSpan(ctx, "tc.bisson");
  TcResult result;
  CheckedInt64 triangles(ctx.count_limit);
  const int threads = spec.threads_per_block();

  std::vector<BlockCost> blocks;
  blocks.reserve(g.num_vertices());
  BlockCostModel model(spec);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.out_neighbors(v);
    if (nbrs.empty()) continue;  // The kernel skips leaf blocks immediately.
    GPUTC_RETURN_IF_ERROR(ctx.CheckContinue("tc.bisson"));
    GPUTC_INJECT_FAULT("tc.block");
    model.BeginBlock();

    // Superstep 0: cooperatively set a bitmap bit per element of N+(v)
    // (scattered global writes), then synchronize.
    const ThreadWork set_bit = BitmapAccess(spec);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      ThreadWork w = set_bit;
      model.AddThreadWork(static_cast<int>(i % static_cast<size_t>(threads)),
                          w);
    }
    model.EndSuperstep();

    // Groups of `threads` neighbors: thread t scans N+(u_t) start to end,
    // probing the bitmap for every element.
    for (size_t group = 0; group < nbrs.size();
         group += static_cast<size_t>(threads)) {
      const size_t group_end =
          std::min(nbrs.size(), group + static_cast<size_t>(threads));
      for (size_t i = group; i < group_end; ++i) {
        const VertexId u = nbrs[i];
        const int64_t du = g.out_degree(u);
        ThreadWork work = SequentialScan(du, spec);
        const ThreadWork probe = BitmapAccess(spec);
        work.compute_ops += probe.compute_ops * static_cast<double>(du);
        work.mem_transactions +=
            probe.mem_transactions * static_cast<double>(du);
        model.AddThreadWork(static_cast<int>(i - group), work);

        triangles.Add(SortedIntersectionSize(g.out_neighbors(u), nbrs));
      }
      model.EndSuperstep();
    }
    blocks.push_back(model.Finish());
  }

  GPUTC_RETURN_IF_ERROR(triangles.ToStatus("Bisson triangle count"));
  result.triangles = triangles.value();
  result.kernel = KernelLauncher(spec).Launch(blocks);
  span.SetAttr("triangles", result.triangles);
  span.SetAttr("blocks", static_cast<int64_t>(blocks.size()));
  return result;
}

}  // namespace gputc
