#ifndef GPUTC_TC_REGISTRY_H_
#define GPUTC_TC_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "tc/counter.h"

namespace gputc {

/// The five state-of-the-art GPU algorithms the paper evaluates, plus the
/// Polak baseline and Gunrock's sort-merge variant.
enum class TcAlgorithm {
  kGunrockBinarySearch,
  kGunrockSortMerge,
  kTriCore,
  kFox,
  kBisson,
  kHu,
  kPolak,
};

/// Name matching the paper ("Gunrock-bs", "TriCore", "Fox", "Bisson", "Hu",
/// "Polak").
std::string ToString(TcAlgorithm algorithm);

/// Constructs the counter for `algorithm`.
std::unique_ptr<SimTriangleCounter> MakeCounter(TcAlgorithm algorithm);

/// The paper's five comparative methods (Section 6.1), binary-search
/// Gunrock representing Gunrock.
std::vector<TcAlgorithm> PaperAlgorithms();

}  // namespace gputc

#endif  // GPUTC_TC_REGISTRY_H_
