#ifndef GPUTC_TC_REGISTRY_H_
#define GPUTC_TC_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "tc/counter.h"

namespace gputc {

/// The five state-of-the-art GPU algorithms the paper evaluates, plus the
/// Polak baseline and Gunrock's sort-merge variant.
enum class TcAlgorithm {
  kGunrockBinarySearch,
  kGunrockSortMerge,
  kTriCore,
  kFox,
  kBisson,
  kHu,
  kPolak,
};

/// Name matching the paper ("Gunrock-bs", "TriCore", "Fox", "Bisson", "Hu",
/// "Polak").
std::string ToString(TcAlgorithm algorithm);

/// Constructs the counter for `algorithm`.
///
/// Thread safety: the registry holds no mutable state — every call returns a
/// freshly constructed counter, and the counters themselves keep all their
/// state per instance. Concurrent batch-service workers therefore call this
/// freely; the contract is pinned by the multi-threaded fault-matrix test in
/// tests/executor_test.cc, and the whole suite runs under TSan in CI.
std::unique_ptr<SimTriangleCounter> MakeCounter(TcAlgorithm algorithm);

/// The paper's five comparative methods (Section 6.1), binary-search
/// Gunrock representing Gunrock.
std::vector<TcAlgorithm> PaperAlgorithms();

}  // namespace gputc

#endif  // GPUTC_TC_REGISTRY_H_
