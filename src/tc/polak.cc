#include "tc/polak.h"

#include <algorithm>
#include <vector>

#include "obs/trace.h"
#include "sim/block_cost.h"
#include "tc/cost_rules.h"
#include "tc/intersect.h"
#include "tc/work_partition.h"
#include "util/checked_math.h"
#include "util/failpoint.h"

namespace gputc {

StatusOr<TcResult> PolakCounter::TryCount(const DirectedGraph& g,
                                          const DeviceSpec& spec,
                                          const ExecContext& ctx) const {
  GPUTC_INJECT_FAULT("tc.polak");
  Span span = StartSpan(ctx, "tc.polak");
  TcResult result;
  CheckedInt64 triangles(ctx.count_limit);
  const int threads = spec.threads_per_block();

  const std::vector<VertexId> sources = ArcSources(g);
  const std::vector<ArcRange> blocks_arcs =
      VertexBucketArcRanges(g, spec.threads_per_block());

  std::vector<BlockCost> blocks;
  blocks.reserve(blocks_arcs.size());
  BlockCostModel model(spec);
  for (const ArcRange& range : blocks_arcs) {
    if (range.size() == 0) {
      blocks.push_back(BlockCost{});
      continue;
    }
    GPUTC_RETURN_IF_ERROR(ctx.CheckContinue("tc.polak"));
    GPUTC_INJECT_FAULT("tc.block");
    model.BeginBlock();
    // Grid-stride within the block: thread t handles arcs t, t+T, t+2T, ...
    for (int64_t i = range.begin; i < range.end; ++i) {
      const VertexId u = sources[static_cast<size_t>(i)];
      const VertexId v = g.adjacency()[static_cast<size_t>(i)];
      const int64_t du = g.out_degree(u);
      const int64_t dv = g.out_degree(v);
      ThreadWork work = SequentialScan(dv, spec);
      work += BinarySearchBatch(dv, du, /*shared=*/false, spec);
      model.AddThreadWork(static_cast<int>((i - range.begin) % threads), work);

      triangles.Add(
          SortedIntersectionSize(g.out_neighbors(u), g.out_neighbors(v)));
    }
    blocks.push_back(model.Finish());
  }

  GPUTC_RETURN_IF_ERROR(triangles.ToStatus("Polak triangle count"));
  result.triangles = triangles.value();
  result.kernel = KernelLauncher(spec).Launch(blocks);
  span.SetAttr("triangles", result.triangles);
  span.SetAttr("blocks", static_cast<int64_t>(blocks.size()));
  return result;
}

}  // namespace gputc
