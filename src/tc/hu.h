#ifndef GPUTC_TC_HU_H_
#define GPUTC_TC_HU_H_

#include "tc/counter.h"

namespace gputc {

/// Hu, Guan & Zou (ICDEW 2019): fine-grained task distribution with the
/// "copy-synchronize-search" pattern (paper Figure 2).
///
/// A block walks a contiguous range of directed arcs (u, v). Each superstep,
/// the block first stages the u-lists its threads are about to search into
/// shared memory (coalesced, cooperative), synchronizes, then every thread
/// resolves the wedges of one arc: the d~(v) candidate w's are read
/// sequentially from global memory and each is binary searched in the staged
/// N+(u). Searches in lists of different lengths between two syncs are
/// exactly the imbalance A-direction targets, and the compute/memory mix of
/// a block's arcs is what A-order balances.
///
/// Granularity note: the original kernel assigns one *wedge* per thread; we
/// assign one *arc* (its whole wedge bundle) per thread per superstep, which
/// keeps both analytic drivers (d~ distribution inside a superstep, resource
/// mix inside a block) while making host simulation O(|arcs| + |wedges|)
/// instead of per-wedge event processing.
///
/// Each block owns the arcs of `vertices_per_block` consecutive vertex ids
/// (the paper's bucket B_i), so the vertex ordering fully determines both a
/// block's load and its resource mix.
class HuCounter : public SimTriangleCounter {
 public:
  /// `vertices_per_block` <= 0 uses the device's threads_per_block — the
  /// same default bucket size A-order packs.
  explicit HuCounter(int vertices_per_block = 0)
      : vertices_per_block_(vertices_per_block) {}

  std::string name() const override { return "Hu"; }
  StatusOr<TcResult> TryCount(const DirectedGraph& g, const DeviceSpec& spec,
                              const ExecContext& ctx) const override;
  bool uses_intra_block_sync() const override { return true; }
  bool uses_binary_search() const override { return true; }

 private:
  int vertices_per_block(const DeviceSpec& spec) const {
    return vertices_per_block_ > 0 ? vertices_per_block_
                                   : spec.threads_per_block();
  }

  int vertices_per_block_;
};

}  // namespace gputc

#endif  // GPUTC_TC_HU_H_
