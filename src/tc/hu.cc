#include "tc/hu.h"

#include <algorithm>
#include <vector>

#include "obs/trace.h"
#include "sim/block_cost.h"
#include "tc/cost_rules.h"
#include "tc/intersect.h"
#include "tc/work_partition.h"
#include "util/checked_math.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace gputc {

StatusOr<TcResult> HuCounter::TryCount(const DirectedGraph& g,
                                       const DeviceSpec& spec,
                                       const ExecContext& ctx) const {
  GPUTC_INJECT_FAULT("tc.hu");
  Span span = StartSpan(ctx, "tc.hu");
  TcResult result;
  CheckedInt64 triangles(ctx.count_limit);
  const int threads = spec.threads_per_block();
  const int64_t arcs_per_superstep = threads;

  const std::vector<VertexId> sources = ArcSources(g);
  const std::vector<ArcRange> blocks_arcs =
      VertexBucketArcRanges(g, vertices_per_block(spec));

  std::vector<BlockCost> blocks;
  blocks.reserve(blocks_arcs.size());
  BlockCostModel model(spec);
  for (const ArcRange& range : blocks_arcs) {
    if (range.size() == 0) {
      blocks.push_back(BlockCost{});
      continue;
    }
    GPUTC_RETURN_IF_ERROR(ctx.CheckContinue("tc.hu"));
    GPUTC_INJECT_FAULT("tc.block");
    model.BeginBlock();
    for (int64_t step_start = range.begin; step_start < range.end;
         step_start += arcs_per_superstep) {
      const int64_t step_end =
          std::min(range.end, step_start + arcs_per_superstep);

      // Copy phase: stage the distinct u-lists this superstep will search
      // into shared memory (coalesced global reads), then __syncthreads().
      int64_t staged_elements = 0;
      {
        VertexId prev_u = g.num_vertices();  // Sentinel.
        for (int64_t i = step_start; i < step_end; ++i) {
          const VertexId u = sources[static_cast<size_t>(i)];
          if (u != prev_u) {
            prev_u = u;
            staged_elements += g.out_degree(u);
          }
        }
      }
      const ThreadWork copy_share =
          CoalescedLoadLaneShare(staged_elements, threads, spec);
      for (int t = 0; t < static_cast<int>(step_end - step_start); ++t) {
        model.AddThreadWork(t, copy_share);
      }
      model.EndSuperstep();

      // Search phase: thread t resolves arc (u, v): streams N+(v) from
      // global memory and binary searches each w in the staged N+(u)
      // (shared-memory pipeline).
      for (int64_t i = step_start; i < step_end; ++i) {
        const VertexId u = sources[static_cast<size_t>(i)];
        const VertexId v = g.adjacency()[static_cast<size_t>(i)];
        const int64_t du = g.out_degree(u);
        const int64_t dv = g.out_degree(v);
        ThreadWork work = SequentialScan(dv, spec);
        work += BinarySearchBatch(dv, du, /*shared=*/true, spec);
        model.AddThreadWork(static_cast<int>(i - step_start), work);

        triangles.Add(
            SortedIntersectionSize(g.out_neighbors(u), g.out_neighbors(v)));
      }
      model.EndSuperstep();
    }
    blocks.push_back(model.Finish());
  }

  GPUTC_RETURN_IF_ERROR(triangles.ToStatus("Hu triangle count"));
  result.triangles = triangles.value();
  result.kernel = KernelLauncher(spec).Launch(blocks);
  span.SetAttr("triangles", result.triangles);
  span.SetAttr("blocks", static_cast<int64_t>(blocks.size()));
  return result;
}

}  // namespace gputc
