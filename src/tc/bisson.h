#ifndef GPUTC_TC_BISSON_H_
#define GPUTC_TC_BISSON_H_

#include "tc/counter.h"

namespace gputc {

/// Bisson & Fatica (TPDS 2017): one block per vertex, bitmap-based lookup
/// (paper Figure 1).
///
/// The block owning vertex v first sets a global-memory bitmap bit for every
/// w in N+(v) (cooperative, then __syncthreads). It then walks N+(v) in
/// groups of threads_per_block: each thread takes one neighbor u and scans
/// the whole N+(u), probing the bitmap for each element — so a superstep
/// lasts as long as its largest assigned out-degree, the textbook case of
/// the intra-block BSP imbalance A-direction minimizes. Bitmap probing
/// replaces binary search, so A-order's diversity analysis does not apply
/// (the paper evaluates only A-direction on this algorithm).
class BissonCounter : public SimTriangleCounter {
 public:
  std::string name() const override { return "Bisson"; }
  StatusOr<TcResult> TryCount(const DirectedGraph& g, const DeviceSpec& spec,
                              const ExecContext& ctx) const override;
  bool uses_intra_block_sync() const override { return true; }
  bool uses_binary_search() const override { return false; }
};

}  // namespace gputc

#endif  // GPUTC_TC_BISSON_H_
