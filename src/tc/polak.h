#ifndef GPUTC_TC_POLAK_H_
#define GPUTC_TC_POLAK_H_

#include "tc/counter.h"

namespace gputc {

/// Polak (IPDPSW 2016): the basic thread-per-edge parallelization.
///
/// Each thread owns one arc (u, v) and binary searches every element of
/// N+(v) in N+(u) independently in global memory — no cooperation, no
/// synchronization. Serves as the plain baseline the later algorithms
/// improve on.
class PolakCounter : public SimTriangleCounter {
 public:
  std::string name() const override { return "Polak"; }
  StatusOr<TcResult> TryCount(const DirectedGraph& g, const DeviceSpec& spec,
                              const ExecContext& ctx) const override;
  bool uses_intra_block_sync() const override { return false; }
  bool uses_binary_search() const override { return true; }
};

}  // namespace gputc

#endif  // GPUTC_TC_POLAK_H_
