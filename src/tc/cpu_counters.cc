#include "tc/cpu_counters.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "direction/direction.h"
#include "obs/trace.h"
#include "tc/intersect.h"
#include "util/checked_math.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace gputc {

int64_t CountTrianglesNodeIterator(const Graph& g) {
  int64_t triangles = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.HasEdge(nbrs[i], nbrs[j])) ++triangles;
      }
    }
  }
  // Every triangle is seen once per corner.
  GPUTC_CHECK_EQ(triangles % 3, 0);
  return triangles / 3;
}

int64_t CountTrianglesEdgeIterator(const Graph& g) {
  int64_t triangles = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) {
        triangles += SortedIntersectionSize(g.neighbors(u), g.neighbors(v));
      }
    }
  }
  // Every triangle is seen once per edge.
  GPUTC_CHECK_EQ(triangles % 3, 0);
  return triangles / 3;
}

int64_t CountTrianglesForward(const Graph& g) {
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  return CountTrianglesDirected(d);
}

StatusOr<int64_t> TryCountTrianglesForward(const Graph& g,
                                           const ExecContext& ctx) {
  GPUTC_INJECT_FAULT("tc.cpu");
  Span span = StartSpan(ctx, "tc.cpu");
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  CheckedInt64 triangles(ctx.count_limit);
  constexpr VertexId kPollStride = 256;
  for (VertexId u = 0; u < d.num_vertices(); ++u) {
    if (u % kPollStride == 0) {
      GPUTC_RETURN_IF_ERROR(ctx.CheckContinue("tc.cpu"));
    }
    for (VertexId v : d.out_neighbors(u)) {
      triangles.Add(
          SortedIntersectionSize(d.out_neighbors(u), d.out_neighbors(v)));
    }
  }
  GPUTC_RETURN_IF_ERROR(triangles.ToStatus("forward triangle count"));
  span.SetAttr("triangles", triangles.value());
  return triangles.value();
}

int64_t CountTrianglesDirected(const DirectedGraph& g) {
  int64_t triangles = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      triangles +=
          SortedIntersectionSize(g.out_neighbors(u), g.out_neighbors(v));
    }
  }
  return triangles;
}

int64_t CountTrianglesParallel(const Graph& g, int num_threads) {
  GPUTC_CHECK_GT(num_threads, 0);
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  std::atomic<int64_t> triangles{0};
  std::vector<std::thread> workers;
  const VertexId n = d.num_vertices();
  std::atomic<VertexId> next{0};
  constexpr VertexId kChunk = 256;
  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&d, &triangles, &next, n] {
      int64_t local = 0;
      while (true) {
        const VertexId start = next.fetch_add(kChunk);
        if (start >= n) break;
        const VertexId end = std::min<VertexId>(n, start + kChunk);
        for (VertexId u = start; u < end; ++u) {
          for (VertexId v : d.out_neighbors(u)) {
            local += SortedIntersectionSize(d.out_neighbors(u),
                                            d.out_neighbors(v));
          }
        }
      }
      triangles.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (std::thread& w : workers) w.join();
  return triangles.load();
}

}  // namespace gputc
