#ifndef GPUTC_TC_GUNROCK_H_
#define GPUTC_TC_GUNROCK_H_

#include "tc/counter.h"

namespace gputc {

/// Intersection strategy of the Gunrock-style counter (Section 6.2 compares
/// the two; binary search wins on GPU).
enum class IntersectStrategy { kBinarySearch, kSortMerge };

/// Wang et al. (Gunrock, PPoPP 2016): general thread-per-edge intersection
/// operator with selectable strategy.
///
/// Binary search: each thread searches every element of the SHORTER endpoint
/// list in the LONGER one (work O(min * log max), independent probes).
/// Sort-merge: each thread merges both lists linearly (work O(du + dv),
/// sequential reads, heavy lock-step divergence when neighboring threads
/// hold very different list lengths).
class GunrockCounter : public SimTriangleCounter {
 public:
  explicit GunrockCounter(
      IntersectStrategy strategy = IntersectStrategy::kBinarySearch)
      : strategy_(strategy) {}

  std::string name() const override {
    return strategy_ == IntersectStrategy::kBinarySearch ? "Gunrock-bs"
                                                         : "Gunrock-sm";
  }
  StatusOr<TcResult> TryCount(const DirectedGraph& g, const DeviceSpec& spec,
                              const ExecContext& ctx) const override;
  bool uses_intra_block_sync() const override { return false; }
  bool uses_binary_search() const override {
    return strategy_ == IntersectStrategy::kBinarySearch;
  }

  IntersectStrategy strategy() const { return strategy_; }

 private:
  IntersectStrategy strategy_;
};

}  // namespace gputc

#endif  // GPUTC_TC_GUNROCK_H_
