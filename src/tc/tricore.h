#ifndef GPUTC_TC_TRICORE_H_
#define GPUTC_TC_TRICORE_H_

#include "tc/counter.h"
#include "tc/gunrock.h"

namespace gputc {

/// Hu, Liu & Huang (SC 2018) TriCore: one warp per edge, binary search.
///
/// The warp owning arc (u, v) streams N+(v) in coalesced chunks of
/// warp_size keys; all active lanes then binary search their key in N+(u)
/// simultaneously — the shared-list warp search of the paper's Figure 5,
/// whose coalescing collapses on long lists. Blocks own the arcs of
/// threads_per_block consecutive vertices, so a vertex reordering directly
/// reshapes each block's load and compute/memory mix (A-order's lever). No
/// intra-block synchronization.
///
/// The kSortMerge variant (Section 6.2 / Figure 10 comparison) partitions
/// each merge over the warp: every lane binary searches its segment
/// boundary, then merges (du+dv)/warp_size elements with the usual SIMT
/// divergence penalty.
class TriCoreCounter : public SimTriangleCounter {
 public:
  explicit TriCoreCounter(
      IntersectStrategy strategy = IntersectStrategy::kBinarySearch)
      : strategy_(strategy) {}

  std::string name() const override {
    return strategy_ == IntersectStrategy::kBinarySearch ? "TriCore-bs"
                                                         : "TriCore-sm";
  }
  StatusOr<TcResult> TryCount(const DirectedGraph& g, const DeviceSpec& spec,
                              const ExecContext& ctx) const override;
  bool uses_intra_block_sync() const override { return false; }
  bool uses_binary_search() const override {
    return strategy_ == IntersectStrategy::kBinarySearch;
  }

 private:
  IntersectStrategy strategy_;
};

}  // namespace gputc

#endif  // GPUTC_TC_TRICORE_H_
