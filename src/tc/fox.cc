#include "tc/fox.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "order/aorder.h"
#include "sim/block_cost.h"
#include "sim/memory.h"
#include "tc/cost_rules.h"
#include "tc/intersect.h"
#include "util/checked_math.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace gputc {
namespace {

struct Arc {
  VertexId u;
  VertexId v;
};

std::vector<Arc> CollectArcs(const DirectedGraph& g) {
  std::vector<Arc> arcs;
  arcs.reserve(static_cast<size_t>(g.num_edges()));
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) arcs.push_back(Arc{u, v});
  }
  return arcs;
}

int64_t WorkEstimate(const DirectedGraph& g, const Arc& arc) {
  // Even an arc with no keys to search costs its setup; clamp to 1 so the
  // lightest bin is well defined.
  return std::max<int64_t>(
      1, g.out_degree(arc.v) *
             std::max(1, ProbesForBinarySearch(g.out_degree(arc.u))));
}

int RadixBin(int64_t work) {
  int bin = 0;
  while (work > 1) {
    work >>= 1;
    ++bin;
  }
  return bin;
}

}  // namespace

std::vector<int64_t> FoxCounter::ArcWorkEstimates(const DirectedGraph& g) {
  const std::vector<Arc> arcs = CollectArcs(g);
  std::vector<int64_t> work(arcs.size());
  for (size_t i = 0; i < arcs.size(); ++i) work[i] = WorkEstimate(g, arcs[i]);
  return work;
}

std::vector<int64_t> FoxCounter::AOrderedEdgeOrder(
    const DirectedGraph& g, const ResourceModel& model,
    const DeviceSpec& spec) const {
  const std::vector<Arc> arcs = CollectArcs(g);
  constexpr int kMaxBins = 48;
  std::vector<std::vector<int64_t>> bins(kMaxBins);
  for (int64_t pos = 0; pos < static_cast<int64_t>(arcs.size()); ++pos) {
    const int64_t volume = g.out_degree(arcs[static_cast<size_t>(pos)].v) + 1;
    bins[static_cast<size_t>(std::min(kMaxBins - 1, RadixBin(volume)))]
        .push_back(pos);
  }
  std::vector<int64_t> order;
  order.reserve(arcs.size());
  for (size_t bin_idx = 0; bin_idx < bins.size(); ++bin_idx) {
    const auto& bin = bins[bin_idx];
    if (bin.empty()) continue;
    const bool warp_per_arc =
        (int64_t{1} << std::min<size_t>(bin_idx, 62)) >= warp_threshold_;
    const int tasks_per_block =
        warp_per_arc ? spec.warps_per_block : spec.threads_per_block();
    if (bin.size() <= static_cast<size_t>(tasks_per_block)) {
      order.insert(order.end(), bin.begin(), bin.end());
      continue;
    }
    // Pack this bin's arcs so every block (tasks_per_block consecutive
    // tasks) gets a balanced mix of searched-list lengths.
    std::vector<EdgeCount> search_lengths(bin.size());
    for (size_t i = 0; i < bin.size(); ++i) {
      search_lengths[i] =
          g.out_degree(arcs[static_cast<size_t>(bin[i])].u);
    }
    AOrderOptions options;
    options.bucket_size = tasks_per_block;
    const AOrderResult packed = AOrder(search_lengths, model, options);
    std::vector<int64_t> bin_order(bin.size());
    for (size_t i = 0; i < bin.size(); ++i) {
      bin_order[packed.perm[i]] = bin[i];
    }
    order.insert(order.end(), bin_order.begin(), bin_order.end());
  }
  return order;
}

StatusOr<TcResult> FoxCounter::TryCount(const DirectedGraph& g,
                                        const DeviceSpec& spec,
                                        const ExecContext& ctx) const {
  std::vector<int64_t> identity(static_cast<size_t>(g.num_edges()));
  std::iota(identity.begin(), identity.end(), int64_t{0});
  return TryCountWithEdgeOrder(g, spec, identity, ctx);
}

TcResult FoxCounter::CountWithEdgeOrder(
    const DirectedGraph& g, const DeviceSpec& spec,
    const std::vector<int64_t>& edge_order) const {
  StatusOr<TcResult> result =
      TryCountWithEdgeOrder(g, spec, edge_order, ExecContext{});
  GPUTC_CHECK(result.ok()) << "Fox::CountWithEdgeOrder failed: "
                           << result.status().ToString();
  return *std::move(result);
}

StatusOr<TcResult> FoxCounter::TryCountWithEdgeOrder(
    const DirectedGraph& g, const DeviceSpec& spec,
    const std::vector<int64_t>& edge_order, const ExecContext& ctx) const {
  GPUTC_INJECT_FAULT("tc.fox");
  const std::vector<Arc> arcs = CollectArcs(g);
  if (edge_order.size() != arcs.size()) {
    return InvalidArgumentError(
        "edge order has " + std::to_string(edge_order.size()) +
        " entries but the graph has " + std::to_string(arcs.size()) + " arcs");
  }
  Span span = StartSpan(ctx, "tc.fox");
  TcResult result;
  CheckedInt64 triangles(ctx.count_limit);
  const int lanes = spec.warp_size;

  // Stable log-radix binning in the caller's order. Arcs are binned by
  // their work *volume* (keys streamed, d~(v)) — the quantity the adaptive
  // granularity needs — while the searched-list length d~(u), which sets an
  // arc's compute/memory character, still varies freely inside a bin.
  // That residual diversity is exactly what an edge reordering can balance
  // across blocks (Section 6.4 / Figure 15).
  constexpr int kMaxBins = 48;
  std::vector<std::vector<int64_t>> bins(kMaxBins);
  for (int64_t pos : edge_order) {
    if (pos < 0 || pos >= static_cast<int64_t>(arcs.size())) {
      return InvalidArgumentError("edge order entry " + std::to_string(pos) +
                                  " is outside [0, " +
                                  std::to_string(arcs.size()) + ")");
    }
    const int64_t volume =
        g.out_degree(arcs[static_cast<size_t>(pos)].v) + 1;
    bins[static_cast<size_t>(std::min(kMaxBins - 1, RadixBin(volume)))]
        .push_back(pos);
  }

  std::vector<BlockCost> blocks;
  BlockCostModel model(spec);
  for (size_t bin_idx = 0; bin_idx < bins.size(); ++bin_idx) {
    const auto& bin = bins[bin_idx];
    if (bin.empty()) continue;
    // One granularity per bin, a pure function of the bin's radix level
    // (every arc in the bin streams ~2^level keys): cooperative warps once
    // a warp's worth of keys amortizes.
    const bool warp_per_arc =
        (int64_t{1} << std::min<size_t>(bin_idx, 62)) >= warp_threshold_;
    const size_t tasks_per_block =
        warp_per_arc ? static_cast<size_t>(spec.warps_per_block)
                     : static_cast<size_t>(spec.threads_per_block());
    for (size_t block_start = 0; block_start < bin.size();
         block_start += tasks_per_block) {
      GPUTC_RETURN_IF_ERROR(ctx.CheckContinue("tc.fox"));
      GPUTC_INJECT_FAULT("tc.block");
      model.BeginBlock();
      const size_t block_end =
          std::min(bin.size(), block_start + tasks_per_block);
      for (size_t i = block_start; i < block_end; ++i) {
        const Arc arc = arcs[static_cast<size_t>(bin[i])];
        const int64_t du = g.out_degree(arc.u);
        const int64_t dv = g.out_degree(arc.v);
        const int task = static_cast<int>(i - block_start);
        if (warp_per_arc) {
          // Lanes cooperate exactly like TriCore's warp search.
          const int64_t full_chunks = dv / lanes;
          if (full_chunks > 0) {
            ThreadWork chunk = CoalescedLoadLaneShare(lanes, lanes, spec);
            chunk += WarpSearchLaneShare(du, lanes, spec);
            const ThreadWork lane_work{
                chunk.compute_ops * static_cast<double>(full_chunks),
                chunk.mem_transactions * static_cast<double>(full_chunks)};
            for (int lane = 0; lane < lanes; ++lane) {
              model.AddThreadWork(task * lanes + lane, lane_work);
            }
          }
          const int remainder = static_cast<int>(dv % lanes);
          if (remainder > 0) {
            ThreadWork lane_work =
                CoalescedLoadLaneShare(remainder, remainder, spec);
            lane_work += WarpSearchLaneShare(du, remainder, spec);
            for (int lane = 0; lane < remainder; ++lane) {
              model.AddThreadWork(task * lanes + lane, lane_work);
            }
          }
        } else {
          ThreadWork work = SequentialScan(dv, spec);
          work += BinarySearchBatch(dv, du, /*shared=*/false, spec);
          model.AddThreadWork(task, work);
        }
        triangles.Add(SortedIntersectionSize(g.out_neighbors(arc.u),
                                             g.out_neighbors(arc.v)));
      }
      blocks.push_back(model.Finish());
    }
  }

  GPUTC_RETURN_IF_ERROR(triangles.ToStatus("Fox triangle count"));
  result.triangles = triangles.value();
  result.kernel = KernelLauncher(spec).Launch(blocks);
  span.SetAttr("triangles", result.triangles);
  span.SetAttr("blocks", static_cast<int64_t>(blocks.size()));
  return result;
}

}  // namespace gputc
