#include "tc/cost_rules.h"

#include <algorithm>

#include "sim/memory.h"

namespace gputc {

ThreadWork BinarySearchGlobal(int64_t len, const DeviceSpec& spec) {
  ThreadWork w;
  w.compute_ops = ProbesForBinarySearch(len);
  w.mem_transactions =
      static_cast<double>(ThreadBinarySearchTransactions(len, spec));
  return w;
}

ThreadWork BinarySearchShared(int64_t len, const DeviceSpec& spec) {
  ThreadWork w;
  w.compute_ops = ProbesForBinarySearch(len);
  w.shared_transactions =
      static_cast<double>(ThreadBinarySearchTransactions(len, spec));
  return w;
}

ThreadWork BinarySearchBatch(int64_t keys, int64_t len, bool shared,
                             const DeviceSpec& spec) {
  ThreadWork w;
  if (keys <= 0 || len <= 0) return w;
  const int per_txn = spec.elements_per_transaction();
  const int64_t list_segments = (len + per_txn - 1) / per_txn;
  const int64_t txns = std::min(
      keys * ThreadBinarySearchTransactions(len, spec), list_segments);
  w.compute_ops =
      static_cast<double>(keys) * ProbesForBinarySearch(len);
  const double charged = static_cast<double>(std::max<int64_t>(1, txns));
  if (shared) {
    w.shared_transactions = charged;
  } else {
    w.mem_transactions = charged;
  }
  return w;
}

ThreadWork WarpSearchLaneShare(int64_t len, int active_lanes,
                               const DeviceSpec& spec) {
  ThreadWork w;
  if (active_lanes <= 0) return w;
  w.compute_ops = ProbesForBinarySearch(len);
  w.mem_transactions =
      static_cast<double>(
          WarpSharedListSearchTransactions(len, active_lanes, spec)) /
      static_cast<double>(active_lanes);
  return w;
}

ThreadWork SequentialScan(int64_t elements, const DeviceSpec& spec) {
  ThreadWork w;
  if (elements <= 0) return w;
  const int per_txn = spec.elements_per_transaction();
  w.compute_ops = static_cast<double>(elements);
  w.mem_transactions =
      static_cast<double>((elements + per_txn - 1) / per_txn);
  return w;
}

ThreadWork CoalescedLoadLaneShare(int64_t elements, int active_lanes,
                                  const DeviceSpec& spec) {
  ThreadWork w;
  if (elements <= 0 || active_lanes <= 0) return w;
  const int per_txn = spec.elements_per_transaction();
  const double txns = static_cast<double>((elements + per_txn - 1) / per_txn);
  w.compute_ops = static_cast<double>(elements) / active_lanes;
  w.mem_transactions = txns / active_lanes;
  return w;
}

ThreadWork BitmapAccess(const DeviceSpec& /*spec*/) {
  ThreadWork w;
  w.compute_ops = 1.0;
  w.mem_transactions = 1.0;  // Scattered: one transaction per access.
  return w;
}

ThreadWork SortMerge(int64_t len_a, int64_t len_b, const DeviceSpec& spec) {
  ThreadWork w;
  const int per_txn = spec.elements_per_transaction();
  const int64_t steps = std::max<int64_t>(0, len_a) + std::max<int64_t>(0, len_b);
  // Merge loops branch on data every step; the warp pays the divergence
  // multiplier (binary search's uniform probe loop does not).
  w.compute_ops =
      static_cast<double>(steps) * spec.simt_divergence_penalty;
  w.mem_transactions = static_cast<double>(
      (len_a + per_txn - 1) / per_txn + (len_b + per_txn - 1) / per_txn);
  return w;
}

}  // namespace gputc
