#ifndef GPUTC_ORDER_AORDER_H_
#define GPUTC_ORDER_AORDER_H_

#include <vector>

#include "graph/permutation.h"
#include "graph/types.h"
#include "order/resource_model.h"
#include "util/deadline.h"

namespace gputc {

/// Options of the A-order algorithm (paper Algorithm 2).
struct AOrderOptions {
  /// Vertices per bucket == the work set one block fetches. The paper groups
  /// "every consecutive k vertices"; we default to one block's thread count.
  int bucket_size = 256;

  /// Sort each bucket internally by descending degree before assigning ids.
  /// Bucket membership — and therefore the Eq. 3 objective — is unchanged;
  /// the sort only makes lock-step warps inside a block as uniform as
  /// possible so the balanced mix does not reappear as SIMT divergence.
  bool sort_within_bucket = true;

  /// Optional execution envelope, polled every ~1k placements during bucket
  /// packing. Not owned; null means unconstrained.
  const ExecContext* exec = nullptr;
};

/// Diagnostics of one A-order run.
struct AOrderResult {
  Permutation perm;  // old id -> new id.
  int64_t num_memory_dominated = 0;
  int64_t num_compute_dominated = 0;
  /// Eq. 3 objective of the produced ordering.
  double imbalance_cost = 0.0;
  /// True when packing stopped early because options.exec requested a stop.
  /// The permutation is still valid (unplaced vertices keep relative order
  /// at the tail) but is not the A-order optimum; callers re-check their
  /// ExecContext and normally discard it.
  bool aborted = false;
};

/// Runs A-order (Algorithm 2): greedily packs memory-dominated vertices into
/// the bucket with the smallest accumulated memory superiority, then
/// compute-dominated vertices into the bucket with the largest, yielding
/// buckets whose compute and memory demands offset each other. Vertices are
/// dispatched in descending |mem_sup| so the largest contributions are
/// placed while the heap still has slack (the paper does not fix a dispatch
/// order; this is the standard greedy-balancing choice). O(|V| log |V|).
///
/// `out_degrees[v]` is d~(v) in the directed graph the counting kernel will
/// consume.
AOrderResult AOrder(const std::vector<EdgeCount>& out_degrees,
                    const ResourceModel& model, const AOrderOptions& options = {});

}  // namespace gputc

#endif  // GPUTC_ORDER_AORDER_H_
