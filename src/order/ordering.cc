#include "order/ordering.h"

#include "order/classic_orders.h"
#include "util/logging.h"

namespace gputc {

std::string ToString(OrderingStrategy strategy) {
  switch (strategy) {
    case OrderingStrategy::kOriginal:
      return "Origin";
    case OrderingStrategy::kDegree:
      return "D-order";
    case OrderingStrategy::kAOrder:
      return "A-order";
    case OrderingStrategy::kDfs:
      return "DFS";
    case OrderingStrategy::kBfsR:
      return "BFS-R";
    case OrderingStrategy::kSlashBurn:
      return "SlashBurn";
    case OrderingStrategy::kGro:
      return "GRO";
    case OrderingStrategy::kBfs:
      return "BFS";
    case OrderingStrategy::kRcm:
      return "RCM";
    case OrderingStrategy::kRandom:
      return "random";
  }
  return "unknown";
}

std::vector<OrderingStrategy> PaperOrderingStrategies() {
  return {OrderingStrategy::kOriginal,  OrderingStrategy::kDegree,
          OrderingStrategy::kDfs,       OrderingStrategy::kBfsR,
          OrderingStrategy::kSlashBurn, OrderingStrategy::kGro,
          OrderingStrategy::kAOrder};
}

Permutation ComputeOrdering(const Graph& undirected,
                            const DirectedGraph& directed,
                            OrderingStrategy strategy,
                            const ResourceModel& model,
                            const AOrderOptions& aorder_options,
                            uint64_t seed) {
  GPUTC_CHECK_EQ(undirected.num_vertices(), directed.num_vertices());
  switch (strategy) {
    case OrderingStrategy::kOriginal:
      return IdentityPermutation(undirected.num_vertices());
    case OrderingStrategy::kDegree:
      return DegreeOrder(undirected);
    case OrderingStrategy::kAOrder:
      return AOrder(directed.OutDegrees(), model, aorder_options).perm;
    case OrderingStrategy::kDfs:
      return DfsOrder(undirected);
    case OrderingStrategy::kBfsR:
      return BfsROrder(undirected);
    case OrderingStrategy::kSlashBurn:
      return SlashBurnOrder(undirected);
    case OrderingStrategy::kGro:
      return GroOrder(undirected);
    case OrderingStrategy::kBfs:
      return BfsOrder(undirected);
    case OrderingStrategy::kRcm:
      return RcmOrder(undirected);
    case OrderingStrategy::kRandom:
      return RandomOrder(undirected.num_vertices(), seed);
  }
  GPUTC_LOG(Fatal) << "unhandled ordering strategy";
  return {};
}

}  // namespace gputc
