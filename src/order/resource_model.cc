#include "order/resource_model.h"

#include <algorithm>
#include <cmath>

#include "sim/memory.h"
#include "util/logging.h"

namespace gputc {
namespace {

/// The paper's measured lambda on the Titan Xp (Section 5.3).
constexpr double kPaperLambda = 9.682;

/// Largest list length the BW table covers: 2^20 elements.
constexpr int kMaxLog2Length = 20;

}  // namespace

ResourceModel::ResourceModel(double lambda,
                             std::vector<double> bw_by_log2_len)
    : lambda_(lambda), bw_by_log2_len_(std::move(bw_by_log2_len)) {
  GPUTC_CHECK(!bw_by_log2_len_.empty());
  GPUTC_CHECK_GT(lambda_, 0.0);
}

ResourceModel ResourceModel::Default() {
  return ForDevice(DeviceSpec::TitanXpLike(), kPaperLambda);
}

ResourceModel ResourceModel::ForDevice(const DeviceSpec& spec, double lambda,
                                       SearchWorkload workload) {
  BandwidthProfiler profiler(spec, workload);
  std::vector<double> table;
  table.reserve(kMaxLog2Length + 1);
  for (int i = 0; i <= kMaxLog2Length; ++i) {
    table.push_back(profiler.BandwidthAt(int64_t{1} << i));
  }
  return ResourceModel(lambda, std::move(table));
}

double ResourceModel::ComputeIntensity(EdgeCount out_degree) const {
  const double d = static_cast<double>(std::max<EdgeCount>(1, out_degree));
  return std::sqrt(1.0 / d);
}

double ResourceModel::MemoryIntensity(EdgeCount out_degree) const {
  return std::sqrt(BandwidthAt(out_degree));
}

double ResourceModel::MemorySuperiority(EdgeCount out_degree) const {
  return MemoryIntensity(out_degree) - lambda_ * ComputeIntensity(out_degree);
}

double ResourceModel::BandwidthAt(EdgeCount out_degree) const {
  const double d = static_cast<double>(std::max<EdgeCount>(1, out_degree));
  const double log2d = std::log2(d);
  const int lo = std::clamp(static_cast<int>(log2d), 0,
                            static_cast<int>(bw_by_log2_len_.size()) - 1);
  const int hi =
      std::min(lo + 1, static_cast<int>(bw_by_log2_len_.size()) - 1);
  const double frac = std::clamp(log2d - lo, 0.0, 1.0);
  return bw_by_log2_len_[static_cast<size_t>(lo)] * (1.0 - frac) +
         bw_by_log2_len_[static_cast<size_t>(hi)] * frac;
}

std::vector<BucketCost> BucketCosts(const std::vector<EdgeCount>& out_degrees,
                                    const Permutation& perm, int bucket_size,
                                    const ResourceModel& model) {
  GPUTC_CHECK_GT(bucket_size, 0);
  GPUTC_CHECK_EQ(out_degrees.size(), perm.size());
  const size_t n = out_degrees.size();
  const size_t buckets = (n + static_cast<size_t>(bucket_size) - 1) /
                         static_cast<size_t>(bucket_size);
  std::vector<BucketCost> costs(buckets);
  for (VertexId old_id = 0; old_id < n; ++old_id) {
    const size_t bucket = perm[old_id] / static_cast<size_t>(bucket_size);
    costs[bucket].compute += model.ComputeIntensity(out_degrees[old_id]);
    costs[bucket].memory += model.MemoryIntensity(out_degrees[old_id]);
  }
  return costs;
}

double OrderingImbalanceCost(const std::vector<EdgeCount>& out_degrees,
                             const Permutation& perm, int bucket_size,
                             const ResourceModel& model) {
  double total = 0.0;
  for (const BucketCost& b :
       BucketCosts(out_degrees, perm, bucket_size, model)) {
    total += std::abs(model.lambda() * b.compute - b.memory);
  }
  return total;
}

}  // namespace gputc
