#ifndef GPUTC_ORDER_RESOURCE_MODEL_H_
#define GPUTC_ORDER_RESOURCE_MODEL_H_

#include <vector>

#include "graph/permutation.h"
#include "graph/types.h"
#include "sim/device.h"
#include "sim/memory.h"

namespace gputc {

/// The paper's resource balance model (Section 3.2.4 and 5.3).
///
/// Each vertex v with out-degree d~(v) contributes
///   computing intensity  c = F_c(d) = sqrt(1 / d)           (Eq. 22)
///   memory intensity     m = F_m(d) = sqrt(BW(d))           (Eq. 22)
/// where BW(d) is the measured warp binary-search bandwidth curve (Figure 8).
/// `lambda` converts compute units into memory units; the paper measures
/// 9.682 on its hardware, we calibrate our own against the simulator
/// (order/calibration.h) and keep the paper's value as the default.
class ResourceModel {
 public:
  /// Builds the model with an explicit bandwidth table. `bw_by_log2_len[i]`
  /// is BW(2^i) in bytes/cycle; lengths in between are geometrically
  /// interpolated. The table must be non-empty.
  ResourceModel(double lambda, std::vector<double> bw_by_log2_len);

  /// Model with the paper's lambda and the default device's measured BW
  /// curve.
  static ResourceModel Default();

  /// Model calibrated against `spec`'s bandwidth curve with a given lambda.
  /// `workload` selects the warp access pattern the BW(d) table measures
  /// (match it to the calibration workload).
  static ResourceModel ForDevice(
      const DeviceSpec& spec, double lambda,
      SearchWorkload workload = SearchWorkload::kDistinctLists);

  double lambda() const { return lambda_; }

  /// The raw BW(2^i) table the model was built with. Exposed so the
  /// preprocessing cache can persist a calibrated model and rebuild it
  /// bit-for-bit (ResourceModel(lambda, table) round-trips exactly).
  const std::vector<double>& bw_by_log2_len() const { return bw_by_log2_len_; }

  /// F_c(d) = sqrt(1/d); degree 0 is treated as 1 (an idle vertex costs the
  /// minimum, not infinity).
  double ComputeIntensity(EdgeCount out_degree) const;

  /// F_m(d) = sqrt(BW(d)).
  double MemoryIntensity(EdgeCount out_degree) const;

  /// Memory superiority F_m(d) - lambda * F_c(d) (Algorithm 2's mem_sup
  /// contribution). Positive -> memory-dominated vertex.
  double MemorySuperiority(EdgeCount out_degree) const;

  /// Interpolated BW(d).
  double BandwidthAt(EdgeCount out_degree) const;

 private:
  double lambda_;
  std::vector<double> bw_by_log2_len_;
};

/// Per-bucket totals of the optimization objective (Eq. 2).
struct BucketCost {
  double compute = 0.0;  // C_i
  double memory = 0.0;   // M_i
};

/// Splits vertices (in permuted order) into buckets of `bucket_size`
/// consecutive new ids and returns each bucket's (C_i, M_i).
std::vector<BucketCost> BucketCosts(const std::vector<EdgeCount>& out_degrees,
                                    const Permutation& perm, int bucket_size,
                                    const ResourceModel& model);

/// The paper's Eq. 3 objective: sum_i |lambda * C_i - M_i|. Lower is better;
/// A-order approximately minimizes it, D-order nearly maximizes it.
double OrderingImbalanceCost(const std::vector<EdgeCount>& out_degrees,
                             const Permutation& perm, int bucket_size,
                             const ResourceModel& model);

}  // namespace gputc

#endif  // GPUTC_ORDER_RESOURCE_MODEL_H_
