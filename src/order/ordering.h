#ifndef GPUTC_ORDER_ORDERING_H_
#define GPUTC_ORDER_ORDERING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/directed_graph.h"
#include "graph/graph.h"
#include "graph/permutation.h"
#include "order/aorder.h"
#include "order/resource_model.h"

namespace gputc {

/// Vertex (re)ordering strategies evaluated in the paper (Section 6.4).
enum class OrderingStrategy {
  kOriginal,   // Keep input ids ("Origin").
  kDegree,     // Degree-descending ("D-order"), the negative baseline.
  kAOrder,     // The paper's analytic-model ordering (Algorithm 2).
  kDfs,        // DFS discovery order.
  kBfsR,       // Recursive BFS bisection.
  kSlashBurn,  // Hub removal ordering.
  kGro,        // Greedy compactness ordering.
  kBfs,        // Plain BFS discovery order (locality baseline).
  kRcm,        // Reverse Cuthill-McKee (bandwidth-minimizing baseline).
  kRandom,     // Uniform random (ablation).
};

/// Human-readable name matching the paper's tables ("Origin", "D-order",
/// "A-order", "DFS", "BFS-R", "SlashBurn", "GRO", "random").
std::string ToString(OrderingStrategy strategy);

/// The strategies compared in Tables 5 and 6, in column order.
std::vector<OrderingStrategy> PaperOrderingStrategies();

/// Computes the permutation (old id -> new id) for `strategy`.
///
/// `undirected` is the graph being preprocessed; `directed` is its oriented
/// version, whose out-degrees feed A-order's intensity functions (other
/// strategies ignore it). `model` supplies F_c / F_m / lambda for A-order.
/// `seed` only affects kRandom.
Permutation ComputeOrdering(const Graph& undirected,
                            const DirectedGraph& directed,
                            OrderingStrategy strategy,
                            const ResourceModel& model,
                            const AOrderOptions& aorder_options = {},
                            uint64_t seed = 1);

}  // namespace gputc

#endif  // GPUTC_ORDER_ORDERING_H_
