#include "order/calibration.h"

#include <algorithm>
#include <cmath>

#include "sim/memory.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace gputc {

CalibrationResult CalibrateResourceModel(const DeviceSpec& spec,
                                         int64_t max_list_length,
                                         SearchWorkload workload) {
  CalibrationResult result;
  BandwidthProfiler profiler(spec, workload);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int64_t len = 1; len <= max_list_length; len *= 2) {
    CalibrationSample sample;
    sample.list_length = len;
    const BandwidthSample bw = profiler.Measure(len);
    sample.bandwidth = bw.bytes_per_cycle;

    // Balance point (Eq. 21): the warp's search issues `probes` lock-step
    // instructions (compute) and `txn` memory transactions. Extra compute
    // passes p are free until p * compute_time reaches memory_time; the
    // equality point is p_c.
    const double probes = bw.probes_per_search;
    const double transactions =
        bw.transactions_per_search * static_cast<double>(spec.warp_size);
    const double compute_time = probes / spec.issue_width;
    const double memory_time =
        transactions / spec.mem_transactions_per_cycle;
    sample.p_c = std::max(1.0, memory_time / std::max(1e-9, compute_time));

    sample.compute_intensity = std::sqrt(1.0 / static_cast<double>(len));
    sample.memory_intensity = std::sqrt(sample.bandwidth);
    result.samples.push_back(sample);

    // The linear m ~ lambda * (p_c * c) relation (Figure 9) holds while the
    // coalescer still has slack; once every lane occupies its own segment
    // (len >= warp_size) our idealized memory model saturates exactly, where
    // real hardware keeps degrading gently. Fit over the pre-saturation
    // regime (see DESIGN.md, simulator deviations).
    if (len <= spec.warp_size) {
      xs.push_back(sample.p_c * sample.compute_intensity);
      ys.push_back(sample.memory_intensity);
    }
  }
  result.fit = FitLine(xs, ys);

  // Lambda: taken at the device's parity point — the first list length whose
  // balance multiplier exceeds 1 (memory begins to dominate compute there).
  // F_m(d*) = lambda * F_c(d*) at that length, so vertices shorter than the
  // parity length classify compute-dominated and longer ones
  // memory-dominated, matching the kernels' actual flip.
  const CalibrationSample* parity = &result.samples.back();
  for (const CalibrationSample& s : result.samples) {
    if (s.p_c > 1.0) {
      parity = &s;
      break;
    }
  }
  result.lambda = parity->compute_intensity > 0.0
                      ? parity->memory_intensity / parity->compute_intensity
                      : 1.0;
  return result;
}

ResourceModel CalibratedResourceModel(const DeviceSpec& spec,
                                      SearchWorkload workload) {
  const CalibrationResult calibration =
      CalibrateResourceModel(spec, /*max_list_length=*/1 << 20, workload);
  return ResourceModel::ForDevice(spec, calibration.lambda, workload);
}

StatusOr<ResourceModel> TryCalibratedResourceModel(const DeviceSpec& spec,
                                                   SearchWorkload workload) {
  GPUTC_INJECT_FAULT("sim.memory");
  return CalibratedResourceModel(spec, workload);
}

}  // namespace gputc
