#ifndef GPUTC_ORDER_CALIBRATION_H_
#define GPUTC_ORDER_CALIBRATION_H_

#include <vector>

#include "order/resource_model.h"
#include "sim/device.h"
#include "sim/memory.h"
#include "util/stats.h"
#include "util/status.h"

namespace gputc {

/// One calibration point (one adjacency-list length), Figures 8 and 9.
struct CalibrationSample {
  int64_t list_length = 0;
  double bandwidth = 0.0;          // BW(d), bytes/cycle (Figure 8, left axis).
  double p_c = 0.0;                // Balance-point compute multiplier
                                   // (Figure 8, right axis).
  double compute_intensity = 0.0;  // F_c(d) = sqrt(1/d).
  double memory_intensity = 0.0;   // F_m(d) = sqrt(BW(d)).
};

/// Output of the Section 5.3 parameter determination.
struct CalibrationResult {
  std::vector<CalibrationSample> samples;
  /// The lambda A-order uses: F_m/F_c at the device's measured parity point
  /// (the first list length whose balance multiplier p_c exceeds 1) — the
  /// paper's "ratio of maximum memory ability to maximum computing ability".
  /// It places the memory/compute classification threshold exactly where the
  /// simulated kernels flip resource preference. (The paper reads lambda off
  /// the Figure 9 regression, which in its unit system lands at the same
  /// place; in ours the regression slope and the parity ratio separate, so
  /// both are reported.)
  double lambda = 0.0;
  /// The Figure 9 regression m ~ (p_c * c), fitted over the pre-saturation
  /// regime (list length <= warp_size): beyond it our idealized coalescer
  /// saturates exactly where real hardware keeps degrading, so the paper's
  /// full-range linearity shrinks to this regime (see DESIGN.md).
  LinearFit fit;
};

/// Runs the balance-point experiment against the simulator: for each list
/// length d, a warp's binary-search workload is loaded with extra compute
/// until compute time matches memory time; the multiplier at equality is
/// p_c(d) (Eq. 21). Fitting F_m(d) against p_c(d) * F_c(d) yields lambda.
/// `workload` selects the warp access pattern of the target algorithm
/// family — Section 5.3: "similar parameter determination process applies
/// to other triangle counting works".
CalibrationResult CalibrateResourceModel(
    const DeviceSpec& spec, int64_t max_list_length = 1 << 20,
    SearchWorkload workload = SearchWorkload::kDistinctLists);

/// Convenience: calibrates and builds the ResourceModel for `spec`.
ResourceModel CalibratedResourceModel(
    const DeviceSpec& spec,
    SearchWorkload workload = SearchWorkload::kDistinctLists);

/// CalibratedResourceModel behind the "sim.memory" fail point — the
/// injectable boundary standing in for the memory-model probing that can
/// fail on a real device (allocation failure, driver error). The executor's
/// degraded attempts skip calibration entirely.
StatusOr<ResourceModel> TryCalibratedResourceModel(
    const DeviceSpec& spec,
    SearchWorkload workload = SearchWorkload::kDistinctLists);

}  // namespace gputc

#endif  // GPUTC_ORDER_CALIBRATION_H_
