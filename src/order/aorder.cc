#include "order/aorder.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "obs/trace.h"
#include "util/logging.h"

namespace gputc {
namespace {

struct HeapEntry {
  double mem_sup;
  int bucket;
};

struct MinFirst {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return a.mem_sup != b.mem_sup ? a.mem_sup > b.mem_sup
                                  : a.bucket > b.bucket;
  }
};

struct MaxFirst {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return a.mem_sup != b.mem_sup ? a.mem_sup < b.mem_sup
                                  : a.bucket > b.bucket;
  }
};

}  // namespace

AOrderResult AOrder(const std::vector<EdgeCount>& out_degrees,
                    const ResourceModel& model,
                    const AOrderOptions& options) {
  GPUTC_CHECK_GT(options.bucket_size, 0);
  const size_t n = out_degrees.size();
  AOrderResult result;
  result.perm.assign(n, 0);
  if (n == 0) return result;

  const size_t bucket_size = static_cast<size_t>(options.bucket_size);
  const size_t num_buckets = (n + bucket_size - 1) / bucket_size;

  // Partition vertices by the sign of their memory superiority (Lines 3-4).
  std::vector<VertexId> mem_dominated;
  std::vector<VertexId> comp_dominated;
  std::vector<double> superiority(n);
  for (VertexId v = 0; v < n; ++v) {
    superiority[v] = model.MemorySuperiority(out_degrees[v]);
    (superiority[v] > 0.0 ? mem_dominated : comp_dominated).push_back(v);
  }
  result.num_memory_dominated = static_cast<int64_t>(mem_dominated.size());
  result.num_compute_dominated = static_cast<int64_t>(comp_dominated.size());
  // Largest contributions first so they land while all buckets still have
  // room.
  auto by_abs_desc = [&superiority](VertexId a, VertexId b) {
    const double sa = std::abs(superiority[a]);
    const double sb = std::abs(superiority[b]);
    return sa != sb ? sa > sb : a < b;
  };
  std::sort(mem_dominated.begin(), mem_dominated.end(), by_abs_desc);
  std::sort(comp_dominated.begin(), comp_dominated.end(), by_abs_desc);

  std::vector<std::vector<VertexId>> buckets(num_buckets);
  std::vector<double> bucket_sup(num_buckets, 0.0);
  std::vector<char> placed(n, 0);

  // Stop polling at placement granularity: the deadline/cancellation
  // contract for bucket packing, mirroring the counters' per-block polls.
  int64_t dispatched = 0;
  auto stop_requested = [&options, &dispatched]() {
    constexpr int64_t kPollStride = 1024;
    return options.exec != nullptr && dispatched++ % kPollStride == 0 &&
           options.exec->stop_requested();
  };

  // Phase 1 (Lines 5-9): memory-dominated vertices into the bucket with the
  // least accumulated memory superiority. Each bucket pass is one span; the
  // per-placement loop only polls, it never touches the tracer.
  {
    Span pass = options.exec != nullptr
                    ? StartSpan(*options.exec, "aorder.pass")
                    : Span();
    pass.SetAttr("phase", "memory-dominated");
    pass.SetAttr("vertices", static_cast<int64_t>(mem_dominated.size()));
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, MinFirst> heap;
    for (size_t b = 0; b < num_buckets; ++b) {
      heap.push(HeapEntry{0.0, static_cast<int>(b)});
    }
    for (VertexId v : mem_dominated) {
      if (stop_requested()) {
        result.aborted = true;
        break;
      }
      HeapEntry top = heap.top();
      heap.pop();
      auto& bucket = buckets[static_cast<size_t>(top.bucket)];
      bucket.push_back(v);
      placed[v] = 1;
      bucket_sup[static_cast<size_t>(top.bucket)] += superiority[v];
      if (bucket.size() < bucket_size) {
        heap.push(
            HeapEntry{bucket_sup[static_cast<size_t>(top.bucket)], top.bucket});
      }
    }
  }

  // Phase 2 (Lines 10-15): compute-dominated vertices into the bucket with
  // the largest accumulated memory superiority.
  if (!result.aborted) {
    Span pass = options.exec != nullptr
                    ? StartSpan(*options.exec, "aorder.pass")
                    : Span();
    pass.SetAttr("phase", "compute-dominated");
    pass.SetAttr("vertices", static_cast<int64_t>(comp_dominated.size()));
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, MaxFirst> heap;
    for (size_t b = 0; b < num_buckets; ++b) {
      if (buckets[b].size() < bucket_size) {
        heap.push(HeapEntry{bucket_sup[b], static_cast<int>(b)});
      }
    }
    for (VertexId v : comp_dominated) {
      if (stop_requested()) {
        result.aborted = true;
        break;
      }
      GPUTC_CHECK(!heap.empty());
      HeapEntry top = heap.top();
      heap.pop();
      auto& bucket = buckets[static_cast<size_t>(top.bucket)];
      bucket.push_back(v);
      placed[v] = 1;
      bucket_sup[static_cast<size_t>(top.bucket)] += superiority[v];
      if (bucket.size() < bucket_size) {
        heap.push(
            HeapEntry{bucket_sup[static_cast<size_t>(top.bucket)], top.bucket});
      }
    }
  }

  // Lines 16-20: consecutive ids within each bucket.
  std::vector<VertexId> sequence;
  sequence.reserve(n);
  for (const auto& bucket : buckets) {
    sequence.insert(sequence.end(), bucket.begin(), bucket.end());
  }
  // An aborted run still yields a valid permutation: unplaced vertices are
  // appended in id order, and the caller decides whether to keep it.
  if (result.aborted) {
    for (VertexId v = 0; v < n; ++v) {
      if (!placed[v]) sequence.push_back(v);
    }
  }
  GPUTC_CHECK_EQ(sequence.size(), n);
  // Degree-sort each aligned id chunk (the positions one block will fetch):
  // chunk membership — and therefore the Eq. 3 objective — is untouched;
  // the sort only makes lock-step warps inside a block as uniform as
  // possible so the balanced mix does not reappear as SIMT divergence.
  if (options.sort_within_bucket) {
    for (size_t chunk = 0; chunk < sequence.size(); chunk += bucket_size) {
      const auto begin =
          sequence.begin() + static_cast<ptrdiff_t>(chunk);
      const auto end =
          sequence.begin() +
          static_cast<ptrdiff_t>(std::min(sequence.size(), chunk + bucket_size));
      std::sort(begin, end, [&out_degrees](VertexId a, VertexId b) {
        return out_degrees[a] != out_degrees[b]
                   ? out_degrees[a] > out_degrees[b]
                   : a < b;
      });
    }
  }
  for (VertexId position = 0; position < n; ++position) {
    result.perm[sequence[position]] = position;
  }

  result.imbalance_cost = OrderingImbalanceCost(
      out_degrees, result.perm, options.bucket_size, model);
  return result;
}

}  // namespace gputc
