#ifndef GPUTC_ORDER_CLASSIC_ORDERS_H_
#define GPUTC_ORDER_CLASSIC_ORDERS_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/permutation.h"

namespace gputc {

// Reimplementations of the reordering baselines the paper compares A-order
// against in Tables 5 and 6. All return old-id -> new-id permutations.

/// Degree-descending order ("D-order"): vertices sorted by degree, largest
/// first, ties by id. The paper's negative baseline — it groups equal-degree
/// vertices (same resource preference) into the same block.
Permutation DegreeOrder(const Graph& g);

/// DFS discovery order [Shun 2017]; restarts from the smallest unvisited id.
Permutation DfsOrder(const Graph& g);

/// BFS-R [Blandford, Blelloch, Kash 2003]: recursively bisect the graph by
/// BFS from a pseudo-peripheral vertex until half the part is visited;
/// leaves of the separator tree give the order.
Permutation BfsROrder(const Graph& g);

/// SlashBurn [Lim, Kang, Faloutsos 2014]: iteratively remove the k highest
/// degree hubs (assigned the lowest ids, in removal order), push non-giant
/// component vertices to the highest ids, and recurse on the giant connected
/// component. `hub_fraction` is k/|V| per iteration (paper default 0.5%).
Permutation SlashBurnOrder(const Graph& g, double hub_fraction = 0.005);

/// GRO [Han, Zou, Yu 2018]: greedy compactness ordering that places next the
/// vertex with the most already-placed neighbors, making adjacency lists of
/// nearby vertices overlap. (Simplified faithful-in-spirit greedy of the
/// paper's compactness-score minimization.)
Permutation GroOrder(const Graph& g);

/// Plain BFS discovery order from the smallest unvisited id (locality
/// baseline; the starting point BFS-R refines).
Permutation BfsOrder(const Graph& g);

/// Reverse Cuthill-McKee: BFS from a pseudo-peripheral vertex, neighbors
/// visited in ascending degree, final order reversed — the classic
/// bandwidth-minimizing ordering from sparse linear algebra.
Permutation RcmOrder(const Graph& g);

/// Uniformly random permutation (ablation baseline).
Permutation RandomOrder(VertexId n, uint64_t seed);

}  // namespace gputc

#endif  // GPUTC_ORDER_CLASSIC_ORDERS_H_
