#include "order/classic_orders.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <queue>
#include <tuple>

#include "util/logging.h"
#include "util/random.h"

namespace gputc {
namespace {

/// BFS over the subset marked `in_part`, starting at `start`; returns the
/// visit order (only vertices with in_part true are traversed).
std::vector<VertexId> BfsWithin(const Graph& g, VertexId start,
                                const std::vector<bool>& in_part,
                                std::vector<bool>* visited_scratch) {
  std::vector<bool>& visited = *visited_scratch;
  std::vector<VertexId> order;
  std::deque<VertexId> queue;
  queue.push_back(start);
  visited[start] = true;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (VertexId v : g.neighbors(u)) {
      if (in_part[v] && !visited[v]) {
        visited[v] = true;
        queue.push_back(v);
      }
    }
  }
  for (VertexId v : order) visited[v] = false;  // Reset scratch.
  return order;
}

/// Recursive bisection used by BfsROrder. Appends the final order of the
/// vertices in `part` (all marked true in `in_part`) to `out`. `scratch` is
/// a shared n-sized buffer reused across the recursion so per-call work is
/// proportional to |part|, not |V|.
void BfsRRecurse(const Graph& g, std::vector<VertexId> part,
                 std::vector<bool>* in_part, std::vector<bool>* visited,
                 std::vector<bool>* scratch, std::vector<VertexId>* out) {
  constexpr size_t kLeafSize = 32;
  if (part.size() <= kLeafSize) {
    for (VertexId v : part) {
      (*in_part)[v] = false;
      out->push_back(v);
    }
    return;
  }
  // Pseudo-peripheral start: BFS from the first vertex, restart from the
  // vertex discovered last (largest depth).
  std::vector<VertexId> first_pass = BfsWithin(g, part[0], *in_part, visited);
  // A disconnected part would bisect one component at a time and recurse
  // |components| deep; instead, peel the first component off in one step.
  if (first_pass.size() < part.size() / 2) {
    std::vector<bool>& in_a = *scratch;
    for (VertexId v : first_pass) in_a[v] = true;
    std::vector<VertexId> side_b;
    side_b.reserve(part.size() - first_pass.size());
    for (VertexId v : part) {
      if (!in_a[v]) side_b.push_back(v);
    }
    for (VertexId v : first_pass) {
      in_a[v] = false;
      (*in_part)[v] = false;
    }
    BfsRRecurse(g, std::move(first_pass), in_part, visited, scratch, out);
    for (VertexId v : side_b) (*in_part)[v] = true;
    BfsRRecurse(g, std::move(side_b), in_part, visited, scratch, out);
    return;
  }
  const VertexId far = first_pass.back();
  std::vector<VertexId> second_pass = BfsWithin(g, far, *in_part, visited);

  // Visit from `far` until half of the part is covered. Disconnected
  // remainders are swept into the B side.
  const size_t half = part.size() / 2;
  std::vector<VertexId> side_a(second_pass.begin(),
                               second_pass.begin() +
                                   static_cast<ptrdiff_t>(std::min(
                                       half, second_pass.size())));
  std::vector<bool>& in_a = *scratch;
  for (VertexId v : side_a) in_a[v] = true;
  std::vector<VertexId> side_b;
  for (VertexId v : part) {
    if (!in_a[v]) side_b.push_back(v);
  }
  for (VertexId v : side_a) in_a[v] = false;  // Reset scratch.
  if (side_a.empty() || side_b.empty()) {
    // Degenerate split (tiny connected core); emit as a leaf.
    for (VertexId v : part) {
      (*in_part)[v] = false;
      out->push_back(v);
    }
    return;
  }
  // Recurse on A with B masked out, then on B.
  for (VertexId v : side_b) (*in_part)[v] = false;
  BfsRRecurse(g, std::move(side_a), in_part, visited, scratch, out);
  for (VertexId v : side_b) (*in_part)[v] = true;
  BfsRRecurse(g, std::move(side_b), in_part, visited, scratch, out);
}

}  // namespace

Permutation DegreeOrder(const Graph& g) {
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });
  return PermutationFromSequence(order);
}

Permutation DfsOrder(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<VertexId> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    stack.push_back(root);
    visited[root] = true;
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      order.push_back(u);
      const auto nbrs = g.neighbors(u);
      // Push in reverse so the smallest neighbor is discovered first.
      for (size_t i = nbrs.size(); i > 0; --i) {
        const VertexId v = nbrs[i - 1];
        if (!visited[v]) {
          visited[v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  return PermutationFromSequence(order);
}

Permutation BfsROrder(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> out;
  out.reserve(n);
  std::vector<bool> in_part(n, false);
  std::vector<bool> visited(n, false);
  std::vector<bool> assigned(n, false);
  std::vector<bool> scratch(n, false);
  const std::vector<bool> all(n, true);
  // Process one connected component at a time.
  for (VertexId root = 0; root < n; ++root) {
    if (assigned[root]) continue;
    std::vector<VertexId> component = BfsWithin(g, root, all, &visited);
    std::vector<VertexId> pending;
    for (VertexId v : component) {
      if (!assigned[v]) {
        pending.push_back(v);
        in_part[v] = true;
        assigned[v] = true;
      }
    }
    BfsRRecurse(g, std::move(pending), &in_part, &visited, &scratch, &out);
  }
  GPUTC_CHECK_EQ(out.size(), static_cast<size_t>(n));
  return PermutationFromSequence(out);
}

Permutation SlashBurnOrder(const Graph& g, double hub_fraction) {
  const VertexId n = g.num_vertices();
  const VertexId k = std::max<VertexId>(
      1, static_cast<VertexId>(hub_fraction * static_cast<double>(n)));
  std::vector<VertexId> front;   // Hubs, in removal order (lowest ids).
  std::vector<VertexId> back;    // Spokes, appended per round (highest ids).
  std::vector<bool> removed(n, false);
  std::vector<EdgeCount> degree(n);
  for (VertexId v = 0; v < n; ++v) degree[v] = g.degree(v);
  VertexId alive = n;

  std::vector<int64_t> component_id(n, -1);
  while (alive > 0) {
    // 1. Remove the k highest-degree alive vertices (hubs).
    std::vector<VertexId> alive_list;
    alive_list.reserve(alive);
    for (VertexId v = 0; v < n; ++v) {
      if (!removed[v]) alive_list.push_back(v);
    }
    const VertexId take = std::min<VertexId>(k, alive);
    std::partial_sort(alive_list.begin(), alive_list.begin() + take,
                      alive_list.end(), [&degree](VertexId a, VertexId b) {
                        return degree[a] != degree[b] ? degree[a] > degree[b]
                                                      : a < b;
                      });
    for (VertexId i = 0; i < take; ++i) {
      const VertexId hub = alive_list[i];
      removed[hub] = true;
      --alive;
      front.push_back(hub);
      for (VertexId nbr : g.neighbors(hub)) {
        if (!removed[nbr]) --degree[nbr];
      }
    }
    if (alive == 0) break;

    // 2. Connected components of the remainder; keep the giant one, push the
    // rest to the back (larger components first, as SlashBurn prescribes).
    std::fill(component_id.begin(), component_id.end(), -1);
    std::vector<std::vector<VertexId>> components;
    for (VertexId v = 0; v < n; ++v) {
      if (removed[v] || component_id[v] >= 0) continue;
      components.emplace_back();
      std::deque<VertexId> queue{v};
      component_id[v] = static_cast<int64_t>(components.size()) - 1;
      while (!queue.empty()) {
        const VertexId u = queue.front();
        queue.pop_front();
        components.back().push_back(u);
        for (VertexId w : g.neighbors(u)) {
          if (!removed[w] && component_id[w] < 0) {
            component_id[w] = component_id[u];
            queue.push_back(w);
          }
        }
      }
    }
    size_t giant = 0;
    for (size_t c = 1; c < components.size(); ++c) {
      if (components[c].size() > components[giant].size()) giant = c;
    }
    std::vector<size_t> spoke_components;
    for (size_t c = 0; c < components.size(); ++c) {
      if (c != giant) spoke_components.push_back(c);
    }
    std::sort(spoke_components.begin(), spoke_components.end(),
              [&components](size_t a, size_t b) {
                return components[a].size() != components[b].size()
                           ? components[a].size() > components[b].size()
                           : a < b;
              });
    for (size_t c : spoke_components) {
      for (VertexId v : components[c]) {
        removed[v] = true;
        --alive;
        back.push_back(v);
        for (VertexId nbr : g.neighbors(v)) {
          if (!removed[nbr]) --degree[nbr];
        }
      }
    }
    // 3. Iterate on the giant component (still alive).
  }

  std::vector<VertexId> order = std::move(front);
  order.insert(order.end(), back.rbegin(), back.rend());
  GPUTC_CHECK_EQ(order.size(), static_cast<size_t>(n));
  return PermutationFromSequence(order);
}

Permutation GroOrder(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<bool> placed(n, false);
  std::vector<EdgeCount> placed_neighbors(n, 0);
  // Lazy max-heap keyed by (#placed neighbors, degree): place next the
  // vertex whose adjacency overlaps the already-placed region the most.
  using Entry = std::tuple<EdgeCount, EdgeCount, VertexId>;
  std::priority_queue<Entry> heap;
  auto push = [&](VertexId v) {
    heap.push(Entry{placed_neighbors[v], g.degree(v), v});
  };
  for (VertexId seed = 0; seed < n; ++seed) {
    if (placed[seed]) continue;
    // Start each component from its highest-degree vertex.
    push(seed);
    while (!heap.empty()) {
      const auto [score, deg, v] = heap.top();
      heap.pop();
      if (placed[v] || score != placed_neighbors[v]) continue;  // Stale.
      placed[v] = true;
      order.push_back(v);
      for (VertexId nbr : g.neighbors(v)) {
        if (!placed[nbr]) {
          ++placed_neighbors[nbr];
          push(nbr);
        }
      }
    }
  }
  GPUTC_CHECK_EQ(order.size(), static_cast<size_t>(n));
  return PermutationFromSequence(order);
}

Permutation BfsOrder(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::deque<VertexId> queue;
  for (VertexId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    queue.push_back(root);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      order.push_back(u);
      for (VertexId v : g.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  return PermutationFromSequence(order);
}

Permutation RcmOrder(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<VertexId> nbrs_by_degree;
  const std::vector<bool> all(n, true);
  std::vector<bool> scratch(n, false);
  for (VertexId seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    // Pseudo-peripheral start: last vertex of a BFS from the component's
    // first vertex.
    std::vector<VertexId> pass = BfsWithin(g, seed, all, &scratch);
    VertexId start = pass.back();
    // Keep only vertices of this (unvisited) component.
    std::deque<VertexId> queue;
    visited[start] = true;
    queue.push_back(start);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      order.push_back(u);
      nbrs_by_degree.assign(g.neighbors(u).begin(), g.neighbors(u).end());
      std::sort(nbrs_by_degree.begin(), nbrs_by_degree.end(),
                [&g](VertexId a, VertexId b) {
                  return g.degree(a) != g.degree(b)
                             ? g.degree(a) < g.degree(b)
                             : a < b;
                });
      for (VertexId v : nbrs_by_degree) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
    }
    // Sweep stragglers the peripheral BFS may have missed (vertices of the
    // component already claimed by `seed`'s membership but not reached from
    // `start` cannot exist in an undirected graph; this loop is for safety
    // with isolated vertices).
    if (!visited[seed]) {
      visited[seed] = true;
      order.push_back(seed);
    }
  }
  std::reverse(order.begin(), order.end());
  GPUTC_CHECK_EQ(order.size(), static_cast<size_t>(n));
  return PermutationFromSequence(order);
}

Permutation RandomOrder(VertexId n, uint64_t seed) {
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  Rng rng(seed);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  return PermutationFromSequence(order);
}

}  // namespace gputc
