#ifndef GPUTC_SIM_DEVICE_H_
#define GPUTC_SIM_DEVICE_H_

namespace gputc {

/// Parameters of the simulated GPU.
///
/// The simulator is a *cost model*, not a cycle-accurate emulator: it charges
/// each block the roofline maximum of its compute demand, memory demand, and
/// longest warp critical path (see BlockCostModel), using the throughput
/// numbers below. Defaults approximate the paper's NVIDIA Titan Xp at the
/// granularity the analytic models care about (warp width, transaction size,
/// compute:memory throughput ratio); absolute milliseconds are not meant to
/// match real hardware.
struct DeviceSpec {
  /// Number of streaming multiprocessors. Blocks are distributed over SMs.
  int num_sms = 30;

  /// Threads per warp (lock-step execution).
  int warp_size = 32;

  /// Warps per block (threads_per_block = warps_per_block * warp_size).
  int warps_per_block = 8;

  /// Bytes fetched by one memory transaction (coalescing granularity).
  int transaction_bytes = 128;

  /// Bytes per adjacency element (VertexId).
  int element_bytes = 4;

  /// Warp-instructions an SM can issue per cycle (compute throughput).
  double issue_width = 4.0;

  /// Global-memory transactions an SM can complete per cycle. This is an
  /// *effective* rate including L2 hits, sized so the triangle-counting
  /// kernels run near the compute/memory roofline ridge like their CUDA
  /// originals do; raw DRAM alone would make every kernel purely
  /// memory-bound and erase the resource-balance effects the paper studies.
  double mem_transactions_per_cycle = 4.0;

  /// Shared-memory transactions an SM can complete per cycle. Shared memory
  /// is its own pipeline (the paper's Section 5.3 calibrates against shared
  /// memory bandwidth separately from global coalescing).
  double shared_transactions_per_cycle = 8.0;

  /// Latency of one memory transaction, charged on a warp's critical path.
  double mem_latency_cycles = 40.0;

  /// Cycles charged for one intra-block __syncthreads().
  double sync_cost_cycles = 24.0;

  /// Shared memory per block (bytes); bounds Hu-style staging tiles.
  int shared_memory_bytes = 48 * 1024;

  /// Instruction multiplier charged to data-dependent-branch code (merge
  /// loops) for SIMT divergence: every merge step is a three-way
  /// data-dependent branch (advance left / advance right / match), and the
  /// warp executes all paths its lanes disagree on. Binary search runs a
  /// uniform probe loop and does not pay this.
  double simt_divergence_penalty = 3.0;

  /// SM clock in GHz; converts model cycles to reported milliseconds.
  double clock_ghz = 1.4;

  int threads_per_block() const { return warps_per_block * warp_size; }

  /// Adjacency elements covered by one memory transaction.
  int elements_per_transaction() const {
    return transaction_bytes / element_bytes;
  }

  /// A Titan-Xp-like default device (what all benches use).
  static DeviceSpec TitanXpLike() { return DeviceSpec{}; }

  /// A mid-range part: fewer SMs, narrower issue, slower memory and a
  /// smaller sync cost. Used to check that the preprocessing conclusions
  /// are not artifacts of one device configuration.
  static DeviceSpec MidrangeLike() {
    DeviceSpec spec;
    spec.num_sms = 12;
    spec.warps_per_block = 4;
    spec.issue_width = 2.0;
    spec.mem_transactions_per_cycle = 2.0;
    spec.shared_transactions_per_cycle = 4.0;
    spec.mem_latency_cycles = 60.0;
    spec.sync_cost_cycles = 16.0;
    spec.clock_ghz = 1.1;
    return spec;
  }

  /// A small device for tests: 2 SMs, 2 warps per block. Makes block/SM
  /// boundary behaviour easy to reason about in unit tests.
  static DeviceSpec Tiny() {
    DeviceSpec spec;
    spec.num_sms = 2;
    spec.warps_per_block = 2;
    return spec;
  }
};

}  // namespace gputc

#endif  // GPUTC_SIM_DEVICE_H_
