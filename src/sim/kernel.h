#ifndef GPUTC_SIM_KERNEL_H_
#define GPUTC_SIM_KERNEL_H_

#include <cstdint>
#include <vector>

#include "sim/block_cost.h"
#include "sim/device.h"

namespace gputc {

/// Aggregate result of one simulated kernel launch.
struct KernelStats {
  double cycles = 0.0;  // Makespan over SMs.
  double millis = 0.0;  // cycles / clock.
  int64_t num_blocks = 0;
  int64_t supersteps = 0;
  double total_ops = 0.0;
  double total_transactions = 0.0;
  double total_shared_transactions = 0.0;
  double compute_cycles = 0.0;  // Summed over blocks.
  double memory_cycles = 0.0;
  double shared_cycles = 0.0;
  double sync_cycles = 0.0;
  /// Mean SM busy-fraction relative to the makespan, in [0, 1].
  double sm_utilization = 0.0;

  /// Merges another launch into this one (sequential kernels).
  void Accumulate(const KernelStats& other);
};

/// Schedules priced blocks onto SMs and reports the kernel makespan.
///
/// The hardware work-distributor hands the next waiting block to the first
/// SM that frees up; we model exactly that greedy list-scheduling, which is
/// within 2x of optimal and matches real dispatch closely when blocks are
/// plentiful. Blocks run one-at-a-time per SM: concurrency *within* an SM is
/// already folded into BlockCostModel's throughput terms.
class KernelLauncher {
 public:
  explicit KernelLauncher(const DeviceSpec& spec) : spec_(spec) {}

  /// Launches `blocks` in order and returns the aggregate stats.
  KernelStats Launch(const std::vector<BlockCost>& blocks) const;

  const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
};

}  // namespace gputc

#endif  // GPUTC_SIM_KERNEL_H_
