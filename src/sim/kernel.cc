#include "sim/kernel.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace gputc {

void KernelStats::Accumulate(const KernelStats& other) {
  cycles += other.cycles;
  millis += other.millis;
  num_blocks += other.num_blocks;
  supersteps += other.supersteps;
  total_ops += other.total_ops;
  total_transactions += other.total_transactions;
  total_shared_transactions += other.total_shared_transactions;
  compute_cycles += other.compute_cycles;
  memory_cycles += other.memory_cycles;
  shared_cycles += other.shared_cycles;
  sync_cycles += other.sync_cycles;
  // Utilization of the combined launch is the busy-time weighted mean.
  sm_utilization = cycles > 0.0
                       ? (sm_utilization * (cycles - other.cycles) +
                          other.sm_utilization * other.cycles) /
                             cycles
                       : 0.0;
}

KernelStats KernelLauncher::Launch(const std::vector<BlockCost>& blocks) const {
  KernelStats stats;
  stats.num_blocks = static_cast<int64_t>(blocks.size());
  if (blocks.empty()) return stats;

  // Min-heap of SM finish times: greedy "first free SM takes next block".
  std::priority_queue<double, std::vector<double>, std::greater<>> sms;
  for (int s = 0; s < spec_.num_sms; ++s) sms.push(0.0);

  double busy = 0.0;
  double makespan = 0.0;
  for (const BlockCost& b : blocks) {
    const double start = sms.top();
    sms.pop();
    const double finish = start + b.cycles;
    sms.push(finish);
    makespan = std::max(makespan, finish);
    busy += b.cycles;

    stats.supersteps += b.supersteps;
    stats.total_ops += b.total_ops;
    stats.total_transactions += b.total_transactions;
    stats.total_shared_transactions += b.total_shared_transactions;
    stats.compute_cycles += b.compute_cycles;
    stats.memory_cycles += b.memory_cycles;
    stats.shared_cycles += b.shared_cycles;
    stats.sync_cycles += b.sync_cycles;
  }
  stats.cycles = makespan;
  stats.millis = makespan / (spec_.clock_ghz * 1e6);
  stats.sm_utilization =
      makespan > 0.0 ? busy / (makespan * spec_.num_sms) : 0.0;
  return stats;
}

}  // namespace gputc
