#include "sim/block_cost.h"

#include <algorithm>

#include "util/logging.h"

namespace gputc {

void BlockCostModel::BeginBlock() {
  current_.assign(static_cast<size_t>(spec_.threads_per_block()),
                  ThreadWork{});
  current_dirty_ = false;
  cost_ = BlockCost{};
}

void BlockCostModel::AddThreadWork(int thread_idx, const ThreadWork& work) {
  GPUTC_CHECK_GE(thread_idx, 0);
  GPUTC_CHECK_LT(thread_idx, spec_.threads_per_block());
  if (current_.empty()) BeginBlock();
  current_[static_cast<size_t>(thread_idx)] += work;
  current_dirty_ = true;
}

void BlockCostModel::EndSuperstep() { FoldSuperstep(/*charge_sync=*/true); }

void BlockCostModel::FoldSuperstep(bool charge_sync) {
  if (!current_dirty_) {
    if (charge_sync) {
      cost_.sync_cycles += spec_.sync_cost_cycles;
      ++cost_.supersteps;
    }
    return;
  }
  const int warp = spec_.warp_size;
  double compute_demand = 0.0;
  double total_transactions = 0.0;
  double total_shared = 0.0;
  double total_ops = 0.0;
  double critical = 0.0;
  for (size_t w = 0; w * warp < current_.size(); ++w) {
    double warp_max_ops = 0.0;
    double warp_transactions = 0.0;
    for (size_t lane = 0; lane < static_cast<size_t>(warp); ++lane) {
      const size_t t = w * warp + lane;
      if (t >= current_.size()) break;
      warp_max_ops = std::max(warp_max_ops, current_[t].compute_ops);
      warp_transactions += current_[t].mem_transactions;
      total_ops += current_[t].compute_ops;
      total_transactions += current_[t].mem_transactions;
      total_shared += current_[t].shared_transactions;
    }
    // Lock-step: the warp retires warp_max_ops instructions regardless of
    // how few lanes actually need them.
    compute_demand += warp_max_ops;
    critical = std::max(
        critical, warp_max_ops + warp_transactions * spec_.mem_latency_cycles /
                                     static_cast<double>(warp));
  }
  const double compute_cycles = compute_demand / spec_.issue_width;
  const double memory_cycles =
      total_transactions / spec_.mem_transactions_per_cycle;
  const double shared_cycles =
      total_shared / spec_.shared_transactions_per_cycle;
  cost_.compute_cycles += compute_cycles;
  cost_.memory_cycles += memory_cycles;
  cost_.shared_cycles += shared_cycles;
  cost_.critical_cycles += critical;
  cost_.total_ops += total_ops;
  cost_.total_transactions += total_transactions;
  cost_.total_shared_transactions += total_shared;
  cost_.cycles +=
      std::max({compute_cycles, memory_cycles, shared_cycles, critical});
  if (charge_sync) {
    cost_.sync_cycles += spec_.sync_cost_cycles;
    ++cost_.supersteps;
  }
  std::fill(current_.begin(), current_.end(), ThreadWork{});
  current_dirty_ = false;
}

BlockCost BlockCostModel::Finish() {
  if (current_dirty_) FoldSuperstep(/*charge_sync=*/false);
  cost_.cycles += cost_.sync_cycles;
  BlockCost result = cost_;
  cost_ = BlockCost{};
  current_dirty_ = false;
  return result;
}

BlockCost PriceBlock(const DeviceSpec& spec,
                     const std::vector<ThreadWork>& threads) {
  BlockCostModel model(spec);
  model.BeginBlock();
  for (size_t t = 0; t < threads.size(); ++t) {
    model.AddThreadWork(static_cast<int>(t), threads[t]);
  }
  return model.Finish();
}

}  // namespace gputc
