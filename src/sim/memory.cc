#include "sim/memory.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace gputc {

int64_t TransactionsForWarpAccess(std::span<const int64_t> element_indices,
                                  const DeviceSpec& spec) {
  const int per_txn = spec.elements_per_transaction();
  std::unordered_set<int64_t> segments;
  for (int64_t idx : element_indices) {
    segments.insert(idx / per_txn);
  }
  return static_cast<int64_t>(segments.size());
}

int ProbesForBinarySearch(int64_t len) {
  if (len <= 0) return 0;
  int probes = 1;
  while (len > 1) {
    len >>= 1;
    ++probes;
  }
  return probes;
}

int64_t ThreadBinarySearchTransactions(int64_t len, const DeviceSpec& spec) {
  if (len <= 0) return 0;
  const int64_t per_txn = spec.elements_per_transaction();
  // Each halving step whose active range still spans > 1 segment lands in a
  // fresh segment; once the range fits one segment all remaining probes are
  // free (the paper's Figure 4: 3 transactions on the long list, 1 on the
  // short one).
  int64_t transactions = 1;
  int64_t range = len;
  while (range > per_txn) {
    range >>= 1;
    ++transactions;
  }
  return transactions;
}

int64_t WarpSharedListSearchTransactions(int64_t len, int active_lanes,
                                         const DeviceSpec& spec) {
  if (len <= 0 || active_lanes <= 0) return 0;
  const int64_t per_txn = spec.elements_per_transaction();
  const int64_t segments =
      (len + per_txn - 1) / per_txn;  // Segments covering the list.
  const int probes = ProbesForBinarySearch(len);
  int64_t total = 0;
  // At probe level L the lanes' positions are confined to 2^L disjoint
  // subranges of the list; distinct transactions are bounded by the lane
  // count, the subrange count, and the number of physical segments.
  for (int level = 0; level < probes; ++level) {
    const int64_t subranges = int64_t{1} << std::min(level, 62);
    total += std::min<int64_t>({active_lanes, subranges, segments});
  }
  return total;
}

int64_t WarpDistinctListsTransactionsPerProbe(int64_t len, int active_lanes,
                                              const DeviceSpec& spec) {
  if (len <= 0 || active_lanes <= 0) return 0;
  const int64_t per_txn = spec.elements_per_transaction();
  // Lanes probe lists laid out consecutively in the CSR; a segment spans
  // per_txn elements, i.e. about per_txn / len adjacent lists.
  const int64_t lanes_per_segment = std::max<int64_t>(1, per_txn / len);
  return (active_lanes + lanes_per_segment - 1) / lanes_per_segment;
}

BandwidthSample BandwidthProfiler::Measure(int64_t list_length) const {
  BandwidthSample sample;
  sample.list_length = list_length;
  if (list_length <= 0) return sample;
  const int lanes = spec_.warp_size;
  const int probes = ProbesForBinarySearch(list_length);
  // Every probe step is one lock-step instruction; transactions follow the
  // workload's coalescing model: a full warp searching `lanes` distinct
  // lists (Hu / thread-per-task kernels) or `lanes` keys in one shared list
  // (TriCore / warp-cooperative kernels).
  const int64_t total_txn =
      workload_ == SearchWorkload::kDistinctLists
          ? WarpDistinctListsTransactionsPerProbe(list_length, lanes, spec_) *
                probes
          : WarpSharedListSearchTransactions(list_length, lanes, spec_);
  const double cycles =
      static_cast<double>(probes) +
      static_cast<double>(total_txn) / spec_.mem_transactions_per_cycle;
  sample.probes_per_search = probes;
  sample.transactions_per_search =
      static_cast<double>(total_txn) / static_cast<double>(lanes);
  sample.bytes_per_cycle =
      static_cast<double>(total_txn) * spec_.transaction_bytes / cycles;
  return sample;
}

std::vector<BandwidthSample> BandwidthProfiler::Sweep(
    int64_t max_length) const {
  std::vector<BandwidthSample> samples;
  for (int64_t len = 1; len <= max_length; len *= 2) {
    samples.push_back(Measure(len));
  }
  return samples;
}

double BandwidthProfiler::BandwidthAt(int64_t list_length) const {
  return Measure(std::max<int64_t>(1, list_length)).bytes_per_cycle;
}

}  // namespace gputc
