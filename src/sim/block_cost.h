#ifndef GPUTC_SIM_BLOCK_COST_H_
#define GPUTC_SIM_BLOCK_COST_H_

#include <cstdint>
#include <vector>

#include "sim/device.h"

namespace gputc {

/// Work one thread performs between two synchronization points (or in total
/// for non-BSP kernels): straight-line compute operations plus global-memory
/// transactions attributed to that thread.
struct ThreadWork {
  double compute_ops = 0.0;
  double mem_transactions = 0.0;     // Global memory.
  double shared_transactions = 0.0;  // Shared memory (separate pipeline).

  ThreadWork& operator+=(const ThreadWork& other) {
    compute_ops += other.compute_ops;
    mem_transactions += other.mem_transactions;
    shared_transactions += other.shared_transactions;
    return *this;
  }
};

/// Cost of one executed block.
struct BlockCost {
  double cycles = 0.0;           // Modelled execution time of the block.
  double compute_cycles = 0.0;   // Compute-throughput component.
  double memory_cycles = 0.0;    // Global-memory throughput component.
  double shared_cycles = 0.0;    // Shared-memory throughput component.
  double critical_cycles = 0.0;  // Longest single-warp critical path.
  double sync_cycles = 0.0;      // Synchronization overhead.
  int64_t supersteps = 0;
  double total_ops = 0.0;
  double total_transactions = 0.0;
  double total_shared_transactions = 0.0;
};

/// Accumulates per-thread work for one block and prices it.
///
/// Model (an executable version of the paper's two analytic models):
///  * Threads are packed into warps of warp_size; lock-step execution makes a
///    warp's compute time the max over its lanes (thread divergence).
///  * A superstep costs max(compute_demand, memory_demand, critical_path)
///    + sync_cost:
///      - compute_demand = sum over warps of warp-max compute / issue_width
///        -> intra-block imbalance raises warp maxima (intra-block BSP
///           model, Eq. 1);
///      - memory_demand = total transactions / mem_transactions_per_cycle
///        -> a block overloaded with memory-intensive tasks is memory-bound
///           while its compute units idle (resource balance model, Eq. 3);
///      - critical_path = slowest single warp executed alone (its compute
///        plus its transactions at memory latency spacing), which dominates
///        when too few warps remain to hide latency.
///  * Non-BSP kernels use one implicit superstep with zero sync cost.
class BlockCostModel {
 public:
  explicit BlockCostModel(const DeviceSpec& spec) : spec_(spec) {}

  /// Starts a new block. Any previously accumulated work is discarded.
  void BeginBlock();

  /// Adds `work` to thread `thread_idx` (0-based within the block) of the
  /// current superstep. thread_idx must be < threads_per_block.
  void AddThreadWork(int thread_idx, const ThreadWork& work);

  /// Closes the current superstep (BSP kernels call this at every
  /// __syncthreads()).
  void EndSuperstep();

  /// Prices the block. Implicitly closes a trailing superstep that has
  /// accumulated work. Non-BSP kernels simply never call EndSuperstep() and
  /// pay no sync cost.
  BlockCost Finish();

  const DeviceSpec& spec() const { return spec_; }

 private:
  void FoldSuperstep(bool charge_sync);

  DeviceSpec spec_;
  std::vector<ThreadWork> current_;  // Per-thread work in the open superstep.
  bool current_dirty_ = false;
  BlockCost cost_;
};

/// Convenience: prices a single-superstep block from per-thread work.
BlockCost PriceBlock(const DeviceSpec& spec,
                     const std::vector<ThreadWork>& threads);

}  // namespace gputc

#endif  // GPUTC_SIM_BLOCK_COST_H_
