#include "sim/device.h"

// DeviceSpec is a plain options struct; all members are defined inline in the
// header. This translation unit exists so the target has a stable archive
// member for the header and a place for future out-of-line helpers.

namespace gputc {}  // namespace gputc
