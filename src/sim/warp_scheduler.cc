#include "sim/warp_scheduler.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace gputc {
namespace {

/// A pool of identical servers; Acquire returns the start time for a job
/// that becomes ready at `ready` and occupies a server for `duration`.
class ServerPool {
 public:
  ServerPool(int servers, double rate) : rate_(rate) {
    GPUTC_CHECK_GT(servers, 0);
    GPUTC_CHECK_GT(rate, 0.0);
    for (int i = 0; i < servers; ++i) free_.push(0.0);
  }

  double Acquire(double ready, double work, double* busy) {
    const double duration = work / rate_;
    const double start = std::max(ready, free_.top());
    free_.pop();
    free_.push(start + duration);
    *busy += duration;
    return start + duration;
  }

 private:
  double rate_;
  std::priority_queue<double, std::vector<double>, std::greater<>> free_;
};

struct WarpEvent {
  double ready = 0.0;
  int warp = 0;
  size_t segment = 0;

  bool operator>(const WarpEvent& other) const {
    return ready > other.ready || (ready == other.ready && warp > other.warp);
  }
};

}  // namespace

ScheduleResult WarpSchedulerSim::RunBlock(
    const std::vector<WarpTrace>& warps) const {
  ScheduleResult result;
  // issue_width concurrent warp-instruction streams at 1 cycle each; a
  // single memory pipeline at mem_transactions_per_cycle.
  ServerPool compute(std::max(1, static_cast<int>(spec_.issue_width)), 1.0);
  ServerPool memory(1, spec_.mem_transactions_per_cycle);

  std::priority_queue<WarpEvent, std::vector<WarpEvent>, std::greater<>> queue;
  for (int w = 0; w < static_cast<int>(warps.size()); ++w) {
    if (!warps[static_cast<size_t>(w)].empty()) {
      queue.push(WarpEvent{0.0, w, 0});
    }
  }

  while (!queue.empty()) {
    WarpEvent ev = queue.top();
    queue.pop();
    const WarpSegment& seg = warps[static_cast<size_t>(ev.warp)][ev.segment];
    double t = ev.ready;
    if (seg.compute_cycles > 0.0) {
      t = compute.Acquire(t, seg.compute_cycles, &result.compute_busy);
    }
    if (seg.mem_transactions > 0.0) {
      // The warp observes the transaction latency once, plus queueing on the
      // memory pipeline's throughput.
      t = memory.Acquire(t, seg.mem_transactions, &result.memory_busy) +
          spec_.mem_latency_cycles;
    }
    result.cycles = std::max(result.cycles, t);
    if (ev.segment + 1 < warps[static_cast<size_t>(ev.warp)].size()) {
      queue.push(WarpEvent{t, ev.warp, ev.segment + 1});
    }
  }
  return result;
}

}  // namespace gputc
