#include "sim/profiler.h"

#include <algorithm>
#include <sstream>

#include "util/table.h"

namespace gputc {

std::string ToString(KernelBottleneck bottleneck) {
  switch (bottleneck) {
    case KernelBottleneck::kCompute:
      return "compute";
    case KernelBottleneck::kGlobalMemory:
      return "global-memory";
    case KernelBottleneck::kSharedMemory:
      return "shared-memory";
    case KernelBottleneck::kSynchronization:
      return "synchronization";
    case KernelBottleneck::kLoadImbalance:
      return "load-imbalance";
    case KernelBottleneck::kIdle:
      return "idle";
  }
  return "unknown";
}

KernelReport ProfileKernel(const KernelStats& stats,
                           double imbalance_threshold) {
  KernelReport report;
  report.sm_utilization = stats.sm_utilization;
  if (stats.num_blocks > 0) {
    report.supersteps_per_block =
        static_cast<double>(stats.supersteps) /
        static_cast<double>(stats.num_blocks);
  }
  if (stats.total_transactions > 0.0) {
    report.ops_per_transaction = stats.total_ops / stats.total_transactions;
  }
  const double total = stats.compute_cycles + stats.memory_cycles +
                       stats.shared_cycles + stats.sync_cycles;
  if (total <= 0.0) {
    report.bottleneck = KernelBottleneck::kIdle;
    return report;
  }
  struct Entry {
    double cycles;
    KernelBottleneck kind;
  };
  const Entry entries[] = {
      {stats.compute_cycles, KernelBottleneck::kCompute},
      {stats.memory_cycles, KernelBottleneck::kGlobalMemory},
      {stats.shared_cycles, KernelBottleneck::kSharedMemory},
      {stats.sync_cycles, KernelBottleneck::kSynchronization},
  };
  const Entry* top = &entries[0];
  for (const Entry& e : entries) {
    if (e.cycles > top->cycles) top = &e;
  }
  report.bottleneck = top->kind;
  report.bottleneck_fraction = top->cycles / total;
  // Stragglers trump resource mix: when most SMs sit idle, the fix is load
  // balance, not more bandwidth.
  if (stats.sm_utilization > 0.0 &&
      stats.sm_utilization < imbalance_threshold) {
    report.bottleneck = KernelBottleneck::kLoadImbalance;
  }
  return report;
}

void AnnotateSpanWithKernel(Span& span, const KernelStats& stats) {
  if (!span.active()) return;
  const KernelReport report = ProfileKernel(stats);
  span.SetAttr("model_ms", stats.millis);
  span.SetAttr("blocks", stats.num_blocks);
  span.SetAttr("bottleneck", ToString(report.bottleneck));
  span.SetAttr("sm_utilization", report.sm_utilization);
  span.SetAttr("ops_per_transaction", report.ops_per_transaction);
  span.SetAttr("supersteps_per_block", report.supersteps_per_block);
}

std::string FormatKernelReport(const KernelStats& stats) {
  const KernelReport report = ProfileKernel(stats);
  std::ostringstream out;
  out << "kernel: " << Fmt(stats.millis, 4) << " ms ("
      << FmtCount(static_cast<int64_t>(stats.cycles)) << " cycles, "
      << FmtCount(stats.num_blocks) << " blocks)\n"
      << "  bottleneck:        " << ToString(report.bottleneck) << " ("
      << Frac(report.bottleneck_fraction) << " of block time)\n"
      << "  sm utilization:    " << Frac(report.sm_utilization) << "\n"
      << "  ops/transaction:   " << Fmt(report.ops_per_transaction, 2) << "\n"
      << "  supersteps/block:  " << Fmt(report.supersteps_per_block, 1)
      << "\n"
      << "  cycles by resource: compute="
      << FmtCount(static_cast<int64_t>(stats.compute_cycles))
      << " global=" << FmtCount(static_cast<int64_t>(stats.memory_cycles))
      << " shared=" << FmtCount(static_cast<int64_t>(stats.shared_cycles))
      << " sync=" << FmtCount(static_cast<int64_t>(stats.sync_cycles))
      << "\n";
  return out.str();
}

}  // namespace gputc
