#ifndef GPUTC_SIM_WARP_SCHEDULER_H_
#define GPUTC_SIM_WARP_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "sim/device.h"

namespace gputc {

/// One step in a warp's execution trace: `compute_cycles` of arithmetic
/// followed by `mem_transactions` outstanding memory transactions the warp
/// must wait on before its next segment.
struct WarpSegment {
  double compute_cycles = 0.0;
  double mem_transactions = 0.0;
};

/// A warp's full trace within one block.
using WarpTrace = std::vector<WarpSegment>;

/// Result of scheduling one block's warps.
struct ScheduleResult {
  double cycles = 0.0;          // Block finish time.
  double compute_busy = 0.0;    // Cycles the issue pipeline was busy.
  double memory_busy = 0.0;     // Cycles the memory pipeline was busy.
};

/// Fine-grained event-driven warp scheduler, used to validate the closed-form
/// BlockCostModel (see sim_agreement_test and bench_ablation_model_agreement).
///
/// Warps alternate compute and memory phases. The SM has a compute resource
/// issuing `issue_width` warp-cycles per cycle and a memory resource
/// completing `mem_transactions_per_cycle` transactions per cycle; while one
/// warp waits on memory, ready warps consume the compute resource — the
/// latency-hiding mechanism the paper's resource balance model exploits.
/// Greedy list scheduling over segment events; deterministic.
class WarpSchedulerSim {
 public:
  explicit WarpSchedulerSim(const DeviceSpec& spec) : spec_(spec) {}

  /// Runs every warp trace to completion and returns block timing.
  ScheduleResult RunBlock(const std::vector<WarpTrace>& warps) const;

 private:
  DeviceSpec spec_;
};

}  // namespace gputc

#endif  // GPUTC_SIM_WARP_SCHEDULER_H_
