#ifndef GPUTC_SIM_PROFILER_H_
#define GPUTC_SIM_PROFILER_H_

#include <string>

#include "obs/trace.h"
#include "sim/kernel.h"

namespace gputc {

/// Which resource bound a kernel's runtime (the roofline corner it sits in).
enum class KernelBottleneck {
  kCompute,
  kGlobalMemory,
  kSharedMemory,
  kSynchronization,
  kLoadImbalance,  // SMs idle: makespan far above mean busy time.
  kIdle,           // No work.
};

/// nvprof-style digest of one simulated kernel launch.
struct KernelReport {
  KernelBottleneck bottleneck = KernelBottleneck::kIdle;
  /// Fraction of the summed block time spent on the bottleneck resource.
  double bottleneck_fraction = 0.0;
  /// Useful compute ops per global transaction (arithmetic intensity).
  double ops_per_transaction = 0.0;
  /// Mean SM busy fraction (= KernelStats::sm_utilization).
  double sm_utilization = 0.0;
  /// Mean supersteps per block (0 for non-BSP kernels).
  double supersteps_per_block = 0.0;
};

/// Human-readable name of a bottleneck ("compute", "global-memory", ...).
std::string ToString(KernelBottleneck bottleneck);

/// Classifies a kernel launch. A launch with sm_utilization below
/// `imbalance_threshold` is tagged kLoadImbalance regardless of resource
/// mix — the straggler regime D-order creates.
KernelReport ProfileKernel(const KernelStats& stats,
                           double imbalance_threshold = 0.5);

/// Multi-line textual report (used by the explorer example and tools).
std::string FormatKernelReport(const KernelStats& stats);

/// Attaches the modelled kernel costs and the ProfileKernel classification
/// to `span` as attributes (model_ms, blocks, bottleneck, sm_utilization,
/// ops_per_transaction, supersteps_per_block) — how a count span in a Chrome
/// trace carries the simulator's attribution. No-op on an inert span.
void AnnotateSpanWithKernel(Span& span, const KernelStats& stats);

}  // namespace gputc

#endif  // GPUTC_SIM_PROFILER_H_
