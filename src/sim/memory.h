#ifndef GPUTC_SIM_MEMORY_H_
#define GPUTC_SIM_MEMORY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sim/device.h"

namespace gputc {

// Memory coalescing model (Section 3.2 of the paper, Figures 4 and 5).
//
// A warp's lanes issue one access each per step; the hardware merges lanes
// whose addresses fall into the same `transaction_bytes` segment. Binary
// search over a short list keeps all lanes inside one segment (one
// transaction); over a long list the probes scatter and each lane costs its
// own transaction.

/// Number of memory transactions needed to service one warp-wide access to
/// the element addresses in `element_indices` (global element index space,
/// i.e. address = index * element_bytes). Duplicate/coalesced segments are
/// merged. Empty input costs 0.
int64_t TransactionsForWarpAccess(std::span<const int64_t> element_indices,
                                  const DeviceSpec& spec);

/// Number of probes a binary search performs on a list of length `len`
/// (floor(log2(len)) + 1; 0 for an empty list).
int ProbesForBinarySearch(int64_t len);

/// Transactions charged for ONE thread's binary search over a list of length
/// `len` (Figure 4): every probe whose remaining range spans more than one
/// transaction segment costs a fresh transaction; the tail of the search
/// stays inside one segment and costs a single transaction.
int64_t ThreadBinarySearchTransactions(int64_t len, const DeviceSpec& spec);

/// Transactions charged for a warp in which `active_lanes` lanes binary
/// search DIFFERENT keys in the SAME list of length `len` (Figure 5, the
/// TriCore warp-per-edge pattern): the first probes hit shared tree levels
/// and coalesce; deeper levels diverge up to min(active_lanes, segments).
int64_t WarpSharedListSearchTransactions(int64_t len, int active_lanes,
                                         const DeviceSpec& spec);

/// Transactions charged per probe step for a warp whose lanes search
/// DIFFERENT lists of length ~`len` laid out consecutively (the Hu
/// thread-per-wedge pattern): short lists pack several lanes per segment,
/// long lists give one transaction per lane.
int64_t WarpDistinctListsTransactionsPerProbe(int64_t len, int active_lanes,
                                              const DeviceSpec& spec);

/// One point of the Figure 8 bandwidth curve.
struct BandwidthSample {
  int64_t list_length = 0;
  /// Consumed memory bandwidth in bytes/cycle for a full warp binary
  /// searching lists of this length.
  double bytes_per_cycle = 0.0;
  double transactions_per_search = 0.0;
  double probes_per_search = 0.0;
};

/// Warp-level search pattern a profile measures — the two access patterns
/// the paper's algorithms use (Section 5.3 notes the parameter
/// determination is repeated per algorithm).
enum class SearchWorkload {
  /// Every lane binary searches its OWN list (Hu / Gunrock / Polak
  /// thread-per-task kernels).
  kDistinctLists,
  /// All lanes search different keys in the SAME list (TriCore / Fox
  /// warp-cooperative kernels).
  kCooperativeWarp,
};

/// Measures the simulated shared/global memory bandwidth of warp binary
/// searches as a function of list length — the simulator's replacement for
/// the paper's nvprof measurement. Deterministic.
class BandwidthProfiler {
 public:
  explicit BandwidthProfiler(
      const DeviceSpec& spec,
      SearchWorkload workload = SearchWorkload::kDistinctLists)
      : spec_(spec), workload_(workload) {}

  /// Profile one list length.
  BandwidthSample Measure(int64_t list_length) const;

  /// Profile a log-spaced sweep of lengths in [1, max_length].
  std::vector<BandwidthSample> Sweep(int64_t max_length) const;

  /// Interpolated BW(d) in bytes/cycle; the paper's BW(d~(v)) input to
  /// F_m(d) = sqrt(BW(d)).
  double BandwidthAt(int64_t list_length) const;

 private:
  DeviceSpec spec_;
  SearchWorkload workload_;
};

}  // namespace gputc

#endif  // GPUTC_SIM_MEMORY_H_
