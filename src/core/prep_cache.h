#ifndef GPUTC_CORE_PREP_CACHE_H_
#define GPUTC_CORE_PREP_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/preprocess.h"
#include "graph/graph.h"
#include "graph/permutation.h"
#include "graph/types.h"
#include "sim/device.h"
#include "util/deadline.h"
#include "util/status.h"

namespace gputc {

// Content-addressed cache of the paper's preprocessing layer. The whole
// contribution of A-direction + A-order + calibration is that it is computed
// once per (graph, device, options) and reused by any downstream counter —
// this cache makes that reuse real at serving scale: a request whose
// fingerprint was seen before skips the direction/ordering/calibration
// recompute entirely and rebuilds the preprocessed graph from the cached
// artifact.
//
// Two tiers:
//  * tier 1 — in-process sharded LRU over decoded artifacts, bounded by a
//    byte budget, with single-flight dedup: concurrent requests for the same
//    key block on one computation instead of racing N identical ones
//    (critical under `gputc batch --jobs` / `gputc serve` fan-in).
//  * tier 2 — an optional durable store (service/cache_store.h) behind the
//    PrepCacheStore interface; consulted on a tier-1 miss and populated
//    after a fill. Corruption there is *never* an error for the caller: a
//    DataLoss load falls back to recompute and the artifact is re-written.
//
// Keys are content fingerprints, not names: the CRC digest of the graph's
// CSR sections (the same Crc32c the v2 binary format frames them with),
// every PreprocessOptions field that changes the artifact, the full
// calibration DeviceSpec, and a code-schema version — so a one-edge edit, a
// flag flip, a different device, or an artifact-format change each miss
// cleanly instead of aliasing.

/// Bump when the artifact contents or the fingerprint inputs change shape:
/// old cache entries (tier 1 and tier 2) become unreachable instead of being
/// misinterpreted.
inline constexpr int kPrepCacheSchemaVersion = 1;

/// Tier-1 byte budget used when a caller enables the cache without sizing it
/// (`--prep-cache DIR` with no `--prep-cache-mb`).
inline constexpr int64_t kDefaultPrepCacheBytes = int64_t{256} << 20;

/// Everything preprocessing produces that is worth reusing: the oriented +
/// relabeled CSR the counters consume, the vertex permutation, the
/// calibration table, and the cost diagnostics. Deliberately *excludes*
/// timings — those describe one run, not the artifact.
struct PrepArtifact {
  /// CSR of the preprocessed DirectedGraph (post-orientation,
  /// post-relabeling) — DirectedGraph::FromParts(offsets, adj) rebuilds it
  /// byte-for-byte identically to the original compute.
  std::vector<EdgeCount> offsets;
  std::vector<VertexId> adj;
  /// old id -> new id mapping the relabeling applied.
  Permutation vertex_perm;
  /// Calibration carried by the artifact (valid when `calibrated`): lambda
  /// plus the BW(2^i) table, enough to rebuild the ResourceModel exactly.
  bool calibrated = false;
  double lambda = 0.0;
  std::vector<double> bw_by_log2_len;
  double direction_cost = 0.0;  // Eq. 1 of the cached orientation.
  double ordering_cost = 0.0;   // Eq. 3 of the cached ordering.

  /// Heap bytes this artifact pins in tier 1 (the LRU accounting unit).
  int64_t ByteSize() const;
};

/// Compact binary encoding (magic + schema version + sized sections). The
/// cache is a same-machine artifact — encoding is host-endian and the
/// tier-2 store protects the bytes with CRC framing, not portability.
std::string EncodePrepArtifact(const PrepArtifact& artifact);

/// InvalidArgument on a foreign or truncated buffer, never a partial
/// artifact.
StatusOr<PrepArtifact> DecodePrepArtifact(std::string_view bytes);

/// A resolved cache key. `canonical` is the full human-readable fingerprint
/// (the equality key — collision-free by construction); `hash`/`id` are
/// derived digests for shard selection and tier-2 file naming. Tier 2 stores
/// `canonical` inside the artifact file and verifies it on load, so an id
/// collision degrades to a miss, never to a wrong artifact.
struct PrepCacheKey {
  std::string canonical;
  uint64_t hash = 0;
  std::string id;  // 16 hex digits, filesystem-safe.
};

/// Fingerprints (graph, device, options). Costs one CRC pass over the CSR
/// arrays — noise next to the preprocessing it stands in for. The
/// `prep_cache` pointer itself is excluded; every field that changes the
/// artifact (direction, ordering, bucket size, sort flag, calibrate, seed,
/// full DeviceSpec) is included, which is exactly why the executor's
/// degradation ladder keys each rung separately: DegradedOptions edits those
/// fields, so each variant lands on its own entry.
PrepCacheKey PrepFingerprint(const Graph& g, const DeviceSpec& spec,
                             const PreprocessOptions& options);

/// Tier-2 backing store interface (implemented by service/cache_store.h's
/// DiskCacheStore; core stays below the service layer). Load returns the
/// encoded artifact bytes, NotFound when absent, DataLoss when present but
/// corrupt — the cache treats both as a miss, and re-Stores after refill.
class PrepCacheStore {
 public:
  virtual ~PrepCacheStore() = default;
  virtual StatusOr<std::string> Load(const PrepCacheKey& key) = 0;
  virtual Status Store(const PrepCacheKey& key, std::string_view encoded) = 0;
};

/// Point-in-time counters for `gputc cache stats`, tests, and the bench.
struct PrepCacheStats {
  int64_t memory_hits = 0;
  int64_t disk_hits = 0;
  int64_t misses = 0;          // Fills actually computed.
  int64_t evictions = 0;
  int64_t load_errors = 0;     // Tier-2 DataLoss, recovered by recompute.
  int64_t store_errors = 0;    // Tier-2 write failures, result unaffected.
  int64_t coalesced_waits = 0; // Callers that piggybacked on another's fill.
  int64_t resident_bytes = 0;
  int64_t resident_entries = 0;
};

class PrepCache {
 public:
  using FillFn = std::function<StatusOr<PrepArtifact>()>;

  /// `byte_budget` bounds tier-1 resident artifact bytes (<= 0 = unbounded);
  /// `store` (optional, not owned, must outlive the cache) is tier 2.
  /// `shards` splits the LRU to cut lock contention; eviction enforces the
  /// *global* budget but walks the inserting shard's tail, so cross-shard
  /// eviction order is approximate — single-shard caches are exact (tests
  /// use shards = 1 when asserting LRU order).
  explicit PrepCache(int64_t byte_budget, PrepCacheStore* store = nullptr,
                     int shards = 8);

  PrepCache(const PrepCache&) = delete;
  PrepCache& operator=(const PrepCache&) = delete;

  /// The single-flight lookup: tier-1 hit returns immediately; otherwise
  /// exactly one caller per key runs tier-2 load / `fill` while concurrent
  /// callers for the same key block on its result (polling `ctx`, so a
  /// deadline or cancellation reaches waiters). A fill error propagates to
  /// every waiter and caches nothing. The returned artifact is shared and
  /// immutable; it stays valid after eviction for as long as the caller
  /// holds the pointer.
  StatusOr<std::shared_ptr<const PrepArtifact>> GetOrCompute(
      const PrepCacheKey& key, const ExecContext& ctx, const FillFn& fill);

  /// Tier-1 residency probe (no LRU promotion, no tier-2 I/O) — the
  /// admission controller's "will this request skip recompute" question.
  bool Contains(const PrepCacheKey& key) const;

  /// Drops every tier-1 entry (tier 2 untouched; in-flight fills complete
  /// and re-insert). Safe mid-run: evicted artifacts stay alive for holders.
  void Purge();

  PrepCacheStats stats() const;
  int64_t byte_budget() const { return byte_budget_; }

 private:
  /// One key's in-flight computation; waiters block on `cv`.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = OkStatus();
    std::shared_ptr<const PrepArtifact> value;
  };

  struct Entry {
    std::string canonical;
    std::shared_ptr<const PrepArtifact> value;
    int64_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::unordered_map<std::string, std::shared_ptr<Flight>> inflight;
  };

  Shard& ShardFor(const PrepCacheKey& key) const;
  /// Inserts under the shard lock and evicts the shard's LRU tail until the
  /// global budget holds again.
  void Insert(Shard& shard, const PrepCacheKey& key,
              std::shared_ptr<const PrepArtifact> value);
  /// Waits on an in-flight fill, polling `ctx` so deadline/cancel land.
  StatusOr<std::shared_ptr<const PrepArtifact>> AwaitFlight(
      const std::shared_ptr<Flight>& flight, const ExecContext& ctx);

  const int64_t byte_budget_;
  PrepCacheStore* const store_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<int64_t> resident_bytes_{0};
  std::atomic<int64_t> resident_entries_{0};
  std::atomic<int64_t> memory_hits_{0};
  std::atomic<int64_t> disk_hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> load_errors_{0};
  std::atomic<int64_t> store_errors_{0};
  std::atomic<int64_t> coalesced_waits_{0};
};

/// Rebuilds a PreprocessResult from a cached artifact: FromParts + the
/// stored permutation/costs/calibration. Deterministic and allocation-only,
/// so a cache hit's result is byte-identical to the compute that produced
/// the artifact. Timings report the rebuild, not the original compute.
StatusOr<PreprocessResult> MaterializePreprocess(const PrepArtifact& artifact,
                                                 const ExecContext& ctx);

/// Runs the full (uncached) preprocessing for `options` and packages the
/// result as an artifact — the cache's fill function. Lives in preprocess.cc
/// next to the pipeline it snapshots.
StatusOr<PrepArtifact> ComputePrepArtifact(const Graph& g,
                                           const DeviceSpec& spec,
                                           const PreprocessOptions& options,
                                           const ExecContext& ctx);

}  // namespace gputc

#endif  // GPUTC_CORE_PREP_CACHE_H_
