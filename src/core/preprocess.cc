#include "core/preprocess.h"

#include <numeric>

#include <utility>

#include "core/prep_cache.h"
#include "direction/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "order/calibration.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gputc {
namespace {

/// Per-stage host-time histogram, shared with pipeline.cc's count stage via
/// the stage label — the Prometheus view of the paper's load→...→count
/// breakdown. Range covers microsecond-fast test graphs up to second-scale
/// datasets; slower runs land in the +Inf bucket.
void RecordStageMillis(const char* stage, double ms) {
  MetricsRegistry::Global()
      .GetHistogram("gputc_stage_duration_ms",
                    "Host wall-clock of one pipeline stage in milliseconds",
                    0.0, 1000.0, 20, {{"stage", stage}})
      .Observe(ms);
}

}  // namespace

PreprocessResult Preprocess(const Graph& g, const DeviceSpec& spec,
                            const PreprocessOptions& options) {
  StatusOr<PreprocessResult> result =
      TryPreprocess(g, spec, options, ExecContext{});
  GPUTC_CHECK(result.ok()) << "Preprocess failed: "
                           << result.status().ToString();
  return *std::move(result);
}

namespace {

/// The fused (uncached) pipeline body, shared by the direct path and the
/// cache's fill function. `model` is resolved by the caller so the cache can
/// snapshot its BW table into the artifact.
StatusOr<PreprocessResult> PreprocessWithModel(const Graph& g,
                                               const DeviceSpec& spec,
                                               const PreprocessOptions& options,
                                               const ResourceModel& model,
                                               const ExecContext& ctx) {
  PreprocessResult result;
  result.lambda = model.lambda();

  Timer direction_timer;
  DirectedGraph directed;
  {
    Span direct_span = StartSpan(ctx, "direct");
    direct_span.SetAttr("strategy", ToString(options.direction));
    const ExecContext direct_ctx = WithSpan(ctx, direct_span);
    const std::vector<VertexId> rank =
        DirectionRank(g, options.direction, options.seed, &direct_ctx);
    directed = DirectedGraph::FromRank(g, rank);
    result.direction_ms = direction_timer.ElapsedMillis();
    result.direction_cost = DirectionCost(directed);
    direct_span.SetAttr("cost_eq1", result.direction_cost);
    direct_span.SetAttr("ms", result.direction_ms);
  }
  RecordStageMillis("direct", result.direction_ms);

  Timer ordering_timer;
  {
    Span order_span = StartSpan(ctx, "order");
    order_span.SetAttr("strategy", ToString(options.ordering));
    AOrderOptions aorder = options.aorder;
    if (aorder.bucket_size <= 0) aorder.bucket_size = spec.threads_per_block();
    const ExecContext order_ctx = WithSpan(ctx, order_span);
    aorder.exec = &order_ctx;
    result.vertex_perm = ComputeOrdering(g, directed, options.ordering, model,
                                         aorder, options.seed);
    // A-order packing polls ctx and returns a valid-but-unoptimized
    // permutation when it aborts; surface the stop instead of using it.
    GPUTC_RETURN_IF_ERROR(ctx.CheckContinue("preprocess.ordering"));
    result.graph = ApplyPermutation(directed, result.vertex_perm);
    result.ordering_ms = ordering_timer.ElapsedMillis();
    result.ordering_cost = OrderingImbalanceCost(
        directed.OutDegrees(), result.vertex_perm, aorder.bucket_size, model);
    order_span.SetAttr("cost_eq3", result.ordering_cost);
    order_span.SetAttr("ms", result.ordering_ms);
  }
  RecordStageMillis("order", result.ordering_ms);
  result.total_ms = result.direction_ms + result.ordering_ms;
  return result;
}

StatusOr<ResourceModel> ResolveModel(const DeviceSpec& spec,
                                     const PreprocessOptions& options) {
  if (options.calibrate) return TryCalibratedResourceModel(spec);
  return ResourceModel::Default();
}

}  // namespace

StatusOr<PreprocessResult> TryPreprocess(const Graph& g,
                                         const DeviceSpec& spec,
                                         const PreprocessOptions& options,
                                         const ExecContext& ctx) {
  GPUTC_INJECT_FAULT("preprocess");
  GPUTC_RETURN_IF_ERROR(ctx.CheckContinue("preprocess"));

  if (options.prep_cache != nullptr) {
    const PrepCacheKey key = PrepFingerprint(g, spec, options);
    GPUTC_ASSIGN_OR_RETURN(
        const std::shared_ptr<const PrepArtifact> artifact,
        options.prep_cache->GetOrCompute(key, ctx, [&]() {
          return ComputePrepArtifact(g, spec, options, ctx);
        }));
    return MaterializePreprocess(*artifact, ctx);
  }

  GPUTC_ASSIGN_OR_RETURN(const ResourceModel model,
                         ResolveModel(spec, options));
  return PreprocessWithModel(g, spec, options, model, ctx);
}

StatusOr<PrepArtifact> ComputePrepArtifact(const Graph& g,
                                           const DeviceSpec& spec,
                                           const PreprocessOptions& options,
                                           const ExecContext& ctx) {
  GPUTC_ASSIGN_OR_RETURN(const ResourceModel model,
                         ResolveModel(spec, options));
  GPUTC_ASSIGN_OR_RETURN(PreprocessResult result,
                         PreprocessWithModel(g, spec, options, model, ctx));
  PrepArtifact artifact;
  artifact.offsets = result.graph.offsets();
  artifact.adj = result.graph.adjacency();
  artifact.vertex_perm = std::move(result.vertex_perm);
  artifact.calibrated = options.calibrate;
  artifact.lambda = result.lambda;
  if (options.calibrate) artifact.bw_by_log2_len = model.bw_by_log2_len();
  artifact.direction_cost = result.direction_cost;
  artifact.ordering_cost = result.ordering_cost;
  return artifact;
}

StatusOr<PreprocessResult> MaterializePreprocess(const PrepArtifact& artifact,
                                                 const ExecContext& ctx) {
  GPUTC_RETURN_IF_ERROR(ctx.CheckContinue("prep.cache.materialize"));
  Timer timer;
  PreprocessResult result;
  result.graph = DirectedGraph::FromParts(artifact.offsets, artifact.adj);
  result.vertex_perm = artifact.vertex_perm;
  result.lambda = artifact.lambda;
  result.direction_cost = artifact.direction_cost;
  result.ordering_cost = artifact.ordering_cost;
  // A hit's "preprocessing time" is the rebuild, which is the whole point of
  // the cache; attribute it to the direction slot so total_ms stays honest.
  result.direction_ms = timer.ElapsedMillis();
  result.total_ms = result.direction_ms;
  return result;
}

std::vector<int64_t> ComputeEdgeAOrder(const DirectedGraph& g,
                                       const ResourceModel& model,
                                       int bucket_size,
                                       const ExecContext* exec) {
  // Each arc (u, v)'s resource profile is driven by the length of the list
  // it searches, d~(u) — the direct analogue of a vertex's out-degree in
  // vertex A-order (Section 6.4: "Memory intensive and computing intensive
  // operations are defined analogous to Hu's implementation").
  std::vector<EdgeCount> search_lengths;
  search_lengths.reserve(static_cast<size_t>(g.num_edges()));
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeCount du = g.out_degree(u);
    for (EdgeCount i = 0; i < du; ++i) search_lengths.push_back(du);
  }
  GPUTC_CHECK_LE(search_lengths.size(),
                 static_cast<size_t>(std::numeric_limits<VertexId>::max()))
      << "edge A-order limited to 2^32 arcs";
  AOrderOptions options;
  options.bucket_size = bucket_size;
  options.exec = exec;
  const AOrderResult aorder = AOrder(search_lengths, model, options);
  // aorder.perm maps arc index -> position; invert to a processing order.
  std::vector<int64_t> order(search_lengths.size());
  for (size_t arc = 0; arc < search_lengths.size(); ++arc) {
    order[aorder.perm[arc]] = static_cast<int64_t>(arc);
  }
  return order;
}

}  // namespace gputc
