#include "core/preprocess.h"

#include <numeric>

#include <utility>

#include "direction/cost_model.h"
#include "order/calibration.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gputc {

PreprocessResult Preprocess(const Graph& g, const DeviceSpec& spec,
                            const PreprocessOptions& options) {
  StatusOr<PreprocessResult> result =
      TryPreprocess(g, spec, options, ExecContext{});
  GPUTC_CHECK(result.ok()) << "Preprocess failed: "
                           << result.status().ToString();
  return *std::move(result);
}

StatusOr<PreprocessResult> TryPreprocess(const Graph& g,
                                         const DeviceSpec& spec,
                                         const PreprocessOptions& options,
                                         const ExecContext& ctx) {
  GPUTC_INJECT_FAULT("preprocess");
  GPUTC_RETURN_IF_ERROR(ctx.CheckContinue("preprocess"));
  PreprocessResult result;

  ResourceModel model = ResourceModel::Default();
  if (options.calibrate) {
    GPUTC_ASSIGN_OR_RETURN(model, TryCalibratedResourceModel(spec));
  }
  result.lambda = model.lambda();

  Timer direction_timer;
  const std::vector<VertexId> rank =
      DirectionRank(g, options.direction, options.seed);
  DirectedGraph directed = DirectedGraph::FromRank(g, rank);
  result.direction_ms = direction_timer.ElapsedMillis();
  result.direction_cost = DirectionCost(directed);

  Timer ordering_timer;
  AOrderOptions aorder = options.aorder;
  if (aorder.bucket_size <= 0) aorder.bucket_size = spec.threads_per_block();
  aorder.exec = &ctx;
  result.vertex_perm = ComputeOrdering(g, directed, options.ordering, model,
                                       aorder, options.seed);
  // A-order packing polls ctx and returns a valid-but-unoptimized
  // permutation when it aborts; surface the stop instead of using it.
  GPUTC_RETURN_IF_ERROR(ctx.CheckContinue("preprocess.ordering"));
  result.graph = ApplyPermutation(directed, result.vertex_perm);
  result.ordering_ms = ordering_timer.ElapsedMillis();
  result.total_ms = result.direction_ms + result.ordering_ms;

  result.ordering_cost = OrderingImbalanceCost(
      directed.OutDegrees(), result.vertex_perm, aorder.bucket_size, model);
  return result;
}

std::vector<int64_t> ComputeEdgeAOrder(const DirectedGraph& g,
                                       const ResourceModel& model,
                                       int bucket_size,
                                       const ExecContext* exec) {
  // Each arc (u, v)'s resource profile is driven by the length of the list
  // it searches, d~(u) — the direct analogue of a vertex's out-degree in
  // vertex A-order (Section 6.4: "Memory intensive and computing intensive
  // operations are defined analogous to Hu's implementation").
  std::vector<EdgeCount> search_lengths;
  search_lengths.reserve(static_cast<size_t>(g.num_edges()));
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeCount du = g.out_degree(u);
    for (EdgeCount i = 0; i < du; ++i) search_lengths.push_back(du);
  }
  GPUTC_CHECK_LE(search_lengths.size(),
                 static_cast<size_t>(std::numeric_limits<VertexId>::max()))
      << "edge A-order limited to 2^32 arcs";
  AOrderOptions options;
  options.bucket_size = bucket_size;
  options.exec = exec;
  const AOrderResult aorder = AOrder(search_lengths, model, options);
  // aorder.perm maps arc index -> position; invert to a processing order.
  std::vector<int64_t> order(search_lengths.size());
  for (size_t arc = 0; arc < search_lengths.size(); ++arc) {
    order[aorder.perm[arc]] = static_cast<int64_t>(arc);
  }
  return order;
}

}  // namespace gputc
