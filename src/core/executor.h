#ifndef GPUTC_CORE_EXECUTOR_H_
#define GPUTC_CORE_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "graph/graph.h"
#include "sim/device.h"
#include "tc/registry.h"
#include "util/deadline.h"
#include "util/status.h"

namespace gputc {

// The resilient front door of the library: wraps preprocess + count in an
// execution policy (deadline, modelled-cost ceiling, host memory budget)
// and a fallback chain, so a failure anywhere in the pipeline — an injected
// fault, a deadline expiry, a budget breach, a simulated-cost blowup, a
// triangle-count overflow — degrades the attempt or moves to the next
// algorithm instead of crashing, and every attempt leaves a trace record.

/// Resource limits of one execution. Zero/negative limits mean "none".
struct ExecutionPolicy {
  /// Wall-clock budget for the whole execution (all stages together).
  double timeout_ms = 0.0;
  /// Ceiling on the *modelled* kernel time of an accepted result: a run
  /// whose simulated cost blows past this is treated as a failed attempt.
  double max_model_ms = 0.0;
  /// Host memory budget; checked against EstimateHostBytes(g) up front.
  int64_t mem_budget_bytes = 0;
  /// Degraded retries per stage after its base attempt, walking the ladder
  /// base -> drop A-order -> drop A-direction (and calibration).
  int max_retries_per_stage = 2;
  /// Triangle accumulator ceiling (ExecContext::count_limit). Production
  /// leaves it at int64 max; tests lower it to exercise overflow handling.
  int64_t count_limit = std::numeric_limits<int64_t>::max();
  /// External cancellation handle threaded into the execution context.
  /// Copies share one flag, so a caller (the batch service's watchdog, a
  /// signal handler's drain path) can stop the run from another thread; a
  /// default-constructed token never fires.
  CancelToken cancel;
  /// Observability sink (optional, not owned). When set, the executor opens
  /// a "validate" span for the up-front GraphDoctor pass and one "attempt"
  /// span per stage x variant; pipeline stage spans nest under the attempt.
  Tracer* tracer = nullptr;
  /// Trace to join. Zero with a tracer set means "start a fresh trace".
  uint64_t trace_id = 0;
  /// Span the execution nests under (e.g. the batch service's per-request
  /// root). Zero means top-level.
  uint64_t parent_span = 0;
  /// Stage-progress hook (optional). Invoked with "validate" before the
  /// up-front validation pass and "<stage>/<variant>" at the start of every
  /// attempt. Isolated `gputc worker` processes use it to emit one heartbeat
  /// frame per executor stage, so their supervisor can tell a *slow* stage
  /// (heartbeats still flowing) from a *hung* one (heartbeats stopped).
  /// Must not throw; called on the executing thread.
  std::function<void(const std::string&)> on_stage;
};

/// One stage of the fallback chain: a simulated GPU algorithm, or the exact
/// host-side forward counter as the last resort.
struct FallbackStage {
  bool is_cpu = false;
  TcAlgorithm algorithm = TcAlgorithm::kHu;  // Ignored when is_cpu.

  std::string name() const;
};

/// Parses a comma-separated chain like "hu,polak,cpu" (names
/// case-insensitive, matching `gputc count --algorithm` plus "cpu").
/// InvalidArgument with the valid choices on an unknown name or empty
/// chain, and on a duplicate stage — a repeated backend would silently
/// retry the same failure mode while looking like extra redundancy.
StatusOr<std::vector<FallbackStage>> ParseFallbackChain(std::string_view spec);

/// What happened to one attempt (stage x degradation variant).
struct AttemptRecord {
  std::string stage;    // FallbackStage::name().
  std::string variant;  // "base", "no-aorder", "no-adirection".
  Status status;        // OkStatus when this attempt produced the result.
  double elapsed_ms = 0.0;  // Host wall-clock of the attempt.
  double model_ms = 0.0;    // Modelled kernel ms (0 when it never counted).
};

/// Chronological record of an execution, one entry per attempt.
struct ExecutionTrace {
  std::vector<AttemptRecord> attempts;

  /// Human-readable multi-line summary ("attempt 1: Hu/base -> INTERNAL:
  /// ...").
  std::string Summary() const;
};

/// A successful execution: the run plus which attempt produced it.
struct ExecutionResult {
  RunResult run;
  std::string stage;
  std::string variant;
};

/// Bytes of host memory the pipeline peaks at for `g`: the undirected CSR,
/// the oriented copy, the relabeled copy and the permutation arrays. An
/// estimate (helper vectors are excluded), but a faithful lower bound —
/// the quantity ExecutionPolicy::mem_budget_bytes is checked against.
int64_t EstimateHostBytes(const Graph& g);

/// EstimateHostBytes for a request whose preprocessing artifact is already
/// cached: the hit path rebuilds the final CSR straight from the artifact
/// (DirectedGraph::FromParts), so the peak drops the intermediate oriented
/// copy and the direction-rank array that only the recompute holds. This is
/// the quantity admission should reserve for cache-hit requests — reserving
/// the cold estimate double-counts the directed graph.
int64_t EstimateHostBytesCached(const Graph& g);

/// Runs the fallback chain over `g` under `policy`.
///
/// Semantics:
///  - The graph is validated once up front (GraphDoctor); invalid input
///    fails immediately — no fallback can fix a corrupt CSR.
///  - Every attempt runs inside a FailPointScope, so armed fail points
///    (GPUTC_FAILPOINTS) inject into it but not into unsuspecting callers.
///  - A stage's base attempt uses `base_options`; degraded retries first
///    drop A-order, then A-direction + calibration.
///  - DeadlineExceeded and Cancelled stop the whole chain (retrying cannot
///    beat an expired clock); any other failure moves down the ladder.
///  - A result whose modelled kernel time exceeds max_model_ms is recorded
///    as ResourceExhausted and the chain continues.
///
/// On success returns the first accepted run; otherwise the last attempt's
/// error (deadline/cancel) or ResourceExhausted naming the exhausted chain.
/// `trace_out` (optional) receives the full attempt log either way.
StatusOr<ExecutionResult> ExecuteResilient(const Graph& g,
                                           const DeviceSpec& spec,
                                           const ExecutionPolicy& policy,
                                           const std::vector<FallbackStage>& chain,
                                           const PreprocessOptions& base_options,
                                           ExecutionTrace* trace_out = nullptr);

}  // namespace gputc

#endif  // GPUTC_CORE_EXECUTOR_H_
