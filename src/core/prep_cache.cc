#include "core/prep_cache.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "direction/direction.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "order/ordering.h"
#include "util/durable_file.h"

namespace gputc {
namespace {

/// First bytes of an encoded artifact; the trailing digit is the schema
/// version so a stale tier-2 file from an older build decodes as foreign.
constexpr char kArtifactMagic[8] = {'G', 'P', 'T', 'C',
                                    'P', 'R', 'P', '0' + kPrepCacheSchemaVersion};

void CountHit(const char* tier) {
  MetricsRegistry::Global()
      .GetCounter("gputc_prep_cache_hits_total",
                  "Preprocessing-cache hits by tier", {{"tier", tier}})
      .Increment();
}

void CountMiss() {
  MetricsRegistry::Global()
      .GetCounter("gputc_prep_cache_misses_total",
                  "Preprocessing-cache misses (artifact computed)")
      .Increment();
}

void CountEviction() {
  MetricsRegistry::Global()
      .GetCounter("gputc_prep_cache_evictions_total",
                  "Preprocessing-cache tier-1 evictions (byte budget)")
      .Increment();
}

void CountAdmittedBytes(int64_t bytes) {
  MetricsRegistry::Global()
      .GetCounter("gputc_prep_cache_bytes_total",
                  "Cumulative artifact bytes admitted into tier 1")
      .Increment(bytes);
}

void CountTierError(const char* op) {
  MetricsRegistry::Global()
      .GetCounter("gputc_prep_cache_tier2_errors_total",
                  "Tier-2 store failures, all recovered by recompute",
                  {{"op", op}})
      .Increment();
}

void SetResidencyGauges(int64_t bytes, int64_t entries) {
  MetricsRegistry::Global()
      .GetGauge("gputc_prep_cache_resident_bytes",
                "Artifact bytes currently resident in tier 1")
      .Set(static_cast<double>(bytes));
  MetricsRegistry::Global()
      .GetGauge("gputc_prep_cache_resident_entries",
                "Artifacts currently resident in tier 1")
      .Set(static_cast<double>(entries));
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

template <typename T>
void AppendRaw(std::string* out, const std::vector<T>& v) {
  out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

template <typename T>
void AppendScalar(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Sequential reader over an encoded artifact; sets `ok` false on underrun
/// instead of reading past the end.
struct ByteReader {
  const char* p;
  size_t left;
  bool ok = true;

  template <typename T>
  T Scalar() {
    T v{};
    if (left < sizeof(T)) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> Array(uint64_t count) {
    std::vector<T> v;
    if (!ok || count > left / sizeof(T)) {
      ok = false;
      return v;
    }
    if (count == 0) return v;
    v.resize(count);
    std::memcpy(v.data(), p, count * sizeof(T));
    p += count * sizeof(T);
    left -= count * sizeof(T);
    return v;
  }
};

}  // namespace

int64_t PrepArtifact::ByteSize() const {
  return static_cast<int64_t>(offsets.size() * sizeof(EdgeCount) +
                              adj.size() * sizeof(VertexId) +
                              vertex_perm.size() * sizeof(VertexId) +
                              bw_by_log2_len.size() * sizeof(double) +
                              sizeof(PrepArtifact));
}

std::string EncodePrepArtifact(const PrepArtifact& artifact) {
  std::string out;
  out.reserve(sizeof(kArtifactMagic) + 4 * sizeof(uint64_t) + 1 +
              3 * sizeof(double) + static_cast<size_t>(artifact.ByteSize()));
  out.append(kArtifactMagic, sizeof(kArtifactMagic));
  AppendScalar<uint64_t>(&out, artifact.offsets.size());
  AppendScalar<uint64_t>(&out, artifact.adj.size());
  AppendScalar<uint64_t>(&out, artifact.vertex_perm.size());
  AppendScalar<uint64_t>(&out, artifact.bw_by_log2_len.size());
  AppendScalar<uint8_t>(&out, artifact.calibrated ? 1 : 0);
  AppendScalar<double>(&out, artifact.lambda);
  AppendScalar<double>(&out, artifact.direction_cost);
  AppendScalar<double>(&out, artifact.ordering_cost);
  AppendRaw(&out, artifact.offsets);
  AppendRaw(&out, artifact.adj);
  AppendRaw(&out, artifact.vertex_perm);
  AppendRaw(&out, artifact.bw_by_log2_len);
  return out;
}

StatusOr<PrepArtifact> DecodePrepArtifact(std::string_view bytes) {
  if (bytes.size() < sizeof(kArtifactMagic) ||
      std::memcmp(bytes.data(), kArtifactMagic, sizeof(kArtifactMagic)) != 0) {
    return InvalidArgumentError(
        "DecodePrepArtifact: missing or foreign artifact magic");
  }
  ByteReader reader{bytes.data() + sizeof(kArtifactMagic),
                    bytes.size() - sizeof(kArtifactMagic)};
  const uint64_t n_offsets = reader.Scalar<uint64_t>();
  const uint64_t n_adj = reader.Scalar<uint64_t>();
  const uint64_t n_perm = reader.Scalar<uint64_t>();
  const uint64_t n_bw = reader.Scalar<uint64_t>();
  PrepArtifact artifact;
  artifact.calibrated = reader.Scalar<uint8_t>() != 0;
  artifact.lambda = reader.Scalar<double>();
  artifact.direction_cost = reader.Scalar<double>();
  artifact.ordering_cost = reader.Scalar<double>();
  artifact.offsets = reader.Array<EdgeCount>(n_offsets);
  artifact.adj = reader.Array<VertexId>(n_adj);
  artifact.vertex_perm = reader.Array<VertexId>(n_perm);
  artifact.bw_by_log2_len = reader.Array<double>(n_bw);
  if (!reader.ok || reader.left != 0) {
    return InvalidArgumentError(
        "DecodePrepArtifact: truncated or oversized artifact body");
  }
  // Shape sanity: the CSR must be internally consistent (n+1 offsets ending
  // at |adj|, one permutation slot per vertex). A CRC-clean file of the
  // wrong shape is still a foreign artifact.
  if (n_offsets == 0 || n_perm != n_offsets - 1 ||
      artifact.offsets.front() != 0 ||
      artifact.offsets.back() != static_cast<EdgeCount>(n_adj)) {
    return InvalidArgumentError(
        "DecodePrepArtifact: inconsistent artifact sections");
  }
  return artifact;
}

PrepCacheKey PrepFingerprint(const Graph& g, const DeviceSpec& spec,
                             const PreprocessOptions& options) {
  // The graph digest reuses the exact section CRCs the v2 binary format
  // frames the CSR with (graph/io.cc): a graph loaded from disk fingerprints
  // to the same digest its file sections carry.
  const uint32_t offsets_crc =
      Crc32c(g.offsets().data(), g.offsets().size() * sizeof(EdgeCount));
  const uint32_t adj_crc =
      Crc32c(g.adjacency().data(), g.adjacency().size() * sizeof(VertexId));
  // Fingerprint the *effective* bucket size: an explicit bucket equal to the
  // device default and a defaulted one produce the same artifact.
  const int bucket = options.aorder.bucket_size > 0
                         ? options.aorder.bucket_size
                         : spec.threads_per_block();

  char head[160];
  std::snprintf(head, sizeof(head),
                "prep-cache v%d|n=%u|m=%" PRId64 "|offcrc=%08x|adjcrc=%08x",
                kPrepCacheSchemaVersion, g.num_vertices(), g.num_edges(),
                offsets_crc, adj_crc);
  PrepCacheKey key;
  key.canonical = head;
  key.canonical += "|dir=";
  key.canonical += ToString(options.direction);
  key.canonical += "|ord=";
  key.canonical += ToString(options.ordering);
  key.canonical += "|bucket=" + std::to_string(bucket);
  key.canonical +=
      std::string("|sort=") + (options.aorder.sort_within_bucket ? "1" : "0");
  key.canonical += std::string("|cal=") + (options.calibrate ? "1" : "0");
  key.canonical += "|seed=" + std::to_string(options.seed);
  key.canonical += "|dev=" + std::to_string(spec.num_sms) + "," +
                   std::to_string(spec.warp_size) + "," +
                   std::to_string(spec.warps_per_block) + "," +
                   std::to_string(spec.transaction_bytes) + "," +
                   std::to_string(spec.element_bytes) + "," +
                   FormatDouble(spec.issue_width) + "," +
                   FormatDouble(spec.mem_transactions_per_cycle) + "," +
                   FormatDouble(spec.shared_transactions_per_cycle) + "," +
                   FormatDouble(spec.mem_latency_cycles) + "," +
                   FormatDouble(spec.sync_cost_cycles) + "," +
                   std::to_string(spec.shared_memory_bytes) + "," +
                   FormatDouble(spec.simt_divergence_penalty) + "," +
                   FormatDouble(spec.clock_ghz);

  const uint32_t h1 = Crc32c(key.canonical);
  const uint32_t h2 = Crc32c(key.canonical, h1 ^ 0x9e3779b9u);
  key.hash = (static_cast<uint64_t>(h1) << 32) | h2;
  char id[17];
  std::snprintf(id, sizeof(id), "%016" PRIx64, key.hash);
  key.id = id;
  return key;
}

PrepCache::PrepCache(int64_t byte_budget, PrepCacheStore* store, int shards)
    : byte_budget_(byte_budget), store_(store) {
  if (shards < 1) shards = 1;
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PrepCache::Shard& PrepCache::ShardFor(const PrepCacheKey& key) const {
  return *shards_[key.hash % shards_.size()];
}

void PrepCache::Insert(Shard& shard, const PrepCacheKey& key,
                       std::shared_ptr<const PrepArtifact> value) {
  if (shard.index.count(key.canonical) != 0) return;  // Purge-refill race.
  const int64_t bytes = value->ByteSize();
  shard.lru.push_front(Entry{key.canonical, std::move(value), bytes});
  shard.index[key.canonical] = shard.lru.begin();
  resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  resident_entries_.fetch_add(1, std::memory_order_relaxed);
  CountAdmittedBytes(bytes);
  while (byte_budget_ > 0 &&
         resident_bytes_.load(std::memory_order_relaxed) > byte_budget_ &&
         !shard.lru.empty()) {
    Entry& tail = shard.lru.back();
    resident_bytes_.fetch_sub(tail.bytes, std::memory_order_relaxed);
    resident_entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CountEviction();
    shard.index.erase(tail.canonical);
    shard.lru.pop_back();
  }
  SetResidencyGauges(resident_bytes_.load(std::memory_order_relaxed),
                     resident_entries_.load(std::memory_order_relaxed));
}

StatusOr<std::shared_ptr<const PrepArtifact>> PrepCache::AwaitFlight(
    const std::shared_ptr<Flight>& flight, const ExecContext& ctx) {
  std::unique_lock<std::mutex> lock(flight->mu);
  while (!flight->done) {
    flight->cv.wait_for(lock, std::chrono::milliseconds(10));
    if (flight->done) break;
    // Poll outside the flight lock so a stuck leader cannot pin waiters past
    // their own deadline or a cancellation.
    lock.unlock();
    const Status cont = ctx.CheckContinue("prep.cache.wait");
    if (!cont.ok()) return cont;
    lock.lock();
  }
  if (!flight->status.ok()) return flight->status;
  return flight->value;
}

StatusOr<std::shared_ptr<const PrepArtifact>> PrepCache::GetOrCompute(
    const PrepCacheKey& key, const ExecContext& ctx, const FillFn& fill) {
  Span lookup = StartSpan(ctx, "prep.cache.lookup");
  lookup.SetAttr("key", key.id);

  Shard& shard = ShardFor(key);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto hit = shard.index.find(key.canonical);
    if (hit != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, hit->second);
      memory_hits_.fetch_add(1, std::memory_order_relaxed);
      CountHit("memory");
      lookup.SetAttr("outcome", "hit-memory");
      return hit->second->value;
    }
    auto in = shard.inflight.find(key.canonical);
    if (in != shard.inflight.end()) {
      flight = in->second;
    } else {
      flight = std::make_shared<Flight>();
      shard.inflight.emplace(key.canonical, flight);
      leader = true;
    }
  }

  if (!leader) {
    coalesced_waits_.fetch_add(1, std::memory_order_relaxed);
    lookup.SetAttr("outcome", "coalesced");
    return AwaitFlight(flight, ctx);
  }

  // Leader: tier-2 load, then fill. Tier-2 corruption (DataLoss) and any
  // other store failure degrade to a recompute — the request never fails
  // because a cache file went bad.
  StatusOr<std::shared_ptr<const PrepArtifact>> outcome =
      [&]() -> StatusOr<std::shared_ptr<const PrepArtifact>> {
    if (store_ != nullptr) {
      StatusOr<std::string> bytes = store_->Load(key);
      if (bytes.ok()) {
        StatusOr<PrepArtifact> decoded = DecodePrepArtifact(*bytes);
        if (decoded.ok()) {
          disk_hits_.fetch_add(1, std::memory_order_relaxed);
          CountHit("disk");
          lookup.SetAttr("outcome", "hit-disk");
          return std::make_shared<const PrepArtifact>(*std::move(decoded));
        }
        load_errors_.fetch_add(1, std::memory_order_relaxed);
        CountTierError("load");
      } else if (bytes.status().code() != StatusCode::kNotFound) {
        load_errors_.fetch_add(1, std::memory_order_relaxed);
        CountTierError("load");
      }
    }

    lookup.SetAttr("outcome", "miss");
    Span fill_span = StartSpan(ctx, "prep.cache.fill");
    fill_span.SetAttr("key", key.id);
    StatusOr<PrepArtifact> computed = fill();
    if (!computed.ok()) {
      fill_span.SetStatus(computed.status());
      return computed.status();
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    CountMiss();
    auto value = std::make_shared<const PrepArtifact>(*std::move(computed));
    if (store_ != nullptr) {
      // A corrupt tier-2 file is healed here: the verified recompute
      // atomically replaces it. Store failures only lose future reuse.
      const Status stored = store_->Store(key, EncodePrepArtifact(*value));
      if (!stored.ok()) {
        store_errors_.fetch_add(1, std::memory_order_relaxed);
        CountTierError("store");
      }
    }
    return value;
  }();

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (outcome.ok()) Insert(shard, key, *outcome);
    shard.inflight.erase(key.canonical);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
    if (outcome.ok()) {
      flight->value = *outcome;
    } else {
      flight->status = outcome.status();
    }
  }
  flight->cv.notify_all();
  return outcome;
}

bool PrepCache::Contains(const PrepCacheKey& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.index.find(key.canonical) != shard.index.end();
}

void PrepCache::Purge() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& entry : shard->lru) {
      resident_bytes_.fetch_sub(entry.bytes, std::memory_order_relaxed);
      resident_entries_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard->lru.clear();
    shard->index.clear();
  }
  SetResidencyGauges(resident_bytes_.load(std::memory_order_relaxed),
                     resident_entries_.load(std::memory_order_relaxed));
}

PrepCacheStats PrepCache::stats() const {
  PrepCacheStats stats;
  stats.memory_hits = memory_hits_.load(std::memory_order_relaxed);
  stats.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.load_errors = load_errors_.load(std::memory_order_relaxed);
  stats.store_errors = store_errors_.load(std::memory_order_relaxed);
  stats.coalesced_waits = coalesced_waits_.load(std::memory_order_relaxed);
  stats.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  stats.resident_entries = resident_entries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace gputc
