#include "core/executor.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "core/prep_cache.h"
#include "graph/validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tc/cpu_counters.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gputc {
namespace {

std::string ToLower(std::string_view s) {
  std::string lower(s);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lower;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

constexpr TcAlgorithm kAllAlgorithms[] = {
    TcAlgorithm::kGunrockBinarySearch, TcAlgorithm::kGunrockSortMerge,
    TcAlgorithm::kTriCore,             TcAlgorithm::kFox,
    TcAlgorithm::kBisson,              TcAlgorithm::kHu,
    TcAlgorithm::kPolak};

std::string ValidStageNames() {
  std::string names;
  for (TcAlgorithm a : kAllAlgorithms) {
    names += ToString(a);
    names += ' ';
  }
  names += "cpu";
  return names;
}

/// The degradation ladder of one stage. Variant 0 is the caller's options;
/// each further variant gives up one analytic optimization, trading kernel
/// balance for a simpler preprocessing path that avoids whatever failed.
/// The copy carries base.prep_cache along, and the edited fields are all
/// part of the cache fingerprint — so each rung resolves to its own cache
/// entry, never to a stale artifact of a different variant.
PreprocessOptions DegradedOptions(const PreprocessOptions& base, int variant) {
  PreprocessOptions options = base;
  if (variant >= 1) options.ordering = OrderingStrategy::kOriginal;
  if (variant >= 2) {
    options.direction = DirectionStrategy::kDegreeBased;
    options.calibrate = false;
  }
  return options;
}

const char* VariantName(int variant) {
  switch (variant) {
    case 0:
      return "base";
    case 1:
      return "no-aorder";
    default:
      return "no-adirection";
  }
}

bool IsStopError(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kCancelled;
}

void RecordAttempt(const AttemptRecord& record) {
  MetricsRegistry::Global()
      .GetCounter("gputc_attempts_total",
                  "Executor attempts by fallback stage and outcome",
                  {{"result", record.status.ok() ? "ok" : "error"},
                   {"stage", record.stage}})
      .Increment();
}

}  // namespace

std::string FallbackStage::name() const {
  return is_cpu ? "cpu" : ToString(algorithm);
}

StatusOr<std::vector<FallbackStage>> ParseFallbackChain(
    std::string_view spec) {
  std::vector<FallbackStage> chain;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = Trim(spec.substr(begin, end - begin));
    begin = end + 1;
    if (entry.empty()) continue;
    const std::string lower = ToLower(entry);
    FallbackStage stage;
    if (lower == "cpu") {
      stage.is_cpu = true;
    } else {
      bool found = false;
      for (TcAlgorithm a : kAllAlgorithms) {
        if (lower == ToLower(ToString(a))) {
          stage.algorithm = a;
          found = true;
          break;
        }
      }
      if (!found) {
        return InvalidArgumentError("unknown fallback stage '" +
                                    std::string(entry) +
                                    "'; valid choices: " + ValidStageNames());
      }
    }
    for (const FallbackStage& existing : chain) {
      if (existing.is_cpu == stage.is_cpu &&
          (stage.is_cpu || existing.algorithm == stage.algorithm)) {
        return InvalidArgumentError(
            "duplicate fallback stage '" + stage.name() +
            "'; each backend may appear in the chain at most once");
      }
    }
    chain.push_back(stage);
  }
  if (chain.empty()) {
    return InvalidArgumentError("fallback chain is empty; valid stages: " +
                                ValidStageNames());
  }
  return chain;
}

std::string ExecutionTrace::Summary() const {
  std::string out;
  for (size_t i = 0; i < attempts.size(); ++i) {
    const AttemptRecord& a = attempts[i];
    out += "attempt " + std::to_string(i + 1) + ": " + a.stage + "/" +
           a.variant + " -> " +
           (a.status.ok() ? "OK" : a.status.ToString()) + " (" +
           std::to_string(a.elapsed_ms) + " ms host";
    if (a.model_ms > 0.0) {
      out += ", " + std::to_string(a.model_ms) + " ms modelled";
    }
    out += ")\n";
  }
  return out;
}

int64_t EstimateHostBytes(const Graph& g) {
  const int64_t n = static_cast<int64_t>(g.num_vertices());
  const int64_t m = g.num_edges();
  const int64_t offsets = (n + 1) * static_cast<int64_t>(sizeof(EdgeCount));
  const int64_t undirected_adj =
      2 * m * static_cast<int64_t>(sizeof(VertexId));
  const int64_t directed_adj = m * static_cast<int64_t>(sizeof(VertexId));
  const int64_t perms = 2 * n * static_cast<int64_t>(sizeof(VertexId));
  // Input CSR + oriented copy + relabeled copy (each with offsets) + the
  // direction rank and ordering permutations.
  return (offsets + undirected_adj) + 2 * (offsets + directed_adj) + perms;
}

int64_t EstimateHostBytesCached(const Graph& g) {
  const int64_t n = static_cast<int64_t>(g.num_vertices());
  const int64_t m = g.num_edges();
  const int64_t offsets = (n + 1) * static_cast<int64_t>(sizeof(EdgeCount));
  const int64_t undirected_adj =
      2 * m * static_cast<int64_t>(sizeof(VertexId));
  const int64_t directed_adj = m * static_cast<int64_t>(sizeof(VertexId));
  const int64_t perm = n * static_cast<int64_t>(sizeof(VertexId));
  // Input CSR + the one relabeled copy FromParts builds + the permutation
  // copy; no intermediate oriented graph and no direction rank on a hit.
  return (offsets + undirected_adj) + (offsets + directed_adj) + perm;
}

StatusOr<ExecutionResult> ExecuteResilient(
    const Graph& g, const DeviceSpec& spec, const ExecutionPolicy& policy,
    const std::vector<FallbackStage>& chain,
    const PreprocessOptions& base_options, ExecutionTrace* trace_out) {
  if (chain.empty()) {
    return InvalidArgumentError("fallback chain is empty");
  }

  ExecContext ctx;
  ctx.tracer = policy.tracer;
  if (policy.tracer != nullptr) {
    ctx.trace_id =
        policy.trace_id != 0 ? policy.trace_id : policy.tracer->NewTraceId();
    ctx.parent_span = policy.parent_span;
  }

  // Validate once up front: every stage would see the same corrupt CSR, so
  // invalid input is terminal, not a fallback trigger.
  {
    if (policy.on_stage) policy.on_stage("validate");
    Span validate_span = StartSpan(ctx, "validate");
    validate_span.SetAttr("vertices", static_cast<int64_t>(g.num_vertices()));
    validate_span.SetAttr("edges", g.num_edges());
    const ValidationReport report = GraphDoctor().Examine(g);
    if (!report.clean()) {
      Status bad = report.ToStatus().WithContext(
          "ExecuteResilient: input graph failed validation");
      validate_span.SetStatus(bad);
      return bad;
    }
  }

  if (policy.mem_budget_bytes > 0) {
    // A base-options cache hit skips the preprocessing recompute, so it
    // peaks lower; degraded variants key separately and may still recompute,
    // but by then the base attempt's memory has been released.
    const bool base_cached =
        base_options.prep_cache != nullptr &&
        base_options.prep_cache->Contains(
            PrepFingerprint(g, spec, base_options));
    const int64_t needed =
        base_cached ? EstimateHostBytesCached(g) : EstimateHostBytes(g);
    if (needed > policy.mem_budget_bytes) {
      return ResourceExhaustedError(
          "graph needs ~" + std::to_string(needed) +
          " bytes of host memory, over the budget of " +
          std::to_string(policy.mem_budget_bytes));
    }
  }

  if (policy.timeout_ms > 0.0) {
    ctx.deadline = Deadline::AfterMillis(policy.timeout_ms);
  }
  ctx.count_limit = policy.count_limit;
  ctx.cancel = policy.cancel;

  // Injections only land while the executor drives the pipeline: code that
  // never opted into recovery never sees an armed fail point.
  FailPointScope scope;

  ExecutionTrace local_trace;
  ExecutionTrace& trace = trace_out != nullptr ? *trace_out : local_trace;
  trace.attempts.clear();

  const int variants_per_stage =
      1 + std::clamp(policy.max_retries_per_stage, 0, 2);
  Status last_error;

  for (const FallbackStage& stage : chain) {
    const int stage_variants = stage.is_cpu ? 1 : variants_per_stage;
    for (int variant = 0; variant < stage_variants; ++variant) {
      AttemptRecord record;
      record.stage = stage.name();
      record.variant = stage.is_cpu ? "base" : VariantName(variant);
      if (policy.on_stage) policy.on_stage(record.stage + "/" + record.variant);

      // An expired deadline ends the chain before burning another attempt.
      Status may_continue = ctx.CheckContinue("executor");
      if (!may_continue.ok()) {
        record.status = may_continue;
        trace.attempts.push_back(std::move(record));
        RecordAttempt(trace.attempts.back());
        return may_continue.WithContext("execution stopped after " +
                                        std::to_string(trace.attempts.size()) +
                                        " attempt(s)");
      }

      // One span per attempt: the fallback/degradation ladder is exactly
      // the structure a trace viewer should show. Pipeline stage spans
      // (direct/order/count) nest under it via the re-parented context.
      Span attempt_span = StartSpan(ctx, "attempt");
      attempt_span.SetAttr("stage", record.stage);
      attempt_span.SetAttr("variant", record.variant);
      const ExecContext attempt_ctx = WithSpan(ctx, attempt_span);

      Timer attempt_timer;
      StatusOr<RunResult> run = [&]() -> StatusOr<RunResult> {
        if (stage.is_cpu) {
          GPUTC_ASSIGN_OR_RETURN(const int64_t triangles,
                                 TryCountTrianglesForward(g, attempt_ctx));
          RunResult result;
          result.triangles = triangles;
          return result;
        }
        return RunTriangleCountWithContext(g, stage.algorithm, spec,
                                           DegradedOptions(base_options, variant),
                                           attempt_ctx);
      }();
      record.elapsed_ms = attempt_timer.ElapsedMillis();

      if (run.ok()) {
        record.model_ms = run->kernel_ms();
        attempt_span.SetAttr("model_ms", record.model_ms);
        if (policy.max_model_ms > 0.0 &&
            run->kernel_ms() > policy.max_model_ms) {
          // The count is correct but the modelled device would miss its
          // budget; treat as a failed attempt and keep degrading.
          record.status = ResourceExhaustedError(
              "modelled kernel time " + std::to_string(run->kernel_ms()) +
              " ms exceeds the ceiling of " +
              std::to_string(policy.max_model_ms) + " ms");
          attempt_span.SetStatus(record.status);
          last_error = record.status;
          trace.attempts.push_back(std::move(record));
          RecordAttempt(trace.attempts.back());
          continue;
        }
        record.status = OkStatus();
        attempt_span.SetStatus(record.status);
        ExecutionResult result;
        result.run = *std::move(run);
        result.stage = record.stage;
        result.variant = record.variant;
        trace.attempts.push_back(std::move(record));
        RecordAttempt(trace.attempts.back());
        return result;
      }

      record.status = run.status();
      attempt_span.SetStatus(record.status);
      const bool stop = IsStopError(run.status());
      last_error = run.status();
      trace.attempts.push_back(std::move(record));
      RecordAttempt(trace.attempts.back());
      if (stop) {
        return last_error.WithContext(
            "execution stopped after " +
            std::to_string(trace.attempts.size()) + " attempt(s)");
      }
    }
  }

  Status exhausted = ResourceExhaustedError(
      "all " + std::to_string(trace.attempts.size()) +
      " fallback attempt(s) failed; last error: " + last_error.ToString());
  return exhausted;
}

}  // namespace gputc
