#ifndef GPUTC_CORE_PIPELINE_H_
#define GPUTC_CORE_PIPELINE_H_

#include <cstdint>
#include <string>

#include "core/preprocess.h"
#include "graph/graph.h"
#include "graph/validate.h"
#include "sim/device.h"
#include "tc/counter.h"
#include "tc/registry.h"
#include "util/status.h"

namespace gputc {

/// End-to-end result: preprocessing diagnostics plus the simulated kernel
/// run — the two components every figure in the evaluation splits apart.
struct RunResult {
  int64_t triangles = 0;
  KernelStats kernel;
  PreprocessResult preprocess;

  /// Paper's "kernel time": the modelled GPU time in milliseconds.
  double kernel_ms() const { return kernel.millis; }
  /// Paper's "total time": kernel plus host preprocessing.
  double total_ms() const { return kernel.millis + preprocess.total_ms; }
};

/// Preprocesses `g` per `options` and counts triangles with `algorithm` on
/// the device `spec`. For Fox (edge reorder unit), an ordering of kAOrder is
/// applied to *edges* (ComputeEdgeAOrder) instead of relabeling vertices,
/// matching Section 6.4.
RunResult RunTriangleCount(const Graph& g, TcAlgorithm algorithm,
                           const DeviceSpec& spec,
                           const PreprocessOptions& options = {});

/// The pipeline engine under an execution envelope: preprocessing and the
/// counter both poll `ctx` and pass every fail-point site, so deadlines,
/// cancellations, injected faults and count-limit overflows surface as
/// Status. Does NOT validate `g` — the executor (and TryRunTriangleCount)
/// validate once up front; calling this directly with an untrusted graph is
/// undefined exactly like RunTriangleCount.
StatusOr<RunResult> RunTriangleCountWithContext(
    const Graph& g, TcAlgorithm algorithm, const DeviceSpec& spec,
    const PreprocessOptions& options, const ExecContext& ctx);

/// Validated front door for untrusted graphs: runs GraphDoctor over `g`
/// first (CSR integrity, self loops, symmetry, triangle-count overflow risk)
/// and refuses with a context-bearing Status instead of feeding a damaged
/// graph to the kernels. Graphs built by this library's loaders/generators
/// always pass; hand-assembled CSRs may not.
StatusOr<RunResult> TryRunTriangleCount(const Graph& g, TcAlgorithm algorithm,
                                        const DeviceSpec& spec,
                                        const PreprocessOptions& options = {});

/// Convenience facade: preprocess with the paper's defaults (A-direction +
/// A-order) and count with Hu's algorithm; returns just the triangle count.
/// Routes through the validated front door: a graph that fails GraphDoctor
/// (hand-assembled CSRs with broken offsets, self loops, asymmetry, ...)
/// fatally aborts with the validation report instead of corrupting the
/// kernels. Callers that need to recover use TryRunTriangleCount.
int64_t CountTriangles(const Graph& g);

}  // namespace gputc

#endif  // GPUTC_CORE_PIPELINE_H_
