#ifndef GPUTC_CORE_PIPELINE_H_
#define GPUTC_CORE_PIPELINE_H_

#include <cstdint>
#include <string>

#include "core/preprocess.h"
#include "graph/graph.h"
#include "graph/validate.h"
#include "sim/device.h"
#include "tc/counter.h"
#include "tc/registry.h"
#include "util/status.h"

namespace gputc {

/// End-to-end result: preprocessing diagnostics plus the simulated kernel
/// run — the two components every figure in the evaluation splits apart.
struct RunResult {
  int64_t triangles = 0;
  KernelStats kernel;
  PreprocessResult preprocess;

  /// Paper's "kernel time": the modelled GPU time in milliseconds.
  double kernel_ms() const { return kernel.millis; }
  /// Paper's "total time": kernel plus host preprocessing.
  double total_ms() const { return kernel.millis + preprocess.total_ms; }
};

/// Preprocesses `g` per `options` and counts triangles with `algorithm` on
/// the device `spec`. For Fox (edge reorder unit), an ordering of kAOrder is
/// applied to *edges* (ComputeEdgeAOrder) instead of relabeling vertices,
/// matching Section 6.4.
RunResult RunTriangleCount(const Graph& g, TcAlgorithm algorithm,
                           const DeviceSpec& spec,
                           const PreprocessOptions& options = {});

/// Validated front door for untrusted graphs: runs GraphDoctor over `g`
/// first (CSR integrity, self loops, symmetry, triangle-count overflow risk)
/// and refuses with a context-bearing Status instead of feeding a damaged
/// graph to the kernels. Graphs built by this library's loaders/generators
/// always pass; hand-assembled CSRs may not.
StatusOr<RunResult> TryRunTriangleCount(const Graph& g, TcAlgorithm algorithm,
                                        const DeviceSpec& spec,
                                        const PreprocessOptions& options = {});

/// Convenience facade: preprocess with the paper's defaults (A-direction +
/// A-order) and count with Hu's algorithm; returns just the triangle count.
int64_t CountTriangles(const Graph& g);

}  // namespace gputc

#endif  // GPUTC_CORE_PIPELINE_H_
