#include "core/pipeline.h"

#include "order/calibration.h"
#include "tc/fox.h"
#include "util/timer.h"

namespace gputc {

RunResult RunTriangleCount(const Graph& g, TcAlgorithm algorithm,
                           const DeviceSpec& spec,
                           const PreprocessOptions& options) {
  RunResult result;
  if (algorithm == TcAlgorithm::kFox &&
      options.ordering == OrderingStrategy::kAOrder) {
    // Fox reorders edges, not vertices: orient and keep vertex ids, then
    // hand the kernel an A-ordered arc sequence.
    PreprocessOptions vertex_options = options;
    vertex_options.ordering = OrderingStrategy::kOriginal;
    result.preprocess = Preprocess(g, spec, vertex_options);

    const ResourceModel model =
        options.calibrate ? CalibratedResourceModel(spec)
                          : ResourceModel::Default();
    Timer edge_timer;
    const FoxCounter fox_for_order;
    const std::vector<int64_t> edge_order =
        fox_for_order.AOrderedEdgeOrder(result.preprocess.graph, model, spec);
    result.preprocess.ordering_ms = edge_timer.ElapsedMillis();
    result.preprocess.total_ms =
        result.preprocess.direction_ms + result.preprocess.ordering_ms;

    const TcResult tc = fox_for_order.CountWithEdgeOrder(
        result.preprocess.graph, spec, edge_order);
    result.triangles = tc.triangles;
    result.kernel = tc.kernel;
    return result;
  }

  result.preprocess = Preprocess(g, spec, options);
  const TcResult tc =
      MakeCounter(algorithm)->Count(result.preprocess.graph, spec);
  result.triangles = tc.triangles;
  result.kernel = tc.kernel;
  return result;
}

StatusOr<RunResult> TryRunTriangleCount(const Graph& g, TcAlgorithm algorithm,
                                        const DeviceSpec& spec,
                                        const PreprocessOptions& options) {
  const ValidationReport report = GraphDoctor().Examine(g);
  if (!report.clean()) {
    return report.ToStatus().WithContext(
        "TryRunTriangleCount: input graph failed validation");
  }
  return RunTriangleCount(g, algorithm, spec, options);
}

int64_t CountTriangles(const Graph& g) {
  return RunTriangleCount(g, TcAlgorithm::kHu, DeviceSpec::TitanXpLike())
      .triangles;
}

}  // namespace gputc
