#include "core/pipeline.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "order/calibration.h"
#include "sim/profiler.h"
#include "tc/fox.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gputc {
namespace {

void RecordCountStage(TcAlgorithm algorithm, double ms) {
  MetricsRegistry::Global()
      .GetHistogram("gputc_stage_duration_ms",
                    "Host wall-clock of one pipeline stage in milliseconds",
                    0.0, 1000.0, 20, {{"stage", "count"}})
      .Observe(ms);
  MetricsRegistry::Global()
      .GetCounter("gputc_counts_total", "Completed counting-kernel runs",
                  {{"algorithm", ToString(algorithm)}})
      .Increment();
}

}  // namespace

RunResult RunTriangleCount(const Graph& g, TcAlgorithm algorithm,
                           const DeviceSpec& spec,
                           const PreprocessOptions& options) {
  StatusOr<RunResult> result =
      RunTriangleCountWithContext(g, algorithm, spec, options, ExecContext{});
  GPUTC_CHECK(result.ok()) << "RunTriangleCount failed: "
                           << result.status().ToString();
  return *std::move(result);
}

StatusOr<RunResult> RunTriangleCountWithContext(const Graph& g,
                                                TcAlgorithm algorithm,
                                                const DeviceSpec& spec,
                                                const PreprocessOptions& options,
                                                const ExecContext& ctx) {
  RunResult result;
  if (algorithm == TcAlgorithm::kFox &&
      options.ordering == OrderingStrategy::kAOrder) {
    // Fox reorders edges, not vertices: orient and keep vertex ids, then
    // hand the kernel an A-ordered arc sequence.
    PreprocessOptions vertex_options = options;
    vertex_options.ordering = OrderingStrategy::kOriginal;
    GPUTC_ASSIGN_OR_RETURN(result.preprocess,
                           TryPreprocess(g, spec, vertex_options, ctx));

    ResourceModel model = ResourceModel::Default();
    if (options.calibrate) {
      GPUTC_ASSIGN_OR_RETURN(model, TryCalibratedResourceModel(spec));
    }
    Timer edge_timer;
    const FoxCounter fox_for_order;
    std::vector<int64_t> edge_order;
    {
      Span order_span = StartSpan(ctx, "order");
      order_span.SetAttr("strategy", "A-order(edges)");
      edge_order =
          fox_for_order.AOrderedEdgeOrder(result.preprocess.graph, model, spec);
      order_span.SetAttr("arcs", static_cast<int64_t>(edge_order.size()));
    }
    GPUTC_RETURN_IF_ERROR(ctx.CheckContinue("pipeline.edge_order"));
    result.preprocess.ordering_ms = edge_timer.ElapsedMillis();
    result.preprocess.total_ms =
        result.preprocess.direction_ms + result.preprocess.ordering_ms;

    Timer count_timer;
    Span count_span = StartSpan(ctx, "count");
    count_span.SetAttr("algorithm", ToString(algorithm));
    GPUTC_ASSIGN_OR_RETURN(
        const TcResult tc,
        fox_for_order.TryCountWithEdgeOrder(result.preprocess.graph, spec,
                                            edge_order,
                                            WithSpan(ctx, count_span)));
    result.triangles = tc.triangles;
    result.kernel = tc.kernel;
    count_span.SetAttr("triangles", result.triangles);
    AnnotateSpanWithKernel(count_span, result.kernel);
    count_span.Finish();
    RecordCountStage(algorithm, count_timer.ElapsedMillis());
    return result;
  }

  GPUTC_ASSIGN_OR_RETURN(result.preprocess,
                         TryPreprocess(g, spec, options, ctx));
  Timer count_timer;
  Span count_span = StartSpan(ctx, "count");
  count_span.SetAttr("algorithm", ToString(algorithm));
  GPUTC_ASSIGN_OR_RETURN(
      const TcResult tc,
      MakeCounter(algorithm)->TryCount(result.preprocess.graph, spec,
                                       WithSpan(ctx, count_span)));
  result.triangles = tc.triangles;
  result.kernel = tc.kernel;
  count_span.SetAttr("triangles", result.triangles);
  AnnotateSpanWithKernel(count_span, result.kernel);
  count_span.Finish();
  RecordCountStage(algorithm, count_timer.ElapsedMillis());
  return result;
}

StatusOr<RunResult> TryRunTriangleCount(const Graph& g, TcAlgorithm algorithm,
                                        const DeviceSpec& spec,
                                        const PreprocessOptions& options) {
  const ValidationReport report = GraphDoctor().Examine(g);
  if (!report.clean()) {
    return report.ToStatus().WithContext(
        "TryRunTriangleCount: input graph failed validation");
  }
  return RunTriangleCountWithContext(g, algorithm, spec, options,
                                     ExecContext{});
}

int64_t CountTriangles(const Graph& g) {
  StatusOr<RunResult> result =
      TryRunTriangleCount(g, TcAlgorithm::kHu, DeviceSpec::TitanXpLike());
  GPUTC_CHECK(result.ok()) << "CountTriangles failed: "
                           << result.status().ToString();
  return result->triangles;
}

}  // namespace gputc
