#ifndef GPUTC_CORE_PREPROCESS_H_
#define GPUTC_CORE_PREPROCESS_H_

#include <cstdint>

#include "direction/direction.h"
#include "graph/directed_graph.h"
#include "graph/graph.h"
#include "graph/permutation.h"
#include "order/aorder.h"
#include "order/ordering.h"
#include "order/resource_model.h"
#include "sim/device.h"
#include "util/deadline.h"
#include "util/status.h"

namespace gputc {

class PrepCache;  // core/prep_cache.h

/// Configuration of the paper's preprocessing pipeline: orient the graph
/// (Section 4), then reorder vertices (Section 5). Either step can be set to
/// its baseline to isolate the other, exactly as the evaluation does.
struct PreprocessOptions {
  DirectionStrategy direction = DirectionStrategy::kADirection;
  OrderingStrategy ordering = OrderingStrategy::kAOrder;
  AOrderOptions aorder;
  /// When true, lambda and BW(d) are calibrated against `spec` (Section 5.3)
  /// instead of using the paper's published lambda. Calibration is cheap and
  /// device-specific, so benches enable it.
  bool calibrate = true;
  uint64_t seed = 1;
  /// Optional preprocessing cache (not owned; null = uncached). When set,
  /// TryPreprocess fingerprints (graph, spec, options) into the cache: a hit
  /// rebuilds the oriented+reordered graph from the cached artifact, a miss
  /// computes it once (single-flight across threads) and fills the cache.
  /// The pointer itself is excluded from the fingerprint; every other field
  /// here participates, so the executor's degradation ladder — which copies
  /// these options and edits direction/ordering/calibrate — keys each rung
  /// to its own cache entry automatically.
  PrepCache* prep_cache = nullptr;
};

/// Output of preprocessing: the graph the unmodified counting kernels
/// consume, plus timing and model diagnostics.
struct PreprocessResult {
  /// Oriented and relabeled graph; feed this to any SimTriangleCounter.
  DirectedGraph graph;
  /// old id -> new id mapping applied to the vertices.
  Permutation vertex_perm;

  double direction_ms = 0.0;  // Host time of the directing step.
  double ordering_ms = 0.0;   // Host time of the ordering step.
  double total_ms = 0.0;      // Sum, i.e. the paper's "preprocessing time".

  double direction_cost = 0.0;  // Eq. 1 of the produced orientation.
  double ordering_cost = 0.0;   // Eq. 3 of the produced ordering.
  double lambda = 0.0;          // Lambda used by the resource model.
};

/// Runs the preprocessing pipeline on `g` for the device `spec`.
PreprocessResult Preprocess(const Graph& g, const DeviceSpec& spec,
                            const PreprocessOptions& options = {});

/// Preprocess under an execution envelope: calibration goes through the
/// "sim.memory" fail point, "preprocess" injects at entry, and A-order's
/// bucket packing polls `ctx`. A deadline expiry or cancellation observed
/// anywhere inside surfaces as the corresponding Status.
StatusOr<PreprocessResult> TryPreprocess(const Graph& g,
                                         const DeviceSpec& spec,
                                         const PreprocessOptions& options,
                                         const ExecContext& ctx);

/// Edge-unit A-order for Fox's algorithm (Section 6.4, Figure 15): balances
/// per-arc search-list lengths across blocks. Returns the processing order
/// of arc indices (CSR order in `g`). `exec` (optional, not owned) is polled
/// during bucket packing.
std::vector<int64_t> ComputeEdgeAOrder(const DirectedGraph& g,
                                       const ResourceModel& model,
                                       int bucket_size,
                                       const ExecContext* exec = nullptr);

}  // namespace gputc

#endif  // GPUTC_CORE_PREPROCESS_H_
