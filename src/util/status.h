#ifndef GPUTC_UTIL_STATUS_H_
#define GPUTC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/logging.h"

namespace gputc {

/// Machine-readable failure category carried by every Status. The codes
/// deliberately mirror the exit-code contract of the CLI (see README,
/// "Error handling & exit codes"): argument problems map to exit 2 and
/// input-data problems to exit 3.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // Caller passed a bad parameter or flag value.
  kNotFound,            // Named resource (file, dataset) does not exist.
  kOutOfRange,          // A value lies outside its documented domain.
  kFailedPrecondition,  // Operation needs state the input does not satisfy.
  kDataLoss,            // Input bytes are corrupt, truncated, or inconsistent.
  kResourceExhausted,   // An allocation or size cap would be exceeded.
  kUnimplemented,       // Requested variant is not built in this binary.
  kInternal,            // Invariant violation inside the library itself.
  kDeadlineExceeded,    // A wall-clock or modelled-cost deadline expired.
  kCancelled,           // The operation was cancelled by its caller.
};

/// Stable upper-case name, e.g. "DATA_LOSS". Never returns null.
const char* StatusCodeName(StatusCode code);

/// Error code plus human-readable message plus a context chain.
///
/// A default-constructed Status is OK. Failure paths build a leaf Status
/// (`DataLossError("offsets[3] = 9 > offsets[4] = 7")`) and every layer the
/// error propagates through prepends its own frame with WithContext, so the
/// user-facing message reads outermost-first:
///
///   DATA_LOSS: LoadBinary('g.bin'): CSR offsets: offsets[3] = 9 > ...
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns a copy with `context` prepended ("context: message"). No-op on
  /// an OK status.
  Status WithContext(std::string_view context) const;

  /// "CODE_NAME: message" ("OK" when ok()).
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status DataLossError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);

/// Either a value or a non-OK Status — the return type of every fallible
/// loader and pipeline entry point.
///
/// The accessor surface is a superset of std::optional (has_value,
/// operator*, operator->), so call sites written against the historical
/// optional-returning loaders keep compiling; new call sites should branch on
/// ok() and surface status().message().
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: `return graph;`.
  StatusOr(T value) : value_(std::move(value)) {}
  /// Implicit from a non-OK status: `return DataLossError(...);`. Passing an
  /// OK status here is a programming error.
  StatusOr(Status status) : status_(std::move(status)) {
    GPUTC_CHECK(!status_.ok())
        << "StatusOr constructed from OK status with no value";
  }

  bool ok() const { return value_.has_value(); }
  bool has_value() const { return ok(); }
  explicit operator bool() const { return ok(); }

  /// OkStatus() when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    GPUTC_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    GPUTC_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    GPUTC_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gputc

/// Propagates a non-OK Status to the caller: `GPUTC_RETURN_IF_ERROR(Check());`
#define GPUTC_RETURN_IF_ERROR(expr)                        \
  do {                                                     \
    ::gputc::Status gputc_status_tmp_ = (expr);            \
    if (!gputc_status_tmp_.ok()) return gputc_status_tmp_; \
  } while (false)

#define GPUTC_STATUS_CONCAT_INNER_(a, b) a##b
#define GPUTC_STATUS_CONCAT_(a, b) GPUTC_STATUS_CONCAT_INNER_(a, b)

/// Unwraps a StatusOr into `lhs` or propagates its error:
///   GPUTC_ASSIGN_OR_RETURN(Graph g, LoadBinary(path));
#define GPUTC_ASSIGN_OR_RETURN(lhs, expr)                              \
  auto GPUTC_STATUS_CONCAT_(gputc_statusor_, __LINE__) = (expr);       \
  if (!GPUTC_STATUS_CONCAT_(gputc_statusor_, __LINE__).ok())           \
    return GPUTC_STATUS_CONCAT_(gputc_statusor_, __LINE__).status();   \
  lhs = *std::move(GPUTC_STATUS_CONCAT_(gputc_statusor_, __LINE__))

#endif  // GPUTC_UTIL_STATUS_H_
