#include "util/durable_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/failpoint.h"
#include "util/fs_io.h"
#include "util/logging.h"

namespace gputc {
namespace {

/// Frame header: payload length then CRC32C of the payload, both u32 LE.
constexpr size_t kFrameHeaderBytes = 2 * sizeof(uint32_t);
/// Sanity cap on one record, so a garbage length field in a damaged segment
/// cannot drive a multi-gigabyte allocation during recovery.
constexpr uint32_t kMaxRecordBytes = 1u << 30;

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return ErrnoToStatus(errno, op + " '" + path + "'");
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Best-effort directory fsync: the rename is only durable once the parent
/// directory's entry is on disk. Some filesystems refuse fsync on a
/// directory fd; that is not a data-integrity failure, so it only warns.
void SyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return;
  if (::fsync(dir_fd) != 0) {
    GPUTC_LOG(Warning) << "fsync on directory '" << dir
                       << "' failed: " << std::strerror(errno);
  }
  ::close(dir_fd);
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  // Software slice-by-one table for the Castagnoli polynomial (reflected
  // 0x82F63B78). Built once; the table is tiny and the inputs here (headers,
  // journal lines, CSR sections) are not on any kernel-model hot path.
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      table[i] = crc;
    }
    return table;
  }();
  uint32_t crc = ~seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

// -- AtomicFileWriter ---------------------------------------------------------

StatusOr<AtomicFileWriter> AtomicFileWriter::Create(const std::string& path) {
  if (path.empty()) return InvalidArgumentError("empty path");
  // pid + per-process sequence: two concurrent writers targeting the same
  // path must not share a temp file, or they would interleave content and
  // the loser's rename would publish the mix.
  static std::atomic<uint64_t> temp_seq{0};
  std::string temp = path + ".tmp." + std::to_string(::getpid()) + "." +
                     std::to_string(temp_seq.fetch_add(1));
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("cannot create temp file", temp);
  return AtomicFileWriter(fd, std::move(temp), path);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (fd_ >= 0 || (!committed_ && !temp_path_.empty())) Abort();
}

AtomicFileWriter::AtomicFileWriter(AtomicFileWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      temp_path_(std::move(other.temp_path_)),
      final_path_(std::move(other.final_path_)),
      committed_(std::exchange(other.committed_, true)) {
  other.temp_path_.clear();
}

AtomicFileWriter& AtomicFileWriter::operator=(
    AtomicFileWriter&& other) noexcept {
  if (this != &other) {
    Abort();
    fd_ = std::exchange(other.fd_, -1);
    temp_path_ = std::move(other.temp_path_);
    final_path_ = std::move(other.final_path_);
    committed_ = std::exchange(other.committed_, true);
    other.temp_path_.clear();
  }
  return *this;
}

Status AtomicFileWriter::Append(const void* data, size_t size) {
  if (fd_ < 0) return InternalError("Append on a finished AtomicFileWriter");
  const Status written = FsWriteFully(fd_, data, size, temp_path_);
  if (!written.ok()) {
    // ENOSPC mid-write: the temp file must not linger (it is occupying the
    // very space that ran out) and the target stays untouched. Abort here so
    // every error path — not just the destructor — leaves a clean directory.
    Abort();
  }
  return written;
}

Status AtomicFileWriter::Commit() {
  if (committed_) return InternalError("Commit called twice");
  if (fd_ < 0) return InternalError("Commit after Abort");
  // The durable layer is recoverable by design, so it opts into fault
  // injection on its own: a crash armed here leaves the target file
  // untouched and only an orphan temp — exactly the state recovery handles.
  FailPointScope scope;
  {
    const Status injected = CheckFailPoint("durable.commit");
    if (!injected.ok()) {
      Abort();
      return injected.WithContext("durable.commit('" + final_path_ + "')");
    }
  }
  {
    // fsyncgate: a failed fsync may have dropped the dirty pages, so the
    // temp file cannot be salvaged — unlink it and report. No retry.
    const Status synced = FsFsync(fd_, temp_path_);
    if (!synced.ok()) {
      Abort();
      return synced;
    }
  }
  ::close(fd_);
  fd_ = -1;
  {
    const Status renamed = FsRename(temp_path_, final_path_);
    if (!renamed.ok()) {
      ::unlink(temp_path_.c_str());
      committed_ = true;  // Nothing further to clean up.
      return renamed;
    }
  }
  SyncParentDir(final_path_);
  committed_ = true;
  return OkStatus();
}

void AtomicFileWriter::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!committed_ && !temp_path_.empty()) {
    ::unlink(temp_path_.c_str());
  }
  committed_ = true;
}

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  GPUTC_ASSIGN_OR_RETURN(AtomicFileWriter writer,
                         AtomicFileWriter::Create(path));
  GPUTC_RETURN_IF_ERROR(writer.Append(content));
  return writer.Commit();
}

// -- Segment log --------------------------------------------------------------

StatusOr<SegmentScan> ScanSegment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open segment '" + path + "'");
  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  if (end_pos < 0) {
    return DataLossError("cannot size segment '" + path + "'");
  }
  const uint64_t total = static_cast<uint64_t>(end_pos);
  in.seekg(0, std::ios::beg);

  // Stream frame by frame: long-running WALs grow without bound, so the
  // scan must not buffer the whole file (let alone copy it twice).
  SegmentScan scan;
  uint64_t pos = 0;
  char header[kFrameHeaderBytes];
  std::string payload;
  while (total - pos >= kFrameHeaderBytes) {
    in.read(header, kFrameHeaderBytes);
    if (in.gcount() != static_cast<std::streamsize>(kFrameHeaderBytes)) break;
    const uint32_t len = GetU32(header);
    const uint32_t stored_crc = GetU32(header + 4);
    // An all-zero header is a crash-extended tail whose blocks were never
    // written (file length grew, data reads back as zeros), not a record:
    // Append refuses empty payloads so no real frame looks like this.
    if (len == 0 && stored_crc == 0) break;
    if (len > kMaxRecordBytes) break;  // Garbage length: untrusted tail.
    if (total - pos - kFrameHeaderBytes < len) break;  // Torn payload.
    payload.resize(len);
    in.read(payload.data(), static_cast<std::streamsize>(len));
    if (in.gcount() != static_cast<std::streamsize>(len)) break;
    if (Crc32c(payload) != stored_crc) break;  // Corrupt frame.
    scan.records.push_back(payload);
    pos += kFrameHeaderBytes + len;
  }
  if (in.bad()) {
    return DataLossError("stream failed while reading segment '" + path +
                         "'");
  }
  scan.valid_bytes = pos;
  scan.dropped_bytes = total - pos;
  return scan;
}

StatusOr<SegmentWriter> SegmentWriter::Open(const std::string& path) {
  SegmentScan recovered;
  StatusOr<SegmentScan> scan = ScanSegment(path);
  if (scan.ok()) {
    recovered = *std::move(scan);
    if (recovered.dropped_bytes > 0) {
      // Torn tail from a crash mid-append: truncate back to the last intact
      // record so the next append continues from a verified prefix.
      GPUTC_LOG(Warning) << "segment '" << path << "': dropping "
                         << recovered.dropped_bytes
                         << " torn tail byte(s) after "
                         << recovered.records.size() << " intact record(s)";
      if (::truncate(path.c_str(),
                     static_cast<off_t>(recovered.valid_bytes)) != 0) {
        return ErrnoStatus("cannot truncate torn tail of", path);
      }
    }
  } else if (scan.status().code() != StatusCode::kNotFound) {
    return scan.status();
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("cannot open segment", path);
  return SegmentWriter(fd, path, std::move(recovered));
}

SegmentWriter::~SegmentWriter() {
  if (fd_ >= 0) ::close(fd_);
}

SegmentWriter::SegmentWriter(SegmentWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      recovered_(std::move(other.recovered_)),
      poison_(std::move(other.poison_)),
      state_mu_(std::move(other.state_mu_)) {}

SegmentWriter& SegmentWriter::operator=(SegmentWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    recovered_ = std::move(other.recovered_);
    poison_ = std::move(other.poison_);
    state_mu_ = std::move(other.state_mu_);
  }
  return *this;
}

Status SegmentWriter::poisoned() const {
  if (state_mu_ == nullptr) return OkStatus();  // Moved-from.
  std::lock_guard<std::mutex> lock(*state_mu_);
  return poison_;
}

Status SegmentWriter::Append(std::string_view payload) {
  if (fd_ < 0) return InternalError("Append on a moved-from SegmentWriter");
  if (payload.empty()) {
    // An empty record's frame is eight zero bytes — exactly what a
    // zero-filled crash tail reads back as, so the scanner treats that
    // header as end-of-log and a real empty record would vanish on replay.
    return InvalidArgumentError("empty segment records are not supported");
  }
  if (payload.size() > kMaxRecordBytes) {
    return InvalidArgumentError("segment record of " +
                                std::to_string(payload.size()) +
                                " bytes exceeds the frame cap");
  }
  // One writer at a time: the frame goes out in two write(2)s (see below),
  // and interleaving frames from concurrent appenders would corrupt the log
  // mid-record — recovery would then silently drop every record after the
  // interleave point.
  std::lock_guard<std::mutex> lock(*state_mu_);
  if (!poison_.ok()) {
    return poison_.WithContext("poisoned segment '" + path_ + "'");
  }
  FailPointScope scope;
  GPUTC_RETURN_IF_ERROR(
      CheckFailPoint("durable.append").WithContext("append('" + path_ + "')"));

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32c(payload));
  frame.append(payload.data(), payload.size());

  // The rollback point for a torn write: the fd is O_APPEND, so the current
  // size is where this frame starts.
  const off_t frame_start = ::lseek(fd_, 0, SEEK_END);

  // Split the frame so an armed "durable.append.torn" crash produces a
  // genuinely torn record — header plus partial payload — for the recovery
  // path to truncate. Unarmed, this is just two sequential writes.
  const size_t split = kFrameHeaderBytes + payload.size() / 2;
  Status written = FsWriteFully(fd_, frame.data(), split, path_);
  if (written.ok()) {
    const Status injected = CheckFailPoint("durable.append.torn");
    if (!injected.ok()) {
      // An injected *error* (rather than a crash) intentionally leaves the
      // torn prefix in place; the next Open truncates it.
      return injected.WithContext("torn append('" + path_ + "')");
    }
    written =
        FsWriteFully(fd_, frame.data() + split, frame.size() - split, path_);
  }
  if (!written.ok()) {
    // A torn frame mid-log would make the scanner drop every record after
    // it, so the tear cannot be left for later appends to bury: roll the
    // file back to the frame start. A failed rollback poisons the writer —
    // appending after an unremovable tear would silently lose records.
    if (frame_start >= 0 && ::ftruncate(fd_, frame_start) == 0) {
      return written;
    }
    poison_ = written;
    return written.WithContext("segment '" + path_ +
                               "' poisoned (torn frame could not be rolled "
                               "back)");
  }
  {
    const Status synced = FsFsync(fd_, path_);
    if (!synced.ok()) {
      // fsyncgate: the kernel may have dropped this frame's dirty pages and
      // cleared the error, so no later fsync on this fd can be trusted.
      // Poison the writer; the owner must reopen or fail the record.
      poison_ = synced;
      return synced;
    }
  }
  return OkStatus();
}

// -- LineLog ------------------------------------------------------------------

StatusOr<LineLog> LineLog::OpenTrunc(const std::string& path,
                                     bool fsync_each) {
  GPUTC_ASSIGN_OR_RETURN(const int fd,
                         FsOpen(path, O_WRONLY | O_CREAT | O_TRUNC, 0644));
  return LineLog(fd, path, fsync_each);
}

LineLog::~LineLog() {
  if (fd_ >= 0) ::close(fd_);
}

LineLog::LineLog(LineLog&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      fsync_each_(other.fsync_each_),
      offset_(other.offset_),
      poison_(std::move(other.poison_)) {}

LineLog& LineLog::operator=(LineLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    fsync_each_ = other.fsync_each_;
    offset_ = other.offset_;
    poison_ = std::move(other.poison_);
  }
  return *this;
}

Status LineLog::WriteLine(std::string_view line) {
  if (fd_ < 0) return InternalError("WriteLine on a moved-from LineLog");
  if (!poison_.ok()) {
    return poison_.WithContext("poisoned journal '" + path_ + "'");
  }
  std::string buffer;
  buffer.reserve(line.size() + 1);
  buffer.append(line.data(), line.size());
  buffer.push_back('\n');
  const Status written =
      FsWriteFully(fd_, buffer.data(), buffer.size(), path_);
  if (!written.ok()) {
    // All-or-nothing: a short write (ENOSPC mid-line) must not leave a torn
    // half-line for a journal consumer to choke on. Roll back to the last
    // complete line; if even that fails, poison — appending after an
    // unremovable tear would corrupt every following line. ftruncate leaves
    // the fd position past the cut, so reseek or the next line would sit
    // behind a hole of NUL bytes.
    if (::ftruncate(fd_, static_cast<off_t>(offset_)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(offset_), SEEK_SET) < 0) {
      poison_ = written;
      return written.WithContext("journal '" + path_ +
                                 "' poisoned (torn line could not be rolled "
                                 "back)");
    }
    return written;
  }
  if (fsync_each_) {
    const Status synced = FsFsync(fd_, path_);
    if (!synced.ok()) {
      // fsyncgate: this fd can no longer prove durability — poison it.
      poison_ = synced;
      return synced;
    }
  }
  offset_ += buffer.size();
  return OkStatus();
}

}  // namespace gputc
