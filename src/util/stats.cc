#include "util/stats.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/logging.h"

namespace gputc {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = static_cast<int64_t>(values.size());
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    s.sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = s.sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  return s;
}

LinearFit FitLine(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  GPUTC_CHECK_EQ(xs.size(), ys.size());
  GPUTC_CHECK(!xs.empty());
  LinearFit fit;
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  } else {
    fit.r_squared = 1.0;
  }
  return fit;
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), counts_(static_cast<size_t>(buckets), 0) {
  GPUTC_CHECK_GT(buckets, 0);
  GPUTC_CHECK_LT(lo, hi);
}

void Histogram::Add(double value) {
  const int n = num_buckets();
  int idx =
      static_cast<int>((value - lo_) / (hi_ - lo_) * static_cast<double>(n));
  idx = std::clamp(idx, 0, n - 1);
  // Concurrent workers share one histogram; plain ++ would race, so the
  // accumulators are bumped atomically (relaxed — readers only look after
  // every writer has joined).
  std::atomic_ref<int64_t>(counts_[static_cast<size_t>(idx)])
      .fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<int64_t>(total_).fetch_add(1, std::memory_order_relaxed);
}

int64_t Histogram::bucket_count(int i) const {
  // Atomic load to pair with Add's atomic_ref increments: a reader running
  // concurrently with writers (the batch service's metrics snapshot) must
  // not tear a count. const_cast is safe — atomic_ref only loads here.
  return std::atomic_ref<int64_t>(
             const_cast<int64_t&>(counts_[static_cast<size_t>(i)]))
      .load(std::memory_order_relaxed);
}

int64_t Histogram::total() const {
  return std::atomic_ref<int64_t>(const_cast<int64_t&>(total_))
      .load(std::memory_order_relaxed);
}

double Histogram::BucketLo(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(num_buckets());
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty()) return 0.0;
  const Summary sx = Summarize(xs);
  const Summary sy = Summarize(ys);
  if (sx.stddev == 0.0 || sy.stddev == 0.0) return 0.0;
  double cov = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean) * (ys[i] - sy.mean);
  }
  cov /= static_cast<double>(xs.size());
  return cov / (sx.stddev * sy.stddev);
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

void LatencyRecorder::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(value);
}

int64_t LatencyRecorder::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(samples_.size());
}

Summary LatencyRecorder::Summarize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ::gputc::Summarize(samples_);
}

double LatencyRecorder::PercentileValue(double pct) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ::gputc::Percentile(samples_, pct);
}

std::vector<double> LatencyRecorder::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

}  // namespace gputc
