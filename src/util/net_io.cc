#include "util/net_io.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>

namespace gputc {

StatusOr<int> PollRetry(struct pollfd* fds, size_t nfds, int timeout_ms) {
  for (;;) {
    const int ready = ::poll(fds, static_cast<nfds_t>(nfds), timeout_ms);
    if (ready >= 0) return ready;
    if (errno == EINTR) continue;
    return InternalError(std::string("poll: ") + strerror(errno));
  }
}

StatusOr<size_t> ReadRetry(int fd, char* data, size_t size,
                           bool* would_block) {
  if (would_block != nullptr) *would_block = false;
  for (;;) {
    const ssize_t n = ::read(fd, data, size);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if ((errno == EAGAIN || errno == EWOULDBLOCK) && would_block != nullptr) {
      *would_block = true;
      return static_cast<size_t>(0);
    }
    return InternalError(std::string("read: ") + strerror(errno));
  }
}

StatusOr<size_t> WriteRetry(int fd, const char* data, size_t size,
                            bool* would_block) {
  if (would_block != nullptr) *would_block = false;
  for (;;) {
    const ssize_t n = ::write(fd, data, size);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if ((errno == EAGAIN || errno == EWOULDBLOCK) && would_block != nullptr) {
      *would_block = true;
      return static_cast<size_t>(0);
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return FailedPreconditionError("peer closed the pipe (EPIPE)");
    }
    return InternalError(std::string("write: ") + strerror(errno));
  }
}

StatusOr<size_t> SendRetry(int fd, const char* data, size_t size,
                           bool* would_block) {
  if (would_block != nullptr) *would_block = false;
  for (;;) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if ((errno == EAGAIN || errno == EWOULDBLOCK) && would_block != nullptr) {
      *would_block = true;
      return static_cast<size_t>(0);
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return FailedPreconditionError("peer closed the socket (EPIPE)");
    }
    return InternalError(std::string("send: ") + strerror(errno));
  }
}

Status WriteAllFd(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    GPUTC_ASSIGN_OR_RETURN(const size_t n,
                           WriteRetry(fd, data + done, size - done));
    done += n;
  }
  return OkStatus();
}

StatusOr<size_t> ReadFullFd(int fd, char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    GPUTC_ASSIGN_OR_RETURN(const size_t n,
                           ReadRetry(fd, data + done, size - done));
    if (n == 0) break;  // EOF.
    done += n;
  }
  return done;
}

StatusOr<int> AcceptRetry(int listen_fd) {
  for (;;) {
#if defined(SOCK_CLOEXEC)
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
#else
    const int fd = ::accept(listen_fd, nullptr, nullptr);
#endif
    if (fd >= 0) {
#if !defined(SOCK_CLOEXEC)
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
#endif
      return fd;
    }
    if (errno == EINTR) continue;
    // Nothing pending (non-blocking listener) or the peer gave up between
    // SYN and accept: both mean "no connection right now", not an error.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return -1;
    }
    return InternalError(std::string("accept: ") + strerror(errno));
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return InternalError(std::string("fcntl(O_NONBLOCK): ") + strerror(errno));
  }
  return OkStatus();
}

std::string ListenSpec::ToString() const {
  if (is_unix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

StatusOr<ListenSpec> ParseListenSpec(const std::string& spec) {
  ListenSpec out;
  if (spec.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      return InvalidArgumentError("listen spec 'unix:' needs a socket path");
    }
    // sun_path is a fixed ~108-byte field; reject up front instead of
    // letting bind truncate silently.
    if (out.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return InvalidArgumentError("unix socket path '" + out.path +
                                  "' is too long");
    }
    return out;
  }
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return InvalidArgumentError("listen spec '" + spec +
                                "' is neither HOST:PORT nor unix:PATH");
  }
  out.host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port < 0 || port > 65535) {
    return InvalidArgumentError("listen spec '" + spec +
                                "' has an invalid port '" + port_str + "'");
  }
  out.port = static_cast<int>(port);
  return out;
}

namespace {

StatusOr<int> NewSocket(const ListenSpec& spec) {
  const int domain = spec.is_unix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + strerror(errno));
  }
  return fd;
}

/// Fills `*storage` for bind/connect; returns the address length.
StatusOr<socklen_t> FillAddress(const ListenSpec& spec,
                                sockaddr_storage* storage) {
  memset(storage, 0, sizeof(*storage));
  if (spec.is_unix) {
    auto* addr = reinterpret_cast<sockaddr_un*>(storage);
    addr->sun_family = AF_UNIX;
    strncpy(addr->sun_path, spec.path.c_str(), sizeof(addr->sun_path) - 1);
    return static_cast<socklen_t>(sizeof(sockaddr_un));
  }
  auto* addr = reinterpret_cast<sockaddr_in*>(storage);
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(spec.port));
  const std::string host = spec.host.empty() ? "0.0.0.0" : spec.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return InvalidArgumentError("listen host '" + spec.host +
                                "' is not an IPv4 address");
  }
  return static_cast<socklen_t>(sizeof(sockaddr_in));
}

}  // namespace

StatusOr<int> OpenListener(const ListenSpec& spec, int backlog) {
  GPUTC_ASSIGN_OR_RETURN(const int fd, NewSocket(spec));
  sockaddr_storage storage;
  const StatusOr<socklen_t> len = FillAddress(spec, &storage);
  if (!len.ok()) {
    ::close(fd);
    return len.status();
  }
  if (spec.is_unix) {
    // A previous daemon's socket file would make bind fail with EADDRINUSE
    // even though nobody is listening; remove it. A live listener still
    // conflicts — it holds the file and re-creates it.
    ::unlink(spec.path.c_str());
  } else {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&storage), *len) != 0) {
    const int saved = errno;
    ::close(fd);
    return InternalError("bind(" + spec.ToString() +
                         "): " + strerror(saved));
  }
  if (::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    return InternalError("listen(" + spec.ToString() +
                         "): " + strerror(saved));
  }
  const Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  return fd;
}

StatusOr<int> ConnectToListener(const ListenSpec& spec) {
  GPUTC_ASSIGN_OR_RETURN(const int fd, NewSocket(spec));
  sockaddr_storage storage;
  const StatusOr<socklen_t> len = FillAddress(spec, &storage);
  if (!len.ok()) {
    ::close(fd);
    return len.status();
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&storage), *len);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    ::close(fd);
    return InternalError("connect(" + spec.ToString() +
                         "): " + strerror(saved));
  }
  return fd;
}

}  // namespace gputc
