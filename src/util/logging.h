#ifndef GPUTC_UTIL_LOGGING_H_
#define GPUTC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace gputc {

/// Severity levels for LogMessage. kFatal aborts the process after the
/// message is flushed.
enum class LogSeverity { kInfo, kWarning, kError, kFatal };

/// Minimal streaming logger used by the GPUTC_LOG / GPUTC_CHECK macros.
/// The message is emitted to stderr when the temporary is destroyed.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity) {
    stream_ << "[" << SeverityName(severity) << " " << Basename(file) << ":"
            << line << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (severity_ == LogSeverity::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* SeverityName(LogSeverity severity) {
    switch (severity) {
      case LogSeverity::kInfo:
        return "INFO";
      case LogSeverity::kWarning:
        return "WARN";
      case LogSeverity::kError:
        return "ERROR";
      case LogSeverity::kFatal:
        return "FATAL";
    }
    return "UNKNOWN";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace gputc

#define GPUTC_LOG(severity)                                          \
  ::gputc::LogMessage(::gputc::LogSeverity::k##severity, __FILE__, \
                      __LINE__)                                      \
      .stream()

/// Aborts with a message when `condition` is false. Used for internal
/// invariants; user-facing errors should be reported through return values.
#define GPUTC_CHECK(condition)                                   \
  if (!(condition))                                              \
  GPUTC_LOG(Fatal) << "Check failed: " #condition " "

#define GPUTC_CHECK_OP(op, a, b)                                          \
  if (!((a)op(b)))                                                        \
  GPUTC_LOG(Fatal) << "Check failed: " #a " " #op " " #b " (" << (a)      \
                   << " vs " << (b) << ") "

#define GPUTC_CHECK_EQ(a, b) GPUTC_CHECK_OP(==, a, b)
#define GPUTC_CHECK_NE(a, b) GPUTC_CHECK_OP(!=, a, b)
#define GPUTC_CHECK_LT(a, b) GPUTC_CHECK_OP(<, a, b)
#define GPUTC_CHECK_LE(a, b) GPUTC_CHECK_OP(<=, a, b)
#define GPUTC_CHECK_GT(a, b) GPUTC_CHECK_OP(>, a, b)
#define GPUTC_CHECK_GE(a, b) GPUTC_CHECK_OP(>=, a, b)

#endif  // GPUTC_UTIL_LOGGING_H_
