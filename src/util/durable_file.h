#ifndef GPUTC_UTIL_DURABLE_FILE_H_
#define GPUTC_UTIL_DURABLE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gputc {

// Crash-safe file primitives shared by every artifact the system emits:
// binary graphs, batch journals, the write-ahead log, trace and metrics
// exports. Two write disciplines cover all of them:
//
//  * AtomicFileWriter / WriteFileAtomic — whole-file replacement with the
//    classic write-temp -> fsync -> rename -> fsync-directory protocol.
//    Readers never observe a torn file: they see the old content or the new
//    content, nothing in between, even across SIGKILL or power loss.
//
//  * SegmentWriter / ScanSegment — an append-only record log with per-record
//    CRC32C framing. A crash mid-append leaves a torn tail, which Open
//    detects and truncates back to the last intact record; everything before
//    the tear is trusted because its checksums still verify.
//
// The fail-point sites "durable.commit", "durable.append" and
// "durable.append.torn" are compiled into these paths. The durable layer
// opens its own FailPointScope — unlike ordinary library code, every
// injection here lands on a path that is recoverable *by design*, and the
// crash harness depends on being able to kill the process at exactly these
// boundaries.
//
// All syscalls go through util/fs_io.h, so the storage-fault sites
// (fs.write, fs.write.short, fs.fsync, ...) inject beneath every writer
// here. Fault semantics follow the fsyncgate rule: after any fsync failure
// the fd is poisoned — the writer never fsyncs it again (the kernel may have
// dropped the dirty pages and a retry would falsely succeed) and every
// subsequent operation fails fast with the original fault until the caller
// reopens. Failed writes roll back (ftruncate to the record start) where
// the file must stay clean — a journal never keeps a torn half-line — and
// poison the sink when even the rollback fails.

/// CRC32C (Castagnoli polynomial, as used by ext4, RocksDB, and gRPC).
/// `seed` chains partial computations: Crc32c(b, nb, Crc32c(a, na)).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);
inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

/// Atomic whole-file replacement. Writes stream into
/// `<path>.tmp.<pid>.<seq>` (the sequence number keeps concurrent writers
/// targeting the same path in one process from clobbering each other's temp
/// file); Commit fsyncs the temp file, renames it over `path`, and fsyncs
/// the parent directory so the rename itself is durable. Destroying an
/// uncommitted writer unlinks the temp file.
class AtomicFileWriter {
 public:
  static StatusOr<AtomicFileWriter> Create(const std::string& path);
  ~AtomicFileWriter();

  AtomicFileWriter(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter& operator=(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Writes into the temp file. On any failure (ENOSPC mid-write included)
  /// the temp file is unlinked on the spot and the target stays untouched;
  /// the writer is dead afterwards — further Append/Commit calls fail.
  Status Append(const void* data, size_t size);
  Status Append(std::string_view data) {
    return Append(data.data(), data.size());
  }

  /// fsync + rename + directory fsync. Passes the "durable.commit" fail
  /// point *before* the rename, so a crash armed there leaves the target
  /// untouched and only a temp file behind. On any failure the temp file is
  /// unlinked and the target stays untouched.
  Status Commit();

  /// Discards the temp file. Idempotent; Commit after Abort is an error.
  void Abort();

 private:
  AtomicFileWriter(int fd, std::string temp_path, std::string final_path)
      : fd_(fd),
        temp_path_(std::move(temp_path)),
        final_path_(std::move(final_path)) {}

  int fd_ = -1;
  std::string temp_path_;
  std::string final_path_;
  bool committed_ = false;
};

/// One-shot atomic write of `content` to `path`.
Status WriteFileAtomic(const std::string& path, std::string_view content);

/// What a scan of an append-only segment found. `dropped_bytes` counts the
/// torn or corrupt tail after the last intact record; the records before it
/// verified their checksums and are safe to trust.
struct SegmentScan {
  std::vector<std::string> records;
  uint64_t valid_bytes = 0;
  uint64_t dropped_bytes = 0;
};

/// Reads every intact record of the segment at `path`, streaming one frame
/// at a time (the file is never buffered whole). Framing is
/// [u32 payload_len][u32 crc32c(payload)][payload]; scanning stops at the
/// first frame that is incomplete, fails its checksum, or has an all-zero
/// header — a crash can only tear the tail, and a crash-extended file whose
/// blocks were never written reads back as zeros, so nothing after either is
/// trusted. (Empty payloads are rejected by Append precisely so a zero
/// header can never be a real record.) kNotFound when the file does not
/// exist.
StatusOr<SegmentScan> ScanSegment(const std::string& path);

/// Append-only CRC-framed record log. Open recovers the segment first —
/// truncating any torn tail back to the last intact record — so appends
/// always continue from a verified prefix. Every Append is fsynced before
/// it returns: a record handed back OK survives SIGKILL and power loss.
/// Append is thread-safe: concurrent appends serialize on an internal
/// mutex, so frames from different threads never interleave mid-record.
class SegmentWriter {
 public:
  static StatusOr<SegmentWriter> Open(const std::string& path);
  ~SegmentWriter();

  SegmentWriter(SegmentWriter&& other) noexcept;
  SegmentWriter& operator=(SegmentWriter&& other) noexcept;
  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Appends one framed record and fsyncs; safe to call from multiple
  /// threads. Empty payloads are rejected (their frame would be
  /// indistinguishable from a zero-filled crash tail). Passes
  /// "durable.append" before writing anything and "durable.append.torn"
  /// after a deliberate partial write, so a crash armed at the latter leaves
  /// a real torn tail for the recovery path to exercise.
  Status Append(std::string_view payload);

  /// Records recovered (still present) when the segment was opened.
  const SegmentScan& recovered() const { return recovered_; }
  const std::string& path() const { return path_; }

  /// Non-OK once the writer is poisoned: a failed fsync (fsyncgate — the
  /// kernel may have dropped the dirty pages, so no further fsync can be
  /// trusted) or a failed rollback after a torn write. Every Append after
  /// poisoning fails fast with this status; the owner must reopen.
  Status poisoned() const;

 private:
  SegmentWriter(int fd, std::string path, SegmentScan recovered)
      : fd_(fd),
        path_(std::move(path)),
        recovered_(std::move(recovered)),
        state_mu_(std::make_unique<std::mutex>()) {}

  int fd_ = -1;
  std::string path_;
  SegmentScan recovered_;
  Status poison_;
  /// Serializes Append across threads: a frame is written in (deliberately)
  /// more than one write(2), and interleaved frames from two threads would
  /// corrupt the log mid-record, not just at the tail. Also guards poison_.
  std::unique_ptr<std::mutex> state_mu_;
};

/// Line-oriented streaming log for the batch journal: each WriteLine issues
/// one write(2) of "line\n" and, when `fsync_each` is set, an fsync — so a
/// journal line handed back OK has reached the disk before the caller moves
/// on. OpenTrunc truncates (resume rewrites the journal from its replayed
/// prefix, keeping exactly one line per request).
///
/// Short-write discipline: a line is all-or-nothing. When the write fails
/// partway (ENOSPC mid-line), WriteLine rolls the file back to the line
/// start with ftruncate — the journal never keeps a torn half-line. If even
/// the rollback fails, or an fsync fails (fsyncgate: the fd can no longer
/// be trusted), the log is poisoned and every later WriteLine fails fast.
class LineLog {
 public:
  static StatusOr<LineLog> OpenTrunc(const std::string& path, bool fsync_each);
  ~LineLog();

  LineLog(LineLog&& other) noexcept;
  LineLog& operator=(LineLog&& other) noexcept;
  LineLog(const LineLog&) = delete;
  LineLog& operator=(const LineLog&) = delete;

  Status WriteLine(std::string_view line);

  /// Non-OK once the log is poisoned (failed rollback or failed fsync).
  const Status& poisoned() const { return poison_; }

 private:
  LineLog(int fd, std::string path, bool fsync_each)
      : fd_(fd), path_(std::move(path)), fsync_each_(fsync_each) {}

  int fd_ = -1;
  std::string path_;
  bool fsync_each_ = false;
  /// Bytes of intact, complete lines — the rollback point for a torn write.
  uint64_t offset_ = 0;
  Status poison_;
};

}  // namespace gputc

#endif  // GPUTC_UTIL_DURABLE_FILE_H_
