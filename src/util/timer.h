#ifndef GPUTC_UTIL_TIMER_H_
#define GPUTC_UTIL_TIMER_H_

#include <chrono>

namespace gputc {

/// Wall-clock stopwatch used to time host-side preprocessing. Simulated GPU
/// kernel time is reported in model cycles, not wall time (see src/sim).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Returns seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gputc

#endif  // GPUTC_UTIL_TIMER_H_
