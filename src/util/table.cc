#include "util/table.h"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace gputc {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const { out << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FmtCount(int64_t value) {
  const bool negative = value < 0;
  uint64_t v = negative ? static_cast<uint64_t>(-(value + 1)) + 1
                        : static_cast<uint64_t>(value);
  std::string digits = std::to_string(v);
  std::string out;
  const size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out += ',';
    out += digits[i];
  }
  return negative ? "-" + out : out;
}

std::string Percent(double ratio) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", ratio * 100.0);
  return buf;
}

std::string Frac(double ratio) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
  return buf;
}

}  // namespace gputc
