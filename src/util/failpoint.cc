#include "util/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "util/logging.h"

namespace gputc {
namespace {

thread_local int g_scope_depth = 0;

/// xorshift64* — the same generator family as util/random.h, local so the
/// registry stays self-contained.
uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1DULL;
}

struct CodeEntry {
  std::string_view name;
  StatusCode code;
  /// Non-empty for the errno aliases: the detail text carrying the symbolic
  /// errno name into the injected message.
  std::string_view detail;
};

std::optional<CodeEntry> ParseCode(std::string_view name) {
  static constexpr CodeEntry kCodes[] = {
      {"internal", StatusCode::kInternal, ""},
      {"data_loss", StatusCode::kDataLoss, ""},
      {"resource_exhausted", StatusCode::kResourceExhausted, ""},
      {"deadline_exceeded", StatusCode::kDeadlineExceeded, ""},
      {"cancelled", StatusCode::kCancelled, ""},
      {"invalid_argument", StatusCode::kInvalidArgument, ""},
      {"out_of_range", StatusCode::kOutOfRange, ""},
      {"failed_precondition", StatusCode::kFailedPrecondition, ""},
      {"unimplemented", StatusCode::kUnimplemented, ""},
      {"not_found", StatusCode::kNotFound, ""},
      // Errno aliases: inject the Status a real storage fault maps to (see
      // ErrnoToStatus), with the symbolic name in the message so the errno
      // metric label matches a genuine kernel-reported fault.
      {"enospc", StatusCode::kResourceExhausted, "injected ENOSPC"},
      {"eio", StatusCode::kDataLoss, "injected EIO"},
      {"edquot", StatusCode::kResourceExhausted, "injected EDQUOT"},
  };
  for (const CodeEntry& e : kCodes) {
    if (e.name == name) return e;
  }
  return std::nullopt;
}

/// Parses one "site=code[@count][%prob][$seed][^skip]" entry.
Status ParseEntry(std::string_view entry, std::string* site,
                  FailPointSpec* spec) {
  const size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return InvalidArgumentError("fail-point entry '" + std::string(entry) +
                                "' is not of the form site=code");
  }
  *site = std::string(entry.substr(0, eq));
  std::string_view rest = entry.substr(eq + 1);

  // Split off the optional suffixes right-to-left; each marker appears at
  // most once and they compose in any order.
  *spec = FailPointSpec{};
  while (true) {
    const size_t marker = rest.find_last_of("@%$^");
    if (marker == std::string_view::npos) break;
    const char kind = rest[marker];
    const std::string value(rest.substr(marker + 1));
    rest = rest.substr(0, marker);
    char* end = nullptr;
    if (kind == '@') {
      spec->count = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || spec->count < 0) {
        return InvalidArgumentError("fail-point count '@" + value +
                                    "' is not a non-negative integer");
      }
    } else if (kind == '^') {
      spec->skip = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || spec->skip < 0) {
        return InvalidArgumentError("fail-point skip '^" + value +
                                    "' is not a non-negative integer");
      }
    } else if (kind == '%') {
      spec->probability = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || spec->probability < 0.0 ||
          spec->probability > 1.0) {
        return InvalidArgumentError("fail-point probability '%" + value +
                                    "' is not in [0, 1]");
      }
    } else {  // '$'
      spec->seed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return InvalidArgumentError("fail-point seed '$" + value +
                                    "' is not an integer");
      }
    }
  }

  if (rest == "crash") {
    spec->action = FailPointSpec::Action::kCrash;
    return OkStatus();
  }
  const std::optional<CodeEntry> code = ParseCode(rest);
  if (!code.has_value()) {
    return InvalidArgumentError(
        "unknown fail-point error code '" + std::string(rest) +
        "'; valid codes: internal data_loss resource_exhausted "
        "deadline_exceeded cancelled invalid_argument out_of_range "
        "failed_precondition unimplemented not_found crash "
        "enospc eio edquot");
  }
  spec->code = code->code;
  spec->detail = std::string(code->detail);
  return OkStatus();
}

}  // namespace

struct FailPointRegistry::Impl {
  struct ArmedPoint {
    FailPointSpec spec;
    int64_t fired = 0;       // Times this point has injected an error.
    int64_t seen = 0;        // In-scope hits of this armed point (for ^skip).
    uint64_t rng_state = 1;  // Seeded from spec.seed; 0 is invalid.
  };

  mutable std::mutex mu;
  std::map<std::string, ArmedPoint, std::less<>> armed;
  std::map<std::string, std::function<void(int64_t)>, std::less<>> observers;
  std::map<std::string, int64_t, std::less<>> hit_counts;
};

FailPointRegistry::FailPointRegistry() : impl_(new Impl) {
  const char* env = std::getenv("GPUTC_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    const Status armed = ArmFromString(env);
    if (!armed.ok()) {
      GPUTC_LOG(Warning) << "ignoring GPUTC_FAILPOINTS: "
                         << armed.ToString();
    }
  }
}

FailPointRegistry& FailPointRegistry::Instance() {
  static FailPointRegistry* registry = new FailPointRegistry();
  return *registry;
}

void FailPointRegistry::Arm(std::string site, FailPointSpec spec) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Impl::ArmedPoint point;
  point.spec = spec;
  point.rng_state = spec.seed == 0 ? 1 : spec.seed;
  impl_->armed[std::move(site)] = std::move(point);
  active_.store(true, std::memory_order_relaxed);
}

void FailPointRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->armed.erase(site);
  active_.store(!impl_->armed.empty() || !impl_->observers.empty(),
                std::memory_order_relaxed);
}

Status FailPointRegistry::ArmFromString(std::string_view schedule) {
  // Parse everything first so a bad trailing entry cannot leave a
  // half-armed schedule.
  std::vector<std::pair<std::string, FailPointSpec>> parsed;
  size_t begin = 0;
  while (begin <= schedule.size()) {
    size_t end = schedule.find(';', begin);
    if (end == std::string_view::npos) end = schedule.size();
    const std::string_view entry = schedule.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    std::string site;
    FailPointSpec spec;
    GPUTC_RETURN_IF_ERROR(ParseEntry(entry, &site, &spec));
    parsed.emplace_back(std::move(site), spec);
  }
  for (auto& [site, spec] : parsed) Arm(std::move(site), spec);
  return OkStatus();
}

void FailPointRegistry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->armed.clear();
  impl_->observers.clear();
  impl_->hit_counts.clear();
  active_.store(false, std::memory_order_relaxed);
}

void FailPointRegistry::SetObserver(std::string site,
                                    std::function<void(int64_t)> observer) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->observers[std::move(site)] = std::move(observer);
  active_.store(true, std::memory_order_relaxed);
}

int64_t FailPointRegistry::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->hit_counts.find(site);
  return it == impl_->hit_counts.end() ? 0 : it->second;
}

std::vector<std::string> FailPointRegistry::ArmedSites() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> sites;
  sites.reserve(impl_->armed.size());
  for (const auto& [site, point] : impl_->armed) sites.push_back(site);
  return sites;
}

Status FailPointRegistry::Evaluate(std::string_view site) {
  std::function<void(int64_t)> observer;
  int64_t hit = 0;
  Status injected = OkStatus();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const auto armed_it = impl_->armed.find(site);
    const auto observer_it = impl_->observers.find(site);
    if (armed_it == impl_->armed.end() &&
        observer_it == impl_->observers.end()) {
      return OkStatus();
    }
    hit = ++impl_->hit_counts[std::string(site)];
    if (observer_it != impl_->observers.end()) observer = observer_it->second;
    if (armed_it != impl_->armed.end()) {
      Impl::ArmedPoint& point = armed_it->second;
      ++point.seen;
      const bool budget_left =
          point.spec.count < 0 || point.fired < point.spec.count;
      bool fires = budget_left && point.seen > point.spec.skip;
      if (fires && point.spec.probability < 1.0) {
        const double draw =
            static_cast<double>(NextRandom(&point.rng_state) >> 11) /
            static_cast<double>(uint64_t{1} << 53);
        fires = draw < point.spec.probability;
      }
      if (fires) {
        ++point.fired;
        if (point.spec.action == FailPointSpec::Action::kCrash) {
          // Simulated SIGKILL: die right here, skipping destructors, atexit
          // handlers, and stream flushes, so whatever the process had not
          // yet made durable is genuinely lost. 137 = 128 + SIGKILL, the
          // exit code a real OOM-kill would produce, which is what the
          // crash harness asserts on.
          std::_Exit(137);
        }
        std::string message = "fail point '" + std::string(site) +
                              "' fired (hit " + std::to_string(hit) + ")";
        if (!point.spec.detail.empty()) {
          message += ": " + point.spec.detail;
        }
        injected = Status(point.spec.code, std::move(message));
      }
    }
  }
  // Observers run outside the lock so they may cancel tokens, arm other
  // points, or query the registry without deadlocking.
  if (observer) observer(hit);
  return injected;
}

FailPointScope::FailPointScope() { ++g_scope_depth; }
FailPointScope::~FailPointScope() { --g_scope_depth; }
bool FailPointScope::active() { return g_scope_depth > 0; }

Status CheckFailPoint(std::string_view site) {
  FailPointRegistry& registry = FailPointRegistry::Instance();
  if (!registry.has_armed_or_observed()) return OkStatus();
  if (!FailPointScope::active()) return OkStatus();
  return registry.Evaluate(site);
}

}  // namespace gputc
