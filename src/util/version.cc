#include "util/version.h"

namespace gputc {

// CMake stamps these on the tc_util target; the fallbacks keep ad-hoc
// builds (IDE single-file compiles) honest about not knowing.
#ifndef GPUTC_VERSION
#define GPUTC_VERSION "0.0.0-dev"
#endif
#ifndef GPUTC_BUILD_TYPE
#define GPUTC_BUILD_TYPE "unknown"
#endif

// Sanitizer detection mirrors worker_process.cc: GCC defines
// __SANITIZE_*__, clang answers __has_feature.
#if defined(__SANITIZE_THREAD__)
#define GPUTC_SAN_NAME "thread"
#elif defined(__SANITIZE_ADDRESS__)
#define GPUTC_SAN_NAME "address+undefined"
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GPUTC_SAN_NAME "thread"
#elif __has_feature(address_sanitizer)
#define GPUTC_SAN_NAME "address+undefined"
#endif
#endif
#ifndef GPUTC_SAN_NAME
#define GPUTC_SAN_NAME "none"
#endif

const char* VersionNumber() { return GPUTC_VERSION; }

const char* BuildType() { return GPUTC_BUILD_TYPE; }

const char* SanitizerConfig() { return GPUTC_SAN_NAME; }

std::string VersionString() {
  return std::string("gputc ") + GPUTC_VERSION + " (" + GPUTC_BUILD_TYPE +
         "; sanitizer=" + GPUTC_SAN_NAME + ")";
}

}  // namespace gputc
