#ifndef GPUTC_UTIL_CHECKED_MATH_H_
#define GPUTC_UTIL_CHECKED_MATH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "util/status.h"

namespace gputc {

// Overflow-checked int64 arithmetic for triangle/support accumulators.
// Signed overflow is UB, so a counter that wraps does not just report a
// wrong number — it invalidates the whole process. Every accumulator that
// sums data-dependent quantities (triangles, wedges, supports) goes through
// these helpers and surfaces OutOfRange instead of wrapping.

/// True when a + b would leave the int64 range.
inline bool AddWouldOverflow(int64_t a, int64_t b) {
  int64_t unused;
  return __builtin_add_overflow(a, b, &unused);
}

/// True when a * b would leave the int64 range.
inline bool MulWouldOverflow(int64_t a, int64_t b) {
  int64_t unused;
  return __builtin_mul_overflow(a, b, &unused);
}

/// a + b clamped to the int64 range instead of wrapping.
inline int64_t SaturatingAdd(int64_t a, int64_t b) {
  int64_t sum;
  if (!__builtin_add_overflow(a, b, &sum)) return sum;
  return b > 0 ? std::numeric_limits<int64_t>::max()
               : std::numeric_limits<int64_t>::min();
}

/// Saturating accumulator: adds clamp at `limit` and raise a sticky flag the
/// owner converts into an OutOfRange Status via ToStatus(). The limit
/// defaults to int64 max; ExecContext::count_limit lowers it so overflow
/// handling can be exercised without 10^18 triangles.
class CheckedInt64 {
 public:
  CheckedInt64() = default;
  explicit CheckedInt64(int64_t limit) : limit_(limit) {}

  void Add(int64_t delta) {
    if (overflowed_) return;
    int64_t sum;
    if (__builtin_add_overflow(value_, delta, &sum) || sum > limit_) {
      overflowed_ = true;
      value_ = limit_;
      return;
    }
    value_ = sum;
  }

  int64_t value() const { return value_; }
  bool overflowed() const { return overflowed_; }

  /// OkStatus, or OutOfRange naming `what` once an Add saturated.
  Status ToStatus(std::string_view what) const {
    if (!overflowed_) return OkStatus();
    std::string message(what);
    message += " exceeded ";
    message += limit_ == std::numeric_limits<int64_t>::max()
                   ? "the int64 range"
                   : "its configured limit of " + std::to_string(limit_);
    message += "; refusing to wrap";
    return OutOfRangeError(std::move(message));
  }

 private:
  int64_t value_ = 0;
  int64_t limit_ = std::numeric_limits<int64_t>::max();
  bool overflowed_ = false;
};

}  // namespace gputc

#endif  // GPUTC_UTIL_CHECKED_MATH_H_
