#include "util/flags.h"

#include <cstdlib>

#include "util/logging.h"

namespace gputc {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

FlagParser::FlagParser(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // Bare flag, e.g. --verbose.
    }
  }
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  GPUTC_CHECK(end != nullptr && *end == '\0')
      << "flag --" << name << " expects an integer, got '" << it->second
      << "'";
  return value;
}

double FlagParser::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  GPUTC_CHECK(end != nullptr && *end == '\0')
      << "flag --" << name << " expects a number, got '" << it->second << "'";
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace gputc
