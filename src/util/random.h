#ifndef GPUTC_UTIL_RANDOM_H_
#define GPUTC_UTIL_RANDOM_H_

#include <cstdint>

namespace gputc {

/// Deterministic 64-bit PRNG (xorshift128+ seeded via SplitMix64).
///
/// Every stochastic component in this repository (graph generators, random
/// orientations, sampling in tests) draws from this generator so that all
/// experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  /// Re-seeds the generator. Two streams with equal seeds are identical.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xorshift state, which avoids
    // the all-zero state and decorrelates nearby seeds.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
  }

  /// Returns a uniformly distributed 64-bit value.
  uint64_t Next64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Returns a uniform value in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Multiplicative range reduction; the bias is < 2^-64 * bound and is
    // irrelevant for graph generation.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next64()) * bound) >> 64);
  }

  /// Returns a uniform uint32_t in [0, bound).
  uint32_t NextU32(uint32_t bound) {
    return static_cast<uint32_t>(NextBounded(bound));
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace gputc

#endif  // GPUTC_UTIL_RANDOM_H_
