#ifndef GPUTC_UTIL_VERSION_H_
#define GPUTC_UTIL_VERSION_H_

#include <string>

namespace gputc {

// The one binary-identity string, stamped everywhere a post-mortem might
// need it: `gputc version` / `gputc --version`, the serve daemon's hello
// line, and a version record appended to every write-ahead log on open —
// so the forensics after a crash can always answer "which binary wrote
// this?" even when nothing but the WAL survived.

/// Semantic version alone, e.g. "0.8.0".
const char* VersionNumber();

/// Build type as configured by CMake ("Release", "RelWithDebInfo", ...).
const char* BuildType();

/// Compiled-in sanitizer config: "none", "address+undefined", or "thread".
const char* SanitizerConfig();

/// The full identity line:
///   "gputc 0.8.0 (RelWithDebInfo; sanitizer=none)"
std::string VersionString();

}  // namespace gputc

#endif  // GPUTC_UTIL_VERSION_H_
