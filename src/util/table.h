#ifndef GPUTC_UTIL_TABLE_H_
#define GPUTC_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gputc {

/// Column-aligned plain-text table used by the benchmark harness to print
/// rows matching the paper's tables and figure series.
///
///   TablePrinter t({"dataset", "kernel(ms)", "speedup"});
///   t.AddRow({"gowalla", Fmt(12.3), Percent(0.25)});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table; `out` is typically std::cout.
  void Print(std::ostream& out) const;

  /// Returns the rendered table as a string (used in tests).
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string Fmt(double value, int digits = 2);

/// Formats an integer with thousands separators ("1,234,567").
std::string FmtCount(int64_t value);

/// Formats a ratio as a signed percentage ("+25.0%") — deltas/speedups.
std::string Percent(double ratio);

/// Formats a ratio as an unsigned percentage ("86.0%") — fractions such as
/// utilization.
std::string Frac(double ratio);

}  // namespace gputc

#endif  // GPUTC_UTIL_TABLE_H_
