#ifndef GPUTC_UTIL_FLAGS_H_
#define GPUTC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gputc {

/// Tiny command-line flag parser for examples and bench binaries.
///
/// Accepts `--name=value` and `--name value` syntax; anything else is kept as
/// a positional argument. Example:
///
///   FlagParser flags(argc, argv);
///   int64_t n = flags.GetInt("nodes", 1000);
///   std::string name = flags.GetString("dataset", "gowalla");
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  /// Returns the flag's value, or `def` when the flag is absent. GetInt and
  /// GetDouble abort on a malformed number so typos fail loudly.
  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  bool Has(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace gputc

#endif  // GPUTC_UTIL_FLAGS_H_
