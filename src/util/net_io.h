#ifndef GPUTC_UTIL_NET_IO_H_
#define GPUTC_UTIL_NET_IO_H_

#include <poll.h>

#include <cstddef>
#include <string>

#include "util/status.h"

namespace gputc {

// EINTR-safe descriptor I/O, shared by every poll/read/write/accept call
// site in the tree (worker pipes, the serve daemon, tests). Signal-heavy
// paths — the drain ladder forwards SIGTERM/SIGINT/SIGHUP through the whole
// process — make bare syscalls a latent bug: an EINTR surfacing as a
// spurious I/O error turns a graceful drain into a failed request. Every
// helper here retries EINTR and reports everything else as a Status, so
// callers never see the interrupt at all.

/// poll(2), retried on EINTR. Returns the number of ready descriptors (0 on
/// timeout); Internal on any other error. `timeout_ms < 0` blocks forever.
StatusOr<int> PollRetry(struct pollfd* fds, size_t nfds, int timeout_ms);

/// read(2) of up to `size` bytes, retried on EINTR. Returns the byte count
/// (0 = EOF). Sets `*would_block` (when non-null) instead of erroring on
/// EAGAIN/EWOULDBLOCK from a non-blocking descriptor.
StatusOr<size_t> ReadRetry(int fd, char* data, size_t size,
                           bool* would_block = nullptr);

/// write(2) of up to `size` bytes, retried on EINTR. Returns the byte count
/// actually written (a short write is not an error; loop or use WriteAllFd).
/// Sets `*would_block` (when non-null) on EAGAIN/EWOULDBLOCK; EPIPE is
/// FailedPrecondition (the peer is gone — retriable elsewhere, see
/// worker_process.cc).
StatusOr<size_t> WriteRetry(int fd, const char* data, size_t size,
                            bool* would_block = nullptr);

/// send(2) with MSG_NOSIGNAL, retried on EINTR — the socket flavor of
/// WriteRetry. A peer that disconnected mid-response surfaces as a
/// FailedPrecondition status instead of a process-killing SIGPIPE, so the
/// serve daemon (and any embedder that never touched signal dispositions)
/// survives client departures by construction. Sockets only.
StatusOr<size_t> SendRetry(int fd, const char* data, size_t size,
                           bool* would_block = nullptr);

/// Writes exactly `size` bytes (EINTR- and partial-write-safe). EPIPE is
/// FailedPrecondition, everything else Internal. Blocking descriptors only.
Status WriteAllFd(int fd, const char* data, size_t size);

/// Reads exactly `size` bytes (EINTR- and partial-read-safe). Returns the
/// byte count actually read: `size` on success, 0 on clean EOF before any
/// byte, in between when the peer died mid-message. Blocking fds only.
StatusOr<size_t> ReadFullFd(int fd, char* data, size_t size);

/// accept(2), retried on EINTR, with O_CLOEXEC on the accepted descriptor.
/// Returns the new fd, or -1 when a non-blocking listener has nothing
/// pending (EAGAIN) or the connection aborted before accept (ECONNABORTED).
StatusOr<int> AcceptRetry(int listen_fd);

/// Puts `fd` into non-blocking mode.
Status SetNonBlocking(int fd);

// -- listeners --------------------------------------------------------------

/// A parsed `--listen` value: "HOST:PORT" (TCP) or "unix:PATH".
struct ListenSpec {
  bool is_unix = false;
  std::string host;  // TCP only.
  int port = 0;      // TCP only.
  std::string path;  // Unix only.

  /// Canonical display form ("127.0.0.1:7171" or "unix:/tmp/s.sock").
  std::string ToString() const;
};

/// Parses "HOST:PORT" or "unix:PATH". InvalidArgument on anything else
/// (missing port, non-numeric port, empty path).
StatusOr<ListenSpec> ParseListenSpec(const std::string& spec);

/// Binds and listens on `spec` (backlog `backlog`), non-blocking, CLOEXEC.
/// A stale unix-domain socket file is unlinked before bind. Returns the
/// listening descriptor.
StatusOr<int> OpenListener(const ListenSpec& spec, int backlog = 64);

/// Connects a blocking client socket to `spec` (test/client helper).
StatusOr<int> ConnectToListener(const ListenSpec& spec);

}  // namespace gputc

#endif  // GPUTC_UTIL_NET_IO_H_
