#ifndef GPUTC_UTIL_DEADLINE_H_
#define GPUTC_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace gputc {

/// Absolute steady-clock deadline. A default-constructed Deadline never
/// expires, so unconstrained callers pay nothing but a comparison per poll.
class Deadline {
 public:
  Deadline() : when_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` wall-clock milliseconds from now.
  static Deadline AfterMillis(double ms) {
    Deadline d;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  /// The earlier of two deadlines — how layered budgets compose (e.g. a
  /// request deadline under a service-wide drain deadline).
  static Deadline Earlier(Deadline a, Deadline b) {
    return a.when_ <= b.when_ ? a : b;
  }

  bool is_infinite() const { return when_ == Clock::time_point::max(); }

  bool expired() const { return !is_infinite() && Clock::now() >= when_; }

  /// Milliseconds until expiry: +infinity when infinite, negative once past.
  double remaining_millis() const {
    if (is_infinite()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(when_ - Clock::now())
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point when_;
};

/// Cooperative cancellation handle. Copies share one flag: Cancel() from any
/// thread is visible to every holder at its next poll. Cancellation is
/// one-way and sticky; the first reason wins.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  void Cancel(std::string reason = "operation cancelled") {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->reason.empty()) state_->reason = std::move(reason);
    }
    state_->cancelled.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  /// The reason passed to the first Cancel(); empty while not cancelled.
  std::string reason() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->reason;
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    mutable std::mutex mu;
    std::string reason;
  };
  std::shared_ptr<State> state_;
};

class Tracer;  // obs/trace.h — util stays below the observability layer.

/// The execution envelope the executor threads down into the counters' block
/// loops and A-order's bucket packing: a wall-clock deadline, a cancellation
/// token, and the triangle-accumulator ceiling. A default-constructed
/// context is unconstrained, so legacy entry points run exactly as before.
struct ExecContext {
  Deadline deadline = Deadline::Infinite();
  CancelToken cancel;
  /// Checked accumulators surface OutOfRange once a count would exceed this.
  /// Production leaves it at int64 max; tests lower it to drive the overflow
  /// path on laptop-sized graphs.
  int64_t count_limit = std::numeric_limits<int64_t>::max();

  /// Observability hook (not owned; null = untraced). Pipeline stages open
  /// spans on this tracer as children of `parent_span` under `trace_id` via
  /// obs/trace.h's StartSpan(ctx, name) / WithSpan(ctx, span). Only stages
  /// allocate spans; block/vertex/arc loops keep polling this context and
  /// never touch the tracer — the "poll, don't allocate" hot-path rule.
  Tracer* tracer = nullptr;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;

  /// Cheap boolean poll for inner loops that cannot early-return a Status.
  bool stop_requested() const {
    return cancel.cancelled() || deadline.expired();
  }

  /// OkStatus while the run may continue; Cancelled or DeadlineExceeded
  /// (prefixed with `site`) once it must stop. Poll at block granularity —
  /// the contract the cancellation tests enforce.
  Status CheckContinue(std::string_view site) const {
    if (cancel.cancelled()) {
      return CancelledError(cancel.reason()).WithContext(site);
    }
    if (deadline.expired()) {
      return DeadlineExceededError("wall-clock deadline expired")
          .WithContext(site);
    }
    return OkStatus();
  }
};

}  // namespace gputc

#endif  // GPUTC_UTIL_DEADLINE_H_
