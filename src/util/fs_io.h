#ifndef GPUTC_UTIL_FS_IO_H_
#define GPUTC_UTIL_FS_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace gputc {

// The storage-syscall boundary every durable sink writes through — the
// filesystem sibling of net_io's socket wrappers. All storage-fault
// injection happens here, at the exact layer where ENOSPC/EIO/EDQUOT arrive
// from a real kernel, so the recovery machinery above (WAL fail-stop,
// journal degradation, cache breakers) is exercised by the same error shapes
// production would produce.
//
// Fail-point sites (each wrapper opens its own FailPointScope — storage
// faults land on paths that are recoverable by design):
//
//   fs.write        injected before any byte is written
//   fs.write.short  first half of the buffer is genuinely written, then the
//                   injected error returns — a real torn write for rollback
//                   and poisoning paths to handle
//   fs.fsync        injected instead of calling fsync(2)
//   fs.rename       injected before the rename
//   fs.statvfs      injected instead of calling statvfs(3)
//
// Arm them with the errno aliases (`enospc`, `eio`, `edquot`) so the
// injected Status carries the same code and errno label a real fault would:
// e.g. GPUTC_FAILPOINTS="fs.fsync=enospc^4" (skip the first 4 fsyncs, then
// fail every one — the shape of a disk filling up mid-run).
//
// fsyncgate note: these wrappers do NOT retry fsync. After fsync fails the
// kernel may have dropped the dirty pages while clearing the error flag, so
// a retried fsync can return success for data that never reached the disk
// (the PostgreSQL "fsyncgate" failure). The owning writer must treat the fd
// as poisoned: reopen, or fail the record. SegmentWriter and LineLog
// implement exactly that discipline on top of FsFsync.

/// statvfs snapshot of the filesystem holding a path.
struct FsSpace {
  uint64_t free_bytes = 0;   // Available to unprivileged writers (f_bavail).
  uint64_t total_bytes = 0;  // Filesystem capacity (f_blocks).
};

/// Maps an errno from a storage syscall to the Status taxonomy:
/// ENOSPC/EDQUOT -> kResourceExhausted, EIO -> kDataLoss, ENOENT ->
/// kNotFound, EACCES/EPERM/EROFS -> kFailedPrecondition, else kInternal.
/// The message embeds the symbolic errno name so metrics can label by it.
Status ErrnoToStatus(int err, const std::string& op);

/// The symbolic label for a storage errno ("ENOSPC", "EIO", "EDQUOT",
/// "EACCES", "EROFS", "ENOENT", ...; "other" for anything unlisted). Used as
/// the {errno=...} metric label value.
const char* StorageErrnoLabel(int err);

/// Recovers the errno label from a Status message (both real faults via
/// ErrnoToStatus and injected faults via the errno aliases embed the
/// symbolic name). "other" when no known label is present.
const char* StorageErrnoLabelFromStatus(const Status& status);

/// write(2) until the whole buffer is out: EINTR retries, short writes
/// continue from where they stopped. Passes "fs.write" before writing and
/// "fs.write.short" which writes the first half for real before failing.
/// `what` names the sink in error messages (usually the path).
Status FsWriteFully(int fd, const void* data, size_t size,
                    const std::string& what);

/// fsync(2), once — never retried (see the fsyncgate note above). Passes
/// "fs.fsync". A non-OK return means the fd must be considered poisoned.
Status FsFsync(int fd, const std::string& what);

/// rename(2). Passes "fs.rename".
Status FsRename(const std::string& from, const std::string& to);

/// open(2) with EINTR retry. Returns the fd, or the mapped errno Status.
StatusOr<int> FsOpen(const std::string& path, int flags, int mode = 0644);

/// statvfs(3) on `path`. Passes "fs.statvfs".
StatusOr<FsSpace> FsStatvfs(const std::string& path);

}  // namespace gputc

#endif  // GPUTC_UTIL_FS_IO_H_
