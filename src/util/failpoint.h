#ifndef GPUTC_UTIL_FAILPOINT_H_
#define GPUTC_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gputc {

// RocksDB-style named fail points for fault-injection testing.
//
// Sites are compiled into production binaries at the failure boundaries the
// code must recover from. The canonical site list (keep this current — it is
// the one place every site is documented):
//
//   executor        io.load, preprocess, sim.memory, tc.<algorithm> counter
//                   entries, and the tc.block / tc.cpu loop polls
//   batch service   service.enqueue, service.admit, service.worker,
//                   service.journal (between WAL commit and journal emit)
//   durable I/O     durable.commit, durable.append, durable.append.torn
//   storage syscalls fs.write (before any byte), fs.write.short (first half
//                   lands for real, then the error returns — a genuine torn
//                   write), fs.fsync (never retried: fsyncgate), fs.rename,
//                   fs.statvfs — the util/fs_io.h boundary every durable
//                   sink writes through; arm with the errno aliases below
//   storage policy  storage.preflight (batch space estimate, before the
//                   manifest is admitted)
//   prep cache      cache.load (tier-2 artifact read), cache.store (tier-2
//                   artifact write, before any byte lands) — both recover
//                   by recompute, never by failing the request
//   write-ahead log wal.intent, wal.done
//   worker pool     worker.spawn (supervisor side, before fork),
//                   worker.exec (child side: exec a missing binary),
//                   worker.hang (worker side: stop heartbeating and sleep
//                   forever instead of failing — exercises the watchdog),
//                   worker.response.torn (worker side: crash between the two
//                   halves of a result frame, leaving a torn frame the
//                   supervisor must classify as a crash)
//
// Evaluation is double-gated so a site costs one relaxed
// atomic load when idle: the process-wide registry must have at least one
// armed point or observer, AND the calling thread must be inside a
// FailPointScope — the executor opens one around every run, so injections
// land on resilient paths instead of failing oracle code that has no
// recovery story.
//
// Arming is programmatic (Arm / ArmFromString) or via the GPUTC_FAILPOINTS
// environment variable, read once at first registry use. The format is a
// ';'-separated list of
//
//   site=code[@count][%prob][$seed][^skip]
//
//   code    error to inject: internal, data_loss, resource_exhausted,
//           deadline_exceeded, cancelled, invalid_argument, out_of_range,
//           failed_precondition, unimplemented, not_found — or an errno
//           alias (enospc, eio, edquot) which injects the Status a real
//           storage fault of that errno maps to, with the symbolic errno
//           name embedded in the message so metrics label it the same way —
//           or the special action `crash`, which terminates the process
//           with _Exit(137) the instant the site fires (no destructors, no
//           stream flushes: the closest user-space approximation of
//           SIGKILL). The crash harness arms it at the durable-layer sites
//           to prove that every artifact survives an ill-timed death.
//   @count  fire only on the first `count` hits (default: every hit)
//   %prob   fire with probability `prob` per hit (seeded xorshift, $seed)
//   ^skip   let the first `skip` hits pass untouched before the point is
//           eligible to fire — "the disk was fine, then it filled":
//           fs.fsync=enospc^4 succeeds four fsyncs, then fails every one
//
// e.g. GPUTC_FAILPOINTS="tc.hu=internal@2;io.load=data_loss%0.01$7"
//      GPUTC_FAILPOINTS="wal.done=crash@1"
//      GPUTC_FAILPOINTS="fs.fsync=enospc^6"

/// What happens at an armed site.
struct FailPointSpec {
  /// Inject an error Status, or kill the process on the spot.
  enum class Action { kError, kCrash };
  Action action = Action::kError;
  StatusCode code = StatusCode::kInternal;
  /// Fire on the first `count` hits only; -1 fires on every hit.
  int64_t count = -1;
  /// Per-hit firing probability in [0, 1], drawn from a seeded xorshift.
  double probability = 1.0;
  uint64_t seed = 1;
  /// Let the first `skip` hits pass before the point may fire — models a
  /// disk that worked, then failed.
  int64_t skip = 0;
  /// Extra text appended to the injected message ("injected ENOSPC" for the
  /// errno aliases), so StorageErrnoLabelFromStatus sees the same symbolic
  /// name a real fault would carry.
  std::string detail;
};

class FailPointRegistry {
 public:
  /// Process-wide registry. The first call parses GPUTC_FAILPOINTS
  /// (malformed entries are skipped with a warning).
  static FailPointRegistry& Instance();

  void Arm(std::string site, FailPointSpec spec);
  void Disarm(const std::string& site);

  /// Arms every entry of a "site=code[@count][%prob][$seed];..." schedule.
  /// Invalid entries make the whole call fail without arming anything.
  Status ArmFromString(std::string_view schedule);

  /// Removes all armed points, observers, and hit counters. Tests call this
  /// first so an ambient GPUTC_FAILPOINTS cannot perturb their schedule.
  void Reset();

  /// Observer invoked on every in-scope hit of `site` (1-based hit number),
  /// whether or not the site is armed to fail — the hook the cancellation
  /// tests use to cancel deterministically mid-kernel.
  void SetObserver(std::string site, std::function<void(int64_t)> observer);

  /// In-scope hits of `site` since the last Reset. Only armed or observed
  /// sites are counted.
  int64_t hits(const std::string& site) const;

  std::vector<std::string> ArmedSites() const;

  /// Evaluates one hit of `site`: bumps counters, runs the observer, and
  /// returns the injected error when the site fires. Called via
  /// CheckFailPoint, which applies the fast-path and scope gates.
  Status Evaluate(std::string_view site);

  bool has_armed_or_observed() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  FailPointRegistry();

  struct Impl;
  Impl* impl_;  // Intentionally leaked; the registry lives forever.
  /// Fast-path gate: true while any point is armed or observed.
  std::atomic<bool> active_{false};
};

/// RAII gate enabling fail-point evaluation on the current thread. Nestable.
class FailPointScope {
 public:
  FailPointScope();
  ~FailPointScope();
  FailPointScope(const FailPointScope&) = delete;
  FailPointScope& operator=(const FailPointScope&) = delete;

  /// True when the calling thread is inside at least one scope.
  static bool active();
};

/// OkStatus, or the injected error when `site` is armed, and the calling
/// thread is inside a FailPointScope. ~1 relaxed atomic load when idle.
Status CheckFailPoint(std::string_view site);

}  // namespace gputc

/// Early-return injection site; place at the failure boundary under test.
/// Usable in functions returning Status or StatusOr<T>.
#define GPUTC_INJECT_FAULT(site) \
  GPUTC_RETURN_IF_ERROR(::gputc::CheckFailPoint(site))

#endif  // GPUTC_UTIL_FAILPOINT_H_
