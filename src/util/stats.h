#ifndef GPUTC_UTIL_STATS_H_
#define GPUTC_UTIL_STATS_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace gputc {

/// Summary statistics of a sample.
struct Summary {
  int64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // Population standard deviation.
  double sum = 0.0;
};

/// Computes summary statistics of `values`. Returns a zeroed Summary for an
/// empty input.
Summary Summarize(const std::vector<double>& values);

/// Result of an ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 1 means a perfect fit.
  double r_squared = 0.0;
};

/// Fits a line through (xs[i], ys[i]) by least squares. The inputs must have
/// equal, nonzero size. Degenerate inputs (constant x) yield slope 0.
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fixed-width histogram over [lo, hi) with `buckets` buckets; values outside
/// the range are clamped into the first/last bucket. Add is safe to call
/// concurrently (lock-free atomic increments), and the readers load the
/// accumulators atomically, so a snapshot taken while writers are still
/// running is free of torn reads — it sees some valid momentary value per
/// bucket. Exact totals still require all writers to have joined.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double value);

  /// Number of samples in bucket `i`.
  int64_t bucket_count(int i) const;
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int64_t total() const;

  /// Lower edge of bucket `i`.
  double BucketLo(int i) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// Pearson correlation coefficient of two equally sized samples; 0 on
/// degenerate input.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// The `pct`-th percentile (0..100) by linear interpolation between order
/// statistics; 0 for an empty sample. Takes a copy because it sorts.
double Percentile(std::vector<double> values, double pct);

/// Mutex-guarded sample accumulator for concurrent writers — the batch
/// service's workers record per-request latencies into one of these, and the
/// throughput bench reads the percentiles afterwards. All members are
/// thread-safe.
class LatencyRecorder {
 public:
  void Record(double value);

  int64_t count() const;
  Summary Summarize() const;
  double PercentileValue(double pct) const;
  std::vector<double> Samples() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
};

}  // namespace gputc

#endif  // GPUTC_UTIL_STATS_H_
