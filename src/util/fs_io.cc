#include "util/fs_io.h"

#include <fcntl.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.h"

namespace gputc {
namespace {

struct ErrnoEntry {
  int err;
  const char* label;
  StatusCode code;
};

constexpr ErrnoEntry kErrnoTable[] = {
    {ENOSPC, "ENOSPC", StatusCode::kResourceExhausted},
    {EDQUOT, "EDQUOT", StatusCode::kResourceExhausted},
    {EIO, "EIO", StatusCode::kDataLoss},
    {ENOENT, "ENOENT", StatusCode::kNotFound},
    {EACCES, "EACCES", StatusCode::kFailedPrecondition},
    {EPERM, "EPERM", StatusCode::kFailedPrecondition},
    {EROFS, "EROFS", StatusCode::kFailedPrecondition},
    {EMFILE, "EMFILE", StatusCode::kResourceExhausted},
    {ENFILE, "ENFILE", StatusCode::kResourceExhausted},
    {EFBIG, "EFBIG", StatusCode::kOutOfRange},
};

const ErrnoEntry* LookupErrno(int err) {
  for (const ErrnoEntry& e : kErrnoTable) {
    if (e.err == err) return &e;
  }
  return nullptr;
}

}  // namespace

Status ErrnoToStatus(int err, const std::string& op) {
  const ErrnoEntry* entry = LookupErrno(err);
  const StatusCode code = entry ? entry->code : StatusCode::kInternal;
  std::string message = op + ": " + std::strerror(err);
  if (entry != nullptr) {
    message += " (";
    message += entry->label;
    message += ")";
  }
  return Status(code, std::move(message));
}

const char* StorageErrnoLabel(int err) {
  const ErrnoEntry* entry = LookupErrno(err);
  return entry ? entry->label : "other";
}

const char* StorageErrnoLabelFromStatus(const Status& status) {
  const std::string& message = status.message();
  for (const ErrnoEntry& e : kErrnoTable) {
    if (message.find(e.label) != std::string::npos) return e.label;
  }
  return "other";
}

Status FsWriteFully(int fd, const void* data, size_t size,
                    const std::string& what) {
  FailPointScope scope;
  GPUTC_RETURN_IF_ERROR(
      CheckFailPoint("fs.write").WithContext("write '" + what + "'"));
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  {
    // The short-write site genuinely lands the first half on disk before the
    // injected error returns — the torn state a real ENOSPC mid-write leaves,
    // which the rollback/poisoning paths above this layer must clean up.
    const Status injected = CheckFailPoint("fs.write.short");
    if (!injected.ok()) {
      size_t half = size / 2;
      while (half > 0) {
        const ssize_t n = ::write(fd, p, half);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        p += n;
        half -= static_cast<size_t>(n);
      }
      return injected.WithContext("short write '" + what + "'");
    }
  }
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoToStatus(errno, "write '" + what + "'");
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return OkStatus();
}

Status FsFsync(int fd, const std::string& what) {
  FailPointScope scope;
  GPUTC_RETURN_IF_ERROR(
      CheckFailPoint("fs.fsync").WithContext("fsync '" + what + "'"));
  // One shot, no retry: after a failed fsync the kernel may already have
  // dropped the dirty pages, so retrying can "succeed" for data that never
  // hit the platter. Callers poison the fd instead (see fs_io.h).
  if (::fsync(fd) != 0) {
    return ErrnoToStatus(errno, "fsync '" + what + "'");
  }
  return OkStatus();
}

Status FsRename(const std::string& from, const std::string& to) {
  FailPointScope scope;
  GPUTC_RETURN_IF_ERROR(CheckFailPoint("fs.rename")
                            .WithContext("rename '" + from + "' to '" + to +
                                         "'"));
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoToStatus(errno, "rename '" + from + "' to '" + to + "'");
  }
  return OkStatus();
}

StatusOr<int> FsOpen(const std::string& path, int flags, int mode) {
  while (true) {
    const int fd = ::open(path.c_str(), flags, mode);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return ErrnoToStatus(errno, "open '" + path + "'");
  }
}

StatusOr<FsSpace> FsStatvfs(const std::string& path) {
  FailPointScope scope;
  GPUTC_RETURN_IF_ERROR(
      CheckFailPoint("fs.statvfs").WithContext("statvfs '" + path + "'"));
  struct statvfs vfs;
  if (::statvfs(path.c_str(), &vfs) != 0) {
    return ErrnoToStatus(errno, "statvfs '" + path + "'");
  }
  FsSpace space;
  space.free_bytes =
      static_cast<uint64_t>(vfs.f_bavail) * static_cast<uint64_t>(vfs.f_frsize);
  space.total_bytes =
      static_cast<uint64_t>(vfs.f_blocks) * static_cast<uint64_t>(vfs.f_frsize);
  return space;
}

}  // namespace gputc
