#ifndef GPUTC_APPS_CLUSTERING_H_
#define GPUTC_APPS_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gputc {

// Clustering-coefficient analysis (Watts & Strogatz) — one of the three
// triangle-counting applications motivating the paper. Built on the same
// oriented-wedge counting substrate as the kernels.

/// Number of triangles incident to each vertex. Every triangle contributes
/// one to each of its three corners. O(m^(3/2)). Fatally aborts on a graph
/// that fails validation.
std::vector<int64_t> PerVertexTriangleCounts(const Graph& g);

/// PerVertexTriangleCounts behind the validated front door: GraphDoctor
/// refuses damaged CSRs with a Status instead of corrupting the counts.
StatusOr<std::vector<int64_t>> TryPerVertexTriangleCounts(const Graph& g);

/// Local clustering coefficient of every vertex:
/// 2 * triangles(v) / (d(v) * (d(v) - 1)); 0 for degree < 2.
std::vector<double> LocalClusteringCoefficients(const Graph& g);

/// Global clustering coefficient (transitivity): 3 * triangles / wedges,
/// where wedges = sum over v of C(d(v), 2). 0 for wedge-free graphs.
/// Fatally aborts on validation failure or wedge-count overflow.
double GlobalClusteringCoefficient(const Graph& g);

/// GlobalClusteringCoefficient with validation and overflow-checked wedge
/// accumulation: d * (d - 1) / 2 summed over hub-heavy graphs can exceed
/// int64, which surfaces as OutOfRange instead of wrapping into a bogus
/// coefficient.
StatusOr<double> TryGlobalClusteringCoefficient(const Graph& g);

/// Average of the local coefficients over vertices with degree >= 2
/// (the Watts-Strogatz network average; 0 if no such vertex).
double AverageClusteringCoefficient(const Graph& g);

}  // namespace gputc

#endif  // GPUTC_APPS_CLUSTERING_H_
