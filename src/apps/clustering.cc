#include "apps/clustering.h"

#include <utility>

#include "direction/direction.h"
#include "graph/directed_graph.h"
#include "graph/validate.h"
#include "util/checked_math.h"
#include "util/logging.h"

namespace gputc {

std::vector<int64_t> PerVertexTriangleCounts(const Graph& g) {
  StatusOr<std::vector<int64_t>> counts = TryPerVertexTriangleCounts(g);
  GPUTC_CHECK(counts.ok()) << "PerVertexTriangleCounts failed: "
                           << counts.status().ToString();
  return *std::move(counts);
}

StatusOr<std::vector<int64_t>> TryPerVertexTriangleCounts(const Graph& g) {
  const ValidationReport report = GraphDoctor().Examine(g);
  if (!report.clean()) {
    return report.ToStatus().WithContext(
        "TryPerVertexTriangleCounts: input graph failed validation");
  }
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  std::vector<int64_t> count(g.num_vertices(), 0);
  for (VertexId u = 0; u < d.num_vertices(); ++u) {
    const auto a = d.out_neighbors(u);
    for (VertexId v : a) {
      const auto b = d.out_neighbors(v);
      size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
          ++i;
        } else if (a[i] > b[j]) {
          ++j;
        } else {
          // Triangle {u, v, a[i]} found exactly once (acyclic orientation);
          // credit all three corners.
          ++count[u];
          ++count[v];
          ++count[a[i]];
          ++i;
          ++j;
        }
      }
    }
  }
  return count;
}

std::vector<double> LocalClusteringCoefficients(const Graph& g) {
  const std::vector<int64_t> triangles = PerVertexTriangleCounts(g);
  std::vector<double> cc(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double d = static_cast<double>(g.degree(v));
    if (d >= 2.0) {
      cc[v] = 2.0 * static_cast<double>(triangles[v]) / (d * (d - 1.0));
    }
  }
  return cc;
}

double GlobalClusteringCoefficient(const Graph& g) {
  StatusOr<double> coefficient = TryGlobalClusteringCoefficient(g);
  GPUTC_CHECK(coefficient.ok()) << "GlobalClusteringCoefficient failed: "
                                << coefficient.status().ToString();
  return *coefficient;
}

StatusOr<double> TryGlobalClusteringCoefficient(const Graph& g) {
  GPUTC_ASSIGN_OR_RETURN(const std::vector<int64_t> triangles,
                         TryPerVertexTriangleCounts(g));
  CheckedInt64 triple_triangles;  // Sum over corners == 3 * #triangles.
  CheckedInt64 wedges;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    triple_triangles.Add(triangles[v]);
    const int64_t d = g.degree(v);
    // C(d, 2) itself can exceed int64 for degrees near 2^32.
    if (MulWouldOverflow(d, d - 1)) {
      return OutOfRangeError("wedge count C(" + std::to_string(d) +
                             ", 2) exceeds the int64 range");
    }
    wedges.Add(d * (d - 1) / 2);
  }
  GPUTC_RETURN_IF_ERROR(wedges.ToStatus("total wedge count"));
  GPUTC_RETURN_IF_ERROR(triple_triangles.ToStatus("corner triangle sum"));
  if (wedges.value() == 0) return 0.0;
  return static_cast<double>(triple_triangles.value()) /
         static_cast<double>(wedges.value());
}

double AverageClusteringCoefficient(const Graph& g) {
  const std::vector<double> cc = LocalClusteringCoefficients(g);
  double sum = 0.0;
  int64_t eligible = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) >= 2) {
      sum += cc[v];
      ++eligible;
    }
  }
  return eligible > 0 ? sum / static_cast<double>(eligible) : 0.0;
}

}  // namespace gputc
