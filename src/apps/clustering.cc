#include "apps/clustering.h"

#include "direction/direction.h"
#include "graph/directed_graph.h"

namespace gputc {

std::vector<int64_t> PerVertexTriangleCounts(const Graph& g) {
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  std::vector<int64_t> count(g.num_vertices(), 0);
  for (VertexId u = 0; u < d.num_vertices(); ++u) {
    const auto a = d.out_neighbors(u);
    for (VertexId v : a) {
      const auto b = d.out_neighbors(v);
      size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
          ++i;
        } else if (a[i] > b[j]) {
          ++j;
        } else {
          // Triangle {u, v, a[i]} found exactly once (acyclic orientation);
          // credit all three corners.
          ++count[u];
          ++count[v];
          ++count[a[i]];
          ++i;
          ++j;
        }
      }
    }
  }
  return count;
}

std::vector<double> LocalClusteringCoefficients(const Graph& g) {
  const std::vector<int64_t> triangles = PerVertexTriangleCounts(g);
  std::vector<double> cc(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double d = static_cast<double>(g.degree(v));
    if (d >= 2.0) {
      cc[v] = 2.0 * static_cast<double>(triangles[v]) / (d * (d - 1.0));
    }
  }
  return cc;
}

double GlobalClusteringCoefficient(const Graph& g) {
  const std::vector<int64_t> triangles = PerVertexTriangleCounts(g);
  int64_t triple_triangles = 0;  // Sum over corners == 3 * #triangles.
  int64_t wedges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    triple_triangles += triangles[v];
    const int64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return static_cast<double>(triple_triangles) / static_cast<double>(wedges);
}

double AverageClusteringCoefficient(const Graph& g) {
  const std::vector<double> cc = LocalClusteringCoefficients(g);
  double sum = 0.0;
  int64_t eligible = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) >= 2) {
      sum += cc[v];
      ++eligible;
    }
  }
  return eligible > 0 ? sum / static_cast<double>(eligible) : 0.0;
}

}  // namespace gputc
