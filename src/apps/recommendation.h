#ifndef GPUTC_APPS_RECOMMENDATION_H_
#define GPUTC_APPS_RECOMMENDATION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace gputc {

// Triangle-based link recommendation (Tsourakakis et al.) — the third
// application from the paper's introduction: score candidate links by the
// number of triangles they would close (common-neighbor count).

/// One recommended link.
struct Recommendation {
  VertexId u = 0;
  VertexId v = 0;        // u < v.
  int64_t score = 0;     // Common neighbors == triangles the link closes.

  friend bool operator==(const Recommendation&,
                         const Recommendation&) = default;
};

/// Options bounding the candidate search (two-hop pairs can be quadratic in
/// hub degree, so the scan is capped).
struct RecommendationOptions {
  /// Number of recommendations to return.
  int64_t top_k = 10;
  /// Wedge centers scanned, highest degree first (0 = all).
  int64_t max_centers = 256;
  /// Candidate pairs examined per center.
  int64_t max_pairs_per_center = 1024;
};

/// Returns the top-k non-adjacent pairs with the highest common-neighbor
/// count, deduplicated, sorted by (score desc, pair asc). Fatally aborts on
/// a graph that fails validation.
std::vector<Recommendation> RecommendLinks(
    const Graph& g, const RecommendationOptions& options = {});

/// RecommendLinks behind the validated front door: GraphDoctor refuses
/// damaged CSRs with a Status instead of scoring garbage neighborhoods.
StatusOr<std::vector<Recommendation>> TryRecommendLinks(
    const Graph& g, const RecommendationOptions& options = {});

/// Common-neighbor score of one candidate pair (0 for adjacent or invalid
/// pairs as well — callers filter).
int64_t CommonNeighborScore(const Graph& g, VertexId u, VertexId v);

}  // namespace gputc

#endif  // GPUTC_APPS_RECOMMENDATION_H_
