#include "apps/recommendation.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "graph/validate.h"
#include "tc/intersect.h"
#include "util/logging.h"

namespace gputc {

int64_t CommonNeighborScore(const Graph& g, VertexId u, VertexId v) {
  if (u >= g.num_vertices() || v >= g.num_vertices() || u == v) return 0;
  return SortedIntersectionSize(g.neighbors(u), g.neighbors(v));
}

std::vector<Recommendation> RecommendLinks(
    const Graph& g, const RecommendationOptions& options) {
  StatusOr<std::vector<Recommendation>> links = TryRecommendLinks(g, options);
  GPUTC_CHECK(links.ok()) << "RecommendLinks failed: "
                          << links.status().ToString();
  return *std::move(links);
}

StatusOr<std::vector<Recommendation>> TryRecommendLinks(
    const Graph& g, const RecommendationOptions& options) {
  const ValidationReport report = GraphDoctor().Examine(g);
  if (!report.clean()) {
    return report.ToStatus().WithContext(
        "TryRecommendLinks: input graph failed validation");
  }
  std::vector<Recommendation> candidates;

  // Scan wedge centers, highest degree first: hubs connect the candidate
  // pairs with the largest common neighborhoods.
  std::vector<VertexId> centers(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) centers[v] = v;
  std::sort(centers.begin(), centers.end(), [&g](VertexId a, VertexId b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });
  const size_t center_limit =
      options.max_centers > 0
          ? std::min<size_t>(centers.size(),
                             static_cast<size_t>(options.max_centers))
          : centers.size();

  for (size_t c = 0; c < center_limit; ++c) {
    const auto nbrs = g.neighbors(centers[c]);
    int64_t pairs = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (pairs >= options.max_pairs_per_center) break;
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (pairs >= options.max_pairs_per_center) break;
        VertexId u = nbrs[i];
        VertexId v = nbrs[j];
        if (g.HasEdge(u, v)) continue;
        ++pairs;
        if (u > v) std::swap(u, v);
        candidates.push_back(
            Recommendation{u, v, CommonNeighborScore(g, u, v)});
      }
    }
  }

  // Deduplicate pairs seen through several centers, then rank.
  std::sort(candidates.begin(), candidates.end(),
            [](const Recommendation& a, const Recommendation& b) {
              return std::tie(a.u, a.v) < std::tie(b.u, b.v);
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const Recommendation& a,
                                  const Recommendation& b) {
                                 return a.u == b.u && a.v == b.v;
                               }),
                   candidates.end());
  std::sort(candidates.begin(), candidates.end(),
            [](const Recommendation& a, const Recommendation& b) {
              return a.score != b.score
                         ? a.score > b.score
                         : std::tie(a.u, a.v) < std::tie(b.u, b.v);
            });
  if (options.top_k >= 0 &&
      candidates.size() > static_cast<size_t>(options.top_k)) {
    candidates.resize(static_cast<size_t>(options.top_k));
  }
  return candidates;
}

}  // namespace gputc
