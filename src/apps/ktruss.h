#ifndef GPUTC_APPS_KTRUSS_H_
#define GPUTC_APPS_KTRUSS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/edge_list.h"
#include "graph/graph.h"
#include "util/status.h"

namespace gputc {

// k-truss decomposition (Wang & Cheng) — a triangle-counting application
// from the paper's introduction. The k-truss of G is the maximal subgraph in
// which every edge participates in at least k-2 triangles.

/// Result of a full truss decomposition.
struct TrussDecompositionResult {
  /// The normalized edge list the trussness values index into.
  EdgeList edges;
  /// trussness[e]: the largest k such that edge e belongs to the k-truss.
  /// Always >= 2 (every edge is in the 2-truss).
  std::vector<int> trussness;
  /// Largest k with a non-empty k-truss.
  int max_trussness = 2;
};

/// Computes the trussness of every edge by support peeling.
/// O(m^(3/2) + m log m). Validates `g` first (see TryDecomposeTruss) and
/// fatally aborts on a graph that fails validation.
TrussDecompositionResult DecomposeTruss(const Graph& g);

/// DecomposeTruss behind the validated front door: GraphDoctor examines `g`
/// (CSR integrity, symmetry, self loops) and a damaged graph — e.g. a
/// hand-assembled CSR with asymmetric adjacency, which would previously
/// crash the peeling loop — is refused with a context-bearing Status.
StatusOr<TrussDecompositionResult> TryDecomposeTruss(const Graph& g);

/// The subgraph formed by edges with trussness >= k (same vertex ids,
/// non-truss edges removed).
Graph KTrussSubgraph(const Graph& g, int k);

/// Histogram: for each k, how many edges have trussness exactly k.
std::map<int, int64_t> TrussProfile(const TrussDecompositionResult& result);

}  // namespace gputc

#endif  // GPUTC_APPS_KTRUSS_H_
