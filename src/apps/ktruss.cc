#include "apps/ktruss.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "graph/validate.h"
#include "tc/intersect.h"
#include "util/logging.h"

namespace gputc {

TrussDecompositionResult DecomposeTruss(const Graph& g) {
  StatusOr<TrussDecompositionResult> result = TryDecomposeTruss(g);
  GPUTC_CHECK(result.ok()) << "DecomposeTruss failed: "
                           << result.status().ToString();
  return *std::move(result);
}

StatusOr<TrussDecompositionResult> TryDecomposeTruss(const Graph& g) {
  const ValidationReport report = GraphDoctor().Examine(g);
  if (!report.clean()) {
    return report.ToStatus().WithContext(
        "TryDecomposeTruss: input graph failed validation");
  }
  TrussDecompositionResult result;
  result.edges = g.ToEdgeList();
  const auto& list = result.edges.edges();
  const size_t m = list.size();
  result.trussness.assign(m, 2);
  if (m == 0) return result;

  // Position of normalized edge (u, v) in the sorted edge list.
  auto edge_index = [&list](VertexId u, VertexId v) -> int64_t {
    if (u > v) std::swap(u, v);
    const Edge key{u, v};
    const auto it = std::lower_bound(list.begin(), list.end(), key);
    return it != list.end() && *it == key
               ? it - list.begin()
               : -1;
  };

  // Initial support: triangles through each edge. Support is an edge count
  // (int64), stored untruncated — the historical int cast silently wrapped
  // on hub-heavy graphs.
  std::vector<int64_t> support(m, 0);
  int64_t max_support = 0;
  for (size_t e = 0; e < m; ++e) {
    support[e] = SortedIntersectionSize(g.neighbors(list[e].u),
                                        g.neighbors(list[e].v));
    max_support = std::max(max_support, support[e]);
  }

  // Peel edges in nondecreasing support order; when an edge leaves, the two
  // companion edges of each of its remaining triangles lose one support.
  std::vector<std::vector<size_t>> buckets(
      static_cast<size_t>(max_support) + 1);
  for (size_t e = 0; e < m; ++e) {
    buckets[static_cast<size_t>(support[e])].push_back(e);
  }
  std::vector<bool> removed(m, false);
  size_t processed = 0;
  for (int64_t level = 0; level <= max_support && processed < m; ++level) {
    std::deque<size_t> queue(buckets[static_cast<size_t>(level)].begin(),
                             buckets[static_cast<size_t>(level)].end());
    while (!queue.empty()) {
      const size_t e = queue.front();
      queue.pop_front();
      if (removed[e] || support[e] > level) continue;
      removed[e] = true;
      ++processed;
      result.trussness[e] = static_cast<int>(level) + 2;
      result.max_trussness =
          std::max(result.max_trussness, static_cast<int>(level) + 2);
      const VertexId u = list[e].u;
      const VertexId v = list[e].v;
      const auto nu = g.neighbors(u);
      const auto nv = g.neighbors(v);
      size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) {
          ++i;
        } else if (nu[i] > nv[j]) {
          ++j;
        } else {
          const VertexId w = nu[i];
          const int64_t e1 = edge_index(u, w);
          const int64_t e2 = edge_index(v, w);
          if (e1 < 0 || e2 < 0) {
            // Unreachable on a validated graph; a miss here means the
            // adjacency and edge list disagree.
            return InternalError(
                "k-truss peeling found a triangle edge missing from the "
                "edge list — graph structure is inconsistent");
          }
          if (!removed[static_cast<size_t>(e1)] &&
              !removed[static_cast<size_t>(e2)]) {
            for (int64_t other : {e1, e2}) {
              int64_t& s = support[static_cast<size_t>(other)];
              if (s > 0) --s;
              if (s <= level) {
                queue.push_back(static_cast<size_t>(other));
              } else {
                // Re-bucket at the new support so the edge is found when
                // peeling reaches that level (stale higher-bucket entries
                // are skipped by the support/removed guards).
                buckets[static_cast<size_t>(s)].push_back(
                    static_cast<size_t>(other));
              }
            }
          }
          ++i;
          ++j;
        }
      }
    }
  }
  return result;
}

Graph KTrussSubgraph(const Graph& g, int k) {
  const TrussDecompositionResult decomposition = DecomposeTruss(g);
  EdgeList kept(g.num_vertices());
  const auto& list = decomposition.edges.edges();
  for (size_t e = 0; e < list.size(); ++e) {
    if (decomposition.trussness[e] >= k) kept.Add(list[e].u, list[e].v);
  }
  kept.set_num_vertices(g.num_vertices());
  return Graph::FromEdgeList(std::move(kept));
}

std::map<int, int64_t> TrussProfile(const TrussDecompositionResult& result) {
  std::map<int, int64_t> profile;
  for (int k : result.trussness) ++profile[k];
  return profile;
}

}  // namespace gputc
