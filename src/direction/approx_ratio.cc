#include "direction/approx_ratio.h"

#include <cmath>
#include <limits>
#include <vector>

namespace gputc {

ApproxRatioBound ComputeApproxRatioBound(const Graph& g) {
  ApproxRatioBound bound;
  const VertexId n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0) {
    bound.rho = 1.0;
    return bound;
  }
  const double d_avg =
      static_cast<double>(g.num_edges()) / static_cast<double>(n);
  bound.d_avg = d_avg;

  double sum_core = 0.0;
  double sum_non_core = 0.0;
  const EdgeCount max_degree = g.MaxDegree();
  std::vector<int64_t> degree_histogram(static_cast<size_t>(max_degree) + 1,
                                        0);
  for (VertexId v = 0; v < n; ++v) {
    const double d = static_cast<double>(g.degree(v));
    ++degree_histogram[static_cast<size_t>(g.degree(v))];
    if (d >= d_avg) {
      ++bound.num_core;
      sum_core += d;
    } else {
      ++bound.num_non_core;
      sum_non_core += d;
    }
  }

  // Lower bound on C(P_opt), Theorem 4.2's three cases.
  const double core_cnt = static_cast<double>(bound.num_core);
  const double non_core_cnt = static_cast<double>(bound.num_non_core);
  if (sum_core / 2.0 < d_avg * core_cnt) {
    bound.lb_case = 'a';
    bound.lower_bound_opt =
        d_avg * static_cast<double>(n) - sum_non_core - sum_core / 2.0;
  } else if ((sum_core - sum_non_core) / 2.0 - d_avg * core_cnt >= 0.0) {
    bound.lb_case = 'b';
    bound.lower_bound_opt = 0.5 * (sum_core - 3.0 * sum_non_core) +
                            d_avg * (non_core_cnt - core_cnt);
  } else {
    bound.lb_case = 'c';
    bound.lower_bound_opt = d_avg * non_core_cnt - sum_non_core;
  }
  // The fallback (case c) value is always a valid lower bound; never report
  // less than it (cases can go slack on degenerate graphs).
  bound.lower_bound_opt =
      std::max(bound.lower_bound_opt, d_avg * non_core_cnt - sum_non_core);

  // Upper bound on C(P_alg) - C(P_opt), Eq. 17: walk core degrees upward,
  // spending the core half-edge budget; every vertex consumed can cost at
  // most d~_avg extra.
  double edge_budget = sum_core / 2.0;
  int64_t vertices_charged = 0;
  const EdgeCount first_core_degree =
      static_cast<EdgeCount>(std::floor(d_avg)) + 1;
  for (EdgeCount d = first_core_degree; d <= max_degree && edge_budget > 0.0;
       ++d) {
    const int64_t at_degree = degree_histogram[static_cast<size_t>(d)];
    if (at_degree == 0) continue;
    const double cost_per_vertex = static_cast<double>(d);
    const int64_t affordable = static_cast<int64_t>(
        std::min<double>(at_degree, std::ceil(edge_budget / cost_per_vertex)));
    vertices_charged += affordable;
    edge_budget -= static_cast<double>(affordable) * cost_per_vertex;
    bound.peel_degree = d;
  }
  bound.upper_bound_gap = d_avg * static_cast<double>(vertices_charged);

  bound.rho = bound.lower_bound_opt > 0.0
                  ? 1.0 + bound.upper_bound_gap / bound.lower_bound_opt
                  : std::numeric_limits<double>::infinity();
  return bound;
}

}  // namespace gputc
