#ifndef GPUTC_DIRECTION_PEELING_H_
#define GPUTC_DIRECTION_PEELING_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/deadline.h"

namespace gputc {

/// Options of the A-direction peeling algorithm (paper Algorithm 1).
struct PeelingOptions {
  /// Factor by which the peeling threshold grows between rounds (Line 19
  /// doubles it). Exposed for the ablation bench; must be > 1.
  double threshold_growth = 2.0;

  /// Optional execution envelope (not owned; null = untraced). Peeling opens
  /// one "direction.peel" span on its tracer recording rounds and d_peel —
  /// the per-vertex peel loop itself allocates nothing.
  const ExecContext* exec = nullptr;
};

/// Diagnostics of one A-direction run.
struct PeelingResult {
  /// Vertices in peel order: position i was peeled i-th. Orienting every
  /// edge from earlier-peeled to later-peeled realizes A-direction.
  std::vector<VertexId> peel_order;
  /// Number of threshold-doubling rounds executed.
  int rounds = 0;
  /// Residual degree of the last vertex peeled (the paper's d_peel, used by
  /// the Theorem 4.2 upper bound).
  EdgeCount peel_degree = 0;
};

/// Runs the A-direction peeling algorithm.
///
/// Faithful to Algorithm 1 with one tightening: inside a frontier, edges
/// between two frontier vertices follow the *peel (pop) order*, seeded by
/// ascending (residual degree, id). The printed pseudocode leaves
/// equal-degree frontier edges ambiguous, which can create a directed
/// 3-cycle; ordering by pop time is a strict total order, so the orientation
/// is acyclic while preserving the paper's small-degree -> large-degree
/// intent (see DESIGN.md, "A-direction acyclicity"). Runs in
/// O(|E| + |V| log |V|).
PeelingResult ADirectionPeel(const Graph& g, const PeelingOptions& options = {});

}  // namespace gputc

#endif  // GPUTC_DIRECTION_PEELING_H_
