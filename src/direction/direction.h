#ifndef GPUTC_DIRECTION_DIRECTION_H_
#define GPUTC_DIRECTION_DIRECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/directed_graph.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/deadline.h"

namespace gputc {

/// Edge-directing strategies (Sections 1 and 4 of the paper).
enum class DirectionStrategy {
  /// Small id -> large id (the common baseline).
  kIdBased,
  /// Small degree -> large degree, ties by id ("D-direction").
  kDegreeBased,
  /// The paper's analytic-model-guided peeling algorithm ("A-direction",
  /// Algorithm 1).
  kADirection,
  /// Random total order (ablation baseline).
  kRandom,
};

/// Human-readable name ("ID-based", "D-direction", "A-direction", "random").
std::string ToString(DirectionStrategy strategy);

/// All strategies, for parameterized tests and benches.
std::vector<DirectionStrategy> AllDirectionStrategies();

/// Computes the vertex rank that realizes `strategy` on `g`: edge (u, v) is
/// oriented u -> v iff rank[u] < rank[v] (ties impossible; ranks are a
/// permutation). Rank-induced orientations are acyclic, so the correctness
/// constraint of Section 4.1 (no directed 3-cycle) holds by construction.
/// `seed` only affects kRandom. `exec` (optional, not owned) is forwarded to
/// A-direction peeling for tracing; ranking itself never blocks on it.
std::vector<VertexId> DirectionRank(const Graph& g, DirectionStrategy strategy,
                                    uint64_t seed = 1,
                                    const ExecContext* exec = nullptr);

/// Convenience: orients `g` with `strategy`.
DirectedGraph Orient(const Graph& g, DirectionStrategy strategy,
                     uint64_t seed = 1);

/// True if `g` contains no directed 3-cycle (the paper's correctness
/// requirement). O(sum of out-degree^2); used by tests.
bool HasNoDirectedTriangleCycle(const Graph& undirected,
                                const DirectedGraph& directed);

}  // namespace gputc

#endif  // GPUTC_DIRECTION_DIRECTION_H_
