#include "direction/brute_force.h"

#include <limits>

#include "direction/cost_model.h"
#include "util/logging.h"

namespace gputc {

BruteForceDirectionResult BruteForceOptimalDirection(const Graph& g) {
  const EdgeList edges = g.ToEdgeList();
  const int m = static_cast<int>(edges.num_edges());
  GPUTC_CHECK_LE(m, 24) << "brute force limited to 24 edges";
  const VertexId n = g.num_vertices();

  // Precompute triangles as triples of (edge index, canonical direction bit):
  // for triangle {a<b<c} with edges e1=(a,b), e2=(b,c), e3=(a,c), the two
  // directed 3-cycles are a->b->c->a and the reverse.
  struct Triangle {
    int e_ab, e_bc, e_ac;
  };
  std::vector<Triangle> triangles;
  auto edge_index = [&edges](VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    const Edge key{u, v};
    const auto& list = edges.edges();
    for (int i = 0; i < static_cast<int>(list.size()); ++i) {
      if (list[i] == key) return i;
    }
    return -1;
  };
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b : g.neighbors(a)) {
      if (b <= a) continue;
      for (VertexId c : g.neighbors(b)) {
        if (c <= b) continue;
        if (!g.HasEdge(a, c)) continue;
        triangles.push_back(
            Triangle{edge_index(a, b), edge_index(b, c), edge_index(a, c)});
      }
    }
  }

  BruteForceDirectionResult result;
  result.optimal_cost = std::numeric_limits<double>::infinity();
  std::vector<EdgeCount> out_deg(n);
  // Bit i == 0 means edge i is oriented u -> v (u < v); 1 means v -> u.
  for (uint32_t mask = 0; mask < (uint32_t{1} << m); ++mask) {
    ++result.orientations_examined;
    // a->b->c->a is the cycle (ab fwd, bc fwd, ac REV); the other cycle is
    // the complement of those three bits.
    bool valid = true;
    for (const Triangle& t : triangles) {
      const int ab = (mask >> t.e_ab) & 1;
      const int bc = (mask >> t.e_bc) & 1;
      const int ac = (mask >> t.e_ac) & 1;
      if ((ab == 0 && bc == 0 && ac == 1) ||
          (ab == 1 && bc == 1 && ac == 0)) {
        valid = false;
        break;
      }
    }
    if (!valid) continue;
    ++result.orientations_valid;
    std::fill(out_deg.begin(), out_deg.end(), 0);
    for (int i = 0; i < m; ++i) {
      const Edge& e = edges.edges()[static_cast<size_t>(i)];
      ++out_deg[((mask >> i) & 1) == 0 ? e.u : e.v];
    }
    const double cost = DirectionCostFromOutDegrees(out_deg, g.num_edges());
    if (cost < result.optimal_cost) {
      result.optimal_cost = cost;
      result.optimal_out_degrees = out_deg;
    }
  }
  return result;
}

}  // namespace gputc
