#ifndef GPUTC_DIRECTION_COST_MODEL_H_
#define GPUTC_DIRECTION_COST_MODEL_H_

#include <vector>

#include "graph/directed_graph.h"
#include "graph/graph.h"

namespace gputc {

/// The paper's Equation 1: C(P) = sum_u |d~(u) - d~_avg|, the workload
/// imbalance cost of an orientation under the intra-block BSP model.
/// d~_avg = |E| / |V| is orientation-invariant.
double DirectionCost(const DirectedGraph& g);

/// Equation 1 restricted to vertices whose *undirected* degree exceeds
/// `threshold_factor * d~_avg` — Figure 11's "degree threshold k" view, which
/// isolates the hub vertices that dominate superstep maxima. The filter uses
/// undirected degree so the same vertex set is compared across orientation
/// strategies. `undirected` must be the graph `g` was oriented from.
double DirectionCostAboveThreshold(const Graph& undirected,
                                   const DirectedGraph& g,
                                   double threshold_factor);

/// Cost directly from an out-degree vector (used by the brute-force search
/// and tests). `num_edges` fixes d~_avg = num_edges / degrees.size().
double DirectionCostFromOutDegrees(const std::vector<EdgeCount>& out_degrees,
                                   EdgeCount num_edges);

}  // namespace gputc

#endif  // GPUTC_DIRECTION_COST_MODEL_H_
