#include "direction/direction.h"

#include <algorithm>
#include <numeric>

#include "direction/peeling.h"
#include "graph/permutation.h"
#include "util/logging.h"
#include "util/random.h"

namespace gputc {

std::string ToString(DirectionStrategy strategy) {
  switch (strategy) {
    case DirectionStrategy::kIdBased:
      return "ID-based";
    case DirectionStrategy::kDegreeBased:
      return "D-direction";
    case DirectionStrategy::kADirection:
      return "A-direction";
    case DirectionStrategy::kRandom:
      return "random";
  }
  return "unknown";
}

std::vector<DirectionStrategy> AllDirectionStrategies() {
  return {DirectionStrategy::kIdBased, DirectionStrategy::kDegreeBased,
          DirectionStrategy::kADirection, DirectionStrategy::kRandom};
}

std::vector<VertexId> DirectionRank(const Graph& g, DirectionStrategy strategy,
                                    uint64_t seed, const ExecContext* exec) {
  const VertexId n = g.num_vertices();
  switch (strategy) {
    case DirectionStrategy::kIdBased:
      return IdentityPermutation(n);
    case DirectionStrategy::kDegreeBased: {
      std::vector<VertexId> by_degree(n);
      std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
      std::sort(by_degree.begin(), by_degree.end(),
                [&g](VertexId a, VertexId b) {
                  return g.degree(a) != g.degree(b)
                             ? g.degree(a) < g.degree(b)
                             : a < b;
                });
      return PermutationFromSequence(by_degree);
    }
    case DirectionStrategy::kADirection: {
      PeelingOptions options;
      options.exec = exec;
      return PermutationFromSequence(ADirectionPeel(g, options).peel_order);
    }
    case DirectionStrategy::kRandom: {
      std::vector<VertexId> order(n);
      std::iota(order.begin(), order.end(), VertexId{0});
      Rng rng(seed);
      for (size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.NextBounded(i)]);
      }
      return PermutationFromSequence(order);
    }
  }
  GPUTC_LOG(Fatal) << "unhandled direction strategy";
  return {};
}

DirectedGraph Orient(const Graph& g, DirectionStrategy strategy,
                     uint64_t seed) {
  return DirectedGraph::FromRank(g, DirectionRank(g, strategy, seed));
}

bool HasNoDirectedTriangleCycle(const Graph& undirected,
                                const DirectedGraph& directed) {
  // A directed 3-cycle u -> v -> w -> u requires each arc to exist; check
  // every directed wedge u -> v -> w for a closing arc w -> u.
  for (VertexId u = 0; u < directed.num_vertices(); ++u) {
    for (VertexId v : directed.out_neighbors(u)) {
      for (VertexId w : directed.out_neighbors(v)) {
        if (directed.HasArc(w, u)) return false;
      }
    }
  }
  // Also require that every undirected edge is represented exactly once.
  EdgeCount arcs = 0;
  for (VertexId u = 0; u < directed.num_vertices(); ++u) {
    arcs += directed.out_degree(u);
  }
  return arcs == undirected.num_edges();
}

}  // namespace gputc
