#include "direction/cost_model.h"

#include <cmath>

#include "util/logging.h"

namespace gputc {

double DirectionCost(const DirectedGraph& g) {
  return DirectionCostFromOutDegrees(g.OutDegrees(), g.num_edges());
}

double DirectionCostAboveThreshold(const Graph& undirected,
                                   const DirectedGraph& g,
                                   double threshold_factor) {
  GPUTC_CHECK_EQ(undirected.num_vertices(), g.num_vertices());
  GPUTC_CHECK_EQ(undirected.num_edges(), g.num_edges());
  if (g.num_vertices() == 0) return 0.0;
  const double avg = g.AverageOutDegree();
  const double cutoff = threshold_factor * avg;
  double cost = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (static_cast<double>(undirected.degree(v)) > cutoff) {
      cost += std::abs(static_cast<double>(g.out_degree(v)) - avg);
    }
  }
  return cost;
}

double DirectionCostFromOutDegrees(const std::vector<EdgeCount>& out_degrees,
                                   EdgeCount num_edges) {
  if (out_degrees.empty()) return 0.0;
  const double avg = static_cast<double>(num_edges) /
                     static_cast<double>(out_degrees.size());
  double cost = 0.0;
  for (EdgeCount d : out_degrees) {
    cost += std::abs(static_cast<double>(d) - avg);
  }
  return cost;
}

}  // namespace gputc
