#include "direction/peeling.h"

#include <algorithm>
#include <deque>

#include "obs/trace.h"
#include "util/logging.h"

namespace gputc {

PeelingResult ADirectionPeel(const Graph& g, const PeelingOptions& options) {
  GPUTC_CHECK_GT(options.threshold_growth, 1.0);
  Span span = options.exec != nullptr ? StartSpan(*options.exec, "direction.peel")
                                      : Span();
  const VertexId n = g.num_vertices();
  PeelingResult result;
  result.peel_order.reserve(n);
  if (n == 0) return result;

  std::vector<EdgeCount> residual(n);
  for (VertexId v = 0; v < n; ++v) residual[v] = g.degree(v);
  std::vector<bool> peeled(n, false);
  std::vector<bool> queued(n, false);

  // Initial threshold is the paper's d~_avg = |E| / |V| (at least 1 so the
  // first round can make progress on degree-1 fringes).
  double threshold = std::max(
      1.0, static_cast<double>(g.num_edges()) / static_cast<double>(n));

  VertexId remaining = n;
  while (remaining > 0) {
    // Collect this round's frontier: unpeeled vertices at or below the
    // threshold, seeded in ascending (residual degree, id) order so edges
    // run from smaller to larger degree, matching Lines 9-11.
    std::vector<VertexId> frontier;
    for (VertexId v = 0; v < n; ++v) {
      if (!peeled[v] &&
          static_cast<double>(residual[v]) <= threshold) {
        frontier.push_back(v);
      }
    }
    if (frontier.empty()) {
      threshold *= options.threshold_growth;
      ++result.rounds;
      continue;
    }
    std::sort(frontier.begin(), frontier.end(), [&](VertexId a, VertexId b) {
      return residual[a] != residual[b] ? residual[a] < residual[b] : a < b;
    });
    std::deque<VertexId> queue(frontier.begin(), frontier.end());
    for (VertexId v : frontier) queued[v] = true;

    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      peeled[v] = true;
      --remaining;
      result.peel_degree = std::max(result.peel_degree, residual[v]);
      result.peel_order.push_back(v);
      // Peeling v implicitly orients every still-undirected incident edge
      // away from v; neighbours lose one residual degree and may join the
      // frontier (Lines 12-16).
      for (VertexId nbr : g.neighbors(v)) {
        if (peeled[nbr]) continue;
        --residual[nbr];
        if (!queued[nbr] &&
            static_cast<double>(residual[nbr]) <= threshold) {
          queued[nbr] = true;
          queue.push_back(nbr);
        }
      }
    }
    threshold *= options.threshold_growth;
    ++result.rounds;
  }
  GPUTC_CHECK_EQ(result.peel_order.size(), static_cast<size_t>(n));
  span.SetAttr("rounds", static_cast<int64_t>(result.rounds));
  span.SetAttr("peel_degree", static_cast<int64_t>(result.peel_degree));
  return result;
}

}  // namespace gputc
