#ifndef GPUTC_DIRECTION_BRUTE_FORCE_H_
#define GPUTC_DIRECTION_BRUTE_FORCE_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace gputc {

/// Result of the exhaustive orientation search.
struct BruteForceDirectionResult {
  /// Minimum Eq. 1 cost over all valid orientations.
  double optimal_cost = 0.0;
  /// Out-degrees achieving the optimum (one witness).
  std::vector<EdgeCount> optimal_out_degrees;
  /// Number of orientations examined (2^|E|) and how many were valid.
  int64_t orientations_examined = 0;
  int64_t orientations_valid = 0;
};

/// Exhaustively minimizes the Equation 1 cost over all 2^|E| orientations,
/// honoring the paper's ILP constraint that no directed 3-cycle may appear
/// (Section 4.1). Exponential — intended for graphs with |E| <= ~20 in tests
/// that certify A-direction's approximation quality. Aborts above 24 edges.
BruteForceDirectionResult BruteForceOptimalDirection(const Graph& g);

}  // namespace gputc

#endif  // GPUTC_DIRECTION_BRUTE_FORCE_H_
