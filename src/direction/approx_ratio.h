#ifndef GPUTC_DIRECTION_APPROX_RATIO_H_
#define GPUTC_DIRECTION_APPROX_RATIO_H_

#include "graph/graph.h"
#include "graph/types.h"

namespace gputc {

/// The quantities of Theorem 4.2: a data-dependent bound on A-direction's
/// approximation ratio rho = C(P_alg) / C(P_opt) <= 1 + UB / LB.
struct ApproxRatioBound {
  /// Lower bound on the optimal cost C(P_opt) (Eq. 14/15 or the fallback).
  double lower_bound_opt = 0.0;
  /// Upper bound on C(P_alg) - C(P_opt) (Eq. 17).
  double upper_bound_gap = 0.0;
  /// 1 + UB / LB; the paper reports this is < 1.8 on power-law graphs
  /// (Figure 7) and on its real datasets (Table 3).
  double rho = 0.0;
  /// Which LB case of Theorem 4.2 applied: 'a', 'b' or 'c'.
  char lb_case = 'c';
  /// Paper notation inputs, for reporting.
  double d_avg = 0.0;      // d~_avg = |E| / |V|.
  int64_t num_core = 0;     // |V_c|: d(v) >= d_avg.
  int64_t num_non_core = 0; // |V_n|.
  EdgeCount peel_degree = 0;  // d_peel reached by the UB construction.
};

/// Evaluates Theorem 4.2 on `g`. Runs in O(|V| + max_degree).
ApproxRatioBound ComputeApproxRatioBound(const Graph& g);

}  // namespace gputc

#endif  // GPUTC_DIRECTION_APPROX_RATIO_H_
