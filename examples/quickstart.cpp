// Quickstart: load a graph, run the paper's preprocessing (A-direction +
// A-order), and count triangles with each simulated GPU algorithm.
//
//   ./quickstart [--dataset gowalla]

#include <iostream>

#include "core/pipeline.h"
#include "graph/datasets.h"
#include "tc/cpu_counters.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace gputc;
  FlagParser flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "gowalla");
  if (!HasDataset(dataset)) {
    std::cerr << "unknown dataset '" << dataset << "'; available:\n";
    for (const auto& name : DatasetNames()) std::cerr << "  " << name << "\n";
    return 1;
  }

  const Graph g = LoadDataset(dataset);
  std::cout << "dataset " << dataset << ": " << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges\n";

  // Reference count on the host.
  const int64_t expected = CountTrianglesForward(g);
  std::cout << "host forward-algorithm count: " << FmtCount(expected)
            << " triangles\n\n";

  // The one-liner facade (A-direction + A-order + Hu's kernel).
  std::cout << "CountTriangles(g) = " << FmtCount(CountTriangles(g)) << "\n\n";

  // Full pipeline on every paper algorithm, with and without the paper's
  // preprocessing.
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  TablePrinter table({"algorithm", "baseline ms", "preprocessed ms",
                      "kernel speedup", "triangles"});
  for (TcAlgorithm algorithm : PaperAlgorithms()) {
    PreprocessOptions baseline;
    baseline.direction = DirectionStrategy::kDegreeBased;
    baseline.ordering = OrderingStrategy::kOriginal;
    const RunResult before = RunTriangleCount(g, algorithm, spec, baseline);

    PreprocessOptions ours;  // Defaults: A-direction + A-order.
    const RunResult after = RunTriangleCount(g, algorithm, spec, ours);

    table.AddRow({ToString(algorithm), Fmt(before.kernel_ms(), 3),
                  Fmt(after.kernel_ms(), 3),
                  Percent((before.kernel_ms() - after.kernel_ms()) /
                          before.kernel_ms()),
                  FmtCount(after.triangles)});
    if (after.triangles != expected || before.triangles != expected) {
      std::cerr << "COUNT MISMATCH for " << ToString(algorithm) << "\n";
      return 1;
    }
  }
  table.Print(std::cout);
  std::cout << "\n(kernel ms are simulated-device model times; see "
               "DESIGN.md)\n";
  return 0;
}
