// Interactive CLI over the full preprocessing space: choose a dataset, an
// edge-direction strategy, a vertex ordering, and an algorithm; prints the
// analytic model costs (Eq. 1 and Eq. 3) next to the simulated kernel time
// so the model-vs-runtime coupling the paper claims can be inspected
// directly.
//
//   ./preprocessing_explorer --dataset gowalla --algorithm Hu
//   ./preprocessing_explorer --list

#include <iostream>

#include "core/pipeline.h"
#include "graph/datasets.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace gputc;

TcAlgorithm ParseAlgorithm(const std::string& name) {
  for (TcAlgorithm a :
       {TcAlgorithm::kGunrockBinarySearch, TcAlgorithm::kGunrockSortMerge,
        TcAlgorithm::kTriCore, TcAlgorithm::kFox, TcAlgorithm::kBisson,
        TcAlgorithm::kHu, TcAlgorithm::kPolak}) {
    if (ToString(a) == name) return a;
  }
  std::cerr << "unknown algorithm '" << name << "', using Hu\n";
  return TcAlgorithm::kHu;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.Has("list")) {
    std::cout << "datasets:\n";
    for (const auto& name : DatasetNames()) {
      const DatasetSpec spec = GetDatasetSpec(name);
      std::cout << "  " << name << "  [" << spec.family << "]  "
                << spec.provenance << "\n";
    }
    std::cout << "algorithms: Gunrock-bs Gunrock-sm TriCore Fox Bisson Hu "
                 "Polak\n";
    return 0;
  }

  const std::string dataset = flags.GetString("dataset", "gowalla");
  if (!HasDataset(dataset)) {
    std::cerr << "unknown dataset '" << dataset << "' (try --list)\n";
    return 1;
  }
  const TcAlgorithm algorithm =
      ParseAlgorithm(flags.GetString("algorithm", "Hu"));
  const Graph g = LoadDataset(dataset);
  const DeviceSpec spec = DeviceSpec::TitanXpLike();

  std::cout << "dataset " << dataset << ": " << g.num_vertices()
            << " vertices, " << g.num_edges()
            << " edges; algorithm: " << ToString(algorithm) << "\n\n";

  TablePrinter table({"direction", "ordering", "Eq.1 cost", "Eq.3 cost",
                      "preproc ms", "kernel ms", "total ms", "triangles"});
  for (DirectionStrategy dir :
       {DirectionStrategy::kIdBased, DirectionStrategy::kDegreeBased,
        DirectionStrategy::kADirection}) {
    for (OrderingStrategy ord :
         {OrderingStrategy::kOriginal, OrderingStrategy::kDegree,
          OrderingStrategy::kAOrder}) {
      PreprocessOptions options;
      options.direction = dir;
      options.ordering = ord;
      const RunResult r = RunTriangleCount(g, algorithm, spec, options);
      table.AddRow({ToString(dir), ToString(ord),
                    Fmt(r.preprocess.direction_cost, 0),
                    Fmt(r.preprocess.ordering_cost, 0),
                    Fmt(r.preprocess.total_ms, 2), Fmt(r.kernel_ms(), 3),
                    Fmt(r.total_ms(), 3), FmtCount(r.triangles)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nLower Eq.1 cost should track lower kernel time for BSP "
               "kernels (Bisson, Hu); lower Eq.3 cost should track lower "
               "kernel time for binary-search kernels. Kernel ms is the "
               "simulated device model.\n";
  return 0;
}
