// Clustering coefficient (Watts & Strogatz), one of the triangle-counting
// applications the paper's introduction motivates. Uses the apps library to
// contrast a small-world graph against a power-law graph of the same size.
//
//   ./clustering_coefficient [--nodes 4000]

#include <iostream>

#include "apps/clustering.h"
#include "core/pipeline.h"
#include "graph/generators.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace gputc;

void Report(TablePrinter* table, const std::string& name, const Graph& g) {
  table->AddRow({name, FmtCount(CountTriangles(g)),
                 Fmt(GlobalClusteringCoefficient(g), 4),
                 Fmt(AverageClusteringCoefficient(g), 4)});
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const VertexId n = static_cast<VertexId>(flags.GetInt("nodes", 4000));

  // Small-world graphs have high clustering; power-law configuration graphs
  // of the same size do not — the classic Watts-Strogatz contrast. More
  // rewiring (larger beta) destroys the local structure.
  TablePrinter table({"graph", "triangles", "global cc", "avg local cc"});
  Report(&table, "watts-strogatz k=6 beta=0.05",
         GenerateWattsStrogatz(n, 6, 0.05, /*seed=*/1));
  Report(&table, "watts-strogatz k=6 beta=0.50",
         GenerateWattsStrogatz(n, 6, 0.5, /*seed=*/1));
  Report(&table, "power-law gamma=2.1",
         GeneratePowerLawConfiguration(n, 2.1, 3, n / 10, /*seed=*/1));
  table.Print(std::cout);
  std::cout << "\nExpected: clustering decreases as beta grows, and the "
               "power-law graph clusters far less than the small world.\n";
  return 0;
}
