// k-truss decomposition (Wang & Cheng), the third application the paper's
// introduction motivates, via the apps library: trussness of every edge and
// the truss-size profile of a social-network stand-in.
//
//   ./ktruss [--dataset email-Eucore] [--extract-k 0]

#include <iostream>

#include "apps/ktruss.h"
#include "graph/datasets.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace gputc;
  FlagParser flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "email-Eucore");
  if (!HasDataset(dataset)) {
    std::cerr << "unknown dataset '" << dataset << "'\n";
    return 1;
  }
  const Graph g = LoadDataset(dataset);
  std::cout << "dataset " << dataset << ": " << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges\n";

  const TrussDecompositionResult decomposition = DecomposeTruss(g);
  const auto profile = TrussProfile(decomposition);

  TablePrinter table({"k", "edges with trussness k", "edges in k-truss"});
  int64_t cumulative = static_cast<int64_t>(decomposition.trussness.size());
  for (const auto& [k, count] : profile) {
    table.AddRow({FmtCount(k), FmtCount(count), FmtCount(cumulative)});
    cumulative -= count;
  }
  table.Print(std::cout);
  std::cout << "maximum trussness: " << decomposition.max_trussness << "\n";

  const int64_t extract_k = flags.GetInt("extract-k", 0);
  if (extract_k >= 2) {
    const Graph truss = KTrussSubgraph(g, static_cast<int>(extract_k));
    std::cout << extract_k << "-truss subgraph: " << truss.num_edges()
              << " edges\n";
  }
  return 0;
}
