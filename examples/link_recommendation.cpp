// Triangle-based link recommendation (Tsourakakis et al.), another
// application from the paper's introduction: recommend the non-neighbor
// pairs that would close the most triangles, via the apps library.
//
//   ./link_recommendation [--dataset email-Eucore] [--top 10]

#include <iostream>

#include "apps/recommendation.h"
#include "graph/datasets.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace gputc;
  FlagParser flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "email-Eucore");
  if (!HasDataset(dataset)) {
    std::cerr << "unknown dataset '" << dataset << "'\n";
    return 1;
  }
  const Graph g = LoadDataset(dataset);
  std::cout << "dataset " << dataset << ": " << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges\n";

  RecommendationOptions options;
  options.top_k = flags.GetInt("top", 10);
  const auto recommendations = RecommendLinks(g, options);

  TablePrinter table({"rank", "u", "v", "triangles closed"});
  for (size_t i = 0; i < recommendations.size(); ++i) {
    const Recommendation& r = recommendations[i];
    table.AddRow({FmtCount(static_cast<int64_t>(i) + 1), FmtCount(r.u),
                  FmtCount(r.v), FmtCount(r.score)});
  }
  table.Print(std::cout);
  return 0;
}
