#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tc/cpu_counters.h"

namespace gputc {
namespace {

TEST(FixtureTest, CompleteGraphTriangles) {
  // K_n has C(n, 3) triangles.
  EXPECT_EQ(CountTrianglesForward(CompleteGraph(4)), 4);
  EXPECT_EQ(CountTrianglesForward(CompleteGraph(6)), 20);
  EXPECT_EQ(CountTrianglesForward(CompleteGraph(10)), 120);
}

TEST(FixtureTest, TriangleFreeFamilies) {
  EXPECT_EQ(CountTrianglesForward(CycleGraph(5)), 0);
  EXPECT_EQ(CountTrianglesForward(StarGraph(20)), 0);
  EXPECT_EQ(CountTrianglesForward(PathGraph(20)), 0);
  EXPECT_EQ(CountTrianglesForward(GridGraph(5, 7)), 0);
  EXPECT_EQ(CountTrianglesForward(CompleteBipartiteGraph(4, 6)), 0);
}

TEST(FixtureTest, SmallCycleAndWheel) {
  EXPECT_EQ(CountTrianglesForward(CycleGraph(3)), 1);
  EXPECT_EQ(CountTrianglesForward(WheelGraph(6)), 5);
  EXPECT_EQ(CountTrianglesForward(WheelGraph(10)), 9);
}

TEST(FixtureTest, GridShape) {
  const Graph g = GridGraph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // Horizontal + vertical.
}

TEST(ErdosRenyiTest, ExactEdgeCount) {
  const Graph g = GenerateErdosRenyi(200, 1000, /*seed=*/1);
  EXPECT_EQ(g.num_vertices(), 200u);
  EXPECT_EQ(g.num_edges(), 1000);
}

TEST(ErdosRenyiTest, DeterministicBySeed) {
  const Graph a = GenerateErdosRenyi(100, 400, 9);
  const Graph b = GenerateErdosRenyi(100, 400, 9);
  EXPECT_EQ(a.adjacency(), b.adjacency());
  const Graph c = GenerateErdosRenyi(100, 400, 10);
  EXPECT_NE(a.adjacency(), c.adjacency());
}

TEST(BarabasiAlbertTest, DegreesAndSkew) {
  const Graph g = GenerateBarabasiAlbert(2000, 3, /*seed=*/2);
  EXPECT_EQ(g.num_vertices(), 2000u);
  // Every non-seed vertex attaches with 3 edges.
  EXPECT_GE(g.num_edges(), 3 * (2000 - 4));
  // Preferential attachment produces hubs far above the minimum degree.
  EXPECT_GT(g.MaxDegree(), 30);
}

TEST(WattsStrogatzTest, NearUniformDegrees) {
  const Graph g = GenerateWattsStrogatz(1000, 4, 0.05, /*seed=*/3);
  EXPECT_EQ(g.num_vertices(), 1000u);
  // Rewiring loses a few edges to collisions, but degree stays near k.
  EXPECT_GT(g.AverageDegree(), 3.0);
  EXPECT_LT(g.MaxDegree(), 12);
  // The lattice has triangles only for k >= 4... k=4 ring lattice has n
  // triangles before rewiring; most should survive beta=0.05.
  EXPECT_GT(CountTrianglesForward(g), 500);
}

TEST(PowerLawTest, DegreeSequenceWithinBounds) {
  const auto degrees = PowerLawDegreeSequence(5000, 2.2, 2, 500, /*seed=*/4);
  EdgeCount max_seen = 0;
  for (EdgeCount d : degrees) {
    EXPECT_GE(d, 2);
    EXPECT_LE(d, 500);
    max_seen = std::max(max_seen, d);
  }
  // The tail should actually be exercised.
  EXPECT_GT(max_seen, 50);
}

TEST(PowerLawTest, ConfigurationGraphIsSkewed) {
  const Graph g = GeneratePowerLawConfiguration(5000, 2.1, 2, 500, /*seed=*/5);
  EXPECT_EQ(g.num_vertices(), 5000u);
  EXPECT_GT(g.num_edges(), 4000);
  EXPECT_GT(static_cast<double>(g.MaxDegree()), 10 * g.AverageDegree());
}

TEST(PowerLawTest, HigherGammaThinnerTail) {
  const Graph heavy = GeneratePowerLawConfiguration(4000, 1.8, 2, 1000, 6);
  const Graph thin = GeneratePowerLawConfiguration(4000, 3.0, 2, 1000, 6);
  EXPECT_GT(heavy.MaxDegree(), thin.MaxDegree());
}

TEST(RmatTest, SizeAndSkew) {
  const Graph g = GenerateRmat(10, 8, /*seed=*/7);
  EXPECT_EQ(g.num_vertices(), 1u << 10);
  // Duplicates get merged, so the realized count is below 8 * 2^10.
  EXPECT_GT(g.num_edges(), 4 << 10);
  EXPECT_LE(g.num_edges(), 8 << 10);
  EXPECT_GT(static_cast<double>(g.MaxDegree()), 4 * g.AverageDegree());
}

TEST(RmatTest, Deterministic) {
  const Graph a = GenerateRmat(8, 4, 11);
  const Graph b = GenerateRmat(8, 4, 11);
  EXPECT_EQ(a.adjacency(), b.adjacency());
}

// Golden triangle counts: the generators are part of the test corpus (the
// differential harness and the batch fixtures both build on them), so a
// silent RNG or normalization change would quietly re-seed every downstream
// expectation. Pinning exact counts per (family, seed) turns that into a
// loud failure here instead.
TEST(GeneratorGoldenTest, SeededGraphsPinTriangleCounts) {
  EXPECT_EQ(CountTrianglesForward(GenerateErdosRenyi(300, 1200, 7)), 76);
  EXPECT_EQ(CountTrianglesForward(GenerateErdosRenyi(300, 1200, 8)), 99);
  EXPECT_EQ(CountTrianglesForward(GenerateBarabasiAlbert(500, 3, 7)), 186);
  EXPECT_EQ(CountTrianglesForward(GenerateWattsStrogatz(400, 6, 0.1, 7)),
            845);
  EXPECT_EQ(
      CountTrianglesForward(GeneratePowerLawConfiguration(400, 2.2, 2, 60, 7)),
      262);
  EXPECT_EQ(CountTrianglesForward(GenerateRmat(9, 6, 7)), 6055);
}

class GeneratorSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSeedTest, AllFamiliesProduceSimpleGraphs) {
  const uint64_t seed = GetParam();
  for (const Graph& g :
       {GenerateErdosRenyi(300, 900, seed),
        GenerateBarabasiAlbert(300, 2, seed),
        GenerateWattsStrogatz(300, 4, 0.1, seed),
        GeneratePowerLawConfiguration(300, 2.0, 1, 60, seed),
        GenerateRmat(8, 4, seed)}) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto nbrs = g.neighbors(v);
      // Sorted, no self loops, no duplicates.
      for (size_t i = 0; i < nbrs.size(); ++i) {
        EXPECT_NE(nbrs[i], v);
        if (i > 0) {
          EXPECT_LT(nbrs[i - 1], nbrs[i]);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(1, 2, 3, 17, 12345));

}  // namespace
}  // namespace gputc
