// Tests for the network serving layer: the AIMD adaptive concurrency
// limiter, listen-spec parsing, the version stamp, and the Server end to
// end over unix-domain sockets — request/response happy path, the hostile
// client corpus (oversized lines, garbage bytes, slowloris, mid-request
// disconnects), overload rejections with retry hints, the graceful-drain
// ladder, health/readiness/metrics probes, and fd hygiene under connection
// churn. The whole file runs under TSan/ASan in CI.

#include "service/server.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/overload.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/net_io.h"
#include "util/version.h"

namespace gputc {
namespace {

// -- AdaptiveLimiter --------------------------------------------------------

TEST(AdaptiveLimiterTest, AcquiresUpToLimitThenRejects) {
  AdaptiveLimiterOptions options;
  options.initial_limit = 2;
  options.min_limit = 1;
  options.max_limit = 4;
  AdaptiveLimiter limiter(options);
  EXPECT_TRUE(limiter.TryAcquire().ok());
  EXPECT_TRUE(limiter.TryAcquire().ok());
  const Status full = limiter.TryAcquire();
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(limiter.inflight(), 2);
  limiter.Release(5.0);
  EXPECT_TRUE(limiter.TryAcquire().ok());
}

TEST(AdaptiveLimiterTest, SlowWindowShrinksTheLimit) {
  AdaptiveLimiterOptions options;
  options.initial_limit = 4;
  options.min_limit = 1;
  options.max_limit = 8;
  options.target_ms = 10.0;
  options.window = 4;
  options.decrease_factor = 0.7;
  AdaptiveLimiter limiter(options);
  // One full window of latencies far over target: multiplicative decrease.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(limiter.TryAcquire().ok());
    limiter.Release(100.0);
  }
  EXPECT_EQ(limiter.limit(), 2) << "floor(4 * 0.7)";
  EXPECT_EQ(limiter.overloaded_windows(), 1);
  // RetryAfterMs now tracks the observed p99, not the static target.
  EXPECT_EQ(limiter.RetryAfterMs(), 100);
}

TEST(AdaptiveLimiterTest, HealthyWindowProbesUpwardOneSlot) {
  AdaptiveLimiterOptions options;
  options.initial_limit = 2;
  options.min_limit = 1;
  options.max_limit = 3;
  options.target_ms = 1000.0;
  options.window = 2;
  AdaptiveLimiter limiter(options);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(limiter.TryAcquire().ok());
    limiter.Release(1.0);
  }
  EXPECT_EQ(limiter.limit(), 3);
  // Additive increase saturates at max_limit.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(limiter.TryAcquire().ok());
    limiter.Release(1.0);
  }
  EXPECT_EQ(limiter.limit(), 3);
  EXPECT_EQ(limiter.overloaded_windows(), 0);
}

TEST(AdaptiveLimiterTest, RetryAfterDefaultsToTargetAndClamps) {
  AdaptiveLimiterOptions options;
  options.target_ms = 400.0;
  options.window = 2;
  AdaptiveLimiter limiter(options);
  // No window observed yet: fall back to the target.
  EXPECT_EQ(limiter.RetryAfterMs(), 400);
  // A pathological window is clamped so clients never sleep forever.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(limiter.TryAcquire().ok());
    limiter.Release(60000.0);
  }
  EXPECT_EQ(limiter.RetryAfterMs(), 5000);
}

TEST(AdaptiveLimiterTest, ReleaseSlotReturnsTheSlotWithoutASample) {
  AdaptiveLimiterOptions options;
  options.initial_limit = 2;
  options.min_limit = 1;
  options.max_limit = 4;
  options.target_ms = 10.0;
  options.window = 1;  // Any sample would adapt immediately.
  AdaptiveLimiter limiter(options);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(limiter.TryAcquire().ok());
    limiter.ReleaseSlot();
  }
  // A storm of door rejections feeds the controller nothing: the limit must
  // not climb on fake-fast samples exactly when the service is saturated.
  EXPECT_EQ(limiter.limit(), 2);
  EXPECT_EQ(limiter.inflight(), 0);
  EXPECT_EQ(limiter.overloaded_windows(), 0);
}

TEST(AdaptiveLimiterTest, LimitNeverLeavesTheConfiguredBounds) {
  AdaptiveLimiterOptions options;
  options.initial_limit = 2;
  options.min_limit = 2;
  options.max_limit = 4;
  options.target_ms = 10.0;
  options.window = 1;
  AdaptiveLimiter limiter(options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(limiter.TryAcquire().ok());
    limiter.Release(500.0);  // Every window unhealthy.
    EXPECT_GE(limiter.limit(), 2);
  }
  EXPECT_EQ(limiter.limit(), 2);
}

// -- ListenSpec -------------------------------------------------------------

TEST(ListenSpecTest, ParsesTcpHostPort) {
  const StatusOr<ListenSpec> spec = ParseListenSpec("127.0.0.1:7171");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->is_unix);
  EXPECT_EQ(spec->host, "127.0.0.1");
  EXPECT_EQ(spec->port, 7171);
  EXPECT_EQ(spec->ToString(), "127.0.0.1:7171");
}

TEST(ListenSpecTest, ParsesPortZeroForEphemeralBind) {
  const StatusOr<ListenSpec> spec = ParseListenSpec("0.0.0.0:0");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->port, 0);
}

TEST(ListenSpecTest, ParsesUnixPath) {
  const StatusOr<ListenSpec> spec = ParseListenSpec("unix:/tmp/gputc.sock");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->is_unix);
  EXPECT_EQ(spec->path, "/tmp/gputc.sock");
  EXPECT_EQ(spec->ToString(), "unix:/tmp/gputc.sock");
}

TEST(ListenSpecTest, RejectsMalformedSpecs) {
  for (const char* bad : {"localhost", "host:", ":1234x", "host:notaport",
                          "host:70000", "unix:"}) {
    const StatusOr<ListenSpec> spec = ParseListenSpec(bad);
    EXPECT_FALSE(spec.ok()) << bad;
    if (!spec.ok()) {
      EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << bad;
    }
  }
}

TEST(ListenSpecTest, RejectsOverlongUnixPath) {
  const StatusOr<ListenSpec> spec =
      ParseListenSpec("unix:/tmp/" + std::string(200, 'x'));
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

// -- Version stamp ----------------------------------------------------------

TEST(VersionTest, StringCarriesEveryIdentityComponent) {
  const std::string v = VersionString();
  EXPECT_EQ(v.rfind("gputc ", 0), 0u) << v;
  EXPECT_NE(v.find(VersionNumber()), std::string::npos) << v;
  EXPECT_NE(v.find(BuildType()), std::string::npos) << v;
  EXPECT_NE(v.find("sanitizer="), std::string::npos) << v;
  EXPECT_NE(v.find(SanitizerConfig()), std::string::npos) << v;
}

// -- End-to-end server fixture ----------------------------------------------

int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

/// A blocking protocol client with bounded reads, so a server bug can never
/// wedge the test past its own deadline.
class Client {
 public:
  explicit Client(const ListenSpec& spec) {
    StatusOr<int> fd = ConnectToListener(spec);
    GPUTC_CHECK(fd.ok()) << fd.status().ToString();
    fd_ = *fd;
  }
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void Send(const std::string& bytes) {
    size_t done = 0;
    while (done < bytes.size()) {
      const StatusOr<size_t> n =
          SendRetry(fd_, bytes.data() + done, bytes.size() - done);
      if (!n.ok()) return;  // Peer-close races are expected in these tests.
      done += *n;
    }
  }

  /// Next newline-terminated line ('\n' and '\r' stripped), or "" once EOF
  /// or the timeout is reached.
  std::string ReadLine(int timeout_ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        buf_.erase(0, nl + 1);
        return line;
      }
      if (eof_ || !FillBuffer(deadline)) return "";
    }
  }

  /// Everything until EOF (or the timeout), for HTTP-framed responses.
  std::string ReadAll(int timeout_ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!eof_ && FillBuffer(deadline)) {
    }
    std::string out;
    out.swap(buf_);
    return out;
  }

  /// True when the server closed its end within the timeout.
  bool WaitForEof(int timeout_ms = 10000) {
    (void)ReadAll(timeout_ms);
    return eof_;
  }

  void CloseWrite() { ::shutdown(fd_, SHUT_WR); }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  /// One buffered read before `deadline`; false on timeout/error/EOF.
  bool FillBuffer(std::chrono::steady_clock::time_point deadline) {
    for (;;) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     std::chrono::steady_clock::now());
      if (remaining.count() <= 0) return false;
      pollfd pfd{fd_, POLLIN, 0};
      const StatusOr<int> ready = PollRetry(
          &pfd, 1, static_cast<int>(std::min<int64_t>(remaining.count(), 50)));
      if (!ready.ok()) return false;
      if (*ready == 0) continue;
      char chunk[1024];
      const StatusOr<size_t> n = ReadRetry(fd_, chunk, sizeof(chunk));
      if (!n.ok() || *n == 0) {
        eof_ = true;
        return false;
      }
      buf_.append(chunk, *n);
      return true;
    }
  }

  int fd_ = -1;
  std::string buf_;
  bool eof_ = false;
};

constexpr char kSmallGen[] = "gen:er:nodes=60,edges=150,seed=1";

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The test binary plays both client and server on unix sockets; a race
    // against a departing peer must stay an EPIPE status, not a signal.
    std::signal(SIGPIPE, SIG_IGN);
    FailPointRegistry::Instance().Reset();
    static int counter = 0;
    instance_ = counter++;
  }

  void TearDown() override {
    StopServer();
    FailPointRegistry::Instance().Reset();
  }

  ServerOptions BaseOptions() {
    ServerOptions options;
    options.listen.is_unix = true;
    options.listen.path =
        ::testing::TempDir() + "/gts" + std::to_string(instance_) + ".sock";
    options.batch.jobs = 2;
    return options;
  }

  /// Adds a health listener next to the data socket.
  static void WithHealth(ServerOptions* options) {
    options->has_health = true;
    options->health.is_unix = true;
    options->health.path = options->listen.path + ".health";
  }

  void StartServer(ServerOptions options) {
    options.on_report = [this](const RequestReport& report) {
      std::lock_guard<std::mutex> lock(reports_mu_);
      reports_.push_back(report);
    };
    server_ = std::make_unique<Server>(std::move(options));
    const Status started = server_->Start();
    GPUTC_CHECK(started.ok()) << started.ToString();
    run_thread_ = std::thread([this] { summary_ = server_->Run(); });
  }

  /// Requests shutdown (first reason wins) and joins the poll loop.
  const ServerSummary& StopServer(const std::string& reason = "test done") {
    if (server_ != nullptr && run_thread_.joinable()) {
      server_->RequestShutdown(reason);
      run_thread_.join();
    }
    return summary_;
  }

  /// True once the journal hook saw a report with `id`.
  bool WaitForReport(const std::string& id, int timeout_ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      {
        std::lock_guard<std::mutex> lock(reports_mu_);
        for (const RequestReport& r : reports_) {
          if (r.id == id) return true;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

  int instance_ = 0;
  std::unique_ptr<Server> server_;
  std::thread run_thread_;
  ServerSummary summary_;
  std::mutex reports_mu_;
  std::vector<RequestReport> reports_;
};

TEST_F(ServerTest, AnswersOneRequestWithOneJournalLine) {
  ServerOptions options = BaseOptions();
  const ListenSpec listen = options.listen;
  StartServer(std::move(options));

  Client client(listen);
  const std::string hello = client.ReadLine();
  EXPECT_NE(hello.find("\"hello\":\"gputc\""), std::string::npos) << hello;
  EXPECT_NE(hello.find(VersionNumber()), std::string::npos) << hello;
  EXPECT_NE(hello.find("\"proto\":1"), std::string::npos) << hello;

  client.Send(std::string(kSmallGen) + "\n");
  const std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"id\":\"net-1-1\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"outcome\":\"ok\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"triangles\":"), std::string::npos) << response;

  client.CloseWrite();
  EXPECT_TRUE(client.WaitForEof());
  const ServerSummary& summary = StopServer();
  EXPECT_EQ(summary.requests_received, 1);
  EXPECT_EQ(summary.responses_sent, 1);
  EXPECT_GE(summary.connections_accepted, 1);
  EXPECT_EQ(summary.overload_rejections, 0);
}

TEST_F(ServerTest, BlankAndCommentLinesGetNoResponse) {
  ServerOptions options = BaseOptions();
  const ListenSpec listen = options.listen;
  StartServer(std::move(options));

  Client client(listen);
  (void)client.ReadLine();  // hello
  client.Send("# a comment\n\n   \n" + std::string(kSmallGen) + "\n");
  const std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"outcome\":\"ok\""), std::string::npos)
      << response;
  client.CloseWrite();
  EXPECT_TRUE(client.WaitForEof());
  EXPECT_EQ(StopServer().requests_received, 1);
}

// -- Hostile-client corpus --------------------------------------------------

TEST_F(ServerTest, GarbageLineYieldsStructuredErrorAndKeepsConnection) {
  ServerOptions options = BaseOptions();
  const ListenSpec listen = options.listen;
  StartServer(std::move(options));

  Client client(listen);
  (void)client.ReadLine();  // hello
  client.Send("gen:nosuchfamily:nodes=10\n");
  const std::string error = client.ReadLine();
  EXPECT_NE(error.find("\"outcome\":\"rejected\""), std::string::npos)
      << error;
  EXPECT_NE(error.find("\"code\":\"INVALID_ARGUMENT\""), std::string::npos)
      << error;
  // The connection survives a bad request; the next good one still works.
  client.Send(std::string(kSmallGen) + "\n");
  const std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"outcome\":\"ok\""), std::string::npos)
      << response;
  client.Close();
  const ServerSummary& summary = StopServer();
  EXPECT_GE(summary.protocol_errors, 1);
}

TEST_F(ServerTest, OversizedLineIsRejectedAndReadSideClosed) {
  ServerOptions options = BaseOptions();
  options.max_line_bytes = 128;
  const ListenSpec listen = options.listen;
  StartServer(std::move(options));

  Client client(listen);
  (void)client.ReadLine();  // hello
  client.Send(std::string(1024, 'a'));  // No newline; cap must still fire.
  const std::string error = client.ReadLine();
  EXPECT_NE(error.find("exceeds 128 bytes"), std::string::npos) << error;
  EXPECT_NE(error.find("\"outcome\":\"rejected\""), std::string::npos)
      << error;
  EXPECT_TRUE(client.WaitForEof());
  EXPECT_GE(StopServer().protocol_errors, 1);
}

TEST_F(ServerTest, SlowlorisTripsTheIoDeadline) {
  ServerOptions options = BaseOptions();
  options.io_timeout_ms = 100.0;
  const ListenSpec listen = options.listen;
  StartServer(std::move(options));

  Client client(listen);
  (void)client.ReadLine();  // hello
  client.Send("gen:er:nodes=");  // Forever-unfinished request line.
  const std::string error = client.ReadLine(5000);
  EXPECT_NE(error.find("not completed within"), std::string::npos) << error;
  EXPECT_TRUE(client.WaitForEof(5000));
  EXPECT_GE(StopServer().protocol_errors, 1);
}

TEST_F(ServerTest, MidRequestDisconnectLeavesServerServing) {
  ServerOptions options = BaseOptions();
  const ListenSpec listen = options.listen;
  StartServer(std::move(options));
  {
    Client torn(listen);
    (void)torn.ReadLine();  // hello
    torn.Send("gen:er:nodes=60,ed");
    torn.Close();  // Disconnect mid-line.
  }
  {
    // A submitted request whose client vanishes must still be journaled.
    Client gone(listen);
    (void)gone.ReadLine();  // hello
    gone.Send(std::string(kSmallGen) + "\n");
    gone.Close();
  }
  EXPECT_TRUE(WaitForReport("net-2-1"));
  // The server is unharmed: a fresh client gets normal service.
  Client client(listen);
  (void)client.ReadLine();  // hello
  client.Send(std::string(kSmallGen) + "\n");
  EXPECT_NE(client.ReadLine().find("\"outcome\":\"ok\""), std::string::npos);
  client.Close();
  const ServerSummary& summary = StopServer();
  EXPECT_GE(summary.protocol_errors, 1);
  // The vanished client's response was dropped, not sent.
  EXPECT_EQ(summary.requests_received, 2);
}

TEST_F(ServerTest, ConnectionChurnLeaksNoDescriptors) {
  ServerOptions options = BaseOptions();
  const ListenSpec listen = options.listen;
  StartServer(std::move(options));
  // Warm up allocator/registry paths before the baseline count.
  {
    Client warm(listen);
    (void)warm.ReadLine();
    warm.Send(std::string(kSmallGen) + "\n");
    (void)warm.ReadLine();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int before = CountOpenFds();
  ASSERT_GT(before, 0);
  for (int i = 0; i < 20; ++i) {
    Client churn(listen);
    switch (i % 3) {
      case 0:
        churn.Send("complete garbage that cannot parse\n");
        (void)churn.ReadLine();
        break;
      case 1:
        churn.Send("gen:er:torn");  // Mid-line disconnect.
        break;
      case 2:
        break;  // Connect-and-vanish.
    }
    churn.Close();
  }
  // Give the poll loop time to reap every closed peer.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const int after = CountOpenFds();
  EXPECT_LE(after, before + 2) << "descriptor leak across connection churn";
  StopServer();
}

// -- Overload gates ---------------------------------------------------------

TEST_F(ServerTest, ConcurrencyLimitShedsWithRetryHint) {
  ServerOptions options = BaseOptions();
  options.limiter.initial_limit = 1;
  options.limiter.min_limit = 1;
  options.limiter.max_limit = 1;
  const ListenSpec listen = options.listen;

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  FailPointRegistry::Instance().SetObserver("service.worker", [&](int64_t) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  StartServer(std::move(options));

  Client client(listen);
  (void)client.ReadLine();  // hello
  client.Send(std::string(kSmallGen) + "\n");
  while (FailPointRegistry::Instance().hits("service.worker") < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The lone slot is held; the second request must shed at the door.
  client.Send(std::string(kSmallGen) + "\n");
  const std::string shed = client.ReadLine();
  EXPECT_NE(shed.find("\"id\":\"net-1-2\""), std::string::npos) << shed;
  EXPECT_NE(shed.find("\"outcome\":\"rejected\""), std::string::npos) << shed;
  EXPECT_NE(shed.find("adaptive concurrency limit"), std::string::npos)
      << shed;
  EXPECT_NE(shed.find("\"retry_after_ms\":"), std::string::npos) << shed;
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  const std::string first = client.ReadLine();
  EXPECT_NE(first.find("\"id\":\"net-1-1\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"outcome\":\"ok\""), std::string::npos) << first;
  client.Close();
  EXPECT_EQ(StopServer().overload_rejections, 1);
}

TEST_F(ServerTest, QueueBoundShedsBeforeSubmitCanBlock) {
  ServerOptions options = BaseOptions();
  options.batch.jobs = 1;
  options.batch.queue_depth = 1;
  options.limiter.initial_limit = 8;
  options.limiter.max_limit = 8;
  const ListenSpec listen = options.listen;

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  FailPointRegistry::Instance().SetObserver("service.worker", [&](int64_t) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  StartServer(std::move(options));

  Client client(listen);
  (void)client.ReadLine();  // hello
  // Both lines land in one segment: the poll thread handles them back to
  // back, so the second deterministically sees one request in flight.
  client.Send(std::string(kSmallGen) + "\n" + std::string(kSmallGen) + "\n");
  const std::string shed = client.ReadLine();
  EXPECT_NE(shed.find("\"id\":\"net-1-2\""), std::string::npos) << shed;
  EXPECT_NE(shed.find("work queue is full"), std::string::npos) << shed;
  EXPECT_NE(shed.find("\"retry_after_ms\":"), std::string::npos) << shed;
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_NE(client.ReadLine().find("\"outcome\":\"ok\""), std::string::npos);
  client.Close();
  EXPECT_EQ(StopServer().overload_rejections, 1);
}

// -- Drain ladder -----------------------------------------------------------

TEST_F(ServerTest, DrainDeliversInflightResponsesBeforeClosing) {
  ServerOptions options = BaseOptions();
  options.drain_grace_ms = 10000.0;  // The test releases the worker itself.
  const ListenSpec listen = options.listen;

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  FailPointRegistry::Instance().SetObserver("service.worker", [&](int64_t) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  StartServer(std::move(options));

  Client client(listen);
  (void)client.ReadLine();  // hello
  client.Send(std::string(kSmallGen) + "\n");
  while (FailPointRegistry::Instance().hits("service.worker") < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server_->RequestShutdown("drain test");
  EXPECT_FALSE(server_->ready());
  // New connections are refused once draining: the listener is closed.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(ConnectToListener(listen).ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  // The in-flight response still arrives, then the server closes cleanly.
  const std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"outcome\":\"ok\""), std::string::npos)
      << response;
  EXPECT_TRUE(client.WaitForEof());
  const ServerSummary& summary = StopServer("late reason loses");
  EXPECT_EQ(summary.drain_reason, "drain test");
  EXPECT_EQ(summary.responses_sent, 1);
  EXPECT_TRUE(summary.batch.drained || summary.batch.reports.size() == 1);
}

TEST_F(ServerTest, RecoveredRequestResolvesWithoutAConnection) {
  ServerOptions options = BaseOptions();
  StartServer(std::move(options));
  // What serve --resume does for WAL-pending intents: re-admit under the
  // recovered id; the outcome lands in the journal hook, nowhere else.
  ASSERT_TRUE(server_->SubmitRecovered("net-0-7", kSmallGen).ok());
  EXPECT_TRUE(WaitForReport("net-0-7"));
  const ServerSummary& summary = StopServer();
  ASSERT_EQ(summary.batch.reports.size(), 1u);
  EXPECT_EQ(summary.batch.reports[0].id, "net-0-7");
  EXPECT_EQ(summary.responses_sent, 0);
}

TEST_F(ServerTest, RecoveredLineThatIsNotOneRequestIsRefused) {
  StartServer(BaseOptions());
  EXPECT_EQ(server_->SubmitRecovered("net-0-1", "gen:bogus:nodes=x").ok(),
            false);
  EXPECT_FALSE(
      server_->ValidateRecovered("net-0-1", "gen:bogus:nodes=x").ok());
  EXPECT_TRUE(server_->ValidateRecovered("net-0-2", kSmallGen).ok());
  const Status two = server_->SubmitRecovered(
      "net-0-2", std::string(kSmallGen));
  EXPECT_TRUE(two.ok());
  EXPECT_TRUE(WaitForReport("net-0-2"));
  StopServer();
}

TEST_F(ServerTest, RunEpochKeepsGeneratedIdsDisjointFromRecoveredOnes) {
  ServerOptions options = BaseOptions();
  options.run_epoch = 2;
  const ListenSpec listen = options.listen;
  StartServer(std::move(options));
  // A WAL-recovered pending request registered under the id the PREVIOUS
  // run generated — exactly what a resumed run's first request would
  // collide with if generated ids restarted at net-1-1.
  ASSERT_TRUE(server_->SubmitRecovered("net-1-1", kSmallGen).ok());

  Client client(listen);
  (void)client.ReadLine();  // hello
  client.Send(std::string(kSmallGen) + "\n");
  const std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"id\":\"net-r2-1-1\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"outcome\":\"ok\""), std::string::npos)
      << response;
  EXPECT_TRUE(WaitForReport("net-1-1"));
  EXPECT_TRUE(WaitForReport("net-r2-1-1"));
  client.Close();
  const ServerSummary& summary = StopServer();
  // The recovered request resolved into the journal only; the client got
  // exactly its own response, never the recovered one.
  EXPECT_EQ(summary.responses_sent, 1);
  EXPECT_EQ(summary.batch.reports.size(), 2u);
}

TEST_F(ServerTest, DuplicateRecoveredIdIsRefusedWhileRegistered) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  FailPointRegistry::Instance().SetObserver("service.worker", [&](int64_t) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  StartServer(BaseOptions());
  ASSERT_TRUE(server_->SubmitRecovered("net-0-1", kSmallGen).ok());
  // While the first registration is pending, the same id must be refused —
  // clobbering it would misroute the first report and leak its slot.
  const Status dup = server_->SubmitRecovered("net-0-1", kSmallGen);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kFailedPrecondition);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(WaitForReport("net-0-1"));
  const ServerSummary& summary = StopServer();
  ASSERT_EQ(summary.batch.reports.size(), 1u);
}

// -- Health listener --------------------------------------------------------

TEST_F(ServerTest, HealthEndpointsAnswerRawAndHttpProbes) {
  ServerOptions options = BaseOptions();
  WithHealth(&options);
  const ListenSpec listen = options.listen;
  const ListenSpec health = options.health;
  StartServer(std::move(options));

  {
    // One real request first so the pressure gauges exist in the registry.
    Client client(listen);
    (void)client.ReadLine();
    client.Send(std::string(kSmallGen) + "\n");
    (void)client.ReadLine();
  }
  {
    Client probe(health);
    probe.Send("healthz\n");
    EXPECT_EQ(probe.ReadLine(), "ok");
    EXPECT_TRUE(probe.WaitForEof());
  }
  {
    Client probe(health);
    probe.Send("GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n");
    const std::string response = probe.ReadAll();
    EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u) << response;
    EXPECT_NE(response.find("ready"), std::string::npos) << response;
    EXPECT_NE(response.find("Content-Length:"), std::string::npos)
        << response;
  }
  {
    Client probe(health);
    probe.Send("GET /metrics HTTP/1.0\r\n\r\n");
    const std::string body = probe.ReadAll();
    EXPECT_NE(body.find("gputc_connections_active"), std::string::npos);
    EXPECT_NE(body.find("gputc_queue_depth"), std::string::npos);
  }
  {
    Client probe(health);
    probe.Send("GET /nope HTTP/1.0\r\n\r\n");
    const std::string response = probe.ReadAll();
    EXPECT_EQ(response.rfind("HTTP/1.0 404", 0), 0u) << response;
  }
  StopServer();
}

TEST_F(ServerTest, HealthListenerHasItsOwnConnectionCap) {
  ServerOptions options = BaseOptions();
  WithHealth(&options);
  options.max_health_connections = 1;
  const ListenSpec health = options.health;
  StartServer(std::move(options));

  Client held(health);   // Holds the single health slot, sends nothing.
  Client probe(health);  // connect() lands in the backlog, not the server.
  probe.Send("healthz\n");
  EXPECT_EQ(probe.ReadLine(500), "") << "accepted past the health cap";
  held.Close();
  // The freed slot lets the backlogged probe through.
  EXPECT_EQ(probe.ReadLine(5000), "ok");
  StopServer();
}

TEST_F(ServerTest, ReadyzFlipsToDrainingDuringShutdown) {
  ServerOptions options = BaseOptions();
  WithHealth(&options);
  options.drain_grace_ms = 10000.0;
  const ListenSpec health = options.health;
  const ListenSpec listen = options.listen;

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  FailPointRegistry::Instance().SetObserver("service.worker", [&](int64_t) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  StartServer(std::move(options));

  {
    Client probe(health);
    probe.Send("readyz\n");
    EXPECT_EQ(probe.ReadLine(), "ready");
  }
  // Park one request so the drain has something in flight to wait on.
  Client client(listen);
  (void)client.ReadLine();
  client.Send(std::string(kSmallGen) + "\n");
  while (FailPointRegistry::Instance().hits("service.worker") < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server_->RequestShutdown("rollout");
  {
    // The health listener outlives the data listener exactly so load
    // balancers can see the drain happening.
    Client probe(health);
    probe.Send("GET /readyz HTTP/1.0\r\n\r\n");
    const std::string response = probe.ReadAll();
    EXPECT_EQ(response.rfind("HTTP/1.0 503", 0), 0u) << response;
    EXPECT_NE(response.find("draining"), std::string::npos) << response;
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_NE(client.ReadLine().find("\"outcome\":\"ok\""), std::string::npos);
  StopServer();
}

TEST_F(ServerTest, ReadyzReportsStorageStateThroughMonitor) {
  ServerOptions options = BaseOptions();
  WithHealth(&options);
  const ListenSpec health = options.health;
  // No probe_dir: the poll loop's MaybeProbe no-ops and the test drives the
  // monitor's state transitions directly, the way the WAL/journal sinks do.
  StorageHealthMonitor storage;
  options.storage = &storage;
  StartServer(std::move(options));

  {
    // Healthy disk: plain ready, no degraded header.
    Client probe(health);
    probe.Send("GET /readyz HTTP/1.0\r\n\r\n");
    const std::string response = probe.ReadAll();
    EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u) << response;
    EXPECT_EQ(response.find("X-Gputc-Storage"), std::string::npos)
        << response;
  }

  // A sink degrades (journal mirroring to stderr): still ready — the load
  // balancer keeps routing — but the header says the disk is in trouble.
  storage.NoteDegraded("journal", "mirroring to stderr");
  {
    Client probe(health);
    probe.Send("GET /readyz HTTP/1.0\r\n\r\n");
    const std::string response = probe.ReadAll();
    EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u) << response;
    EXPECT_NE(response.find("X-Gputc-Storage: degraded"), std::string::npos)
        << response;
  }

  // Strict-WAL fail-stop: readiness flips hard so traffic moves away while
  // the daemon finishes in-flight work and exits 6.
  storage.RecordStrictStop("WAL done append failed");
  EXPECT_FALSE(server_->ready());
  {
    Client probe(health);
    probe.Send("GET /readyz HTTP/1.0\r\n\r\n");
    const std::string response = probe.ReadAll();
    EXPECT_EQ(response.rfind("HTTP/1.0 503", 0), 0u) << response;
    EXPECT_NE(response.find("storage-degraded"), std::string::npos)
        << response;
  }

  // The monitor outlives the server: join the poll loop before `storage`
  // leaves scope.
  StopServer();
  server_.reset();
}

// -- Soak -------------------------------------------------------------------

TEST_F(ServerTest, SequentialSoakAnswersEveryRequestInOrder) {
  ServerOptions options = BaseOptions();
  const ListenSpec listen = options.listen;
  StartServer(std::move(options));

  Client client(listen);
  (void)client.ReadLine();  // hello
  constexpr int kRequests = 20;
  for (int i = 0; i < kRequests; ++i) {
    client.Send("gen:er:nodes=50,edges=120,seed=" + std::to_string(i + 1) +
                "\n");
    const std::string response = client.ReadLine();
    const std::string want_id =
        "\"id\":\"net-1-" + std::to_string(i + 1) + "\"";
    EXPECT_NE(response.find(want_id), std::string::npos) << response;
    EXPECT_NE(response.find("\"outcome\":\"ok\""), std::string::npos)
        << response;
  }
  client.CloseWrite();
  EXPECT_TRUE(client.WaitForEof());
  const ServerSummary& summary = StopServer();
  EXPECT_EQ(summary.requests_received, kRequests);
  EXPECT_EQ(summary.responses_sent, kRequests);
  EXPECT_EQ(summary.protocol_errors, 0);
}

}  // namespace
}  // namespace gputc
