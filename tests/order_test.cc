#include <gtest/gtest.h>

#include <set>

#include "direction/direction.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "order/aorder.h"
#include "order/calibration.h"
#include "order/ordering.h"
#include "order/resource_model.h"

namespace gputc {
namespace {

ResourceModel TestModel() {
  return CalibratedResourceModel(DeviceSpec::TitanXpLike());
}

class OrderingStrategyTest : public ::testing::TestWithParam<OrderingStrategy> {
};

TEST_P(OrderingStrategyTest, ProducesAPermutation) {
  const Graph g = GeneratePowerLawConfiguration(1500, 2.1, 1, 150, 51);
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  const Permutation perm =
      ComputeOrdering(g, d, GetParam(), TestModel(), AOrderOptions{64});
  EXPECT_TRUE(IsPermutation(perm));
}

TEST_P(OrderingStrategyTest, WorksOnDisconnectedGraphs) {
  // Two components plus isolated vertices.
  EdgeList list;
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(0, 2);
  list.Add(5, 6);
  list.set_num_vertices(10);
  const Graph g = Graph::FromEdgeList(std::move(list));
  const DirectedGraph d = Orient(g, DirectionStrategy::kIdBased);
  const Permutation perm =
      ComputeOrdering(g, d, GetParam(), TestModel(), AOrderOptions{4});
  EXPECT_TRUE(IsPermutation(perm));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, OrderingStrategyTest,
    ::testing::Values(OrderingStrategy::kOriginal, OrderingStrategy::kDegree,
                      OrderingStrategy::kAOrder, OrderingStrategy::kDfs,
                      OrderingStrategy::kBfsR, OrderingStrategy::kSlashBurn,
                      OrderingStrategy::kGro, OrderingStrategy::kBfs,
                      OrderingStrategy::kRcm, OrderingStrategy::kRandom),
    [](const ::testing::TestParamInfo<OrderingStrategy>& info) {
      std::string name = ToString(info.param);
      std::erase(name, '-');
      return name;
    });

TEST(AOrderTest, EmptyInput) {
  const AOrderResult r = AOrder({}, TestModel());
  EXPECT_TRUE(r.perm.empty());
  EXPECT_EQ(r.num_memory_dominated + r.num_compute_dominated, 0);
}

TEST(AOrderTest, PartitionsVerticesByDominance) {
  const ResourceModel model = TestModel();
  // Mix of tiny degrees (compute-dominated) and huge ones (memory).
  std::vector<EdgeCount> degrees;
  for (int i = 0; i < 64; ++i) degrees.push_back(1);
  for (int i = 0; i < 64; ++i) degrees.push_back(4096);
  const AOrderResult r = AOrder(degrees, model, AOrderOptions{16});
  EXPECT_TRUE(IsPermutation(r.perm));
  EXPECT_EQ(r.num_memory_dominated + r.num_compute_dominated, 128);
  EXPECT_GT(r.num_memory_dominated, 0);
  EXPECT_GT(r.num_compute_dominated, 0);
}

TEST(AOrderTest, MixesDominanceClassesWithinBuckets) {
  const ResourceModel model = TestModel();
  std::vector<EdgeCount> degrees;
  for (int i = 0; i < 64; ++i) degrees.push_back(1);
  for (int i = 0; i < 64; ++i) degrees.push_back(4096);
  const int bucket_size = 16;
  const AOrderResult r = AOrder(degrees, model, AOrderOptions{bucket_size});
  // Every bucket should contain both short-list and long-list vertices.
  std::vector<std::set<EdgeCount>> bucket_kinds(128 / bucket_size);
  for (size_t v = 0; v < degrees.size(); ++v) {
    bucket_kinds[r.perm[v] / bucket_size].insert(degrees[v]);
  }
  for (const auto& kinds : bucket_kinds) {
    EXPECT_EQ(kinds.size(), 2u);
  }
}

TEST(AOrderTest, BeatsDegreeOrderOnImbalanceObjective) {
  const Graph g = LoadDataset("gowalla");
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  const ResourceModel model = TestModel();
  const std::vector<EdgeCount> degs = d.OutDegrees();
  const int bucket = 256;

  const double a_cost =
      AOrder(degs, model, AOrderOptions{bucket}).imbalance_cost;
  const double original_cost = OrderingImbalanceCost(
      degs, IdentityPermutation(d.num_vertices()), bucket, model);
  const double degree_cost = OrderingImbalanceCost(
      degs, ComputeOrdering(g, d, OrderingStrategy::kDegree, model), bucket,
      model);
  // Eq. 3: A-order < Original < D-order (D-order groups equal resource
  // preferences, the paper's worst case).
  EXPECT_LT(a_cost, original_cost);
  EXPECT_LT(original_cost, degree_cost);
}

TEST(ResourceModelTest, IntensityShapes) {
  const ResourceModel model = TestModel();
  // F_c decreasing in degree, F_m nondecreasing.
  EXPECT_GT(model.ComputeIntensity(1), model.ComputeIntensity(100));
  EXPECT_LE(model.MemoryIntensity(1), model.MemoryIntensity(4096));
  // Degree 0 treated as 1.
  EXPECT_EQ(model.ComputeIntensity(0), model.ComputeIntensity(1));
  EXPECT_GT(model.lambda(), 0.0);
}

TEST(ResourceModelTest, MemorySuperioritySignSeparatesClasses) {
  const ResourceModel model = TestModel();
  EXPECT_LT(model.MemorySuperiority(1), model.MemorySuperiority(1 << 14));
}

TEST(BucketCostsTest, SplitsByPermutedPosition) {
  const ResourceModel model = TestModel();
  const std::vector<EdgeCount> degs = {1, 1, 100, 100};
  // Identity: bucket 0 = {1, 1}, bucket 1 = {100, 100}.
  const auto identity_costs =
      BucketCosts(degs, IdentityPermutation(4), 2, model);
  ASSERT_EQ(identity_costs.size(), 2u);
  EXPECT_GT(identity_costs[0].compute, identity_costs[1].compute);
  EXPECT_LT(identity_costs[0].memory, identity_costs[1].memory);

  // Interleaved: buckets become identical.
  const Permutation interleave = {0, 2, 1, 3};
  const auto mixed_costs = BucketCosts(degs, interleave, 2, model);
  EXPECT_DOUBLE_EQ(mixed_costs[0].compute, mixed_costs[1].compute);
  EXPECT_DOUBLE_EQ(mixed_costs[0].memory, mixed_costs[1].memory);
}

TEST(OrderingImbalanceTest, InterleavingLowersCost) {
  const ResourceModel model = TestModel();
  std::vector<EdgeCount> degs;
  for (int i = 0; i < 32; ++i) degs.push_back(1);
  for (int i = 0; i < 32; ++i) degs.push_back(2048);
  Permutation interleave(64);
  for (VertexId v = 0; v < 32; ++v) {
    interleave[v] = 2 * v;           // Short lists at even slots.
    interleave[32 + v] = 2 * v + 1;  // Long lists at odd slots.
  }
  const double mixed = OrderingImbalanceCost(degs, interleave, 8, model);
  const double segregated =
      OrderingImbalanceCost(degs, IdentityPermutation(64), 8, model);
  EXPECT_LT(mixed, segregated);
}

}  // namespace
}  // namespace gputc
