// Tests for the concurrent batch service layer: the bounded work queue and
// its shed policies, the per-backend circuit breakers, memory admission
// control, manifest parsing, and the BatchService end to end — saturation,
// breaker routing, watchdog cancellation, fault injection, and drain under
// load. The whole file runs under TSan/ASan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "service/admission.h"
#include "service/batch_service.h"
#include "service/circuit_breaker.h"
#include "service/manifest.h"
#include "service/work_queue.h"
#include "util/deadline.h"
#include "util/failpoint.h"

namespace gputc {
namespace {

using State = CircuitBreaker::State;

// -- WorkQueue --------------------------------------------------------------

TEST(WorkQueueTest, PopsInFifoOrder) {
  WorkQueue<int> queue(4, ShedPolicy::kBlock);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.Push(i).status.ok());
  }
  EXPECT_EQ(queue.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const std::optional<int> item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(WorkQueueTest, RejectPolicyFailsFastWhenFull) {
  WorkQueue<int> queue(2, ShedPolicy::kReject);
  EXPECT_TRUE(queue.Push(1).status.ok());
  EXPECT_TRUE(queue.Push(2).status.ok());
  const auto result = queue.Push(3);
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(result.shed.has_value());
  EXPECT_EQ(queue.size(), 2u);
}

TEST(WorkQueueTest, DropOldestEvictsTheHead) {
  WorkQueue<int> queue(2, ShedPolicy::kDropOldest);
  EXPECT_TRUE(queue.Push(1).status.ok());
  EXPECT_TRUE(queue.Push(2).status.ok());
  const auto result = queue.Push(3);
  EXPECT_TRUE(result.status.ok());
  ASSERT_TRUE(result.shed.has_value());
  EXPECT_EQ(*result.shed, 1) << "the oldest item must be the victim";
  EXPECT_EQ(*queue.Pop(), 2);
  EXPECT_EQ(*queue.Pop(), 3);
}

TEST(WorkQueueTest, BlockPolicyWaitsForAConsumer) {
  WorkQueue<int> queue(1, ShedPolicy::kBlock);
  EXPECT_TRUE(queue.Push(1).status.ok());
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2).status.ok());
    second_pushed.store(true);
  });
  // The producer must be parked on the full queue, not dropping the item.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(*queue.Pop(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(*queue.Pop(), 2);
}

TEST(WorkQueueTest, CloseUnblocksProducersAndDrainsConsumers) {
  WorkQueue<int> queue(1, ShedPolicy::kBlock);
  EXPECT_TRUE(queue.Push(1).status.ok());
  Status blocked_push = OkStatus();
  std::thread producer([&] { blocked_push = queue.Push(2).status; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  producer.join();
  EXPECT_EQ(blocked_push.code(), StatusCode::kFailedPrecondition);
  // Already-queued items still drain; then consumers get the exit signal.
  EXPECT_EQ(*queue.Pop(), 1);
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_EQ(queue.Push(3).status.code(), StatusCode::kFailedPrecondition);
}

TEST(WorkQueueTest, FlushPendingReturnsEverythingUnstarted) {
  WorkQueue<int> queue(4, ShedPolicy::kBlock);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(queue.Push(i).status.ok());
  }
  queue.Close();
  const std::vector<int> flushed = queue.FlushPending();
  EXPECT_EQ(flushed, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(ShedPolicyTest, ParsesNamesAndRejectsUnknown) {
  EXPECT_EQ(*ParseShedPolicy("block"), ShedPolicy::kBlock);
  EXPECT_EQ(*ParseShedPolicy("reject"), ShedPolicy::kReject);
  EXPECT_EQ(*ParseShedPolicy("drop-oldest"), ShedPolicy::kDropOldest);
  const StatusOr<ShedPolicy> bad = ParseShedPolicy("bogus");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().ToString().find("drop-oldest"), std::string::npos);
  EXPECT_STREQ(ShedPolicyName(ShedPolicy::kDropOldest), "drop-oldest");
}

// -- CircuitBreaker ---------------------------------------------------------

/// Breaker driven by a hand-cranked clock so every transition is
/// deterministic.
struct FakeClockBreaker {
  explicit FakeClockBreaker(CircuitBreakerOptions options)
      : breaker(options, [this] { return now_ms; }) {}
  double now_ms = 0.0;
  CircuitBreaker breaker;
};

CircuitBreakerOptions TestBreakerOptions() {
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  options.open_cooldown_ms = 100.0;
  options.half_open_probes = 1;
  return options;
}

TEST(CircuitBreakerTest, ConsecutiveFailuresTripTheBreaker) {
  FakeClockBreaker fake(TestBreakerOptions());
  CircuitBreaker& b = fake.breaker;
  EXPECT_TRUE(b.Allow());
  b.RecordFailure();
  EXPECT_EQ(b.state(), State::kClosed) << "one failure is below threshold";
  EXPECT_TRUE(b.Allow());
  b.RecordFailure();
  EXPECT_EQ(b.state(), State::kOpen);
  EXPECT_FALSE(b.Allow()) << "open breaker refuses before the cooldown";
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  FakeClockBreaker fake(TestBreakerOptions());
  CircuitBreaker& b = fake.breaker;
  b.RecordFailure();
  b.RecordSuccess();
  b.RecordFailure();
  EXPECT_EQ(b.state(), State::kClosed)
      << "non-consecutive failures must not trip the breaker";
  EXPECT_EQ(b.consecutive_failures(), 1);
}

TEST(CircuitBreakerTest, CooldownAdmitsOneProbeThenCloses) {
  FakeClockBreaker fake(TestBreakerOptions());
  CircuitBreaker& b = fake.breaker;
  b.RecordFailure();
  b.RecordFailure();
  ASSERT_EQ(b.state(), State::kOpen);
  fake.now_ms = 99.0;
  EXPECT_FALSE(b.Allow()) << "cooldown has not elapsed yet";
  fake.now_ms = 101.0;
  EXPECT_TRUE(b.Allow()) << "expired cooldown admits a probe";
  EXPECT_EQ(b.state(), State::kHalfOpen);
  EXPECT_FALSE(b.Allow()) << "only half_open_probes grants at a time";
  b.RecordSuccess();
  EXPECT_EQ(b.state(), State::kClosed);
  EXPECT_TRUE(b.Allow());
}

TEST(CircuitBreakerTest, FailedProbeReopensAndRestartsCooldown) {
  FakeClockBreaker fake(TestBreakerOptions());
  CircuitBreaker& b = fake.breaker;
  b.RecordFailure();
  b.RecordFailure();
  fake.now_ms = 150.0;
  ASSERT_TRUE(b.Allow());
  b.RecordFailure();
  EXPECT_EQ(b.state(), State::kOpen);
  fake.now_ms = 200.0;
  EXPECT_FALSE(b.Allow()) << "cooldown restarted at the probe failure";
  fake.now_ms = 251.0;
  EXPECT_TRUE(b.Allow());
}

TEST(CircuitBreakerTest, CancelProbeReturnsTheGrant) {
  FakeClockBreaker fake(TestBreakerOptions());
  CircuitBreaker& b = fake.breaker;
  b.RecordFailure();
  b.RecordFailure();
  fake.now_ms = 150.0;
  ASSERT_TRUE(b.Allow());
  ASSERT_FALSE(b.Allow());
  // The granted attempt never ran (an earlier chain stage won); returning it
  // must let the next request probe instead of wedging half-open forever.
  b.CancelProbe();
  EXPECT_TRUE(b.Allow());
  EXPECT_EQ(b.state(), State::kHalfOpen);
}

TEST(BreakerBoardTest, HandsOutOneStableBreakerPerBackend) {
  BreakerBoard board(TestBreakerOptions());
  CircuitBreaker& hu = board.ForBackend("Hu");
  board.ForBackend("cpu");
  hu.RecordFailure();
  hu.RecordFailure();
  EXPECT_EQ(board.ForBackend("Hu").state(), State::kOpen)
      << "same name must resolve to the same breaker";
  EXPECT_EQ(board.ForBackend("cpu").state(), State::kClosed);
  EXPECT_EQ(board.BackendNames(), (std::vector<std::string>{"Hu", "cpu"}));
}

// -- AdmissionController ----------------------------------------------------

TEST(AdmissionTest, AdmitsWithinBudgetAndTracksUsage) {
  AdmissionController admission(100);
  const CancelToken token;
  EXPECT_TRUE(admission.Admit(60, token).ok());
  EXPECT_EQ(admission.in_use_bytes(), 60);
  EXPECT_EQ(admission.in_flight(), 1);
  admission.Release(60);
  EXPECT_EQ(admission.in_use_bytes(), 0);
  EXPECT_EQ(admission.in_flight(), 0);
}

TEST(AdmissionTest, OversizedRequestFailsFast) {
  AdmissionController admission(100);
  const Status status = admission.Admit(101, CancelToken());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.ToString().find("never be admitted"), std::string::npos);
  EXPECT_EQ(admission.in_flight(), 0);
}

TEST(AdmissionTest, WaitsUntilAReservationIsReleased) {
  AdmissionController admission(100);
  ASSERT_TRUE(admission.Admit(80, CancelToken()).ok());
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    EXPECT_TRUE(admission.Admit(50, CancelToken()).ok());
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(admitted.load()) << "50 over an 80/100 budget must wait";
  admission.Release(80);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(admission.in_use_bytes(), 50);
}

TEST(AdmissionTest, AbortFailsWaitersAndFutureAdmits) {
  AdmissionController admission(100);
  ASSERT_TRUE(admission.Admit(80, CancelToken()).ok());
  Status waiter_status = OkStatus();
  std::thread waiter(
      [&] { waiter_status = admission.Admit(50, CancelToken()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  admission.Abort();
  waiter.join();
  EXPECT_EQ(waiter_status.code(), StatusCode::kCancelled);
  EXPECT_EQ(admission.Admit(1, CancelToken()).code(), StatusCode::kCancelled);
}

TEST(AdmissionTest, CancelTokenAbandonsTheWait) {
  AdmissionController admission(100);
  ASSERT_TRUE(admission.Admit(80, CancelToken()).ok());
  CancelToken cancel;
  Status waiter_status = OkStatus();
  std::thread waiter([&] { waiter_status = admission.Admit(50, cancel); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel.Cancel("request deadline");
  waiter.join();
  EXPECT_EQ(waiter_status.code(), StatusCode::kCancelled);
  EXPECT_NE(waiter_status.ToString().find("request deadline"),
            std::string::npos);
}

TEST(AdmissionTest, ZeroBudgetDisablesTheLimit) {
  AdmissionController admission(0);
  EXPECT_TRUE(admission.Admit(1'000'000'000, CancelToken()).ok());
  EXPECT_EQ(admission.in_flight(), 1);
  admission.Release(1'000'000'000);
}

// -- Manifest ---------------------------------------------------------------

TEST(ManifestTest, ParsesEverySourceKind) {
  std::istringstream in(
      "# comment\n"
      "\n"
      "dataset:email-Eucore\n"
      "% another comment\n"
      "file:graphs/g.txt\n"
      "graphs/g2.bin\n"
      "wiki-Vote\n"
      "gen:rmat:scale=9,edge-factor=8,seed=3\n");
  const StatusOr<std::vector<BatchRequest>> requests = ParseManifest(in);
  ASSERT_TRUE(requests.ok()) << requests.status().ToString();
  ASSERT_EQ(requests->size(), 5u);
  EXPECT_EQ((*requests)[0].kind, BatchRequest::Kind::kDataset);
  EXPECT_EQ((*requests)[0].target, "email-Eucore");
  EXPECT_EQ((*requests)[0].id, "3:dataset:email-Eucore");
  EXPECT_EQ((*requests)[1].kind, BatchRequest::Kind::kFile);
  EXPECT_EQ((*requests)[1].target, "graphs/g.txt");
  EXPECT_EQ((*requests)[2].kind, BatchRequest::Kind::kFile)
      << "a bare token with '/' or '.' is a file path";
  EXPECT_EQ((*requests)[3].kind, BatchRequest::Kind::kDataset)
      << "a bare name is a dataset";
  EXPECT_EQ((*requests)[4].kind, BatchRequest::Kind::kGenerate);
  EXPECT_EQ((*requests)[4].target, "rmat");
  EXPECT_EQ((*requests)[4].params.at("scale"), "9");
  EXPECT_EQ((*requests)[4].params.at("seed"), "3");
}

TEST(ManifestTest, ParsesPerRequestOverrides) {
  std::istringstream in("dataset:gowalla timeout-ms=250 fallback=Polak,cpu\n");
  const StatusOr<std::vector<BatchRequest>> requests = ParseManifest(in);
  ASSERT_TRUE(requests.ok()) << requests.status().ToString();
  ASSERT_EQ(requests->size(), 1u);
  EXPECT_DOUBLE_EQ((*requests)[0].timeout_ms, 250.0);
  EXPECT_EQ((*requests)[0].fallback, "Polak,cpu");
}

TEST(ManifestTest, ParsesFailpointsOverride) {
  std::istringstream in(
      "gen:er:nodes=100,edges=300 failpoints=tc.block=crash@1\n");
  const StatusOr<std::vector<BatchRequest>> requests = ParseManifest(in);
  ASSERT_TRUE(requests.ok()) << requests.status().ToString();
  ASSERT_EQ(requests->size(), 1u);
  EXPECT_EQ((*requests)[0].failpoints, "tc.block=crash@1");
}

TEST(ManifestTest, RejectsMalformedLinesNamingTheLineNumber) {
  const auto expect_bad = [](const std::string& text,
                             const std::string& needle) {
    std::istringstream in(text);
    const StatusOr<std::vector<BatchRequest>> requests = ParseManifest(in);
    ASSERT_FALSE(requests.ok()) << text;
    EXPECT_EQ(requests.status().code(), StatusCode::kInvalidArgument) << text;
    EXPECT_NE(requests.status().ToString().find(needle), std::string::npos)
        << requests.status().ToString();
  };
  expect_bad("gen:mystery:scale=4\n", "unknown generator family");
  expect_bad("gen:rmat:scale\n", "expected key=value");
  expect_bad("dataset:gowalla retries=3\n", "unknown override key");
  expect_bad("dataset:gowalla timeout-ms=fast\n", "not a number");
  expect_bad("dataset:gowalla timeout-ms=-5\n", "must be >= 0");
  expect_bad("dataset:gowalla failpoints=nonsense\n", "schedule");
  expect_bad("ok\ngen:mystery:x=1\n", "manifest line 2");
}

TEST(ManifestTest, MaterializesGeneratedGraphs) {
  BatchRequest request;
  request.kind = BatchRequest::Kind::kGenerate;
  request.target = "er";
  request.params = {{"nodes", "200"}, {"edges", "800"}, {"seed", "5"}};
  const StatusOr<Graph> graph = MaterializeRequest(request);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_vertices(), 200);
}

TEST(ManifestTest, LoadManifestReportsMissingFile) {
  const StatusOr<std::vector<BatchRequest>> requests =
      LoadManifest("/nonexistent/manifest.txt");
  ASSERT_FALSE(requests.ok());
  EXPECT_EQ(requests.status().code(), StatusCode::kNotFound);
}

// -- BatchService -----------------------------------------------------------

/// Every test wipes the fail-point registry on entry and exit so an ambient
/// GPUTC_FAILPOINTS (or a sibling test) cannot perturb its schedule.
class BatchServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Instance().Reset(); }
  void TearDown() override { FailPointRegistry::Instance().Reset(); }

  /// A small generated request; distinct seeds give distinct graphs.
  static BatchRequest GenRequest(int index) {
    BatchRequest request;
    request.id = std::to_string(index) + ":gen:er";
    request.source = "gen:er:seed=" + std::to_string(index);
    request.kind = BatchRequest::Kind::kGenerate;
    request.target = "er";
    request.params = {{"nodes", "300"},
                      {"edges", "1500"},
                      {"seed", std::to_string(index)}};
    return request;
  }

  /// A heavier request so cancellation/drain tests have time to interrupt.
  static BatchRequest BigRequest(int index) {
    BatchRequest request = GenRequest(index);
    request.source = "gen:rmat:seed=" + std::to_string(index);
    request.target = "rmat";
    request.params = {{"scale", "12"},
                      {"edge-factor", "16"},
                      {"seed", std::to_string(index)}};
    return request;
  }

  static std::set<std::string> ReportIds(const BatchSummary& summary) {
    std::set<std::string> ids;
    for (const RequestReport& report : summary.reports) {
      EXPECT_TRUE(ids.insert(report.id).second)
          << "request '" << report.id << "' journaled twice";
    }
    return ids;
  }
};

TEST_F(BatchServiceTest, CleanBatchCountsEveryRequestOk) {
  BatchServiceOptions options;
  options.jobs = 4;
  options.queue_depth = 8;
  BatchService service(options);
  service.Start();
  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) service.Submit(GenRequest(i));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), static_cast<size_t>(kRequests));
  EXPECT_EQ(summary.CountOutcome(RequestOutcome::kOk), kRequests);
  EXPECT_TRUE(summary.AllSucceeded());
  EXPECT_FALSE(summary.drained);
  EXPECT_EQ(ReportIds(summary).size(), static_cast<size_t>(kRequests));
  for (const RequestReport& report : summary.reports) {
    EXPECT_GT(report.triangles, 0) << report.id;
    EXPECT_EQ(report.stage, "Hu") << report.id;
    EXPECT_EQ(report.attempts, 1) << report.id;
    // The journal line must round-trip the essentials.
    const std::string json = report.ToJson();
    EXPECT_NE(json.find("\"outcome\":\"ok\""), std::string::npos);
    EXPECT_NE(json.find("\"id\":\"" + report.id + "\""), std::string::npos);
  }
}

TEST_F(BatchServiceTest, PerRequestFailpointsOverrideInjectsInProcess) {
  BatchServiceOptions options;
  options.jobs = 1;  // Serial: completion order == submit order.
  BatchService service(options);
  service.Start();
  BatchRequest poisoned = GenRequest(0);
  // Three count-limited fires: one per Hu variant (base, no-aorder,
  // no-adirection), exhausting the stage; the cpu stage then rescues the
  // request. Count-limited so the schedule cannot leak into request 1.
  poisoned.failpoints = "tc.block=internal@3";
  service.Submit(poisoned);
  service.Submit(GenRequest(1));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), 2u);
  EXPECT_EQ(summary.reports[0].outcome, RequestOutcome::kDegraded);
  EXPECT_EQ(summary.reports[0].stage, "cpu");
  EXPECT_GT(summary.reports[0].triangles, 0);
  EXPECT_EQ(summary.reports[1].outcome, RequestOutcome::kOk);
  EXPECT_EQ(summary.reports[1].stage, "Hu");
}

TEST_F(BatchServiceTest, MalformedFailpointsOverrideFailsOnlyThatRequest) {
  BatchServiceOptions options;
  options.jobs = 1;
  BatchService service(options);
  service.Start();
  BatchRequest bad = GenRequest(0);
  bad.failpoints = "not-a-schedule";
  service.Submit(bad);
  service.Submit(GenRequest(1));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), 2u);
  EXPECT_EQ(summary.reports[0].outcome, RequestOutcome::kFailed);
  EXPECT_NE(summary.reports[0].status.message().find("failpoints override"),
            std::string::npos)
      << summary.reports[0].status.ToString();
  EXPECT_EQ(summary.reports[1].outcome, RequestOutcome::kOk);
}

TEST_F(BatchServiceTest, StreamingHookSeesEveryReportInJournalOrder) {
  BatchServiceOptions options;
  options.jobs = 2;
  BatchService service(options);
  std::mutex mu;
  std::vector<std::string> streamed;
  service.set_on_report([&](const RequestReport& report) {
    std::lock_guard<std::mutex> lock(mu);
    streamed.push_back(report.id);
  });
  service.Start();
  for (int i = 0; i < 5; ++i) service.Submit(GenRequest(i));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(streamed.size(), summary.reports.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], summary.reports[i].id);
  }
}

TEST_F(BatchServiceTest, RejectPolicyShedsButJournalsEverySubmission) {
  // One worker held down by a blocking observer on its entry fail point:
  // the queue (depth 2) must fill deterministically, and every extra Submit
  // must come back as an explicit rejected journal entry — never vanish.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  FailPointRegistry::Instance().SetObserver("service.worker", [&](int64_t) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  BatchServiceOptions options;
  options.jobs = 1;
  options.queue_depth = 2;
  options.shed_policy = ShedPolicy::kReject;
  BatchService service(options);
  service.Start();

  service.Submit(GenRequest(0));  // Picked up; parked in the observer.
  while (FailPointRegistry::Instance().hits("service.worker") < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Submit(GenRequest(1));  // Queued.
  service.Submit(GenRequest(2));  // Queued; queue is now full.
  service.Submit(GenRequest(3));  // Shed.
  service.Submit(GenRequest(4));  // Shed.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), 5u);
  EXPECT_EQ(ReportIds(summary).size(), 5u);
  EXPECT_EQ(summary.CountOutcome(RequestOutcome::kOk), 3);
  EXPECT_EQ(summary.CountOutcome(RequestOutcome::kRejected), 2);
  for (const RequestReport& report : summary.reports) {
    if (report.outcome == RequestOutcome::kRejected) {
      EXPECT_EQ(report.status.code(), StatusCode::kResourceExhausted);
      EXPECT_NE(report.status.ToString().find("reject"), std::string::npos);
    }
  }
}

TEST_F(BatchServiceTest, DropOldestEvictsQueuedWorkNotNewWork) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  FailPointRegistry::Instance().SetObserver("service.worker", [&](int64_t) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  BatchServiceOptions options;
  options.jobs = 1;
  options.queue_depth = 1;
  options.shed_policy = ShedPolicy::kDropOldest;
  BatchService service(options);
  service.Start();

  service.Submit(GenRequest(0));  // Parked in the worker.
  while (FailPointRegistry::Instance().hits("service.worker") < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Submit(GenRequest(1));  // Queued.
  service.Submit(GenRequest(2));  // Evicts request 1.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), 3u);
  for (const RequestReport& report : summary.reports) {
    if (report.id == "1:gen:er") {
      EXPECT_EQ(report.outcome, RequestOutcome::kRejected);
      EXPECT_NE(report.status.ToString().find("drop-oldest"),
                std::string::npos);
    } else {
      EXPECT_EQ(report.outcome, RequestOutcome::kOk) << report.id;
    }
  }
}

TEST_F(BatchServiceTest, OpenBreakerRoutesLaterRequestsPastTheBackend) {
  // Hu fails every attempt; after failure_threshold requests its breaker
  // opens and later requests skip straight to the cpu stage without paying
  // Hu's three degraded attempts. The fail-point hit counter proves Hu
  // stopped being tried.
  ASSERT_TRUE(
      FailPointRegistry::Instance().ArmFromString("tc.hu=internal").ok());
  BatchServiceOptions options;
  options.jobs = 1;  // Serialize so the breaker math is deterministic.
  options.breaker.failure_threshold = 2;
  options.breaker.open_cooldown_ms = 1e9;  // Never half-opens in this test.
  BatchService service(options);
  service.Start();
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) service.Submit(GenRequest(i));
  const BatchSummary summary = service.Finish();

  ASSERT_EQ(summary.reports.size(), static_cast<size_t>(kRequests));
  // Every request still gets an answer via the cpu fallback.
  EXPECT_EQ(summary.CountOutcome(RequestOutcome::kDegraded), kRequests);
  // Requests 0 and 1 each burn 3 Hu variants; the breaker then opens and no
  // later request touches Hu at all.
  EXPECT_EQ(FailPointRegistry::Instance().hits("tc.hu"), 6);
  EXPECT_EQ(service.breakers().ForBackend("Hu").state(), State::kOpen);
  EXPECT_EQ(service.breakers().ForBackend("cpu").state(), State::kClosed);
  for (int i = 2; i < kRequests; ++i) {
    EXPECT_EQ(summary.reports[i].attempts, 1)
        << "request " << i << " should have skipped the benched backend";
  }
}

TEST_F(BatchServiceTest, AllBreakersOpenRejectsInsteadOfExecuting) {
  BatchServiceOptions options;
  options.jobs = 1;
  options.breaker.failure_threshold = 1;
  options.breaker.open_cooldown_ms = 1e9;
  BatchService service(options);
  // Trip both backends before any request runs.
  service.breakers().ForBackend("Hu").RecordFailure();
  service.breakers().ForBackend("cpu").RecordFailure();
  service.Start();
  service.Submit(GenRequest(0));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), 1u);
  EXPECT_EQ(summary.reports[0].outcome, RequestOutcome::kRejected);
  EXPECT_NE(summary.reports[0].status.ToString().find("circuit breaker"),
            std::string::npos);
  EXPECT_TRUE(summary.NoneSucceeded());
}

TEST_F(BatchServiceTest, WatchdogCancelsPastTheRequestDeadline) {
  BatchServiceOptions options;
  options.jobs = 2;
  options.request_timeout_ms = 1.0;  // Expires before a scale-12 run ends.
  BatchService service(options);
  service.Start();
  for (int i = 0; i < 4; ++i) service.Submit(BigRequest(i));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), 4u);
  for (const RequestReport& report : summary.reports) {
    EXPECT_EQ(report.outcome, RequestOutcome::kFailed) << report.id;
    EXPECT_EQ(report.status.code(), StatusCode::kCancelled) << report.id;
    EXPECT_NE(report.status.ToString().find("watchdog"), std::string::npos)
        << report.status.ToString();
  }
  // Deadline kills are the caller's clock, not backend illness: no breaker
  // may have tripped.
  EXPECT_EQ(service.breakers().ForBackend("Hu").state(), State::kClosed);
}

TEST_F(BatchServiceTest, PerRequestTimeoutOverridesTheBatchDefault) {
  BatchServiceOptions options;
  options.jobs = 1;
  options.request_timeout_ms = 1.0;  // Would cancel BigRequest...
  BatchService service(options);
  service.Start();
  BatchRequest generous = BigRequest(1);
  generous.timeout_ms = 60'000.0;  // ...but the manifest override wins.
  service.Submit(generous);
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), 1u);
  EXPECT_EQ(summary.reports[0].outcome, RequestOutcome::kOk)
      << summary.reports[0].status.ToString();
}

TEST_F(BatchServiceTest, MemoryAdmissionSerializesOversubscribedRequests) {
  // Budget fits one small graph at a time; both requests must still finish
  // (admission is backpressure, not shedding).
  const StatusOr<Graph> probe = MaterializeRequest(GenRequest(0));
  ASSERT_TRUE(probe.ok());
  const int64_t one_request = EstimateHostBytes(*probe);
  BatchServiceOptions options;
  options.jobs = 2;
  options.mem_budget_bytes = one_request + one_request / 2;
  BatchService service(options);
  service.Start();
  service.Submit(GenRequest(0));
  service.Submit(GenRequest(1));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), 2u);
  EXPECT_TRUE(summary.AllSucceeded())
      << summary.reports[0].status.ToString() << " / "
      << summary.reports[1].status.ToString();
}

TEST_F(BatchServiceTest, ImpossibleMemoryDemandIsRejectedNotHung) {
  BatchServiceOptions options;
  options.jobs = 1;
  options.mem_budget_bytes = 16;  // Smaller than any real graph.
  BatchService service(options);
  service.Start();
  service.Submit(GenRequest(0));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), 1u);
  EXPECT_EQ(summary.reports[0].outcome, RequestOutcome::kRejected);
  EXPECT_EQ(summary.reports[0].status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_NE(summary.reports[0].status.ToString().find("admission"),
            std::string::npos);
}

// Admission regression for the preprocessing cache: a cache-hit request
// rebuilds the directed graph from the artifact instead of holding a second
// working copy, so its honest estimate is EstimateHostBytesCached — below
// the cold EstimateHostBytes. A budget between the two must reject the cold
// run but admit the warmed one; charging warm requests the cold estimate
// (the old double-count) would reject both.
TEST_F(BatchServiceTest, WarmCacheAdmitsWhatColdAdmissionRejects) {
  const StatusOr<Graph> probe = MaterializeRequest(GenRequest(0));
  ASSERT_TRUE(probe.ok());
  const int64_t cold = EstimateHostBytes(*probe);
  const int64_t cached = EstimateHostBytesCached(*probe);
  ASSERT_LT(cached, cold);

  BatchServiceOptions options;
  options.jobs = 1;
  options.mem_budget_bytes = (cached + cold) / 2;

  {  // Cold: the estimate exceeds the whole budget — rejected, not hung.
    BatchService service(options);
    service.Start();
    service.Submit(GenRequest(0));
    const BatchSummary summary = service.Finish();
    ASSERT_EQ(summary.reports.size(), 1u);
    EXPECT_EQ(summary.reports[0].outcome, RequestOutcome::kRejected)
        << summary.reports[0].status.ToString();
  }

  // Warm an external cache under exactly the service's preprocessing config
  // (the fingerprint excludes the cache pointer itself).
  PrepCache cache(0);
  PreprocessOptions warmup = options.preprocess;
  warmup.prep_cache = &cache;
  ASSERT_TRUE(TryPreprocess(*probe, options.spec, warmup, ExecContext()).ok());

  options.prep_cache = &cache;
  BatchService service(options);
  service.Start();
  service.Submit(GenRequest(0));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), 1u);
  EXPECT_EQ(summary.reports[0].outcome, RequestOutcome::kOk)
      << summary.reports[0].status.ToString();
  EXPECT_GE(cache.stats().memory_hits, 1);
}

TEST_F(BatchServiceTest, ServiceFailPointsShedOrFailButNeverDrop) {
  ASSERT_TRUE(FailPointRegistry::Instance()
                  .ArmFromString(
                      "service.enqueue=resource_exhausted@1;"
                      "service.admit=resource_exhausted@1;"
                      "service.worker=internal@1")
                  .ok());
  BatchServiceOptions options;
  options.jobs = 2;
  BatchService service(options);
  service.Start();
  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) service.Submit(GenRequest(i));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), static_cast<size_t>(kRequests));
  EXPECT_EQ(ReportIds(summary).size(), static_cast<size_t>(kRequests));
  // One enqueue shed, one admission shed, one worker fault; the rest count.
  EXPECT_EQ(summary.CountOutcome(RequestOutcome::kRejected), 2);
  EXPECT_EQ(summary.CountOutcome(RequestOutcome::kFailed), 1);
  EXPECT_EQ(summary.CountOutcome(RequestOutcome::kOk), kRequests - 3);
}

TEST_F(BatchServiceTest, InvalidFallbackOverrideFailsOnlyThatRequest) {
  BatchServiceOptions options;
  options.jobs = 1;
  BatchService service(options);
  service.Start();
  BatchRequest bad = GenRequest(0);
  bad.fallback = "hu,hu";  // Duplicate stages are rejected at parse time.
  service.Submit(bad);
  service.Submit(GenRequest(1));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), 2u);
  EXPECT_EQ(summary.reports[0].outcome, RequestOutcome::kFailed);
  EXPECT_EQ(summary.reports[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(summary.reports[0].status.ToString().find("duplicate"),
            std::string::npos);
  EXPECT_EQ(summary.reports[1].outcome, RequestOutcome::kOk);
}

TEST_F(BatchServiceTest, DrainUnderLoadAccountsForEveryRequest) {
  BatchServiceOptions options;
  options.jobs = 2;
  options.queue_depth = 4;
  options.drain_grace_ms = 50.0;
  BatchService service(options);
  service.Start();
  constexpr int kRequests = 24;
  std::thread producer([&] {
    for (int i = 0; i < kRequests; ++i) service.Submit(BigRequest(i));
  });
  // Let a few requests start, then pull the plug mid-flood.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  service.RequestDrain("test drain");
  producer.join();
  const BatchSummary summary = service.Finish();

  EXPECT_TRUE(summary.drained);
  EXPECT_EQ(summary.drain_reason, "test drain");
  // The accounting invariant: every submitted request journals exactly once,
  // whatever mix of completed/cancelled/flushed/refused the drain produced.
  ASSERT_EQ(summary.reports.size(), static_cast<size_t>(kRequests));
  EXPECT_EQ(ReportIds(summary).size(), static_cast<size_t>(kRequests));
  for (const RequestReport& report : summary.reports) {
    if (report.outcome == RequestOutcome::kRejected ||
        report.outcome == RequestOutcome::kFailed) {
      EXPECT_FALSE(report.status.ok()) << report.id;
    }
  }
}

// The service journals into the process-global metrics registry while the
// CLI (or an operator thread) may be exporting it: snapshotting must stay
// safe and coherent against a batch that is actively executing and then
// draining. TSan covers the data-race half; the bucket-sum assertion covers
// torn histogram reads.
TEST_F(BatchServiceTest, MetricsSnapshotsStaySafeWhileBatchDrains) {
  BatchServiceOptions options;
  options.jobs = 3;
  options.queue_depth = 8;
  options.drain_grace_ms = 50.0;
  BatchService service(options);
  service.Start();

  // Seed one series so the exporter has something to render even before the
  // first request journals (keeps the non-empty assertion meaningful when
  // this test runs alone under --gtest_filter).
  MetricsRegistry::Global()
      .GetCounter("gputc_test_probe_total", "Test-only probe series")
      .Increment();

  std::atomic<bool> stop_snapshots{false};
  std::thread exporter([&stop_snapshots] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    while (!stop_snapshots.load(std::memory_order_acquire)) {
      const std::string text = registry.PrometheusText();
      EXPECT_FALSE(text.empty());
      for (const MetricSample& sample : registry.Snapshot()) {
        if (sample.type != 'h') continue;
        int64_t bucket_sum = 0;
        for (int64_t c : sample.histogram.counts) bucket_sum += c;
        EXPECT_EQ(sample.histogram.count, bucket_sum) << sample.name;
      }
    }
  });

  constexpr int kRequests = 16;
  for (int i = 0; i < kRequests; ++i) service.Submit(GenRequest(i));
  service.RequestDrain("metrics snapshot test");
  const BatchSummary summary = service.Finish();
  stop_snapshots.store(true, std::memory_order_release);
  exporter.join();

  EXPECT_EQ(summary.reports.size(), static_cast<size_t>(kRequests));
}

TEST_F(BatchServiceTest, DrainBeforeStartRejectsEverything) {
  BatchServiceOptions options;
  options.jobs = 2;
  BatchService service(options);
  service.Start();
  service.RequestDrain("pre-drain");
  for (int i = 0; i < 3; ++i) service.Submit(GenRequest(i));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), 3u);
  EXPECT_EQ(summary.CountOutcome(RequestOutcome::kRejected), 3);
  for (const RequestReport& report : summary.reports) {
    EXPECT_EQ(report.status.code(), StatusCode::kCancelled) << report.id;
  }
}

}  // namespace
}  // namespace gputc
