#ifndef GPUTC_TESTS_CRASH_HARNESS_H_
#define GPUTC_TESTS_CRASH_HARNESS_H_

#include <string>
#include <vector>

namespace gputc {
namespace testing {

/// Result of running the gputc CLI as a child process.
struct ChildResult {
  /// Exit code, or 128+signal if the child died to a signal it did not
  /// convert into an exit code itself.
  int exit_code = -1;
  std::string stdout_text;
  std::string stderr_text;
};

/// Absolute path of the gputc binary under test, baked in by CMake as
/// GPUTC_CLI_PATH.
std::string GputcBinaryPath();

/// fork/execs the gputc binary with `args` (argv[1..]) and waits for it.
///
/// The child's environment is the parent's MINUS any inherited
/// GPUTC_FAILPOINTS (CI chaos jobs export an ambient schedule that would
/// otherwise contaminate every child) PLUS the entries of `env_extra`
/// ("KEY=VALUE"). To arm a crash schedule in the child, pass it explicitly:
///   RunGputc({"batch", ...}, {"GPUTC_FAILPOINTS=wal.done=crash@1"});
ChildResult RunGputc(const std::vector<std::string>& args,
                     const std::vector<std::string>& env_extra = {});

}  // namespace testing
}  // namespace gputc

#endif  // GPUTC_TESTS_CRASH_HARNESS_H_
